// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
// checksum used to frame WAL records and snapshot sections. Software
// table-driven implementation; no hardware dependency.
#ifndef GES_COMMON_CRC32C_H_
#define GES_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ges {

// Checksum of `n` bytes at `data`. `seed` chains incremental computations:
// Crc32c(b, nb, Crc32c(a, na)) == Crc32c(concat(a, b)).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

}  // namespace ges

#endif  // GES_COMMON_CRC32C_H_
