#include "common/arena.h"

#include <cstdlib>

namespace ges {

Arena::Arena(size_t slab_bytes) : slab_bytes_(slab_bytes) {}

Arena::~Arena() {
  if (budget_ != nullptr) budget_->Release(budget_charged_);
}

void Arena::SetBudget(MemoryBudget* budget) {
  if (budget_ != nullptr) budget_->Release(budget_charged_);
  budget_ = budget;
  budget_charged_ = 0;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  uintptr_t cur = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (cur + align - 1) & ~(align - 1);
  size_t padding = aligned - cur;
  if (cursor_ == nullptr ||
      aligned + bytes > reinterpret_cast<uintptr_t>(limit_)) {
    AddSlab(bytes + align);
    cur = reinterpret_cast<uintptr_t>(cursor_);
    aligned = (cur + align - 1) & ~(align - 1);
    padding = aligned - cur;
  }
  cursor_ = reinterpret_cast<uint8_t*>(aligned + bytes);
  bytes_allocated_ += bytes + padding;
  return reinterpret_cast<void*>(aligned);
}

void Arena::Reset() {
  slabs_.clear();
  cursor_ = nullptr;
  limit_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
  if (budget_ != nullptr) {
    budget_->Release(budget_charged_);
    budget_charged_ = 0;
  }
}

void Arena::AddSlab(size_t min_bytes) {
  size_t size = min_bytes > slab_bytes_ ? min_bytes : slab_bytes_;
  slabs_.push_back(std::make_unique<uint8_t[]>(size));
  cursor_ = slabs_.back().get();
  limit_ = cursor_ + size;
  bytes_reserved_ += size;
  if (budget_ != nullptr) {
    budget_->Charge(size);
    budget_charged_ += size;
  }
}

}  // namespace ges
