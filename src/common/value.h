// Tagged property value and typed columnar vector.
//
// Value is the row-oriented cell used by flat blocks and query results.
// ValueVector is the column-oriented storage used by f-Blocks and the
// columnar property store: one ValueVector stores singletons of a single
// type in a consecutive chunk of memory (Section 4.2, "column-oriented
// storage").
#ifndef GES_COMMON_VALUE_H_
#define GES_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_dict.h"
#include "common/types.h"

namespace ges {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,    // days or milliseconds since epoch, stored as int64
  kVertex,  // internal VertexId
};

const char* ValueTypeName(ValueType t);

// Returns true for types whose physical representation is an int64 slot.
inline bool IsIntegerPhysical(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt64 ||
         t == ValueType::kDate || t == ValueType::kVertex;
}

// A single tagged value. Strings are owned.
class Value {
 public:
  Value() : type_(ValueType::kNull), i_(0) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(ValueType::kBool, b ? 1 : 0); }
  static Value Int(int64_t i) { return Value(ValueType::kInt64, i); }
  static Value Double(double d) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.d_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.s_ = std::move(s);
    return v;
  }
  static Value Date(int64_t millis) { return Value(ValueType::kDate, millis); }
  static Value Vertex(VertexId id) {
    return Value(ValueType::kVertex, static_cast<int64_t>(id));
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  bool AsBool() const { return i_ != 0; }
  int64_t AsInt() const { return i_; }
  double AsDouble() const {
    return type_ == ValueType::kDouble ? d_ : static_cast<double>(i_);
  }
  const std::string& AsString() const { return s_; }
  VertexId AsVertex() const { return static_cast<VertexId>(i_); }

  // Total order used by OrderBy and comparisons in tests: nulls first, then
  // by type, then by value.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;
  std::string ToString() const;

 private:
  Value(ValueType t, int64_t i) : type_(t), i_(i) {}

  ValueType type_;
  union {
    int64_t i_;
    double d_;
  };
  std::string s_;
};

// A typed column of singletons. All rows share type(); the physical storage
// is one contiguous vector chosen by the type. This is the building block of
// the f-Block and of the columnar property store.
//
// String columns have two physical representations:
//   * owned   — a std::vector<std::string> (results, ad-hoc intermediates);
//   * dict    — a std::vector<uint32_t> of codes into a shared StringDict
//               (base property columns and everything gathered from them).
// Dict columns decode transparently through GetString/GetValue. Appending a
// string that is not in the (immutable) dictionary decays the column to the
// owned representation — see DecayToOwned().
class ValueVector {
 public:
  ValueVector() : type_(ValueType::kNull) {}
  explicit ValueVector(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const {
    if (type_ == ValueType::kString) {
      return dict_ != nullptr ? codes_.size() : strings_.size();
    }
    if (type_ == ValueType::kDouble) return doubles_.size();
    return ints_.size();
  }
  bool empty() const { return size() == 0; }

  void Reserve(size_t n);
  void Clear();
  void Resize(size_t n);

  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v);
  void AppendVertex(VertexId v) { ints_.push_back(static_cast<int64_t>(v)); }
  void AppendValue(const Value& v);
  // Appends the zero placeholder for this type (0 / 0.0 / ""), identical to
  // AppendValue(Value::Null()) but without boxing.
  void AppendZero() {
    if (type_ == ValueType::kString) {
      if (dict_ != nullptr) {
        codes_.push_back(0);  // code 0 always decodes to ""
      } else {
        strings_.emplace_back();
      }
    } else if (type_ == ValueType::kDouble) {
      doubles_.push_back(0.0);
    } else {
      ints_.push_back(0);
    }
  }
  // Appends rows [begin, end) of `other` (same type) to this column.
  void AppendRange(const ValueVector& other, size_t begin, size_t end);
  // Appends row `i` of `other` (same type), preserving dict codes when both
  // sides share the dictionary.
  void AppendFrom(const ValueVector& other, size_t i);

  int64_t GetInt(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const {
    return dict_ != nullptr ? dict_->Get(codes_[i]) : strings_[i];
  }
  VertexId GetVertex(size_t i) const {
    return static_cast<VertexId>(ints_[i]);
  }
  Value GetValue(size_t i) const;

  void SetInt(size_t i, int64_t v) { ints_[i] = v; }
  void SetDouble(size_t i, double v) { doubles_[i] = v; }
  void SetString(size_t i, std::string v);
  void SetValue(size_t i, const Value& v);

  // --- dictionary-encoded string columns ---
  // Puts this (empty, kString) column in dict mode: rows are uint32 codes
  // into `dict`, which must outlive the column and stay immutable while
  // the column reads through it.
  void InitDict(const StringDict* dict);
  bool dict_encoded() const { return dict_ != nullptr; }
  const StringDict* dict() const { return dict_; }
  uint32_t GetCode(size_t i) const { return codes_[i]; }
  void SetCode(size_t i, uint32_t code) { codes_[i] = code; }
  void AppendCode(uint32_t code) { codes_.push_back(code); }
  // Converts a dict column to the owned representation (decoding every
  // row). Called when a value outside the dictionary must be stored (e.g.
  // an MVCC overlay string written after bulk load).
  void DecayToOwned();

  // Raw access used by vectorized kernels and the pointer-based join.
  const int64_t* ints_data() const { return ints_.data(); }
  const double* doubles_data() const { return doubles_.data(); }
  const uint32_t* codes_data() const { return codes_.data(); }

  // Approximate heap footprint in bytes; used for the intermediate-result
  // accounting behind Table 2.
  size_t MemoryBytes() const;

 private:
  ValueType type_;
  std::vector<int64_t> ints_;  // bool / int64 / date / vertex
  std::vector<double> doubles_;
  std::vector<std::string> strings_;    // owned strings (dict_ == nullptr)
  std::vector<uint32_t> codes_;         // dict codes (dict_ != nullptr)
  const StringDict* dict_ = nullptr;
};

}  // namespace ges

#endif  // GES_COMMON_VALUE_H_
