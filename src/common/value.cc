#include "common/value.h"

#include <cassert>
#include <functional>

namespace ges {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kDate:
      return "DATE";
    case ValueType::kVertex:
      return "VERTEX";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (type_ != other.type_) {
    // Numeric cross-type comparison: every int-physical type (int64, date,
    // bool, vertex) and double compare by value — a DATE column filtered
    // against an integer literal must behave numerically. Other mixed-type
    // pairs order by type tag so the order stays total.
    bool num_a = IsIntegerPhysical(type_) || type_ == ValueType::kDouble;
    bool num_b =
        IsIntegerPhysical(other.type_) || other.type_ == ValueType::kDouble;
    if (num_a && num_b) {
      if (type_ != ValueType::kDouble && other.type_ != ValueType::kDouble) {
        if (i_ < other.i_) return -1;
        if (i_ > other.i_) return 1;
        return 0;
      }
      double a = AsDouble();
      double b = other.AsDouble();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    return type_ < other.type_ ? -1 : 1;
  }
  switch (type_) {
    case ValueType::kNull:
      return 0;
    case ValueType::kDouble:
      if (d_ < other.d_) return -1;
      if (d_ > other.d_) return 1;
      return 0;
    case ValueType::kString:
      return s_.compare(other.s_) < 0 ? -1 : (s_ == other.s_ ? 0 : 1);
    default:
      if (i_ < other.i_) return -1;
      if (i_ > other.i_) return 1;
      return 0;
  }
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(type_) * 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case ValueType::kNull:
      return h;
    case ValueType::kDouble:
      return h ^ std::hash<double>()(d_);
    case ValueType::kString:
      return h ^ std::hash<std::string>()(s_);
    default:
      return h ^ std::hash<int64_t>()(i_);
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return i_ ? "true" : "false";
    case ValueType::kInt64:
    case ValueType::kDate:
      return std::to_string(i_);
    case ValueType::kDouble:
      return std::to_string(d_);
    case ValueType::kString:
      return s_;
    case ValueType::kVertex: {
      std::string out = "v";
      out += std::to_string(i_);
      return out;
    }
  }
  return "?";
}

void ValueVector::Reserve(size_t n) {
  if (type_ == ValueType::kString) {
    if (dict_ != nullptr) {
      codes_.reserve(n);
    } else {
      strings_.reserve(n);
    }
  } else if (type_ == ValueType::kDouble) {
    doubles_.reserve(n);
  } else {
    ints_.reserve(n);
  }
}

void ValueVector::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  codes_.clear();
}

void ValueVector::Resize(size_t n) {
  if (type_ == ValueType::kString) {
    // Dict columns grow with code 0, which decodes to "".
    if (dict_ != nullptr) {
      codes_.resize(n);
    } else {
      strings_.resize(n);
    }
  } else if (type_ == ValueType::kDouble) {
    doubles_.resize(n);
  } else {
    ints_.resize(n);
  }
}

void ValueVector::InitDict(const StringDict* dict) {
  assert(type_ == ValueType::kString && empty());
  dict_ = dict;
}

void ValueVector::DecayToOwned() {
  if (dict_ == nullptr) return;
  strings_.reserve(codes_.size());
  for (uint32_t code : codes_) strings_.push_back(dict_->Get(code));
  codes_.clear();
  codes_.shrink_to_fit();
  dict_ = nullptr;
}

void ValueVector::AppendString(std::string v) {
  if (dict_ != nullptr) {
    uint32_t code = dict_->Find(v);
    if (code != StringDict::kInvalidCode) {
      codes_.push_back(code);
      return;
    }
    DecayToOwned();
  }
  strings_.push_back(std::move(v));
}

void ValueVector::SetString(size_t i, std::string v) {
  if (dict_ != nullptr) {
    uint32_t code = dict_->Find(v);
    if (code != StringDict::kInvalidCode) {
      codes_[i] = code;
      return;
    }
    DecayToOwned();
  }
  strings_[i] = std::move(v);
}

void ValueVector::AppendValue(const Value& v) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case ValueType::kString:
      AppendString(v.AsString());
      break;
    default:
      ints_.push_back(v.AsInt());
      break;
  }
}

void ValueVector::AppendRange(const ValueVector& other, size_t begin,
                              size_t end) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                      other.doubles_.begin() + end);
      break;
    case ValueType::kString:
      if (dict_ != nullptr && other.dict_ == dict_) {
        codes_.insert(codes_.end(), other.codes_.begin() + begin,
                      other.codes_.begin() + end);
      } else if (other.dict_ != nullptr) {
        // Different (or no) dictionary on this side: append decoded.
        for (size_t i = begin; i < end; ++i) {
          AppendString(other.dict_->Get(other.codes_[i]));
        }
      } else {
        if (dict_ != nullptr) DecayToOwned();
        strings_.insert(strings_.end(), other.strings_.begin() + begin,
                        other.strings_.begin() + end);
      }
      break;
    default:
      ints_.insert(ints_.end(), other.ints_.begin() + begin,
                   other.ints_.begin() + end);
      break;
  }
}

void ValueVector::AppendFrom(const ValueVector& other, size_t i) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.push_back(other.doubles_[i]);
      break;
    case ValueType::kString:
      if (dict_ != nullptr && other.dict_ == dict_) {
        codes_.push_back(other.codes_[i]);
      } else {
        AppendString(other.GetString(i));
      }
      break;
    default:
      ints_.push_back(other.ints_[i]);
      break;
  }
}

Value ValueVector::GetValue(size_t i) const {
  switch (type_) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      return Value::Bool(ints_[i] != 0);
    case ValueType::kInt64:
      return Value::Int(ints_[i]);
    case ValueType::kDouble:
      return Value::Double(doubles_[i]);
    case ValueType::kString:
      return Value::String(GetString(i));
    case ValueType::kDate:
      return Value::Date(ints_[i]);
    case ValueType::kVertex:
      return Value::Vertex(static_cast<VertexId>(ints_[i]));
  }
  return Value::Null();
}

void ValueVector::SetValue(size_t i, const Value& v) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_[i] = v.AsDouble();
      break;
    case ValueType::kString:
      SetString(i, v.AsString());
      break;
    default:
      ints_[i] = v.AsInt();
      break;
  }
}

size_t ValueVector::MemoryBytes() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 codes_.capacity() * sizeof(uint32_t);
  // The dictionary itself is shared, graph-owned state; it is accounted
  // once by Graph::MemoryBytes, not per column.
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) + s.capacity();
  }
  bytes += (strings_.capacity() - strings_.size()) * sizeof(std::string);
  return bytes;
}

}  // namespace ges
