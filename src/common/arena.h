// Bump-pointer memory pool used by the copy-on-write version manager.
//
// The paper (Section 5, "Concurrency Control") pairs the copy-on-write
// strategy with a memory pool so that frequent snapshot allocation does not
// hit the OS allocator. Arena hands out aligned chunks from large slabs and
// releases everything at once.
#ifndef GES_COMMON_ARENA_H_
#define GES_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/memory_budget.h"

namespace ges {

class Arena {
 public:
  // `slab_bytes` is the granularity of allocations requested from the OS.
  explicit Arena(size_t slab_bytes = 1 << 20);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (power of two). Never
  // returns nullptr; allocation failure aborts.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Releases all slabs. Invalidates every pointer previously returned.
  void Reset();

  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t bytes_reserved() const { return bytes_reserved_; }

  // Attaches a per-query MemoryBudget charged on slab growth (resource
  // governor, DESIGN.md §15). Only growth after the attach is charged;
  // Reset(), destruction, or SetBudget(nullptr) return the charged bytes.
  // The budget must stay alive until one of those happens — so only
  // query-scoped arenas may be attached, never the long-lived per-worker
  // scratch arenas the scheduler reuses across queries.
  void SetBudget(MemoryBudget* budget);

 private:
  void AddSlab(size_t min_bytes);

  const size_t slab_bytes_;
  std::vector<std::unique_ptr<uint8_t[]>> slabs_;
  uint8_t* cursor_ = nullptr;
  uint8_t* limit_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  MemoryBudget* budget_ = nullptr;
  size_t budget_charged_ = 0;
};

// Minimal STL-compatible allocator over an Arena: allocation bumps the
// arena cursor, deallocation is a no-op (the arena frees in bulk on
// Reset). Used for per-worker scratch containers on operator hot paths —
// repeated clear()/refill cycles then never touch the global allocator.
// Containers using it must not outlive the arena's next Reset.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

// Arena with internal locking, shareable by concurrent writers.
class ConcurrentArena {
 public:
  explicit ConcurrentArena(size_t slab_bytes = 1 << 20)
      : arena_(slab_bytes) {}

  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    std::lock_guard<std::mutex> lock(mu_);
    return arena_.Allocate(bytes, align);
  }

  size_t bytes_allocated() const {
    std::lock_guard<std::mutex> lock(mu_);
    return arena_.bytes_allocated();
  }

 private:
  mutable std::mutex mu_;
  Arena arena_;
};

}  // namespace ges

#endif  // GES_COMMON_ARENA_H_
