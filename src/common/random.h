// Deterministic random number generation for datagen and workloads.
#ifndef GES_COMMON_RANDOM_H_
#define GES_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace ges {

// SplitMix64: tiny, fast, high-quality deterministic generator. Every
// consumer (datagen, parameter curation, driver scheduling) derives its own
// stream from a seed so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

// Zipf-distributed sampler over [0, n). Used to give the synthetic social
// network the skewed degree distributions (few hubs, long tail) that drive
// the intermediate-result blowup the paper measures.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta) : n_(n), theta_(theta) {
    cdf_.reserve(n);
    double sum = 0;
    for (size_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    size_t lo = 0;
    size_t hi = n_;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < n_ ? lo : n_ - 1;
  }

 private:
  size_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace ges

#endif  // GES_COMMON_RANDOM_H_
