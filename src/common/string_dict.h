// Per-graph string dictionary (dictionary encoding for string columns).
//
// Every distinct string property value is interned once; columns then store
// dense uint32_t codes instead of owned std::string payloads. Equality and
// IN filters compare codes (one integer compare instead of a byte-wise
// string compare per row); ordering comparisons decode through Get(),
// which is a plain array index.
//
// Concurrency contract: Intern() is only called while the graph is being
// bulk-loaded (single-threaded, before Graph::FinalizeBulk) — after that
// the dictionary is immutable and concurrent readers need no
// synchronization. Post-finalize writes (MV2PL property overlays) keep
// their strings boxed in Values and never touch the dictionary.
#ifndef GES_COMMON_STRING_DICT_H_
#define GES_COMMON_STRING_DICT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ges {

class StringDict {
 public:
  // Returned by Find() when the string was never interned.
  static constexpr uint32_t kInvalidCode = UINT32_MAX;

  // Code 0 is always the empty string, so zero-initialized rows (the
  // null/default placeholder of columnar storage) decode to "".
  StringDict() { Intern(std::string_view()); }

  // Returns the code of `s`, interning it if new.
  uint32_t Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    uint32_t code = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    // The deque never relocates elements, so the view stays valid.
    index_.emplace(std::string_view(strings_.back()), code);
    return code;
  }

  // Lookup without interning; kInvalidCode if absent.
  uint32_t Find(std::string_view s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kInvalidCode : it->second;
  }

  const std::string& Get(uint32_t code) const { return strings_[code]; }

  size_t size() const { return strings_.size(); }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const std::string& s : strings_) {
      bytes += sizeof(std::string) + s.capacity();
    }
    // Index entries: view + code + bucket overhead (approximate).
    bytes += index_.size() *
             (sizeof(std::string_view) + sizeof(uint32_t) + 2 * sizeof(void*));
    return bytes;
  }

 private:
  std::deque<std::string> strings_;  // code -> string; stable addresses
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace ges

#endif  // GES_COMMON_STRING_DICT_H_
