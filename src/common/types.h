// Core identifier and enum types shared across the GES reproduction.
#ifndef GES_COMMON_TYPES_H_
#define GES_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace ges {

// Internal dense vertex identifier. Vertices of all labels share one id
// space; the catalog maps (label, external id) <-> VertexId.
using VertexId = uint64_t;

// Label of a vertex (PERSON, POST, ...) or an edge (KNOWS, LIKES, ...).
using LabelId = uint16_t;

// Property key identifier, scoped to the catalog.
using PropertyId = uint16_t;

// Monotonically increasing transaction/snapshot version (MV2PL).
using Version = uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr PropertyId kInvalidProperty =
    std::numeric_limits<PropertyId>::max();

// Traversal direction of an adjacency list. The storage keys adjacency
// metadata by (srcLabel, edgeLabel, dstLabel, direction), per Section 5 of
// the paper.
enum class Direction : uint8_t { kOut = 0, kIn = 1, kBoth = 2 };

inline const char* DirectionName(Direction d) {
  switch (d) {
    case Direction::kOut:
      return "OUT";
    case Direction::kIn:
      return "IN";
    case Direction::kBoth:
      return "BOTH";
  }
  return "?";
}

}  // namespace ges

#endif  // GES_COMMON_TYPES_H_
