#include "common/crc32c.h"

#include <array>

namespace ges {

namespace {

// Reflected CRC-32C lookup table, generated once at startup.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ges
