// Lightweight error propagation without exceptions.
#ifndef GES_COMMON_STATUS_H_
#define GES_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ges {

// A Status is either OK or carries an error message. Functions that can fail
// return Status (or StatusOr-like out-parameters); exceptions are not used.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }
  static Status InvalidArgument(std::string message) {
    return Error("invalid argument: " + std::move(message));
  }
  static Status NotFound(std::string message) {
    return Error("not found: " + std::move(message));
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace ges

#define GES_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::ges::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // GES_COMMON_STATUS_H_
