// Resource governor accounting primitives (DESIGN.md §15).
//
// A MemoryBudget is the per-query half of the governor: the engine charges
// it at its allocation choke points (operator-state growth, flatten output,
// expansion scratch, WCOJ probe buffers, arena slabs) and the budget trips
// a sticky `exceeded` flag once the per-query limit is crossed. Charging
// NEVER throws and never blocks — detection happens at the engine's
// existing cooperative checkpoints (ThrowIfInterrupted), so an over-budget
// query unwinds through exactly the same path as a cancelled or expired
// one and releases everything it holds (operator state, snapshot pin).
//
// Every charge is mirrored into a process-wide GlobalMemoryGauge shared by
// all in-flight queries; the service reads it to drive watermark shedding
// (soft watermark: shed long queries at admission; hard watermark: shed
// everything but in-flight shorts) and exports its peak as
// governor_peak_global_bytes.
//
// Thread safety: Charge/Release are called concurrently from morsel
// workers; everything is relaxed atomics. The counters are an RSS *proxy*
// (engine intermediate state, not malloc telemetry) — the point is that
// they move monotonically with the real allocations at the choke points,
// so a limit on them bounds the real thing.
#ifndef GES_COMMON_MEMORY_BUDGET_H_
#define GES_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ges {

// Process-wide bytes gauge. One instance lives in the Server and outlives
// every query budget that points at it.
class GlobalMemoryGauge {
 public:
  void Add(size_t bytes) {
    size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  void Sub(size_t bytes) { used_.fetch_sub(bytes, std::memory_order_relaxed); }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

// Per-query memory budget. Created by the service when the query is
// admitted and attached to its QueryContext; destroyed when the response
// has been sent (the destructor returns whatever is still charged to the
// global gauge, so an exception unwind can never leak gauge bytes).
class MemoryBudget {
 public:
  // limit_bytes == 0 means unlimited: the budget still tracks usage and
  // feeds the global gauge, it just never trips.
  explicit MemoryBudget(size_t limit_bytes, GlobalMemoryGauge* global = nullptr)
      : limit_(limit_bytes), global_(global) {}
  ~MemoryBudget() { ReleaseAll(); }

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Records `bytes` of new intermediate state. Sets the sticky exceeded
  // flag when the total crosses the limit; never throws (the query keeps
  // running until its next cooperative checkpoint observes the flag).
  void Charge(size_t bytes) {
    if (bytes == 0) return;
    size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
    if (global_ != nullptr) global_->Add(bytes);
    if (limit_ != 0 && now > limit_) {
      exceeded_.store(true, std::memory_order_relaxed);
    }
  }

  // Returns `bytes` previously charged (state shrank or was handed off to
  // an accounting site that re-charges it). The exceeded flag stays set:
  // once a query has crossed its limit it dies at the next checkpoint even
  // if a release briefly dips it back under.
  void Release(size_t bytes) {
    if (bytes == 0) return;
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (global_ != nullptr) global_->Sub(bytes);
  }

  // Returns every outstanding byte to the global gauge. Called by the
  // destructor; safe to call repeatedly.
  void ReleaseAll() {
    size_t u = used_.exchange(0, std::memory_order_relaxed);
    if (global_ != nullptr && u != 0) global_->Sub(u);
  }

  bool exceeded() const { return exceeded_.load(std::memory_order_relaxed); }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }

 private:
  const size_t limit_;
  GlobalMemoryGauge* const global_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<bool> exceeded_{false};
};

// Delta-accounting helper for one owner's view of a gauge that moves both
// ways (e.g. an operator pipeline whose state bytes grow and shrink op to
// op). Not thread-safe — one instance per owning site; concurrent sites
// each keep their own tracker against the same budget.
class BudgetTracker {
 public:
  explicit BudgetTracker(MemoryBudget* budget) : budget_(budget) {}

  // Re-points the tracked total at `now_bytes`, charging or releasing the
  // difference.
  void Update(size_t now_bytes) {
    if (budget_ == nullptr) return;
    if (now_bytes > charged_) {
      budget_->Charge(now_bytes - charged_);
    } else {
      budget_->Release(charged_ - now_bytes);
    }
    charged_ = now_bytes;
  }

  size_t charged() const { return charged_; }

 private:
  MemoryBudget* budget_;
  size_t charged_ = 0;
};

}  // namespace ges

#endif  // GES_COMMON_MEMORY_BUDGET_H_
