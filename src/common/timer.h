// Monotonic wall-clock timing helpers for operator profiling and benches.
#ifndef GES_COMMON_TIMER_H_
#define GES_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ges {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ges

#endif  // GES_COMMON_TIMER_H_
