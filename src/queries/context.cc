#include <cassert>

#include "queries/ldbc.h"

namespace ges {

LdbcContext LdbcContext::Resolve(const Graph& graph, const SnbSchema& s) {
  LdbcContext c;
  c.s = s;
  auto rel = [&](LabelId from, LabelId edge, LabelId to, Direction d) {
    RelationId r = graph.FindRelation(from, edge, to, d);
    assert(r != kInvalidRelation && "relation not registered");
    return r;
  };
  using D = Direction;
  c.knows = rel(s.person, s.knows, s.person, D::kOut);
  c.post_has_creator = rel(s.post, s.has_creator, s.person, D::kOut);
  c.comment_has_creator = rel(s.comment, s.has_creator, s.person, D::kOut);
  c.person_posts = rel(s.person, s.has_creator, s.post, D::kIn);
  c.person_comments = rel(s.person, s.has_creator, s.comment, D::kIn);
  c.person_likes_post = rel(s.person, s.likes, s.post, D::kOut);
  c.person_likes_comment = rel(s.person, s.likes, s.comment, D::kOut);
  c.post_likers = rel(s.post, s.likes, s.person, D::kIn);
  c.comment_likers = rel(s.comment, s.likes, s.person, D::kIn);
  c.comment_reply_of_post = rel(s.comment, s.reply_of, s.post, D::kOut);
  c.comment_reply_of_comment = rel(s.comment, s.reply_of, s.comment, D::kOut);
  c.post_replies = rel(s.post, s.reply_of, s.comment, D::kIn);
  c.comment_replies = rel(s.comment, s.reply_of, s.comment, D::kIn);
  c.post_tags = rel(s.post, s.has_tag, s.tag, D::kOut);
  c.comment_tags = rel(s.comment, s.has_tag, s.tag, D::kOut);
  c.tag_posts = rel(s.tag, s.has_tag, s.post, D::kIn);
  c.tag_comments = rel(s.tag, s.has_tag, s.comment, D::kIn);
  c.person_interests = rel(s.person, s.has_interest, s.tag, D::kOut);
  c.forum_members = rel(s.forum, s.has_member, s.person, D::kOut);
  c.person_member_of = rel(s.person, s.has_member, s.forum, D::kIn);
  c.forum_moderator = rel(s.forum, s.has_moderator, s.person, D::kOut);
  c.forum_posts = rel(s.forum, s.container_of, s.post, D::kOut);
  c.post_forum = rel(s.post, s.container_of, s.forum, D::kIn);
  c.person_city = rel(s.person, s.is_located_in, s.place, D::kOut);
  c.post_country = rel(s.post, s.is_located_in, s.place, D::kOut);
  c.comment_country = rel(s.comment, s.is_located_in, s.place, D::kOut);
  c.city_country = rel(s.place, s.is_part_of, s.place, D::kOut);
  c.tag_class = rel(s.tag, s.has_type, s.tagclass, D::kOut);
  c.person_study_at = rel(s.person, s.study_at, s.organisation, D::kOut);
  c.person_work_at = rel(s.person, s.work_at, s.organisation, D::kOut);
  c.org_place = rel(s.organisation, s.is_located_in, s.place, D::kOut);

  c.p_id = s.id;
  c.p_name = s.name;
  c.p_title = s.title;
  c.p_creation = s.creation_date;
  c.p_content = s.content;
  c.p_length = s.length;
  return c;
}

ParamGen::ParamGen(const Graph* graph, const SnbData* data, uint64_t seed)
    : graph_(graph),
      data_(data),
      rng_(seed),
      next_person_(data->next_person_ext),
      next_post_(data->next_post_ext),
      next_comment_(data->next_comment_ext),
      next_forum_(data->next_forum_ext) {}

LdbcParams ParamGen::Next() {
  std::lock_guard<std::mutex> lock(mu_);
  const SnbData& d = *data_;
  GraphView view(graph_);
  LdbcParams p;
  // Start persons are drawn from the bulk population (as in the LDBC
  // parameter curation, which picks persons with stable neighborhoods).
  p.person = static_cast<int64_t>(rng_.Uniform(d.persons.size()));
  do {
    p.person2 = static_cast<int64_t>(rng_.Uniform(d.persons.size()));
  } while (p.person2 == p.person && d.persons.size() > 1);
  p.post = static_cast<int64_t>(rng_.Uniform(d.posts.size()));

  // A first name that actually occurs.
  VertexId someone = d.persons[rng_.Uniform(d.persons.size())];
  p.first_name = view.Property(someone, d.schema.first_name).AsString();

  // Two distinct countries.
  size_t cx = rng_.Uniform(d.num_countries);
  size_t cy = (cx + 1 + rng_.Uniform(d.num_countries - 1)) % d.num_countries;
  p.country_x =
      view.Property(d.places[d.num_cities + cx], d.schema.name).AsString();
  p.country_y =
      view.Property(d.places[d.num_cities + cy], d.schema.name).AsString();

  p.tag_name = view
                   .Property(d.tags[rng_.Uniform(d.tags.size())],
                             d.schema.name)
                   .AsString();
  p.tag_class = view
                    .Property(d.tagclasses[rng_.Uniform(d.tagclasses.size())],
                              d.schema.name)
                    .AsString();

  int64_t window = kSimEnd - kSimStart;
  p.min_date = kSimStart + static_cast<int64_t>(rng_.NextDouble() * 0.5 *
                                                static_cast<double>(window));
  p.duration_days = 30 + static_cast<int64_t>(rng_.Uniform(70));
  p.max_date = kSimStart + static_cast<int64_t>(
                               (0.6 + 0.4 * rng_.NextDouble()) *
                               static_cast<double>(window));
  p.work_year = 2000 + static_cast<int64_t>(rng_.Uniform(13));
  p.month = 1 + static_cast<int64_t>(rng_.Uniform(12));
  return p;
}

}  // namespace ges
