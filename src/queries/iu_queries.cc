// Update queries IU1-IU8, implemented as MV2PL write transactions.
#include <string>

#include "queries/ldbc.h"

namespace ges {

namespace {

// Returns a random existing bulk vertex from `pool`.
VertexId Pick(Rng& rng, const std::vector<VertexId>& pool) {
  return pool[rng.Uniform(pool.size())];
}

int64_t NowStamp(Rng& rng) {
  return kSimEnd + static_cast<int64_t>(rng.Uniform(365)) * kMillisPerDay;
}

// IU1: add a person (location, interests, university, company).
Version AddPerson(const LdbcContext& c, Graph* g, ParamGen* params,
                  Rng& rng) {
  const SnbData& d = params->data();
  VertexId city = d.places[rng.Uniform(d.num_cities)];
  VertexId univ = d.organisations[rng.Uniform(d.num_universities)];
  VertexId tag = Pick(rng, d.tags);
  auto txn = g->BeginWrite({city, univ, tag});
  int64_t ext = params->NextPersonExt();
  VertexId person = txn->CreateVertex(
      c.s.person, ext,
      {{c.p_id, Value::Int(ext)},
       {c.s.first_name, Value::String("New")},
       {c.s.last_name, Value::String("Person" + std::to_string(ext))},
       {c.s.gender, Value::String(rng.Bernoulli(0.5) ? "male" : "female")},
       {c.s.birthday, Value::Date(0)},
       {c.s.birthday_month, Value::Int(1 + static_cast<int64_t>(rng.Uniform(12)))},
       {c.s.creation_date, Value::Date(NowStamp(rng))}});
  txn->AddEdge(c.s.is_located_in, person, city);
  txn->AddEdge(c.s.has_interest, person, tag);
  txn->AddEdge(c.s.study_at, person, univ, 2012);
  return txn->Commit();
}

// IU2/IU3: add a like to a post / comment.
Version AddLike(const LdbcContext& c, Graph* g, ParamGen* params, Rng& rng,
                bool post) {
  const SnbData& d = params->data();
  VertexId person = Pick(rng, d.persons);
  VertexId msg = post ? Pick(rng, d.posts) : Pick(rng, d.comments);
  auto txn = g->BeginWrite({person, msg});
  txn->AddEdge(c.s.likes, person, msg, NowStamp(rng));
  return txn->Commit();
}

// IU4: add a forum with a moderator and a tag.
Version AddForum(const LdbcContext& c, Graph* g, ParamGen* params, Rng& rng) {
  const SnbData& d = params->data();
  VertexId moderator = Pick(rng, d.persons);
  VertexId tag = Pick(rng, d.tags);
  auto txn = g->BeginWrite({moderator, tag});
  int64_t ext = params->NextForumExt();
  VertexId forum = txn->CreateVertex(
      c.s.forum, ext,
      {{c.p_id, Value::Int(ext)},
       {c.p_title, Value::String("Forum_" + std::to_string(ext))},
       {c.s.creation_date, Value::Date(NowStamp(rng))}});
  txn->AddEdge(c.s.has_moderator, forum, moderator);
  txn->AddEdge(c.s.has_tag, forum, tag);
  return txn->Commit();
}

// IU5: add a forum membership.
Version AddMembership(const LdbcContext& c, Graph* g, ParamGen* params,
                      Rng& rng) {
  const SnbData& d = params->data();
  VertexId forum = Pick(rng, d.forums);
  VertexId person = Pick(rng, d.persons);
  auto txn = g->BeginWrite({forum, person});
  txn->AddEdge(c.s.has_member, forum, person, NowStamp(rng));
  return txn->Commit();
}

// IU6: add a post.
Version AddPost(const LdbcContext& c, Graph* g, ParamGen* params, Rng& rng) {
  const SnbData& d = params->data();
  VertexId creator = Pick(rng, d.persons);
  VertexId forum = Pick(rng, d.forums);
  VertexId country = d.places[d.num_cities + rng.Uniform(d.num_countries)];
  VertexId tag = Pick(rng, d.tags);
  auto txn = g->BeginWrite({creator, forum, country, tag});
  int64_t ext = params->NextPostExt();
  VertexId post = txn->CreateVertex(
      c.s.post, ext,
      {{c.p_id, Value::Int(ext)},
       {c.s.creation_date, Value::Date(NowStamp(rng))},
       {c.p_content, Value::String("new post content")},
       {c.p_length, Value::Int(42)}});
  txn->AddEdge(c.s.has_creator, post, creator);
  txn->AddEdge(c.s.container_of, forum, post);
  txn->AddEdge(c.s.is_located_in, post, country);
  txn->AddEdge(c.s.has_tag, post, tag);
  return txn->Commit();
}

// IU7: add a comment replying to a post.
Version AddComment(const LdbcContext& c, Graph* g, ParamGen* params,
                   Rng& rng) {
  const SnbData& d = params->data();
  VertexId creator = Pick(rng, d.persons);
  VertexId parent = Pick(rng, d.posts);
  VertexId country = d.places[d.num_cities + rng.Uniform(d.num_countries)];
  auto txn = g->BeginWrite({creator, parent, country});
  int64_t ext = params->NextCommentExt();
  VertexId comment = txn->CreateVertex(
      c.s.comment, ext,
      {{c.p_id, Value::Int(ext)},
       {c.s.creation_date, Value::Date(NowStamp(rng))},
       {c.p_content, Value::String("new reply")},
       {c.p_length, Value::Int(17)}});
  txn->AddEdge(c.s.has_creator, comment, creator);
  txn->AddEdge(c.s.reply_of, comment, parent);
  txn->AddEdge(c.s.is_located_in, comment, country);
  return txn->Commit();
}

// IU8: add a friendship (symmetric).
Version AddFriendship(const LdbcContext& c, Graph* g, ParamGen* params,
                      Rng& rng) {
  const SnbData& d = params->data();
  VertexId a = Pick(rng, d.persons);
  VertexId b = Pick(rng, d.persons);
  while (b == a && d.persons.size() > 1) b = Pick(rng, d.persons);
  auto txn = g->BeginWrite({a, b});
  int64_t stamp = NowStamp(rng);
  txn->AddEdge(c.s.knows, a, b, stamp);
  txn->AddEdge(c.s.knows, b, a, stamp);
  return txn->Commit();
}

}  // namespace

Version RunIU(int k, const LdbcContext& ctx, Graph* graph, ParamGen* params,
              uint64_t seed) {
  Rng rng(seed);
  switch (k) {
    case 1:
      return AddPerson(ctx, graph, params, rng);
    case 2:
      return AddLike(ctx, graph, params, rng, /*post=*/true);
    case 3:
      return AddLike(ctx, graph, params, rng, /*post=*/false);
    case 4:
      return AddForum(ctx, graph, params, rng);
    case 5:
      return AddMembership(ctx, graph, params, rng);
    case 6:
      return AddPost(ctx, graph, params, rng);
    case 7:
      return AddComment(ctx, graph, params, rng);
    case 8:
      return AddFriendship(ctx, graph, params, rng);
    default:
      return 0;
  }
}

}  // namespace ges
