// Interactive short read queries IS1-IS7.
#include "queries/ldbc.h"

namespace ges {

namespace {

using E = Expr;

// IS1: person profile.
Plan IS1(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IS1");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .GetProperty("p", c.s.first_name, ValueType::kString, "firstName")
      .GetProperty("p", c.s.last_name, ValueType::kString, "lastName")
      .GetProperty("p", c.s.birthday, ValueType::kDate, "birthday")
      .GetProperty("p", c.s.gender, ValueType::kString, "gender")
      .GetProperty("p", c.s.browser_used, ValueType::kString, "browser")
      .GetProperty("p", c.s.location_ip, ValueType::kString, "locationIP")
      .GetProperty("p", c.s.creation_date, ValueType::kDate, "creationDate")
      .Expand("p", "city", {c.person_city})
      .GetProperty("city", c.p_id, ValueType::kInt64, "cityId")
      .Output({"firstName", "lastName", "birthday", "gender", "browser",
               "locationIP", "creationDate", "cityId"});
  return b.Build();
}

// IS2: the person's 10 most recent messages.
Plan IS2(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IS2");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "msg", {c.person_posts, c.person_comments})
      .GetProperty("msg", c.p_creation, ValueType::kDate, "m_date")
      .GetProperty("msg", c.p_id, ValueType::kInt64, "m_id")
      .GetProperty("msg", c.p_content, ValueType::kString, "m_content")
      .OrderBy({{"m_date", false}, {"m_id", false}}, 10)
      .Output({"m_id", "m_content", "m_date"});
  return b.Build();
}

// IS3: all friends with the friendship creation date.
Plan IS3(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IS3");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .ExpandEx("p", "f", {c.knows}, 1, 1, false, false, "", "since")
      .GetProperty("f", c.p_id, ValueType::kInt64, "f_id")
      .GetProperty("f", c.s.first_name, ValueType::kString, "firstName")
      .GetProperty("f", c.s.last_name, ValueType::kString, "lastName")
      .OrderBy({{"since", false}, {"f_id", true}})
      .Output({"f_id", "firstName", "lastName", "since"});
  return b.Build();
}

// IS4: content and creation date of a message.
Plan IS4(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IS4");
  b.NodeByIdSeek("m", c.s.post, p.post)
      .GetProperty("m", c.p_creation, ValueType::kDate, "creationDate")
      .GetProperty("m", c.p_content, ValueType::kString, "content")
      .Output({"creationDate", "content"});
  return b.Build();
}

// IS5: creator of a message.
Plan IS5(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IS5");
  b.NodeByIdSeek("m", c.s.post, p.post)
      .Expand("m", "creator", {c.post_has_creator})
      .GetProperty("creator", c.p_id, ValueType::kInt64, "p_id")
      .GetProperty("creator", c.s.first_name, ValueType::kString, "firstName")
      .GetProperty("creator", c.s.last_name, ValueType::kString, "lastName")
      .Output({"p_id", "firstName", "lastName"});
  return b.Build();
}

// IS6: forum containing a post, with its moderator.
Plan IS6(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IS6");
  b.NodeByIdSeek("m", c.s.post, p.post)
      .Expand("m", "forum", {c.post_forum})
      .GetProperty("forum", c.p_id, ValueType::kInt64, "forumId")
      .GetProperty("forum", c.p_title, ValueType::kString, "forumTitle")
      .Expand("forum", "mod", {c.forum_moderator})
      .GetProperty("mod", c.p_id, ValueType::kInt64, "modId")
      .Output({"forumId", "forumTitle", "modId"});
  return b.Build();
}

// IS7: replies to a message with their creators.
Plan IS7(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IS7");
  b.NodeByIdSeek("m", c.s.post, p.post)
      .Expand("m", "reply", {c.post_replies})
      .GetProperty("reply", c.p_id, ValueType::kInt64, "r_id")
      .GetProperty("reply", c.p_creation, ValueType::kDate, "r_date")
      .GetProperty("reply", c.p_content, ValueType::kString, "r_content")
      .Expand("reply", "author", {c.comment_has_creator})
      .GetProperty("author", c.p_id, ValueType::kInt64, "a_id")
      .OrderBy({{"r_date", false}, {"a_id", true}})
      .Output({"r_id", "r_content", "r_date", "a_id"});
  return b.Build();
}

}  // namespace

Plan BuildIS(int k, const LdbcContext& ctx, const LdbcParams& p) {
  switch (k) {
    case 1:
      return IS1(ctx, p);
    case 2:
      return IS2(ctx, p);
    case 3:
      return IS3(ctx, p);
    case 4:
      return IS4(ctx, p);
    case 5:
      return IS5(ctx, p);
    case 6:
      return IS6(ctx, p);
    case 7:
      return IS7(ctx, p);
    default:
      return Plan{};
  }
}

}  // namespace ges
