// Interactive complex read queries IC1-IC14 (LDBC SNB Interactive v1,
// adapted to the synthetic schema; see README for the documented
// simplifications).
#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "queries/ldbc.h"

namespace ges {

namespace {

using E = Expr;

Value Str(const std::string& s) { return Value::String(s); }
Value I(int64_t v) { return Value::Int(v); }

// IC1: friends (1..3 hops) with a given first name; profile sorted by
// distance, last name, id.
Plan IC1(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC1");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .ExpandEx("p", "f", {c.knows}, 1, 3, /*distinct=*/true,
                /*exclude_start=*/true, "dist", "")
      .GetProperty("f", c.s.first_name, ValueType::kString, "f_first")
      .Filter(E::Eq(E::Col("f_first"), E::Lit(Str(p.first_name))))
      .GetProperty("f", c.s.last_name, ValueType::kString, "f_last")
      .GetProperty("f", c.p_id, ValueType::kInt64, "f_id")
      .GetProperty("f", c.s.birthday, ValueType::kDate, "f_birthday")
      .OrderBy({{"dist", true}, {"f_last", true}, {"f_id", true}}, 20)
      .Output({"f_id", "f_last", "dist", "f_birthday"});
  return b.Build();
}

// IC2: recent messages (<= maxDate) of direct friends; newest 20.
Plan IC2(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC2");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows})
      .Expand("f", "msg", {c.person_posts, c.person_comments})
      .GetProperty("msg", c.p_creation, ValueType::kDate, "m_date")
      .Filter(E::Le(E::Col("m_date"), E::Lit(Value::Date(p.max_date))))
      .GetProperty("msg", c.p_id, ValueType::kInt64, "m_id")
      .GetProperty("f", c.p_id, ValueType::kInt64, "f_id")
      .OrderBy({{"m_date", false}, {"m_id", true}}, 20)
      .Output({"f_id", "m_id", "m_date"});
  return b.Build();
}

// IC3: friends (1..2 hops) whose messages in a window were located in
// countries X and Y; counts per friend, both > 0. The country check makes
// the pattern cyclic in spirit (two correlated counts), so the factorized
// engine de-factors here — matching the paper's Table 2 note on IC3.
Plan IC3(const LdbcContext& c, const LdbcParams& p) {
  int64_t end = p.min_date + p.duration_days * kMillisPerDay;
  PlanBuilder b("IC3");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows}, 1, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .Expand("f", "msg", {c.person_posts, c.person_comments})
      .GetProperty("msg", c.p_creation, ValueType::kDate, "m_date")
      .Filter(E::And(E::Ge(E::Col("m_date"), E::Lit(Value::Date(p.min_date))),
                     E::Lt(E::Col("m_date"), E::Lit(Value::Date(end)))))
      .Expand("msg", "country", {c.post_country, c.comment_country})
      .GetProperty("country", c.p_name, ValueType::kString, "c_name")
      .Filter(E::Or(E::Eq(E::Col("c_name"), E::Lit(Str(p.country_x))),
                    E::Eq(E::Col("c_name"), E::Lit(Str(p.country_y)))))
      .GetProperty("f", c.p_id, ValueType::kInt64, "f_id")
      .Project({}, {ComputedColumn{
                        E::Mul(E::Lit(I(1)),
                               E::Eq(E::Col("c_name"), E::Lit(Str(p.country_x)))),
                        "is_x", ValueType::kInt64},
                    ComputedColumn{
                        E::Mul(E::Lit(I(1)),
                               E::Eq(E::Col("c_name"), E::Lit(Str(p.country_y)))),
                        "is_y", ValueType::kInt64}})
      .Aggregate({"f_id"}, {AggSpec{AggSpec::kSum, "is_x", "cnt_x"},
                            AggSpec{AggSpec::kSum, "is_y", "cnt_y"}})
      .Filter(E::And(E::Gt(E::Col("cnt_x"), E::Lit(I(0))),
                     E::Gt(E::Col("cnt_y"), E::Lit(I(0)))))
      .Project({{"f_id", "f_id"}, {"cnt_x", "cnt_x"}, {"cnt_y", "cnt_y"}},
               {ComputedColumn{E::Add(E::Col("cnt_x"), E::Col("cnt_y")),
                               "total", ValueType::kInt64}})
      .OrderBy({{"total", false}, {"f_id", true}}, 20)
      .Output({"f_id", "cnt_x", "cnt_y", "total"});
  return b.Build();
}

// IC4: tags of posts created by direct friends inside a window; counts.
Plan IC4(const LdbcContext& c, const LdbcParams& p) {
  int64_t end = p.min_date + p.duration_days * kMillisPerDay;
  PlanBuilder b("IC4");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows})
      .Expand("f", "post", {c.person_posts})
      .GetProperty("post", c.p_creation, ValueType::kDate, "p_date")
      .Filter(E::And(E::Ge(E::Col("p_date"), E::Lit(Value::Date(p.min_date))),
                     E::Lt(E::Col("p_date"), E::Lit(Value::Date(end)))))
      .Expand("post", "tag", {c.post_tags})
      .GetProperty("tag", c.p_name, ValueType::kString, "t_name")
      .Aggregate({"t_name"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .OrderBy({{"cnt", false}, {"t_name", true}}, 10)
      .Output({"t_name", "cnt"});
  return b.Build();
}

// IC5: forums that friends (1..2 hops) joined after minDate; rank forums by
// the number of posts in them (reached through the joining friends). This
// is the paper's showcase for AggregateProjectTop fusion.
Plan IC5(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC5");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows}, 1, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .ExpandEx("f", "forum", {c.person_member_of}, 1, 1, false, false, "",
                "joinDate")
      .Filter(E::Gt(E::Col("joinDate"), E::Lit(Value::Date(p.min_date))))
      .Expand("forum", "post", {c.forum_posts})
      .GetProperty("forum", c.p_id, ValueType::kInt64, "forum_id")
      .Aggregate({"forum_id"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .OrderBy({{"cnt", false}, {"forum_id", true}}, 20)
      .Output({"forum_id", "cnt"});
  return b.Build();
}

// IC6: tags co-occurring with a given tag on posts of friends (1..2 hops).
Plan IC6(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC6");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows}, 1, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .Expand("f", "post", {c.person_posts})
      .Expand("post", "t1", {c.post_tags})
      .GetProperty("t1", c.p_name, ValueType::kString, "t1_name")
      .Filter(E::Eq(E::Col("t1_name"), E::Lit(Str(p.tag_name))))
      .Expand("post", "t2", {c.post_tags})
      .GetProperty("t2", c.p_name, ValueType::kString, "t2_name")
      .Filter(E::Ne(E::Col("t2_name"), E::Lit(Str(p.tag_name))))
      .Aggregate({"t2_name"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .OrderBy({{"cnt", false}, {"t2_name", true}}, 10)
      .Output({"t2_name", "cnt"});
  return b.Build();
}

// IC7: most recent likers of the person's messages.
Plan IC7(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC7");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "msg", {c.person_posts, c.person_comments})
      .ExpandEx("msg", "liker", {c.post_likers, c.comment_likers}, 1, 1,
                false, false, "", "likeDate")
      .GetProperty("liker", c.p_id, ValueType::kInt64, "liker_id")
      .GetProperty("msg", c.p_id, ValueType::kInt64, "m_id")
      .OrderBy({{"likeDate", false}, {"liker_id", true}}, 20)
      .Output({"liker_id", "likeDate", "m_id"});
  return b.Build();
}

// IC8: most recent replies to the person's messages.
Plan IC8(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC8");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "msg", {c.person_posts, c.person_comments})
      .Expand("msg", "reply", {c.post_replies, c.comment_replies})
      .GetProperty("reply", c.p_creation, ValueType::kDate, "r_date")
      .GetProperty("reply", c.p_id, ValueType::kInt64, "r_id")
      .OrderBy({{"r_date", false}, {"r_id", true}}, 20)
      .Output({"r_id", "r_date"});
  return b.Build();
}

// IC9: recent messages (< maxDate) by friends within 2 hops; newest 20.
// The paper's running example (Figure 8) has this shape.
Plan IC9(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC9");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows}, 1, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .Expand("f", "msg", {c.person_posts, c.person_comments})
      .GetProperty("msg", c.p_creation, ValueType::kDate, "m_date")
      .Filter(E::Lt(E::Col("m_date"), E::Lit(Value::Date(p.max_date))))
      .GetProperty("msg", c.p_id, ValueType::kInt64, "m_id")
      .GetProperty("f", c.p_id, ValueType::kInt64, "f_id")
      .OrderBy({{"m_date", false}, {"m_id", true}}, 20)
      .Output({"f_id", "m_id", "m_date"});
  return b.Build();
}

// IC10: friend recommendation — friends-of-friends born in the given month,
// scored by how many of their posts carry one of the start person's
// interest tags. The interest check is a cyclic edge test (ExpandInto), so
// execution reverts to flat — matching the paper's note on IC10.
Plan IC10(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC10");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "fof", {c.knows}, 2, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .GetProperty("fof", c.s.birthday_month, ValueType::kInt64, "b_month")
      .Filter(E::Eq(E::Col("b_month"), E::Lit(I(p.month))))
      .Expand("fof", "post", {c.person_posts})
      .Expand("post", "tag", {c.post_tags})
      .ExpandInto("p", "tag", {c.person_interests}, /*anti=*/false)
      .GetProperty("fof", c.p_id, ValueType::kInt64, "fof_id")
      .Aggregate({"fof_id"}, {AggSpec{AggSpec::kCount, "", "common"}})
      .OrderBy({{"common", false}, {"fof_id", true}}, 10)
      .Output({"fof_id", "common"});
  return b.Build();
}

// IC11: friends (1..2 hops) who worked at a company in country X starting
// before the given year.
Plan IC11(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC11");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows}, 1, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .ExpandEx("f", "org", {c.person_work_at}, 1, 1, false, false, "",
                "workFrom")
      .Filter(E::Lt(E::Col("workFrom"), E::Lit(I(p.work_year))))
      .Expand("org", "country", {c.org_place})
      .GetProperty("country", c.p_name, ValueType::kString, "c_name")
      .Filter(E::Eq(E::Col("c_name"), E::Lit(Str(p.country_x))))
      .GetProperty("org", c.p_name, ValueType::kString, "o_name")
      .GetProperty("f", c.p_id, ValueType::kInt64, "f_id")
      .OrderBy({{"workFrom", true}, {"f_id", true}, {"o_name", false}}, 10)
      .Output({"f_id", "o_name", "workFrom"});
  return b.Build();
}

// IC12: expert search — direct friends whose comments reply to posts tagged
// with a tag of the given tag class; count distinct comments per friend.
Plan IC12(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC12");
  b.NodeByIdSeek("p", c.s.person, p.person)
      .Expand("p", "f", {c.knows})
      .Expand("f", "cmt", {c.person_comments})
      .Expand("cmt", "post", {c.comment_reply_of_post})
      .Expand("post", "tag", {c.post_tags})
      .Expand("tag", "cls", {c.tag_class})
      .GetProperty("cls", c.p_name, ValueType::kString, "cls_name")
      .Filter(E::Eq(E::Col("cls_name"), E::Lit(Str(p.tag_class))))
      .GetProperty("f", c.p_id, ValueType::kInt64, "f_id")
      .Aggregate({"f_id"}, {AggSpec{AggSpec::kCountDistinct, "cmt", "cnt"}})
      .OrderBy({{"cnt", false}, {"f_id", true}}, 20)
      .Output({"f_id", "cnt"});
  return b.Build();
}

// --- IC13 / IC14: path queries, implemented as stored procedures (the
// paper treats traversal operators the same way; their intermediate data is
// not factorizable and is excluded from Table 2 accounting). ---

// Unweighted BFS distance between two persons (-1 if unreachable).
int BfsDistance(const GraphView& view, RelationId knows, VertexId a,
                VertexId b, std::vector<VertexId>* parents_out = nullptr) {
  if (a == b) return 0;
  std::unordered_map<VertexId, VertexId> parent;
  std::deque<std::pair<VertexId, int>> queue;
  queue.emplace_back(a, 0);
  parent[a] = a;
  AdjScratch adj;
  while (!queue.empty()) {
    auto [v, d] = queue.front();
    queue.pop_front();
    AdjSpan span = view.Neighbors(knows, v, &adj);
    for (uint32_t i = 0; i < span.size; ++i) {
      VertexId w = span.ids[i];
      if (w == kInvalidVertex || parent.count(w) != 0) continue;
      parent[w] = v;
      if (w == b) {
        if (parents_out != nullptr) {
          for (VertexId x = b; x != a; x = parent[x]) {
            parents_out->push_back(x);
          }
          parents_out->push_back(a);
          std::reverse(parents_out->begin(), parents_out->end());
        }
        return d + 1;
      }
      queue.emplace_back(w, d + 1);
    }
  }
  return -1;
}

Plan IC13(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC13");
  LdbcContext ctx = c;
  int64_t p1 = p.person;
  int64_t p2 = p.person2;
  b.Procedure([ctx, p1, p2](const GraphView& view) {
    Schema s;
    s.Add("length", ValueType::kInt64);
    FlatBlock out(s);
    VertexId a = view.FindByExtId(ctx.s.person, p1);
    VertexId bb = view.FindByExtId(ctx.s.person, p2);
    int d = (a == kInvalidVertex || bb == kInvalidVertex)
                ? -1
                : BfsDistance(view, ctx.knows, a, bb);
    out.AppendRow({Value::Int(d)});
    return out;
  });
  b.Output({"length"});
  return b.Build();
}

// IC14: all shortest paths between two persons (capped), each weighted by
// the reply interactions along the path: a comment replying to a post adds
// 1.0, a comment replying to a comment adds 0.5, counted in both directions
// for every adjacent person pair.
Plan IC14(const LdbcContext& c, const LdbcParams& p) {
  PlanBuilder b("IC14");
  LdbcContext ctx = c;
  int64_t p1 = p.person;
  int64_t p2 = p.person2;
  b.Procedure([ctx, p1, p2](const GraphView& view) {
    constexpr size_t kMaxPaths = 100;
    Schema s;
    s.Add("weight", ValueType::kDouble);
    s.Add("length", ValueType::kInt64);
    FlatBlock out(s);
    VertexId src = view.FindByExtId(ctx.s.person, p1);
    VertexId dst = view.FindByExtId(ctx.s.person, p2);
    if (src == kInvalidVertex || dst == kInvalidVertex) return out;

    // BFS layering with multi-parent tracking.
    std::unordered_map<VertexId, int> dist;
    std::unordered_map<VertexId, std::vector<VertexId>> preds;
    std::deque<VertexId> queue{src};
    dist[src] = 0;
    int found_at = -1;
    AdjScratch adj;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      int d = dist[v];
      if (found_at >= 0 && d >= found_at) break;
      AdjSpan span = view.Neighbors(ctx.knows, v, &adj);
      for (uint32_t i = 0; i < span.size; ++i) {
        VertexId w = span.ids[i];
        if (w == kInvalidVertex) continue;
        auto it = dist.find(w);
        if (it == dist.end()) {
          dist[w] = d + 1;
          preds[w].push_back(v);
          if (w == dst) found_at = d + 1;
          queue.push_back(w);
        } else if (it->second == d + 1) {
          preds[w].push_back(v);
        }
      }
    }
    if (dist.count(dst) == 0) return out;

    // Enumerate shortest paths (DFS over preds), capped.
    std::vector<std::vector<VertexId>> paths;
    std::vector<VertexId> cur{dst};
    std::function<void(VertexId)> walk = [&](VertexId v) {
      if (paths.size() >= kMaxPaths) return;
      if (v == src) {
        std::vector<VertexId> path(cur.rbegin(), cur.rend());
        paths.push_back(std::move(path));
        return;
      }
      for (VertexId u : preds[v]) {
        cur.push_back(u);
        walk(u);
        cur.pop_back();
      }
    };
    walk(dst);

    // Interaction weight of an adjacent pair, cached. Three nesting levels
    // of live spans (comments -> reply chain -> creator), so each level
    // gets its own decode scratch; `rp` is drained before `rc` is fetched,
    // so the middle level shares one.
    std::unordered_map<uint64_t, double> pair_weight;
    AdjScratch adj_comments, adj_reply, adj_creator;
    auto weight_of = [&](VertexId a, VertexId bb) {
      uint64_t key = a < bb ? (a << 32 | bb) : (bb << 32 | a);
      auto it = pair_weight.find(key);
      if (it != pair_weight.end()) return it->second;
      double w = 0;
      for (auto [x, y] : {std::pair<VertexId, VertexId>{a, bb},
                          std::pair<VertexId, VertexId>{bb, a}}) {
        AdjSpan comments =
            view.Neighbors(ctx.person_comments, x, &adj_comments);
        for (uint32_t i = 0; i < comments.size; ++i) {
          VertexId cmt = comments.ids[i];
          if (cmt == kInvalidVertex) continue;
          AdjSpan rp =
              view.Neighbors(ctx.comment_reply_of_post, cmt, &adj_reply);
          for (uint32_t j = 0; j < rp.size; ++j) {
            if (rp.ids[j] == kInvalidVertex) continue;
            AdjSpan creator =
                view.Neighbors(ctx.post_has_creator, rp.ids[j], &adj_creator);
            for (uint32_t k = 0; k < creator.size; ++k) {
              if (creator.ids[k] == y) w += 1.0;
            }
          }
          AdjSpan rc =
              view.Neighbors(ctx.comment_reply_of_comment, cmt, &adj_reply);
          for (uint32_t j = 0; j < rc.size; ++j) {
            if (rc.ids[j] == kInvalidVertex) continue;
            AdjSpan creator = view.Neighbors(ctx.comment_has_creator,
                                             rc.ids[j], &adj_creator);
            for (uint32_t k = 0; k < creator.size; ++k) {
              if (creator.ids[k] == y) w += 0.5;
            }
          }
        }
      }
      pair_weight[key] = w;
      return w;
    };

    std::vector<std::pair<double, int64_t>> rows;
    for (const auto& path : paths) {
      double w = 0;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        w += weight_of(path[i], path[i + 1]);
      }
      rows.emplace_back(w, static_cast<int64_t>(path.size() - 1));
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.first > b.first;
    });
    for (const auto& [w, len] : rows) {
      out.AppendRow({Value::Double(w), Value::Int(len)});
    }
    return out;
  });
  b.Output({"weight", "length"});
  return b.Build();
}

}  // namespace

Plan BuildIC(int k, const LdbcContext& ctx, const LdbcParams& p) {
  switch (k) {
    case 1:
      return IC1(ctx, p);
    case 2:
      return IC2(ctx, p);
    case 3:
      return IC3(ctx, p);
    case 4:
      return IC4(ctx, p);
    case 5:
      return IC5(ctx, p);
    case 6:
      return IC6(ctx, p);
    case 7:
      return IC7(ctx, p);
    case 8:
      return IC8(ctx, p);
    case 9:
      return IC9(ctx, p);
    case 10:
      return IC10(ctx, p);
    case 11:
      return IC11(ctx, p);
    case 12:
      return IC12(ctx, p);
    case 13:
      return IC13(ctx, p);
    case 14:
      return IC14(ctx, p);
    default:
      return Plan{};
  }
}

}  // namespace ges
