// BI-flavored cyclic/analytic read queries (the WCOJ workload tier,
// DESIGN.md §12). Unlike the point-anchored IC/IS reads these are global
// pattern censuses whose bound plans close cycles with semi-join
// (ExpandInto) edges; in kFactorizedFused the optimizer rewrites each
// Expand ; ExpandInto chain into a worst-case-optimal IntersectExpand.
//
// KNOWS is symmetric and loop-free, so the census multiplicities below are
// exact: BI1 counts each undirected triangle 6x (ordered), BI2 each diamond
// 4x (2 chord orientations x 2 pair orders), BI3 each quadrilateral 8x
// (4 rotations x 2 directions).
#include "queries/ldbc.h"

namespace ges {

namespace {

using E = Expr;

// BI1: triangle census over KNOWS — ordered closed triangles (a, b, t).
// Distinctness of the three vertices is implied by the edges.
Plan BI1(const LdbcContext& c) {
  PlanBuilder b("BI1");
  b.ScanByLabel("a", c.s.person)
      .Expand("a", "b", {c.knows})
      .Expand("b", "t", {c.knows})
      .ExpandInto("t", "a", {c.knows}, /*anti=*/false)
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "triangles"}})
      .Output({"triangles"});
  return b.Build();
}

// BI2: diamond census — ordered pairs (c, d) of distinct common neighbors
// of each ordered KNOWS edge (a, b): two triangles glued on chord (a, b).
Plan BI2(const LdbcContext& c) {
  PlanBuilder b("BI2");
  b.ScanByLabel("a", c.s.person)
      .Expand("a", "b", {c.knows})
      .Expand("b", "c", {c.knows})
      .ExpandInto("c", "a", {c.knows}, /*anti=*/false)
      .Expand("b", "d", {c.knows})
      .ExpandInto("d", "a", {c.knows}, /*anti=*/false)
      .Filter(E::Ne(E::Col("c"), E::Col("d")))
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "diamonds"}})
      .Output({"diamonds"});
  return b.Build();
}

// BI3: 4-cycle census — ordered quadrilaterals a-b-c-d-a with the two
// diagonals forced distinct (a != c, b != d); edge distinctness follows.
Plan BI3(const LdbcContext& c) {
  PlanBuilder b("BI3");
  b.ScanByLabel("a", c.s.person)
      .Expand("a", "b", {c.knows})
      .Expand("b", "c", {c.knows})
      .Filter(E::Ne(E::Col("a"), E::Col("c")))
      .Expand("c", "d", {c.knows})
      .ExpandInto("d", "a", {c.knows}, /*anti=*/false)
      .Filter(E::Ne(E::Col("b"), E::Col("d")))
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "four_cycles"}})
      .Output({"four_cycles"});
  return b.Build();
}

}  // namespace

Plan BuildBI(int k, const LdbcContext& ctx, const LdbcParams& p) {
  (void)p;  // BI censuses are global: no point parameters yet
  switch (k) {
    case 1:
      return BI1(ctx);
    case 2:
      return BI2(ctx);
    case 3:
      return BI3(ctx);
    default:
      return Plan{};
  }
}

}  // namespace ges
