// The LDBC SNB Interactive workload: 14 complex reads (IC), 7 short reads
// (IS) and 8 updates (IU), implemented against the GES plan API.
//
// Read queries are engine-neutral Plans (interpreted by every ExecMode);
// update queries are MV2PL write transactions. Query semantics follow the
// LDBC SNB Interactive v1 specification adapted to the synthetic schema;
// deliberate simplifications are listed in DESIGN.md / README.
#ifndef GES_QUERIES_LDBC_H_
#define GES_QUERIES_LDBC_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/snb_generator.h"
#include "executor/plan.h"
#include "storage/graph.h"

namespace ges {

// All adjacency tables the workload traverses, resolved once per graph.
// Naming: the table is indexed by the *first* entity; e.g. person_posts maps
// a PERSON to the POSTs that HAS_CREATOR-point at it (IN direction).
struct LdbcContext {
  SnbSchema s;

  RelationId knows;                    // PERSON -KNOWS-> PERSON
  RelationId post_has_creator;         // POST -> PERSON
  RelationId comment_has_creator;      // COMMENT -> PERSON
  RelationId person_posts;             // PERSON <- POST
  RelationId person_comments;          // PERSON <- COMMENT
  RelationId person_likes_post;        // PERSON -> POST
  RelationId person_likes_comment;     // PERSON -> COMMENT
  RelationId post_likers;              // POST <- PERSON
  RelationId comment_likers;           // COMMENT <- PERSON
  RelationId comment_reply_of_post;    // COMMENT -> POST
  RelationId comment_reply_of_comment; // COMMENT -> COMMENT
  RelationId post_replies;             // POST <- COMMENT
  RelationId comment_replies;          // COMMENT <- COMMENT
  RelationId post_tags;                // POST -> TAG
  RelationId comment_tags;             // COMMENT -> TAG
  RelationId tag_posts;                // TAG <- POST
  RelationId tag_comments;             // TAG <- COMMENT
  RelationId person_interests;         // PERSON -> TAG
  RelationId forum_members;            // FORUM -> PERSON
  RelationId person_member_of;         // PERSON <- FORUM
  RelationId forum_moderator;          // FORUM -> PERSON
  RelationId forum_posts;              // FORUM -> POST
  RelationId post_forum;               // POST <- FORUM
  RelationId person_city;              // PERSON -> PLACE
  RelationId post_country;             // POST -> PLACE
  RelationId comment_country;          // COMMENT -> PLACE
  RelationId city_country;             // PLACE -> PLACE (is_part_of)
  RelationId tag_class;                // TAG -> TAGCLASS
  RelationId person_study_at;          // PERSON -> ORGANISATION
  RelationId person_work_at;           // PERSON -> ORGANISATION
  RelationId org_place;                // ORGANISATION -> PLACE

  PropertyId p_id, p_name, p_title, p_creation, p_content, p_length;

  static LdbcContext Resolve(const Graph& graph, const SnbSchema& schema);
};

// ---------------------------------------------------------------------------
// Parameters: drawn deterministically from the generated data, mirroring the
// LDBC parameter-curation step (start persons with non-trivial
// neighborhoods, dates inside the simulation window, names/tags that occur).
// ---------------------------------------------------------------------------

struct LdbcParams {
  int64_t person;        // start person (external id)
  int64_t person2;       // second person (IC13/IC14)
  int64_t post;          // a post (IS4-7)
  std::string first_name;  // IC1
  std::string country_x;   // IC3
  std::string country_y;   // IC3
  std::string tag_name;    // IC6
  std::string tag_class;   // IC12
  int64_t max_date;      // upper bound date params
  int64_t min_date;      // lower bound / window start
  int64_t duration_days; // window length
  int64_t work_year;     // IC11
  int64_t month;         // IC10 (1..12)
};

class ParamGen {
 public:
  ParamGen(const Graph* graph, const SnbData* data, uint64_t seed);

  // Fresh parameters for a query instance (all fields filled).
  // Thread-safe: the driver shares one generator across worker threads.
  LdbcParams Next();

  // --- update-stream counters (shared across driver threads) ---
  int64_t NextPersonExt() { return next_person_.fetch_add(1); }
  int64_t NextPostExt() { return next_post_.fetch_add(1); }
  int64_t NextCommentExt() { return next_comment_.fetch_add(1); }
  int64_t NextForumExt() { return next_forum_.fetch_add(1); }

  const SnbData& data() const { return *data_; }

 private:
  const Graph* graph_;
  const SnbData* data_;
  std::mutex mu_;
  Rng rng_;
  std::atomic<int64_t> next_person_;
  std::atomic<int64_t> next_post_;
  std::atomic<int64_t> next_comment_;
  std::atomic<int64_t> next_forum_;
};

// ---------------------------------------------------------------------------
// Query builders. BuildIC(k, ...) with k in [1, 14]; BuildIS(k, ...) with k
// in [1, 7]. Each returns a fresh Plan for the given parameters.
// ---------------------------------------------------------------------------

Plan BuildIC(int k, const LdbcContext& ctx, const LdbcParams& p);
Plan BuildIS(int k, const LdbcContext& ctx, const LdbcParams& p);
// BI-flavored cyclic censuses (k in [1, 3]): BI1 triangle census, BI2
// diamond census, BI3 4-cycle census — the analytic workload tier whose
// plans the optimizer rewrites to IntersectExpand (DESIGN.md §12).
Plan BuildBI(int k, const LdbcContext& ctx, const LdbcParams& p);

// Runs update query IU k (1..8) as an MV2PL transaction against `graph`.
// Returns the commit version.
Version RunIU(int k, const LdbcContext& ctx, Graph* graph, ParamGen* params,
              uint64_t seed);

}  // namespace ges

#endif  // GES_QUERIES_LDBC_H_
