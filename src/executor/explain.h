// Plan inspection: EXPLAIN-style pretty printing and static validation.
#ifndef GES_EXECUTOR_EXPLAIN_H_
#define GES_EXECUTOR_EXPLAIN_H_

#include <string>

#include "common/status.h"
#include "executor/executor.h"
#include "executor/plan.h"

namespace ges {

// Human-readable rendering of the pipeline, one operator per line, with the
// columns each operator introduces. Example:
//
//   1. NodeByIdSeek label=0 id=5            -> [p]
//   2. Expand p -[rel 0]-> f (1..2 hops)    -> [f]
//   3. GetProperty f.#4                      -> [f_name]
//   4. TopK keys=[f_name asc] limit=10
std::string ExplainPlan(const Plan& plan);

// EXPLAIN ANALYZE: the plan annotated with the execution stats of a
// completed run — per-operator rows, time, intermediate footprint, and the
// intersection counters (probes/gallops/skipped) of galloping operators.
// When the run had collect_stats=false only the query-wide totals line is
// emitted after the plan.
std::string ExplainAnalyze(const Plan& plan, const QueryResult& result);

// Statically validates the pipeline: the first operator must be a leaf
// (seek/scan/procedure), every consumed column must have been produced by
// an earlier operator, sort/aggregate/output references must resolve, and
// no column may be produced twice. Returns the first violation found.
Status ValidatePlan(const Plan& plan);

}  // namespace ges

#endif  // GES_EXECUTOR_EXPLAIN_H_
