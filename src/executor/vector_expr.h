// Compiled, type-specialized column kernels for scalar expressions — the
// vectorized execution path of Section 4.3/5. A BoundExpr-equivalent is
// compiled once against the physical columns of an f-Block; evaluation then
// runs tight per-type loops over raw column arrays and a shared byte
// selection vector instead of walking the expression tree per row and
// boxing every cell into a Value.
//
// Kernel shapes:
//  * comparisons / IN / StartsWith — branch-free (or skip-aware) loops over
//    int64/double arrays, dictionary codes, or decoded strings;
//  * AND — in-place selection-vector refinement, conjuncts ordered by
//    ascending estimated selectivity (cheapest-to-kill-rows first);
//  * OR — disjuncts ordered by descending estimated selectivity; rows
//    already decided true are skipped for later disjuncts;
//  * arithmetic — typed column math with the interpreter's promotion rules.
//
// Compilation is total-or-nothing: any construct without a kernel returns
// nullptr and the caller falls back to the interpreted BoundExpr, which
// stays the semantic oracle (see tests/kernels_test.cc). Kernel results
// match BoundExpr::Eval bit-for-bit, including the Value union semantics
// (AsBool/AsInt of a double reinterprets bits, AsString of a non-string is
// "") and NaN-tolerant double comparisons.
#ifndef GES_EXECUTOR_VECTOR_EXPR_H_
#define GES_EXECUTOR_VECTOR_EXPR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "executor/expression.h"
#include "executor/schema.h"

namespace ges {

namespace vexpr {
struct BoolNode;
struct ValNode;
}  // namespace vexpr

class CompiledExpr {
 public:
  // Compiles `expr` as a predicate. `columns[i]` is the physical vector of
  // schema column i, or nullptr when no materialized vector exists (the
  // leading column of a lazy block) — referencing such a column fails
  // compilation. Returns nullptr when the expression cannot be kernelized.
  // `column_stats`, when provided, replaces the static per-op selectivity
  // guesses with NDV/min-max estimates for the AND/OR conjunct ordering.
  static std::unique_ptr<CompiledExpr> CompileFilter(
      const Expr& expr, const Schema& schema,
      const std::vector<const ValueVector*>& columns,
      const std::unordered_map<std::string, ColumnStat>* column_stats =
          nullptr);

  // Compiles `expr` as a value producer (computed projections).
  static std::unique_ptr<CompiledExpr> CompileProject(
      const Expr& expr, const Schema& schema,
      const std::vector<const ValueVector*>& columns);

  ~CompiledExpr();

  // Selection-vector refinement over rows [lo, hi): sel[r] &= predicate(r).
  // Rows already 0 may be skipped. Safe to call concurrently on disjoint
  // ranges (morsel parallelism): all scratch state is call-local.
  void EvalFilter(uint8_t* sel, size_t lo, size_t hi) const;

  // Appends the expression value of rows [lo, hi) to `out`, converting to
  // out->type() with the same semantics as AppendValue(Eval(row)). When the
  // expression is a plain reference to a dict-encoded string column and
  // `out` is a fresh string column, `out` adopts the dictionary and the
  // append is a code copy.
  void EvalProject(size_t lo, size_t hi, ValueVector* out) const;

  // Static type of the compiled value expression (CompileProject only).
  ValueType result_type() const;

 private:
  CompiledExpr(std::unique_ptr<vexpr::BoolNode> b,
               std::unique_ptr<vexpr::ValNode> v);

  std::unique_ptr<vexpr::BoolNode> bool_root_;
  std::unique_ptr<vexpr::ValNode> val_root_;
};

}  // namespace ges

#endif  // GES_EXECUTOR_VECTOR_EXPR_H_
