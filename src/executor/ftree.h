// f-Tree: the practical factorized representation (Section 4.2).
//
// Each node manages an f-Block and a selection vector; each edge (u, v)
// carries an index vector I_(u,v) where I[i] = [j, k) states that row i of
// u's block is in Cartesian product with rows [j, k) of v's block. The node
// schemas partition the schema of the encoded relation.
//
// Two key algorithms live here:
//  * TupleEnumerator — constant-delay enumeration (Lemma 4.4): an odometer
//    over the preorder node list whose per-tuple work is O(|schema|),
//    independent of the number of encoded tuples.
//  * tuple-count DP — counts encoded tuples (optionally per row of a chosen
//    node) without enumerating them, via down/up products with prefix sums.
//    This is what lets COUNT(*) aggregations run "directly" on the
//    factorized form.
#ifndef GES_EXECUTOR_FTREE_H_
#define GES_EXECUTOR_FTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "executor/fblock.h"
#include "executor/flatblock.h"
#include "runtime/query_context.h"

namespace ges {

struct IndexRange {
  uint64_t begin = 0;
  uint64_t end = 0;  // exclusive
};

class FTreeNode {
 public:
  FBlock block;
  // Selection vector: sel[i] == 0 marks row i invalid. Empty means
  // "all valid" (common case, avoids allocation).
  std::vector<uint8_t> sel;
  FTreeNode* parent = nullptr;
  std::vector<std::unique_ptr<FTreeNode>> children;
  // Index vector of the edge (parent, this): one range per parent row.
  std::vector<IndexRange> parent_index;

  bool RowValid(uint64_t row) const { return sel.empty() || sel[row] != 0; }
  // Lazily materializes the selection vector for writing.
  std::vector<uint8_t>& MutableSel() {
    if (sel.empty()) sel.assign(block.NumRows(), 1);
    return sel;
  }
};

class FTree {
 public:
  FTree() = default;
  FTree(const FTree&) = delete;
  FTree& operator=(const FTree&) = delete;

  bool empty() const { return root_ == nullptr; }
  FTreeNode* root() { return root_.get(); }
  const FTreeNode* root() const { return root_.get(); }

  // Creates the root node (tree must be empty).
  FTreeNode* CreateRoot();
  // Adds a child under `parent`; the caller fills child->block and
  // child->parent_index, then calls RegisterColumns(child).
  FTreeNode* AddChild(FTreeNode* parent);

  // Records ownership of every column of `node`'s block schema. Column
  // names are unique tree-wide (disjoint schema partition property).
  void RegisterColumns(FTreeNode* node);

  // Node owning column `name`, or nullptr.
  FTreeNode* NodeOfColumn(const std::string& name) const;

  // Preorder node list (parents before children).
  std::vector<const FTreeNode*> Preorder() const;
  std::vector<FTreeNode*> PreorderMutable();

  // Total number of valid encoded tuples (DP; no enumeration).
  uint64_t CountTuples() const;

  // Number of valid encoded tuples that use each row of `target`
  // (multiplicity of the row across the whole tree). Size == target rows.
  std::vector<uint64_t> TupleCountsForNode(const FTreeNode* target) const;

  // Materializes the named columns of every valid tuple into `out` (whose
  // schema must match `columns`), stopping after `limit` tuples. `ctx`,
  // when set, is polled every kFlattenCheckTuples emitted tuples (de-
  // factoring can produce millions of rows; this bounds the time to notice
  // a deadline/cancel).
  void Flatten(const std::vector<std::string>& columns, FlatBlock* out,
               uint64_t limit = UINT64_MAX,
               const QueryContext* ctx = nullptr) const;

  // Morsel-parallel de-factoring (Lemma 4.4 on the shared TaskScheduler):
  // root rows are claimed in morsels; the per-root tuple counts (DP)
  // pre-size the output so every morsel emits into its own disjoint slice,
  // preserving exactly the sequential enumeration order. `max_workers`
  // bounds concurrency (the caller participates); falls back to the
  // sequential Flatten when the tree is too small to pay for the DP.
  // Appends after any rows already in `out`. `ctx` as in Flatten (each
  // morsel also polls between root rows).
  void FlattenParallel(const std::vector<std::string>& columns,
                       FlatBlock* out, int max_workers,
                       const QueryContext* ctx = nullptr) const;

  size_t MemoryBytes() const;

  std::string DebugString() const;

 private:
  friend class TupleEnumerator;

  std::unique_ptr<FTreeNode> root_;
  std::unordered_map<std::string, FTreeNode*> column_owner_;
};

// Constant-delay enumeration over an FTree. Usage:
//   TupleEnumerator e(tree);
//   while (e.Next()) { uint64_t r = e.RowOf(node); ... }
// Rows with sel == 0, rows whose leading vertex is a tombstone, and parent
// rows whose child ranges are empty are all skipped.
class TupleEnumerator {
 public:
  explicit TupleEnumerator(const FTree& tree);
  // Enumerates only the tuples rooted at root rows [root_begin, root_end)
  // (clamped to the root cardinality) — the unit of parallel de-factoring.
  TupleEnumerator(const FTree& tree, uint64_t root_begin, uint64_t root_end);

  // Advances to the next valid tuple. Returns false when exhausted.
  bool Next();

  // Current row of `node` (valid after a successful Next()).
  uint64_t RowOf(const FTreeNode* node) const {
    return cur_[index_of_.at(node)];
  }
  // Current row by preorder node index (faster; resolve once).
  uint64_t RowAt(size_t preorder_idx) const { return cur_[preorder_idx]; }
  size_t IndexOf(const FTreeNode* node) const { return index_of_.at(node); }

  const std::vector<const FTreeNode*>& nodes() const { return nodes_; }

 private:
  static constexpr uint64_t kNone = UINT64_MAX;

  // Recomputes node i's row range from its parent's current row.
  void SetRange(size_t i);
  // First valid row of node i at position >= from (within its range).
  uint64_t FindValid(size_t i, uint64_t from) const;
  // Initializes nodes [from, m) to their first valid rows, backtracking
  // into earlier nodes when a node's range has no valid row.
  bool Fill(size_t from);

  std::vector<const FTreeNode*> nodes_;  // preorder
  std::vector<size_t> parent_idx_;       // preorder index of parent
  std::unordered_map<const FTreeNode*, size_t> index_of_;
  std::vector<uint64_t> cur_;
  std::vector<uint64_t> begin_;
  std::vector<uint64_t> end_;
  uint64_t root_begin_ = 0;
  uint64_t root_end_ = UINT64_MAX;
  bool started_ = false;
  bool done_ = false;
};

}  // namespace ges

#endif  // GES_EXECUTOR_FTREE_H_
