#include "executor/plan.h"

namespace ges {

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kNodeByIdSeek:
      return "NodeByIdSeek";
    case OpType::kScanByLabel:
      return "ScanByLabel";
    case OpType::kExpand:
      return "Expand";
    case OpType::kGetProperty:
      return "GetProperty";
    case OpType::kFilter:
      return "Filter";
    case OpType::kProject:
      return "Project";
    case OpType::kOrderBy:
      return "OrderBy";
    case OpType::kAggregate:
      return "Aggregate";
    case OpType::kLimit:
      return "Limit";
    case OpType::kDistinct:
      return "Distinct";
    case OpType::kExpandInto:
      return "ExpandInto";
    case OpType::kProcedure:
      return "Procedure";
    case OpType::kExpandFiltered:
      return "ExpandFiltered";
    case OpType::kTopK:
      return "TopK";
    case OpType::kAggProjectTop:
      return "AggProjectTop";
    case OpType::kIntersectExpand:
      return "IntersectExpand";
  }
  return "?";
}

PlanBuilder& PlanBuilder::NodeByIdSeek(std::string out, LabelId label,
                                       int64_t ext_id) {
  PlanOp op;
  op.type = OpType::kNodeByIdSeek;
  op.out_column = std::move(out);
  op.label = label;
  op.seek_ext_id = ext_id;
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::NodeByIdSeekParam(std::string out, LabelId label,
                                            int param, int64_t hint) {
  NodeByIdSeek(std::move(out), label, hint);
  plan_.ops.back().seek_param = param;
  return *this;
}

PlanBuilder& PlanBuilder::ScanByLabel(std::string out, LabelId label) {
  PlanOp op;
  op.type = OpType::kScanByLabel;
  op.out_column = std::move(out);
  op.label = label;
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Expand(std::string in, std::string out,
                                 std::vector<RelationId> rels, int min_hops,
                                 int max_hops, bool distinct,
                                 bool exclude_start) {
  return ExpandEx(std::move(in), std::move(out), std::move(rels), min_hops,
                  max_hops, distinct, exclude_start, "", "");
}

PlanBuilder& PlanBuilder::ExpandEx(std::string in, std::string out,
                                   std::vector<RelationId> rels, int min_hops,
                                   int max_hops, bool distinct,
                                   bool exclude_start,
                                   std::string distance_column,
                                   std::string stamp_column) {
  PlanOp op;
  op.type = OpType::kExpand;
  op.in_column = std::move(in);
  op.out_column = std::move(out);
  op.rels = std::move(rels);
  op.min_hops = min_hops;
  op.max_hops = max_hops;
  op.distinct = distinct;
  op.exclude_start = exclude_start;
  op.distance_column = std::move(distance_column);
  op.stamp_column = std::move(stamp_column);
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::GetProperty(std::string vertex_col, PropertyId prop,
                                      ValueType type, std::string out) {
  PlanOp op;
  op.type = OpType::kGetProperty;
  op.in_column = std::move(vertex_col);
  op.out_column = std::move(out);
  op.property = prop;
  op.property_type = type;
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Filter(ExprPtr predicate) {
  PlanOp op;
  op.type = OpType::kFilter;
  op.predicate = std::move(predicate);
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Project(
    std::vector<std::pair<std::string, std::string>> sel,
    std::vector<ComputedColumn> computed) {
  PlanOp op;
  op.type = OpType::kProject;
  op.selections = std::move(sel);
  op.computed = std::move(computed);
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::OrderBy(std::vector<SortKey> keys, uint64_t limit) {
  PlanOp op;
  op.type = OpType::kOrderBy;
  op.sort_keys = std::move(keys);
  op.limit = limit;
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Aggregate(std::vector<std::string> group_by,
                                    std::vector<AggSpec> aggs) {
  PlanOp op;
  op.type = OpType::kAggregate;
  op.group_by = std::move(group_by);
  op.aggs = std::move(aggs);
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Limit(uint64_t n) {
  PlanOp op;
  op.type = OpType::kLimit;
  op.limit = n;
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Distinct() {
  PlanOp op;
  op.type = OpType::kDistinct;
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::ExpandInto(std::string a, std::string b,
                                     std::vector<RelationId> rels, bool anti) {
  PlanOp op;
  op.type = OpType::kExpandInto;
  op.in_column = std::move(a);
  op.other_column = std::move(b);
  op.rels = std::move(rels);
  op.anti = anti;
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::IntersectExpand(
    std::string in, std::string out, std::vector<RelationId> rels,
    std::vector<std::string> probe_columns,
    std::vector<std::vector<RelationId>> probe_rels) {
  PlanOp op;
  op.type = OpType::kIntersectExpand;
  op.in_column = std::move(in);
  op.out_column = std::move(out);
  op.rels = std::move(rels);
  op.probe_columns = std::move(probe_columns);
  op.probe_rels = std::move(probe_rels);
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Procedure(
    std::function<FlatBlock(const GraphView&)> fn) {
  PlanOp op;
  op.type = OpType::kProcedure;
  op.procedure = std::move(fn);
  plan_.ops.push_back(std::move(op));
  return *this;
}

PlanBuilder& PlanBuilder::Output(std::vector<std::string> columns) {
  plan_.output = std::move(columns);
  return *this;
}

}  // namespace ges
