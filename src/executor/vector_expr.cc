#include "executor/vector_expr.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/string_dict.h"
#include "executor/optimizer.h"

namespace ges {
namespace vexpr {

namespace {

// Value stores int64/double in a union; AsBool/AsInt on a double value read
// the raw bits. Kernels replicate that with an explicit bit copy.
inline int64_t UnionBits(double d) {
  int64_t i;
  std::memcpy(&i, &d, sizeof(d));
  return i;
}

inline bool IsNumeric(ValueType t) {
  return IsIntegerPhysical(t) || t == ValueType::kDouble;
}

// Comparison verdict from a three-way sign, matching BoundExpr::Eval.
inline bool CmpResult(ExprOp op, int c) {
  switch (op) {
    case ExprOp::kEq:
      return c == 0;
    case ExprOp::kNe:
      return c != 0;
    case ExprOp::kLt:
      return c < 0;
    case ExprOp::kLe:
      return c <= 0;
    case ExprOp::kGt:
      return c > 0;
    default:
      return c >= 0;
  }
}

// Mirrors op across operand swap: (k OP v) == (v FlipOp(op) k).
inline ExprOp FlipOp(ExprOp op) {
  switch (op) {
    case ExprOp::kLt:
      return ExprOp::kGt;
    case ExprOp::kLe:
      return ExprOp::kGe;
    case ExprOp::kGt:
      return ExprOp::kLt;
    case ExprOp::kGe:
      return ExprOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

// Static selectivity guess per comparison op (no table statistics yet);
// only used to order AND/OR operands, so rough is fine.
inline double CmpEst(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
      return 0.1;
    case ExprOp::kNe:
      return 0.9;
    case ExprOp::kLt:
    case ExprOp::kGt:
      return 0.4;
    default:
      return 0.6;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Value nodes: a typed sub-expression evaluated over a row range. Every node
// exposes the two views the interpreter's Value union supports — EvalI (the
// raw int64 slot: AsInt/AsBool semantics, doubles bit-reinterpreted) and
// EvalD (AsDouble: numeric promotion, 0.0 for strings/nulls).
// ---------------------------------------------------------------------------

struct ValNode {
  ValueType type = ValueType::kNull;
  virtual ~ValNode() = default;
  virtual void EvalI(size_t lo, size_t hi, int64_t* out) const = 0;
  virtual void EvalD(size_t lo, size_t hi, double* out) const = 0;
  // Non-null when this node is a plain column reference (zero-copy views).
  virtual const ValueVector* column() const { return nullptr; }
  // Non-null when this node is a constant.
  virtual const Value* constant() const { return nullptr; }
};

using ValPtr = std::unique_ptr<ValNode>;

namespace {

// p[r - lo] = union-int of row r; zero-copy for int-physical columns.
const int64_t* IView(const ValNode& n, size_t lo, size_t hi,
                     std::vector<int64_t>* storage) {
  const ValueVector* c = n.column();
  if (c != nullptr && IsIntegerPhysical(c->type())) {
    return c->ints_data() + lo;
  }
  storage->resize(hi - lo);
  n.EvalI(lo, hi, storage->data());
  return storage->data();
}

// p[r - lo] = AsDouble of row r; zero-copy for double columns.
const double* DView(const ValNode& n, size_t lo, size_t hi,
                    std::vector<double>* storage) {
  const ValueVector* c = n.column();
  if (c != nullptr && c->type() == ValueType::kDouble) {
    return c->doubles_data() + lo;
  }
  storage->resize(hi - lo);
  n.EvalD(lo, hi, storage->data());
  return storage->data();
}

struct ColumnNode final : ValNode {
  const ValueVector* col;
  explicit ColumnNode(const ValueVector* c) : col(c) { type = c->type(); }
  const ValueVector* column() const override { return col; }
  void EvalI(size_t lo, size_t hi, int64_t* out) const override {
    switch (type) {
      case ValueType::kDouble: {
        const double* d = col->doubles_data();
        for (size_t r = lo; r < hi; ++r) out[r - lo] = UnionBits(d[r]);
        break;
      }
      case ValueType::kString:
      case ValueType::kNull:
        // String/null Values carry 0 in the int slot.
        std::fill(out, out + (hi - lo), int64_t{0});
        break;
      default:
        std::memcpy(out, col->ints_data() + lo, (hi - lo) * sizeof(int64_t));
        break;
    }
  }
  void EvalD(size_t lo, size_t hi, double* out) const override {
    switch (type) {
      case ValueType::kDouble:
        std::memcpy(out, col->doubles_data() + lo,
                    (hi - lo) * sizeof(double));
        break;
      case ValueType::kString:
      case ValueType::kNull:
        std::fill(out, out + (hi - lo), 0.0);
        break;
      default: {
        const int64_t* p = col->ints_data() + lo;
        for (size_t i = 0; i < hi - lo; ++i) {
          out[i] = static_cast<double>(p[i]);
        }
        break;
      }
    }
  }
};

struct ConstNode final : ValNode {
  Value v;
  explicit ConstNode(Value val) : v(std::move(val)) { type = v.type(); }
  const Value* constant() const override { return &v; }
  void EvalI(size_t lo, size_t hi, int64_t* out) const override {
    std::fill(out, out + (hi - lo), v.AsInt());
  }
  void EvalD(size_t lo, size_t hi, double* out) const override {
    std::fill(out, out + (hi - lo), v.AsDouble());
  }
};

struct ArithNode final : ValNode {
  ValPtr a, b;
  ExprOp op;
  ArithNode(ValPtr x, ValPtr y, ExprOp o)
      : a(std::move(x)), b(std::move(y)), op(o) {
    // Interpreter promotion: double if either side is double, else int64.
    // Static types are exact (typed vectors), so this is decidable here.
    type = (a->type == ValueType::kDouble || b->type == ValueType::kDouble)
               ? ValueType::kDouble
               : ValueType::kInt64;
  }
  void EvalD(size_t lo, size_t hi, double* out) const override {
    if (type == ValueType::kDouble) {
      std::vector<double> sa, sb;
      const double* x = DView(*a, lo, hi, &sa);
      const double* y = DView(*b, lo, hi, &sb);
      size_t n = hi - lo;
      switch (op) {
        case ExprOp::kAdd:
          for (size_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
          break;
        case ExprOp::kSub:
          for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
          break;
        default:
          for (size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
          break;
      }
    } else {
      // Value::Int(x op y).AsDouble() — compute in int64, then widen.
      std::vector<int64_t> tmp(hi - lo);
      EvalI(lo, hi, tmp.data());
      for (size_t i = 0; i < hi - lo; ++i) {
        out[i] = static_cast<double>(tmp[i]);
      }
    }
  }
  void EvalI(size_t lo, size_t hi, int64_t* out) const override {
    if (type == ValueType::kDouble) {
      // AsInt of a double result reinterprets the bits.
      std::vector<double> tmp(hi - lo);
      EvalD(lo, hi, tmp.data());
      for (size_t i = 0; i < hi - lo; ++i) out[i] = UnionBits(tmp[i]);
      return;
    }
    std::vector<int64_t> sa, sb;
    const int64_t* x = IView(*a, lo, hi, &sa);
    const int64_t* y = IView(*b, lo, hi, &sb);
    size_t n = hi - lo;
    switch (op) {
      case ExprOp::kAdd:
        for (size_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
        break;
      case ExprOp::kSub:
        for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
        break;
      default:
        for (size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
        break;
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Boolean nodes. Two evaluation entry points:
//  * Refine — sel[r - base] &= predicate(r): in-place selection-vector
//    refinement, the hot path for filters. Already-deselected rows may be
//    skipped by expensive kernels.
//  * Mask — m[i - lo] = predicate(row i): full mask, used where a result
//    per row is needed (OR operands, NOT, bool-valued projections). Rows
//    flagged in `done` (may be null) are ignored by the caller and may be
//    skipped; implementations must write every row when done == nullptr.
// ---------------------------------------------------------------------------

struct BoolNode {
  // Estimated fraction of rows passing; orders AND/OR operand evaluation.
  double est = 0.5;
  virtual ~BoolNode() = default;
  virtual void Mask(uint8_t* m, size_t lo, size_t hi,
                    const uint8_t* done) const = 0;
  virtual void Refine(uint8_t* s, size_t base, size_t lo, size_t hi) const {
    std::vector<uint8_t> done(hi - lo);
    for (size_t r = lo; r < hi; ++r) {
      done[r - lo] = s[r - base] == 0 ? 1 : 0;
    }
    std::vector<uint8_t> m(hi - lo);
    Mask(m.data(), lo, hi, done.data());
    for (size_t r = lo; r < hi; ++r) {
      if (done[r - lo] == 0) s[r - base] &= m[r - lo];
    }
  }
};

using BoolPtr = std::unique_ptr<BoolNode>;

namespace {

struct ConstBoolNode final : BoolNode {
  bool value;
  explicit ConstBoolNode(bool b) : value(b) { est = b ? 1.0 : 0.0; }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t*) const override {
    std::fill(m, m + (hi - lo), static_cast<uint8_t>(value ? 1 : 0));
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    if (!value) std::memset(s + (lo - base), 0, hi - lo);
  }
};

// A value used in boolean position: AsBool == raw int slot != 0 (doubles
// test their bit pattern, matching the interpreter's union read).
struct ValAsBoolNode final : BoolNode {
  ValPtr v;
  explicit ValAsBoolNode(ValPtr val) : v(std::move(val)) {}
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t*) const override {
    std::vector<int64_t> storage;
    const int64_t* p = IView(*v, lo, hi, &storage);
    for (size_t i = 0; i < hi - lo; ++i) m[i] = p[i] != 0 ? 1 : 0;
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    std::vector<int64_t> storage;
    const int64_t* p = IView(*v, lo, hi, &storage);
    for (size_t r = lo; r < hi; ++r) s[r - base] &= p[r - lo] != 0;
  }
};

// Numeric comparison. Int64 compare when both sides are int-physical,
// double compare (NaN-tolerant, like Value::Compare) when either side is a
// double. Constant operands use scalar fast paths.
struct NumCmpNode final : BoolNode {
  ValPtr a, b;
  ExprOp op;
  bool dbl;
  NumCmpNode(ValPtr x, ValPtr y, ExprOp o)
      : a(std::move(x)), b(std::move(y)), op(o) {
    dbl = a->type == ValueType::kDouble || b->type == ValueType::kDouble;
    est = CmpEst(op);
  }

  template <typename XFn, typename YFn, typename Emit>
  static void LoopI(ExprOp op, size_t lo, size_t hi, XFn x, YFn y,
                    Emit emit) {
    switch (op) {
      case ExprOp::kEq:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) == y(r));
        break;
      case ExprOp::kNe:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) != y(r));
        break;
      case ExprOp::kLt:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) < y(r));
        break;
      case ExprOp::kLe:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) <= y(r));
        break;
      case ExprOp::kGt:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) > y(r));
        break;
      default:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) >= y(r));
        break;
    }
  }
  // Value::Compare returns 0 when neither side is less — so NaN compares
  // equal to everything. Spelled out per-op to preserve that.
  template <typename XFn, typename YFn, typename Emit>
  static void LoopD(ExprOp op, size_t lo, size_t hi, XFn x, YFn y,
                    Emit emit) {
    switch (op) {
      case ExprOp::kEq:
        for (size_t r = lo; r < hi; ++r) {
          emit(r, !(x(r) < y(r)) && !(x(r) > y(r)));
        }
        break;
      case ExprOp::kNe:
        for (size_t r = lo; r < hi; ++r) {
          emit(r, x(r) < y(r) || x(r) > y(r));
        }
        break;
      case ExprOp::kLt:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) < y(r));
        break;
      case ExprOp::kLe:
        for (size_t r = lo; r < hi; ++r) emit(r, !(x(r) > y(r)));
        break;
      case ExprOp::kGt:
        for (size_t r = lo; r < hi; ++r) emit(r, x(r) > y(r));
        break;
      default:
        for (size_t r = lo; r < hi; ++r) emit(r, !(x(r) < y(r)));
        break;
    }
  }

  template <typename Emit>
  void Run(size_t lo, size_t hi, Emit emit) const {
    if (dbl) {
      std::vector<double> sa, sb;
      if (const Value* cb = b->constant()) {
        double y = cb->AsDouble();
        const double* x = DView(*a, lo, hi, &sa);
        LoopD(
            op, lo, hi, [x, lo](size_t r) { return x[r - lo]; },
            [y](size_t) { return y; }, emit);
      } else if (const Value* ca = a->constant()) {
        double x = ca->AsDouble();
        const double* y = DView(*b, lo, hi, &sb);
        LoopD(
            op, lo, hi, [x](size_t) { return x; },
            [y, lo](size_t r) { return y[r - lo]; }, emit);
      } else {
        const double* x = DView(*a, lo, hi, &sa);
        const double* y = DView(*b, lo, hi, &sb);
        LoopD(
            op, lo, hi, [x, lo](size_t r) { return x[r - lo]; },
            [y, lo](size_t r) { return y[r - lo]; }, emit);
      }
    } else {
      std::vector<int64_t> sa, sb;
      if (const Value* cb = b->constant()) {
        int64_t y = cb->AsInt();
        const int64_t* x = IView(*a, lo, hi, &sa);
        LoopI(
            op, lo, hi, [x, lo](size_t r) { return x[r - lo]; },
            [y](size_t) { return y; }, emit);
      } else if (const Value* ca = a->constant()) {
        int64_t x = ca->AsInt();
        const int64_t* y = IView(*b, lo, hi, &sb);
        LoopI(
            op, lo, hi, [x](size_t) { return x; },
            [y, lo](size_t r) { return y[r - lo]; }, emit);
      } else {
        const int64_t* x = IView(*a, lo, hi, &sa);
        const int64_t* y = IView(*b, lo, hi, &sb);
        LoopI(
            op, lo, hi, [x, lo](size_t r) { return x[r - lo]; },
            [y, lo](size_t r) { return y[r - lo]; }, emit);
      }
    }
  }

  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t*) const override {
    Run(lo, hi, [m, lo](size_t r, bool v) {
      m[r - lo] = static_cast<uint8_t>(v);
    });
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    Run(lo, hi, [s, base](size_t r, bool v) { s[r - base] &= v; });
  }
};

// String column OP constant. Dict-encoded equality compares uint32 codes
// (the headline win: one integer compare per row, no byte-wise compare, no
// decode); ordering ops and owned columns compare decoded strings.
struct StrCmpColConstNode final : BoolNode {
  const ValueVector* col;
  std::string k;
  ExprOp op;  // normalized: column on the left
  uint32_t kcode = StringDict::kInvalidCode;
  StrCmpColConstNode(const ValueVector* c, std::string key, ExprOp o)
      : col(c), k(std::move(key)), op(o) {
    if (col->dict_encoded()) kcode = col->dict()->Find(k);
    est = CmpEst(op);
  }

  bool DictEqPath() const {
    return col->dict_encoded() &&
           (op == ExprOp::kEq || op == ExprOp::kNe);
  }

  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t* done) const override {
    if (DictEqPath()) {
      const uint32_t* codes = col->codes_data();
      if (kcode == StringDict::kInvalidCode) {
        // Constant not in the dictionary: no row can ever equal it.
        std::fill(m, m + (hi - lo),
                  static_cast<uint8_t>(op == ExprOp::kNe ? 1 : 0));
      } else if (op == ExprOp::kEq) {
        for (size_t r = lo; r < hi; ++r) m[r - lo] = codes[r] == kcode;
      } else {
        for (size_t r = lo; r < hi; ++r) m[r - lo] = codes[r] != kcode;
      }
      return;
    }
    for (size_t r = lo; r < hi; ++r) {
      if (done != nullptr && done[r - lo] != 0) continue;
      int c = col->GetString(r).compare(k);
      m[r - lo] = CmpResult(op, c < 0 ? -1 : (c == 0 ? 0 : 1));
    }
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    if (DictEqPath()) {
      const uint32_t* codes = col->codes_data();
      if (kcode == StringDict::kInvalidCode) {
        if (op == ExprOp::kEq) std::memset(s + (lo - base), 0, hi - lo);
      } else if (op == ExprOp::kEq) {
        for (size_t r = lo; r < hi; ++r) s[r - base] &= codes[r] == kcode;
      } else {
        for (size_t r = lo; r < hi; ++r) s[r - base] &= codes[r] != kcode;
      }
      return;
    }
    for (size_t r = lo; r < hi; ++r) {
      if (s[r - base] == 0) continue;
      int c = col->GetString(r).compare(k);
      s[r - base] = CmpResult(op, c < 0 ? -1 : (c == 0 ? 0 : 1)) ? 1 : 0;
    }
  }
};

// String column OP string column. Shared-dictionary equality compares
// codes; everything else compares decoded strings.
struct StrCmpColColNode final : BoolNode {
  const ValueVector* a;
  const ValueVector* b;
  ExprOp op;
  StrCmpColColNode(const ValueVector* x, const ValueVector* y, ExprOp o)
      : a(x), b(y), op(o) {
    est = CmpEst(op);
  }
  bool CodePath() const {
    return a->dict_encoded() && a->dict() == b->dict() &&
           (op == ExprOp::kEq || op == ExprOp::kNe);
  }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t* done) const override {
    if (CodePath()) {
      const uint32_t* xa = a->codes_data();
      const uint32_t* xb = b->codes_data();
      if (op == ExprOp::kEq) {
        for (size_t r = lo; r < hi; ++r) m[r - lo] = xa[r] == xb[r];
      } else {
        for (size_t r = lo; r < hi; ++r) m[r - lo] = xa[r] != xb[r];
      }
      return;
    }
    for (size_t r = lo; r < hi; ++r) {
      if (done != nullptr && done[r - lo] != 0) continue;
      int c = a->GetString(r).compare(b->GetString(r));
      m[r - lo] = CmpResult(op, c < 0 ? -1 : (c == 0 ? 0 : 1));
    }
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    if (CodePath()) {
      const uint32_t* xa = a->codes_data();
      const uint32_t* xb = b->codes_data();
      if (op == ExprOp::kEq) {
        for (size_t r = lo; r < hi; ++r) s[r - base] &= xa[r] == xb[r];
      } else {
        for (size_t r = lo; r < hi; ++r) s[r - base] &= xa[r] != xb[r];
      }
      return;
    }
    for (size_t r = lo; r < hi; ++r) {
      if (s[r - base] == 0) continue;
      int c = a->GetString(r).compare(b->GetString(r));
      s[r - base] = CmpResult(op, c < 0 ? -1 : (c == 0 ? 0 : 1)) ? 1 : 0;
    }
  }
};

// Numeric IN. An int-physical probe matches int-physical list entries by
// int64 equality and double entries by promoted, NaN-tolerant comparison —
// exactly Value::Compare's cross-type rules.
struct NumInNode final : BoolNode {
  ValPtr v;
  bool dbl;
  std::vector<int64_t> icands;
  std::vector<double> dcands;
  NumInNode(ValPtr val, const std::vector<Value>& list)
      : v(std::move(val)) {
    dbl = v->type == ValueType::kDouble;
    for (const Value& c : list) {
      if (dbl) {
        if (IsNumeric(c.type())) dcands.push_back(c.AsDouble());
      } else if (IsIntegerPhysical(c.type())) {
        icands.push_back(c.AsInt());
      } else if (c.type() == ValueType::kDouble) {
        dcands.push_back(c.AsDouble());
      }
      // Non-numeric entries can never equal a numeric probe (type-tag
      // ordering) — dropped at compile time.
    }
    est = std::min(0.9, 0.1 * (icands.size() + dcands.size()));
  }
  bool HitI(int64_t x) const {
    bool hit = false;
    for (int64_t c : icands) hit = hit || (x == c);
    if (!dcands.empty()) {
      double dx = static_cast<double>(x);
      for (double c : dcands) hit = hit || (!(dx < c) && !(dx > c));
    }
    return hit;
  }
  bool HitD(double x) const {
    bool hit = false;
    for (double c : dcands) hit = hit || (!(x < c) && !(x > c));
    return hit;
  }
  // active(r) -> bool: false rows are skipped (their output is ignored).
  template <typename Active, typename Emit>
  void Run(size_t lo, size_t hi, Active active, Emit emit) const {
    if (dbl) {
      std::vector<double> storage;
      const double* p = DView(*v, lo, hi, &storage);
      for (size_t r = lo; r < hi; ++r) {
        if (!active(r)) continue;
        emit(r, HitD(p[r - lo]));
      }
    } else {
      std::vector<int64_t> storage;
      const int64_t* p = IView(*v, lo, hi, &storage);
      for (size_t r = lo; r < hi; ++r) {
        if (!active(r)) continue;
        emit(r, HitI(p[r - lo]));
      }
    }
  }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t* done) const override {
    Run(
        lo, hi,
        [done, lo](size_t r) {
          return done == nullptr || done[r - lo] == 0;
        },
        [m, lo](size_t r, bool v2) { m[r - lo] = static_cast<uint8_t>(v2); });
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    Run(
        lo, hi, [s, base](size_t r) { return s[r - base] != 0; },
        [s, base](size_t r, bool v2) { s[r - base] = v2 ? 1 : 0; });
  }
};

// String IN. Dict columns probe a small pre-resolved code set (entries
// missing from the dictionary can never match and are dropped).
struct StrInNode final : BoolNode {
  const ValueVector* col;
  std::vector<uint32_t> codes;
  std::vector<std::string> cands;
  StrInNode(const ValueVector* c, const std::vector<Value>& list) : col(c) {
    for (const Value& v : list) {
      if (v.type() != ValueType::kString) continue;
      if (col->dict_encoded()) {
        uint32_t code = col->dict()->Find(v.AsString());
        if (code != StringDict::kInvalidCode) codes.push_back(code);
      } else {
        cands.push_back(v.AsString());
      }
    }
    est = std::min(0.9, 0.1 * (codes.size() + cands.size()));
  }
  template <typename Emit>
  void Run(size_t lo, size_t hi, const uint8_t* skip, Emit emit) const {
    if (col->dict_encoded()) {
      const uint32_t* p = col->codes_data();
      for (size_t r = lo; r < hi; ++r) {
        if (skip != nullptr && skip[r - lo] != 0) continue;
        uint32_t x = p[r];
        bool hit = false;
        for (uint32_t c : codes) hit = hit || (x == c);
        emit(r, hit);
      }
      return;
    }
    for (size_t r = lo; r < hi; ++r) {
      if (skip != nullptr && skip[r - lo] != 0) continue;
      const std::string& x = col->GetString(r);
      bool hit = false;
      for (const std::string& c : cands) hit = hit || (x == c);
      emit(r, hit);
    }
  }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t* done) const override {
    Run(lo, hi, done, [m, lo](size_t r, bool v) {
      m[r - lo] = static_cast<uint8_t>(v);
    });
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    for (size_t r = lo; r < hi; ++r) {
      if (s[r - base] == 0) continue;
      bool hit = false;
      if (col->dict_encoded()) {
        uint32_t x = col->GetCode(r);
        for (uint32_t c : codes) hit = hit || (x == c);
      } else {
        const std::string& x = col->GetString(r);
        for (const std::string& c : cands) hit = hit || (x == c);
      }
      s[r - base] = hit ? 1 : 0;
    }
  }
};

struct StartsWithNode final : BoolNode {
  const ValueVector* col;
  std::string prefix;
  StartsWithNode(const ValueVector* c, std::string p)
      : col(c), prefix(std::move(p)) {
    est = 0.2;
  }
  bool Match(size_t r) const {
    const std::string& s = col->GetString(r);
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
  }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t* done) const override {
    for (size_t r = lo; r < hi; ++r) {
      if (done != nullptr && done[r - lo] != 0) continue;
      m[r - lo] = Match(r) ? 1 : 0;
    }
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    for (size_t r = lo; r < hi; ++r) {
      if (s[r - base] == 0) continue;
      s[r - base] = Match(r) ? 1 : 0;
    }
  }
};

struct NotNode final : BoolNode {
  BoolPtr child;
  explicit NotNode(BoolPtr c) : child(std::move(c)) {
    est = 1.0 - child->est;
  }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t* done) const override {
    child->Mask(m, lo, hi, done);
    for (size_t i = 0; i < hi - lo; ++i) m[i] = m[i] != 0 ? 0 : 1;
  }
};

// Conjunction: sequential selection-vector refinement. Operands are sorted
// ascending by estimated selectivity so the cheapest-to-kill predicate runs
// first and later (possibly expensive) operands see a sparser vector.
struct AndNode final : BoolNode {
  std::vector<BoolPtr> kids;
  explicit AndNode(std::vector<BoolPtr> k) : kids(std::move(k)) {
    std::stable_sort(
        kids.begin(), kids.end(),
        [](const BoolPtr& a, const BoolPtr& b) { return a->est < b->est; });
    est = 1.0;
    for (const BoolPtr& c : kids) est *= c->est;
  }
  void Refine(uint8_t* s, size_t base, size_t lo,
              size_t hi) const override {
    for (const BoolPtr& c : kids) c->Refine(s, base, lo, hi);
  }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t*) const override {
    std::fill(m, m + (hi - lo), 1);
    for (const BoolPtr& c : kids) c->Refine(m, lo, lo, hi);
  }
};

// Disjunction: operands sorted descending by estimated selectivity; rows
// already decided true are marked done and skipped by later operands.
struct OrNode final : BoolNode {
  std::vector<BoolPtr> kids;
  explicit OrNode(std::vector<BoolPtr> k) : kids(std::move(k)) {
    std::stable_sort(
        kids.begin(), kids.end(),
        [](const BoolPtr& a, const BoolPtr& b) { return a->est > b->est; });
    double miss = 1.0;
    for (const BoolPtr& c : kids) miss *= 1.0 - c->est;
    est = 1.0 - miss;
  }
  void Mask(uint8_t* m, size_t lo, size_t hi,
            const uint8_t* done) const override {
    size_t n = hi - lo;
    std::fill(m, m + n, 0);
    kids[0]->Mask(m, lo, hi, done);
    if (kids.size() == 1) return;
    std::vector<uint8_t> dn(n), tmp(n);
    for (size_t k = 1; k < kids.size(); ++k) {
      for (size_t i = 0; i < n; ++i) {
        dn[i] = ((done != nullptr && done[i] != 0) || m[i] != 0) ? 1 : 0;
      }
      kids[k]->Mask(tmp.data(), lo, hi, dn.data());
      for (size_t i = 0; i < n; ++i) {
        if (dn[i] == 0) m[i] = tmp[i] != 0 ? 1 : 0;
      }
    }
  }
};

// Boolean expression used in value position: Value::Bool(b) carries 0/1 in
// the int slot.
struct BoolWrapNode final : ValNode {
  BoolPtr p;
  explicit BoolWrapNode(BoolPtr b) : p(std::move(b)) {
    type = ValueType::kBool;
  }
  void EvalI(size_t lo, size_t hi, int64_t* out) const override {
    std::vector<uint8_t> m(hi - lo);
    p->Mask(m.data(), lo, hi, nullptr);
    for (size_t i = 0; i < hi - lo; ++i) out[i] = m[i] != 0 ? 1 : 0;
  }
  void EvalD(size_t lo, size_t hi, double* out) const override {
    std::vector<uint8_t> m(hi - lo);
    p->Mask(m.data(), lo, hi, nullptr);
    for (size_t i = 0; i < hi - lo; ++i) out[i] = m[i] != 0 ? 1.0 : 0.0;
  }
};

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct CompileCtx {
  const Schema* schema;
  const std::vector<const ValueVector*>* columns;
  // Optional per-column NDV/min-max statistics; when present, comparison
  // nodes get stats-driven selectivity estimates instead of CmpEst guesses.
  const std::unordered_map<std::string, ColumnStat>* stats = nullptr;
};

BoolPtr CompileBool(const Expr& e, const CompileCtx& ctx);

ValPtr CompileVal(const Expr& e, const CompileCtx& ctx) {
  switch (e.op) {
    case ExprOp::kColumn: {
      int idx = ctx.schema->IndexOf(e.column);
      if (idx < 0) return nullptr;
      const ValueVector* col = (*ctx.columns)[idx];
      if (col == nullptr) return nullptr;  // no physical vector (lazy head)
      return std::make_unique<ColumnNode>(col);
    }
    case ExprOp::kConst:
      return std::make_unique<ConstNode>(e.constant);
    case ExprOp::kParam:
      // An unbound placeholder inside a kernelized plan: BindPlanParams
      // substitutes before execution, so (like BoundExpr) fall back to the
      // first-seen literal hint defensively.
      return std::make_unique<ConstNode>(e.constant);
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul: {
      ValPtr a = CompileVal(*e.args[0], ctx);
      if (a == nullptr) return nullptr;
      ValPtr b = CompileVal(*e.args[1], ctx);
      if (b == nullptr) return nullptr;
      return std::make_unique<ArithNode>(std::move(a), std::move(b), e.op);
    }
    default: {
      BoolPtr b = CompileBool(e, ctx);
      if (b == nullptr) return nullptr;
      return std::make_unique<BoolWrapNode>(std::move(b));
    }
  }
}

// Flattens nested kAnd/kOr into one operand list (associativity) so the
// selectivity ordering sees all operands at once.
bool CollectOperands(const Expr& e, ExprOp op, const CompileCtx& ctx,
                     std::vector<BoolPtr>* out) {
  for (const ExprPtr& a : e.args) {
    if (a->op == op) {
      if (!CollectOperands(*a, op, ctx, out)) return false;
      continue;
    }
    BoolPtr c = CompileBool(*a, ctx);
    if (c == nullptr) return false;
    out->push_back(std::move(c));
  }
  return true;
}

BoolPtr CompileCmpNode(const Expr& e, const CompileCtx& ctx) {
  ValPtr a = CompileVal(*e.args[0], ctx);
  if (a == nullptr) return nullptr;
  ValPtr b = CompileVal(*e.args[1], ctx);
  if (b == nullptr) return nullptr;
  const Value* ca = a->constant();
  const Value* cb = b->constant();
  if (ca != nullptr && cb != nullptr) {
    return std::make_unique<ConstBoolNode>(
        CmpResult(e.op, ca->Compare(*cb)));
  }
  ValueType ta = a->type;
  ValueType tb = b->type;
  if (IsNumeric(ta) && IsNumeric(tb)) {
    return std::make_unique<NumCmpNode>(std::move(a), std::move(b), e.op);
  }
  if (ta == ValueType::kString && tb == ValueType::kString) {
    // Non-constant string nodes are always column references.
    if (cb != nullptr) {
      return std::make_unique<StrCmpColConstNode>(a->column(),
                                                  cb->AsString(), e.op);
    }
    if (ca != nullptr) {
      return std::make_unique<StrCmpColConstNode>(
          b->column(), ca->AsString(), FlipOp(e.op));
    }
    return std::make_unique<StrCmpColColNode>(a->column(), b->column(),
                                              e.op);
  }
  // Mixed non-numeric types order by type tag — constant per static types.
  int c = ta == tb ? 0 : (ta < tb ? -1 : 1);
  return std::make_unique<ConstBoolNode>(CmpResult(e.op, c));
}

BoolPtr CompileCmp(const Expr& e, const CompileCtx& ctx) {
  BoolPtr node = CompileCmpNode(e, ctx);
  if (node != nullptr && ctx.stats != nullptr &&
      dynamic_cast<ConstBoolNode*>(node.get()) == nullptr) {
    // EstimateSelectivity falls back to the same static guesses as the
    // node constructors, so this only changes the AND/OR ordering when the
    // statistics actually know something about the compared column.
    node->est = EstimateSelectivity(e, *ctx.stats);
  }
  return node;
}

BoolPtr CompileBool(const Expr& e, const CompileCtx& ctx) {
  switch (e.op) {
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      std::vector<BoolPtr> kids;
      if (!CollectOperands(e, e.op, ctx, &kids)) return nullptr;
      bool is_and = e.op == ExprOp::kAnd;
      std::vector<BoolPtr> keep;
      for (BoolPtr& k : kids) {
        if (auto* cb = dynamic_cast<ConstBoolNode*>(k.get())) {
          if (cb->value != is_and) {
            // Dominant constant: false in AND / true in OR decides all.
            return std::make_unique<ConstBoolNode>(!is_and);
          }
          continue;  // neutral constant, drop
        }
        keep.push_back(std::move(k));
      }
      if (keep.empty()) return std::make_unique<ConstBoolNode>(is_and);
      if (keep.size() == 1) return std::move(keep[0]);
      if (is_and) return std::make_unique<AndNode>(std::move(keep));
      return std::make_unique<OrNode>(std::move(keep));
    }
    case ExprOp::kNot: {
      BoolPtr c = CompileBool(*e.args[0], ctx);
      if (c == nullptr) return nullptr;
      if (auto* cb = dynamic_cast<ConstBoolNode*>(c.get())) {
        return std::make_unique<ConstBoolNode>(!cb->value);
      }
      return std::make_unique<NotNode>(std::move(c));
    }
    case ExprOp::kIsNull: {
      ValPtr v = CompileVal(*e.args[0], ctx);
      if (v == nullptr) return nullptr;
      // Typed vectors never hold nulls, so the static type decides.
      return std::make_unique<ConstBoolNode>(v->type == ValueType::kNull);
    }
    case ExprOp::kIn: {
      ValPtr v = CompileVal(*e.args[0], ctx);
      if (v == nullptr) return nullptr;
      if (const Value* cv = v->constant()) {
        bool hit = false;
        for (const Value& c : e.list) hit = hit || (*cv == c);
        return std::make_unique<ConstBoolNode>(hit);
      }
      if (v->type == ValueType::kString) {
        return std::make_unique<StrInNode>(v->column(), e.list);
      }
      if (IsNumeric(v->type)) {
        return std::make_unique<NumInNode>(std::move(v), e.list);
      }
      // kNull probe equals only null entries.
      bool hit = false;
      for (const Value& c : e.list) hit = hit || c.is_null();
      return std::make_unique<ConstBoolNode>(hit);
    }
    case ExprOp::kStartsWith: {
      ValPtr v = CompileVal(*e.args[0], ctx);
      if (v == nullptr) return nullptr;
      const std::string& p = e.constant.AsString();
      if (const Value* cv = v->constant()) {
        const std::string& s = cv->AsString();
        return std::make_unique<ConstBoolNode>(
            s.size() >= p.size() && s.compare(0, p.size(), p) == 0);
      }
      if (v->type != ValueType::kString) {
        // AsString of a non-string value is "" — prefix match iff empty.
        return std::make_unique<ConstBoolNode>(p.empty());
      }
      return std::make_unique<StartsWithNode>(v->column(), p);
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return CompileCmp(e, ctx);
    default: {  // value expression in boolean position
      ValPtr v = CompileVal(e, ctx);
      if (v == nullptr) return nullptr;
      if (const Value* cv = v->constant()) {
        return std::make_unique<ConstBoolNode>(cv->AsBool());
      }
      if (v->type == ValueType::kString || v->type == ValueType::kNull) {
        // The int slot of string/null values is always 0 — never true.
        return std::make_unique<ConstBoolNode>(false);
      }
      return std::make_unique<ValAsBoolNode>(std::move(v));
    }
  }
}

}  // namespace
}  // namespace vexpr

CompiledExpr::CompiledExpr(std::unique_ptr<vexpr::BoolNode> b,
                           std::unique_ptr<vexpr::ValNode> v)
    : bool_root_(std::move(b)), val_root_(std::move(v)) {}

CompiledExpr::~CompiledExpr() = default;

std::unique_ptr<CompiledExpr> CompiledExpr::CompileFilter(
    const Expr& expr, const Schema& schema,
    const std::vector<const ValueVector*>& columns,
    const std::unordered_map<std::string, ColumnStat>* column_stats) {
  vexpr::CompileCtx ctx{&schema, &columns, column_stats};
  auto root = vexpr::CompileBool(expr, ctx);
  if (root == nullptr) return nullptr;
  return std::unique_ptr<CompiledExpr>(
      new CompiledExpr(std::move(root), nullptr));
}

std::unique_ptr<CompiledExpr> CompiledExpr::CompileProject(
    const Expr& expr, const Schema& schema,
    const std::vector<const ValueVector*>& columns) {
  vexpr::CompileCtx ctx{&schema, &columns};
  auto root = vexpr::CompileVal(expr, ctx);
  if (root == nullptr) return nullptr;
  return std::unique_ptr<CompiledExpr>(
      new CompiledExpr(nullptr, std::move(root)));
}

void CompiledExpr::EvalFilter(uint8_t* sel, size_t lo, size_t hi) const {
  bool_root_->Refine(sel, /*base=*/0, lo, hi);
}

ValueType CompiledExpr::result_type() const { return val_root_->type; }

void CompiledExpr::EvalProject(size_t lo, size_t hi,
                               ValueVector* out) const {
  const vexpr::ValNode& root = *val_root_;
  size_t n = hi - lo;
  switch (out->type()) {
    case ValueType::kDouble: {
      std::vector<double> storage;
      const double* p = vexpr::DView(root, lo, hi, &storage);
      for (size_t i = 0; i < n; ++i) out->AppendDouble(p[i]);
      break;
    }
    case ValueType::kString: {
      const ValueVector* col = root.column();
      if (col != nullptr && col->type() == ValueType::kString) {
        if (out->empty() && col->dict_encoded() && !out->dict_encoded()) {
          out->InitDict(col->dict());
        }
        out->AppendRange(*col, lo, hi);
      } else if (const Value* cv = root.constant()) {
        for (size_t i = 0; i < n; ++i) out->AppendString(cv->AsString());
      } else {
        // AsString of non-string results is "".
        for (size_t i = 0; i < n; ++i) out->AppendString(std::string());
      }
      break;
    }
    default: {  // int-physical output: union-int view
      std::vector<int64_t> storage;
      const int64_t* p = vexpr::IView(root, lo, hi, &storage);
      for (size_t i = 0; i < n; ++i) out->AppendInt(p[i]);
      break;
    }
  }
}

}  // namespace ges
