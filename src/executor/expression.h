// Scalar expression trees for filters and computed projections.
#ifndef GES_EXECUTOR_EXPRESSION_H_
#define GES_EXECUTOR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "executor/schema.h"

namespace ges {

enum class ExprOp : uint8_t {
  kColumn,
  kConst,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kAdd,
  kSub,
  kMul,
  kIn,          // column/expr value in constant list
  kIsNull,
  kStartsWith,  // string prefix match
  kParam,       // positional parameter placeholder ($k); resolved at bind
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Immutable expression node. Built with the factory helpers below and
// shared freely between plans.
struct Expr {
  ExprOp op;
  std::string column;        // kColumn
  Value constant;            // kConst; for kParam: first-seen literal,
                             // kept as a costing hint only
  std::vector<Value> list;   // kIn
  std::vector<ExprPtr> args;
  int param_index = -1;      // kParam

  static ExprPtr Col(std::string name);
  static ExprPtr Lit(Value v);
  static ExprPtr Param(int index, Value hint = Value());
  static ExprPtr Cmp(ExprOp op, ExprPtr a, ExprPtr b);
  static ExprPtr Eq(ExprPtr a, ExprPtr b) { return Cmp(ExprOp::kEq, a, b); }
  static ExprPtr Ne(ExprPtr a, ExprPtr b) { return Cmp(ExprOp::kNe, a, b); }
  static ExprPtr Lt(ExprPtr a, ExprPtr b) { return Cmp(ExprOp::kLt, a, b); }
  static ExprPtr Le(ExprPtr a, ExprPtr b) { return Cmp(ExprOp::kLe, a, b); }
  static ExprPtr Gt(ExprPtr a, ExprPtr b) { return Cmp(ExprOp::kGt, a, b); }
  static ExprPtr Ge(ExprPtr a, ExprPtr b) { return Cmp(ExprOp::kGe, a, b); }
  static ExprPtr And(ExprPtr a, ExprPtr b);
  static ExprPtr Or(ExprPtr a, ExprPtr b);
  static ExprPtr Not(ExprPtr a);
  static ExprPtr Add(ExprPtr a, ExprPtr b);
  static ExprPtr Sub(ExprPtr a, ExprPtr b);
  static ExprPtr Mul(ExprPtr a, ExprPtr b);
  static ExprPtr In(ExprPtr a, std::vector<Value> values);
  static ExprPtr IsNull(ExprPtr a);
  static ExprPtr StartsWith(ExprPtr a, std::string prefix);

  // Appends every referenced column name (with duplicates) to `out`.
  void CollectColumns(std::vector<std::string>* out) const;

  std::string ToString() const;
};

// An expression bound to a schema: column references are resolved to column
// indices so evaluation is index-based.
class BoundExpr {
 public:
  // Binds `expr` against `schema`. Aborts if a column is missing (planner
  // bug); use Schema::IndexOf beforehand to route unbindable predicates.
  static BoundExpr Bind(const Expr& expr, const Schema& schema);

  // Evaluates with an accessor `get(col_index) -> Value`.
  template <typename Getter>
  Value Eval(const Getter& get) const {
    switch (op_) {
      case ExprOp::kColumn:
        return get(col_index_);
      case ExprOp::kConst:
        return constant_;
      case ExprOp::kAnd: {
        for (const BoundExpr& a : args_) {
          if (!a.Eval(get).AsBool()) return Value::Bool(false);
        }
        return Value::Bool(true);
      }
      case ExprOp::kOr: {
        for (const BoundExpr& a : args_) {
          if (a.Eval(get).AsBool()) return Value::Bool(true);
        }
        return Value::Bool(false);
      }
      case ExprOp::kNot:
        return Value::Bool(!args_[0].Eval(get).AsBool());
      case ExprOp::kIsNull:
        return Value::Bool(args_[0].Eval(get).is_null());
      case ExprOp::kIn: {
        Value v = args_[0].Eval(get);
        for (const Value& c : list_) {
          if (v == c) return Value::Bool(true);
        }
        return Value::Bool(false);
      }
      case ExprOp::kStartsWith: {
        Value v = args_[0].Eval(get);
        const std::string& s = v.AsString();
        const std::string& p = constant_.AsString();
        return Value::Bool(s.size() >= p.size() &&
                           s.compare(0, p.size(), p) == 0);
      }
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul: {
        Value a = args_[0].Eval(get);
        Value b = args_[1].Eval(get);
        if (a.type() == ValueType::kDouble || b.type() == ValueType::kDouble) {
          double x = a.AsDouble();
          double y = b.AsDouble();
          return Value::Double(op_ == ExprOp::kAdd   ? x + y
                               : op_ == ExprOp::kSub ? x - y
                                                     : x * y);
        }
        int64_t x = a.AsInt();
        int64_t y = b.AsInt();
        return Value::Int(op_ == ExprOp::kAdd   ? x + y
                          : op_ == ExprOp::kSub ? x - y
                                                : x * y);
      }
      default: {
        int c = args_[0].Eval(get).Compare(args_[1].Eval(get));
        switch (op_) {
          case ExprOp::kEq:
            return Value::Bool(c == 0);
          case ExprOp::kNe:
            return Value::Bool(c != 0);
          case ExprOp::kLt:
            return Value::Bool(c < 0);
          case ExprOp::kLe:
            return Value::Bool(c <= 0);
          case ExprOp::kGt:
            return Value::Bool(c > 0);
          default:
            return Value::Bool(c >= 0);
        }
      }
    }
  }

  // Convenience for row-major evaluation.
  Value EvalRow(const std::vector<Value>& row) const {
    return Eval([&row](int i) -> Value { return row[i]; });
  }

 private:
  ExprOp op_ = ExprOp::kConst;
  int col_index_ = -1;
  Value constant_;
  std::vector<Value> list_;
  std::vector<BoundExpr> args_;
};

}  // namespace ges

#endif  // GES_EXECUTOR_EXPRESSION_H_
