#include "executor/explain.h"

#include <set>
#include <sstream>

namespace ges {

namespace {

// Columns an operator introduces.
std::vector<std::string> ProducedColumns(const PlanOp& op) {
  std::vector<std::string> out;
  switch (op.type) {
    case OpType::kNodeByIdSeek:
    case OpType::kScanByLabel:
      out.push_back(op.out_column);
      break;
    case OpType::kExpand:
      out.push_back(op.out_column);
      if (!op.distance_column.empty()) out.push_back(op.distance_column);
      if (!op.stamp_column.empty()) out.push_back(op.stamp_column);
      break;
    case OpType::kExpandFiltered:
      out.push_back(op.out_column);
      if (op.keep_property) out.push_back(op.other_column);
      break;
    case OpType::kIntersectExpand:
      out.push_back(op.out_column);
      break;
    case OpType::kGetProperty:
      out.push_back(op.out_column);
      break;
    case OpType::kProject:
      for (const auto& [col, as] : op.selections) {
        if (!as.empty() && as != col) out.push_back(as);
      }
      for (const ComputedColumn& c : op.computed) out.push_back(c.name);
      break;
    case OpType::kAggregate:
    case OpType::kAggProjectTop:
      for (const AggSpec& a : op.aggs) out.push_back(a.output);
      for (const ComputedColumn& c : op.computed) out.push_back(c.name);
      break;
    default:
      break;
  }
  return out;
}

// Columns an operator consumes.
std::vector<std::string> ConsumedColumns(const PlanOp& op) {
  std::vector<std::string> out;
  switch (op.type) {
    case OpType::kExpand:
    case OpType::kExpandFiltered:
    case OpType::kGetProperty:
      out.push_back(op.in_column);
      break;
    case OpType::kExpandInto:
      out.push_back(op.in_column);
      out.push_back(op.other_column);
      break;
    case OpType::kIntersectExpand:
      out.push_back(op.in_column);
      for (const std::string& p : op.probe_columns) out.push_back(p);
      break;
    case OpType::kFilter:
      op.predicate->CollectColumns(&out);
      break;
    case OpType::kProject:
      for (const auto& [col, as] : op.selections) out.push_back(col);
      for (const ComputedColumn& c : op.computed) {
        c.expr->CollectColumns(&out);
      }
      break;
    case OpType::kOrderBy:
    case OpType::kTopK:
      for (const SortKey& k : op.sort_keys) out.push_back(k.column);
      break;
    case OpType::kAggregate:
    case OpType::kAggProjectTop:
      for (const std::string& g : op.group_by) out.push_back(g);
      for (const AggSpec& a : op.aggs) {
        if (!a.input.empty()) out.push_back(a.input);
      }
      break;
    default:
      break;
  }
  return out;
}

bool IsLeaf(OpType t) {
  return t == OpType::kNodeByIdSeek || t == OpType::kScanByLabel ||
         t == OpType::kProcedure;
}

std::string DescribeOp(const PlanOp& op) {
  std::ostringstream os;
  os << OpTypeName(op.type);
  switch (op.type) {
    case OpType::kNodeByIdSeek:
      os << " label=" << op.label << " id=" << op.seek_ext_id;
      break;
    case OpType::kScanByLabel:
      os << " label=" << op.label;
      break;
    case OpType::kExpand:
    case OpType::kExpandFiltered: {
      os << " " << op.in_column << " -[";
      for (size_t i = 0; i < op.rels.size(); ++i) {
        os << (i > 0 ? "," : "") << "rel" << op.rels[i];
      }
      os << "]-> " << op.out_column;
      if (op.min_hops != 1 || op.max_hops != 1) {
        os << " (*" << op.min_hops << ".." << op.max_hops << ")";
      }
      if (op.distinct) os << " distinct";
      if (op.type == OpType::kExpandFiltered) {
        os << " fused-filter(" << op.other_column << ")";
      }
      break;
    }
    case OpType::kGetProperty:
      os << " " << op.in_column << ".#" << op.property << " -> "
         << op.out_column;
      break;
    case OpType::kFilter:
      os << " " << op.predicate->ToString();
      break;
    case OpType::kOrderBy:
    case OpType::kTopK: {
      os << " keys=[";
      for (size_t i = 0; i < op.sort_keys.size(); ++i) {
        os << (i > 0 ? ", " : "") << op.sort_keys[i].column
           << (op.sort_keys[i].ascending ? " asc" : " desc");
      }
      os << "]";
      if (op.limit != UINT64_MAX) os << " limit=" << op.limit;
      break;
    }
    case OpType::kAggregate:
    case OpType::kAggProjectTop: {
      os << " group=[";
      for (size_t i = 0; i < op.group_by.size(); ++i) {
        os << (i > 0 ? ", " : "") << op.group_by[i];
      }
      os << "] aggs=[";
      for (size_t i = 0; i < op.aggs.size(); ++i) {
        os << (i > 0 ? ", " : "") << op.aggs[i].output;
      }
      os << "]";
      if (op.type == OpType::kAggProjectTop) os << " limit=" << op.limit;
      break;
    }
    case OpType::kLimit:
      os << " " << op.limit;
      break;
    case OpType::kExpandInto:
      os << " " << op.in_column << (op.anti ? " -!-> " : " --> ")
         << op.other_column;
      break;
    case OpType::kIntersectExpand: {
      os << " " << op.in_column << " -[";
      for (size_t i = 0; i < op.rels.size(); ++i) {
        os << (i > 0 ? "," : "") << "rel" << op.rels[i];
      }
      os << "]-> " << op.out_column << " intersect [";
      for (size_t i = 0; i < op.probe_columns.size(); ++i) {
        os << (i > 0 ? ", " : "") << "N(" << op.probe_columns[i] << ")";
      }
      os << "]";
      break;
    }
    default:
      break;
  }
  return os.str();
}

}  // namespace

std::string ExplainPlan(const Plan& plan) {
  std::ostringstream os;
  os << "Plan";
  if (!plan.name.empty()) os << " [" << plan.name << "]";
  os << ":\n";
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    os << "  " << (i + 1) << ". " << DescribeOp(plan.ops[i]);
    std::vector<std::string> produced = ProducedColumns(plan.ops[i]);
    if (!produced.empty()) {
      os << "  -> [";
      for (size_t k = 0; k < produced.size(); ++k) {
        os << (k > 0 ? ", " : "") << produced[k];
      }
      os << "]";
    }
    os << "\n";
  }
  if (!plan.output.empty()) {
    os << "  output: [";
    for (size_t k = 0; k < plan.output.size(); ++k) {
      os << (k > 0 ? ", " : "") << plan.output[k];
    }
    os << "]\n";
  }
  return os.str();
}

std::string ExplainAnalyze(const Plan& plan, const QueryResult& result) {
  std::ostringstream os;
  os << ExplainPlan(plan);
  os << "Analyze:\n";
  for (const OpStats& s : result.stats.ops) {
    os << "  " << s.op << ": rows=" << s.rows;
    if (s.est_rows >= 0) {
      os << " est=" << static_cast<uint64_t>(s.est_rows + 0.5);
    }
    os << " millis=" << s.millis << " bytes=" << s.intermediate_bytes;
    if (s.intersect.Any()) {
      os << " probes=" << s.intersect.probes
         << " gallops=" << s.intersect.gallops
         << " skipped=" << s.intersect.skipped
         << " emitted=" << s.intersect.emitted;
    }
    os << "\n";
  }
  os << "  total: millis=" << result.stats.total_millis
     << " peak_bytes=" << result.stats.peak_intermediate_bytes;
  if (result.stats.peak_memory_bytes > 0) {
    // Governor accounting (DESIGN.md §15): peak bytes charged against the
    // query's MemoryBudget, a superset of the per-op intermediate gauge
    // (it also sees transient expansion scratch and flatten pre-sizing).
    os << " peak_memory=" << result.stats.peak_memory_bytes;
  }
  const IntersectOpStats& t = result.stats.intersect;
  if (t.Any()) {
    os << " probes=" << t.probes << " gallops=" << t.gallops
       << " skipped=" << t.skipped << " emitted=" << t.emitted;
  }
  os << "\n";
  return os.str();
}

Status ValidatePlan(const Plan& plan) {
  if (plan.ops.empty()) return Status::InvalidArgument("plan has no ops");
  if (!IsLeaf(plan.ops[0].type)) {
    return Status::InvalidArgument(
        std::string("first operator must be a leaf, got ") +
        OpTypeName(plan.ops[0].type));
  }
  std::set<std::string> live;
  bool procedural = plan.ops[0].type == OpType::kProcedure;
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const PlanOp& op = plan.ops[i];
    if (i > 0 && IsLeaf(op.type) && op.type != OpType::kProcedure) {
      return Status::InvalidArgument("leaf operator in pipeline position");
    }
    if (!procedural) {
      for (const std::string& c : ConsumedColumns(op)) {
        if (live.count(c) == 0) {
          return Status::InvalidArgument(
              "op " + std::to_string(i + 1) + " (" + OpTypeName(op.type) +
              ") consumes unknown column '" + c + "'");
        }
      }
    }
    // Aggregations replace the live set with keys + outputs.
    if (op.type == OpType::kAggregate || op.type == OpType::kAggProjectTop) {
      std::set<std::string> next(op.group_by.begin(), op.group_by.end());
      for (const std::string& c : ProducedColumns(op)) next.insert(c);
      live = std::move(next);
      continue;
    }
    // Projection with explicit selections also replaces the live set.
    if (op.type == OpType::kProject && !op.selections.empty()) {
      std::set<std::string> next;
      for (const auto& [col, as] : op.selections) {
        next.insert(as.empty() ? col : as);
      }
      for (const ComputedColumn& c : op.computed) next.insert(c.name);
      live = std::move(next);
      continue;
    }
    if (op.type == OpType::kIntersectExpand) {
      if (op.probe_columns.empty()) {
        return Status::InvalidArgument(
            "IntersectExpand needs at least one probe column");
      }
      if (op.probe_columns.size() != op.probe_rels.size()) {
        return Status::InvalidArgument(
            "IntersectExpand probe_columns/probe_rels size mismatch");
      }
    }
    for (const std::string& c : ProducedColumns(op)) {
      if (!live.insert(c).second) {
        return Status::InvalidArgument("column '" + c + "' produced twice");
      }
    }
  }
  if (!procedural) {
    for (const std::string& c : plan.output) {
      if (live.count(c) == 0) {
        return Status::InvalidArgument("output references unknown column '" +
                                       c + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace ges
