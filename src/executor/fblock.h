// f-Block: the cache-friendly, column-oriented factorized block (Section
// 4.2 of the paper).
//
// An f-Block is a set of typed columns over a schema; every column has the
// same cardinality N, and row i of all columns together forms the i-th
// encoded tuple. Two physical flavors exist for the leading vertex column:
//
//  * materialized — a plain ValueVector of vertex ids;
//  * lazy ("pointer-based join", Section 5) — a list of (ptr,len) segments
//    pointing directly into the graph's adjacency arrays, plus prefix-sum
//    offsets. Neighbor ids are never copied; they are read through the
//    pointers, and only materialized if an operator genuinely needs a
//    columnar copy.
//
// Non-leading columns (properties, distances, edge stamps) are always
// materialized ValueVectors aligned with the logical row index.
#ifndef GES_EXECUTOR_FBLOCK_H_
#define GES_EXECUTOR_FBLOCK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/value.h"
#include "executor/schema.h"
#include "storage/adjacency.h"

namespace ges {

class FBlock {
 public:
  FBlock() = default;

  const Schema& schema() const { return schema_; }

  // Number of logical rows (the shared cardinality N of all columns).
  size_t NumRows() const {
    if (lazy_) return seg_offsets_.empty() ? 0 : seg_offsets_.back();
    return columns_.empty() ? 0 : columns_[0].size();
  }

  bool lazy() const { return lazy_; }

  // --- construction: materialized columns ---
  // Adds a column; the first added column defines/extends the schema. All
  // columns must end up with equal cardinality.
  void AddColumn(const std::string& name, ValueVector column) {
    schema_.Add(name, column.type());
    columns_.push_back(std::move(column));
  }

  // --- construction: lazy vertex column ---
  // Initializes this block as a lazy single-column block named `name`.
  // Segments are appended with AppendSegment; logical rows are the
  // concatenation of all segment entries (tombstones must be pre-filtered
  // by the caller or tolerated downstream).
  void InitLazy(const std::string& name) {
    lazy_ = true;
    schema_.Add(name, ValueType::kVertex);
    seg_offsets_.push_back(0);
  }
  void AppendSegment(AdjSpan span) {
    segments_.push_back(span);
    seg_offsets_.push_back(seg_offsets_.back() + span.size);
  }
  // Appends a segment whose storage the block owns. Used when the span was
  // decoded from a compressed adjacency segment (DESIGN.md §16): the decode
  // scratch is reused on the next fetch, so the ids/stamps must move into
  // the block to stay valid for the block's lifetime.
  void AppendOwnedSegment(std::vector<VertexId> ids,
                          std::vector<int64_t> stamps) {
    owned_.push_back(
        std::make_unique<AdjScratch>(AdjScratch{std::move(ids),
                                                std::move(stamps)}));
    const AdjScratch& o = *owned_.back();
    AdjSpan span{o.ids.data(), o.stamps.empty() ? nullptr : o.stamps.data(),
                 static_cast<uint32_t>(o.ids.size()), /*tombstones=*/0};
    AppendSegment(span);
  }
  size_t NumSegments() const { return segments_.size(); }
  const AdjSpan& Segment(size_t i) const { return segments_[i]; }
  // Logical row range [begin, end) covered by segment i.
  uint64_t SegmentBegin(size_t i) const { return seg_offsets_[i]; }
  uint64_t SegmentEnd(size_t i) const { return seg_offsets_[i + 1]; }

  // --- row access ---
  // Vertex id at logical row `row` of the leading column. For lazy blocks
  // this resolves through the segment table (O(log #segments)).
  VertexId VertexAt(uint64_t row) const {
    if (!lazy_) return columns_[0].GetVertex(row);
    size_t seg = SegmentIndexOf(row);
    return segments_[seg].ids[row - seg_offsets_[seg]];
  }
  // Edge stamp parallel to the lazy vertex column (0 if absent).
  int64_t StampAt(uint64_t row) const {
    size_t seg = SegmentIndexOf(row);
    const AdjSpan& s = segments_[seg];
    return s.stamps == nullptr ? 0 : s.stamps[row - seg_offsets_[seg]];
  }

  Value GetValue(uint64_t row, size_t col) const {
    if (lazy_ && col == 0) return Value::Vertex(VertexAt(row));
    return columns_[ColumnStorageIndex(col)].GetValue(row);
  }

  // Materialized column accessor. For lazy blocks, schema column c > 0 maps
  // to storage column c - 1.
  const ValueVector& Column(size_t schema_col) const {
    return columns_[ColumnStorageIndex(schema_col)];
  }
  ValueVector* MutableColumn(size_t schema_col) {
    return &columns_[ColumnStorageIndex(schema_col)];
  }

  // Appends a materialized, row-aligned column (e.g. a fetched property).
  void AppendAlignedColumn(const std::string& name, ValueVector column) {
    schema_.Add(name, column.type());
    columns_.push_back(std::move(column));
  }

  // Converts the lazy vertex column into a materialized one ("lazily
  // copied via the stored pointer ... only if we have to do so").
  void Materialize();

  // Iterates logical rows sequentially, calling fn(row, vertex_id) —
  // avoids per-row binary search on lazy blocks. Skips tombstones is NOT
  // done here; tombstoned ids are passed through as kInvalidVertex.
  template <typename Fn>
  void ForEachVertex(Fn&& fn) const {
    if (!lazy_) {
      size_t n = columns_[0].size();
      for (size_t i = 0; i < n; ++i) fn(i, columns_[0].GetVertex(i));
      return;
    }
    uint64_t row = 0;
    for (const AdjSpan& s : segments_) {
      for (uint32_t k = 0; k < s.size; ++k) fn(row++, s.ids[k]);
    }
  }

  size_t MemoryBytes() const;

 private:
  size_t ColumnStorageIndex(size_t schema_col) const {
    return lazy_ ? schema_col - 1 : schema_col;
  }

  size_t SegmentIndexOf(uint64_t row) const {
    // Cache-friendly: most access patterns are sequential. The memo is a
    // relaxed atomic because morsel-parallel operators (IntersectExpand)
    // probe the same block from several workers; any stale value is just a
    // missed shortcut, never a wrong answer.
    size_t seg = last_seg_.load(std::memory_order_relaxed);
    if (seg < segments_.size() && seg_offsets_[seg] <= row &&
        row < seg_offsets_[seg + 1]) {
      return seg;
    }
    auto it = std::upper_bound(seg_offsets_.begin(), seg_offsets_.end(), row);
    seg = static_cast<size_t>(it - seg_offsets_.begin()) - 1;
    last_seg_.store(seg, std::memory_order_relaxed);
    return seg;
  }

  Schema schema_;
  std::vector<ValueVector> columns_;

  bool lazy_ = false;
  std::vector<AdjSpan> segments_;
  // Backing storage for AppendOwnedSegment spans (unique_ptr: spans hold
  // raw pointers into the buffers, which must not move on vector growth).
  std::vector<std::unique_ptr<AdjScratch>> owned_;
  std::vector<uint64_t> seg_offsets_;
  mutable std::atomic<size_t> last_seg_{0};
};

}  // namespace ges

#endif  // GES_EXECUTOR_FBLOCK_H_
