#include "executor/ftree.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <sstream>

#include "runtime/morsel.h"
#include "runtime/scheduler.h"

namespace ges {

FTreeNode* FTree::CreateRoot() {
  assert(root_ == nullptr);
  root_ = std::make_unique<FTreeNode>();
  return root_.get();
}

FTreeNode* FTree::AddChild(FTreeNode* parent) {
  parent->children.push_back(std::make_unique<FTreeNode>());
  FTreeNode* child = parent->children.back().get();
  child->parent = parent;
  return child;
}

void FTree::RegisterColumns(FTreeNode* node) {
  for (const ColumnDef& col : node->block.schema().columns()) {
    column_owner_[col.name] = node;
  }
}

FTreeNode* FTree::NodeOfColumn(const std::string& name) const {
  auto it = column_owner_.find(name);
  return it == column_owner_.end() ? nullptr : it->second;
}

namespace {
void PreorderVisit(const FTreeNode* n, std::vector<const FTreeNode*>* out) {
  out->push_back(n);
  for (const auto& c : n->children) PreorderVisit(c.get(), out);
}
}  // namespace

std::vector<const FTreeNode*> FTree::Preorder() const {
  std::vector<const FTreeNode*> out;
  if (root_ != nullptr) PreorderVisit(root_.get(), &out);
  return out;
}

std::vector<FTreeNode*> FTree::PreorderMutable() {
  std::vector<FTreeNode*> out;
  for (const FTreeNode* n : Preorder()) {
    out.push_back(const_cast<FTreeNode*>(n));
  }
  return out;
}

namespace {

// Is row `row` of `node` usable at all (selection + tombstone check)?
inline bool RowUsable(const FTreeNode* node, uint64_t row) {
  if (!node->RowValid(row)) return false;
  const FBlock& b = node->block;
  if (b.schema().size() > 0 && b.schema()[0].type == ValueType::kVertex) {
    return b.VertexAt(row) != kInvalidVertex;
  }
  return true;
}

// down[row] for `node`: number of valid subtree combinations rooted at this
// row. Fills `down` (size = rows) and `cum` (size = rows + 1, prefix sums).
void ComputeDown(
    const FTreeNode* node,
    std::unordered_map<const FTreeNode*, std::vector<uint64_t>>* down_map,
    std::unordered_map<const FTreeNode*, std::vector<uint64_t>>* cum_map) {
  for (const auto& c : node->children) {
    ComputeDown(c.get(), down_map, cum_map);
  }
  size_t rows = node->block.NumRows();
  std::vector<uint64_t> down(rows, 0);
  for (size_t r = 0; r < rows; ++r) {
    if (!RowUsable(node, r)) continue;
    uint64_t prod = 1;
    for (const auto& c : node->children) {
      const std::vector<uint64_t>& ccum = (*cum_map)[c.get()];
      const IndexRange& range = c->parent_index[r];
      uint64_t sum = ccum[range.end] - ccum[range.begin];
      prod *= sum;
      if (prod == 0) break;
    }
    down[r] = prod;
  }
  std::vector<uint64_t> cum(rows + 1, 0);
  for (size_t r = 0; r < rows; ++r) cum[r + 1] = cum[r] + down[r];
  (*down_map)[node] = std::move(down);
  (*cum_map)[node] = std::move(cum);
}

}  // namespace

uint64_t FTree::CountTuples() const {
  if (root_ == nullptr) return 0;
  std::unordered_map<const FTreeNode*, std::vector<uint64_t>> down, cum;
  ComputeDown(root_.get(), &down, &cum);
  return cum[root_.get()].back();
}

std::vector<uint64_t> FTree::TupleCountsForNode(
    const FTreeNode* target) const {
  std::unordered_map<const FTreeNode*, std::vector<uint64_t>> down, cum;
  ComputeDown(root_.get(), &down, &cum);

  // up[node][row]: combinations of the rest of the tree compatible with the
  // row. Computed top-down (rerooting).
  std::unordered_map<const FTreeNode*, std::vector<uint64_t>> up;
  up[root_.get()] = std::vector<uint64_t>(root_->block.NumRows(), 1);
  // BFS over the tree; parents before children (preorder works).
  for (const FTreeNode* node : Preorder()) {
    const std::vector<uint64_t>& node_up = up[node];
    for (const auto& c : node->children) {
      std::vector<uint64_t> cu(c->block.NumRows(), 0);
      size_t rows = node->block.NumRows();
      for (size_t r = 0; r < rows; ++r) {
        if (!RowUsable(node, r) || node_up[r] == 0) continue;
        // Product over siblings of c.
        uint64_t w = node_up[r];
        for (const auto& s : node->children) {
          if (s.get() == c.get()) continue;
          const std::vector<uint64_t>& scum = cum[s.get()];
          const IndexRange& range = s->parent_index[r];
          w *= scum[range.end] - scum[range.begin];
          if (w == 0) break;
        }
        if (w == 0) continue;
        const IndexRange& range = c->parent_index[r];
        for (uint64_t j = range.begin; j < range.end; ++j) cu[j] += w;
      }
      up[c.get()] = std::move(cu);
    }
  }

  const std::vector<uint64_t>& tdown = down[target];
  const std::vector<uint64_t>& tup = up[target];
  std::vector<uint64_t> counts(target->block.NumRows(), 0);
  for (size_t r = 0; r < counts.size(); ++r) counts[r] = tdown[r] * tup[r];
  return counts;
}

void FTree::Flatten(const std::vector<std::string>& columns, FlatBlock* out,
                    uint64_t limit, const QueryContext* ctx) const {
  if (root_ == nullptr) return;
  TupleEnumerator e(*this);
  // Resolve columns once.
  struct Slot {
    size_t node_idx;
    size_t col_idx;
  };
  std::vector<Slot> slots;
  slots.reserve(columns.size());
  for (const std::string& name : columns) {
    FTreeNode* node = NodeOfColumn(name);
    assert(node != nullptr);
    int col = node->block.schema().IndexOf(name);
    assert(col >= 0);
    slots.push_back(Slot{e.IndexOf(node), static_cast<size_t>(col)});
  }
  // Governor charge point: de-factoring is where a compact f-Tree explodes
  // into O(#tuples) flat rows, so the budget must see the growth while the
  // loop runs, not after. The O(1) row-width estimate is trued up by the
  // caller's exact per-op accounting; the release below keeps this site's
  // charge strictly transient.
  BudgetTracker tracker(ctx != nullptr ? ctx->budget() : nullptr);
  const size_t row_bytes =
      sizeof(std::vector<Value>) + slots.size() * sizeof(Value);
  uint64_t n = 0;
  while (n < limit && e.Next()) {
    if (n % kFlattenCheckTuples == 0) {
      tracker.Update(n * row_bytes);
      ThrowIfInterrupted(ctx);
    }
    std::vector<Value> row;
    row.reserve(slots.size());
    for (const Slot& s : slots) {
      row.push_back(
          e.nodes()[s.node_idx]->block.GetValue(e.RowAt(s.node_idx), s.col_idx));
    }
    out->AppendRow(std::move(row));
    ++n;
  }
  tracker.Update(0);
}

void FTree::FlattenParallel(const std::vector<std::string>& columns,
                            FlatBlock* out, int max_workers,
                            const QueryContext* ctx) const {
  if (root_ == nullptr) return;
  size_t root_rows = root_->block.NumRows();
  if (max_workers <= 1 || root_rows < 2 * kFlattenMorselRoots) {
    Flatten(columns, out, UINT64_MAX, ctx);
    return;
  }
  // Per-root-row tuple counts pre-size the output: prefix sums give every
  // morsel of root rows a disjoint [offsets[b], offsets[e]) slice, so the
  // parallel emit preserves the sequential enumeration order exactly.
  std::vector<uint64_t> counts = TupleCountsForNode(root_.get());
  std::vector<uint64_t> offsets(root_rows + 1, 0);
  for (size_t r = 0; r < root_rows; ++r) offsets[r + 1] = offsets[r] + counts[r];
  uint64_t total = offsets[root_rows];
  if (total < kFlattenParallelMinTuples) {
    Flatten(columns, out, UINT64_MAX, ctx);
    return;
  }

  // Resolve columns to (preorder node index, column index) once.
  std::vector<const FTreeNode*> order = Preorder();
  std::unordered_map<const FTreeNode*, size_t> preorder_idx;
  for (size_t i = 0; i < order.size(); ++i) preorder_idx[order[i]] = i;
  struct Slot {
    size_t node_idx;
    size_t col_idx;
  };
  std::vector<Slot> slots;
  slots.reserve(columns.size());
  for (const std::string& name : columns) {
    FTreeNode* node = NodeOfColumn(name);
    assert(node != nullptr);
    int col = node->block.schema().IndexOf(name);
    assert(col >= 0);
    slots.push_back(Slot{preorder_idx.at(node), static_cast<size_t>(col)});
  }

  size_t base = out->NumRows();
  std::vector<std::vector<Value>>& rows = out->rows();
  // Governor charge point (same transient protocol as Flatten): the DP
  // pre-size is charged up front — it alone can be the hog's spike — and
  // each morsel charges its emitted rows as it fills its slice. All of it
  // is released here once the caller's exact per-op accounting takes over.
  MemoryBudget* budget = ctx != nullptr ? ctx->budget() : nullptr;
  const size_t row_bytes = slots.size() * sizeof(Value);
  size_t presize_bytes = total * sizeof(std::vector<Value>);
  if (budget != nullptr) {
    budget->Charge(presize_bytes);
    ThrowIfInterrupted(ctx);
  }
  rows.resize(base + total);
  std::atomic<size_t> morsel_charged{0};
  auto emit = [&](size_t begin_row, size_t end_row) {
    if (offsets[begin_row] == offsets[end_row]) return;
    BudgetTracker tracker(budget);
    TupleEnumerator e(*this, begin_row, end_row);
    size_t i = base + offsets[begin_row];
    size_t emitted = 0;
    while (e.Next()) {
      if (emitted++ % kFlattenCheckTuples == 0) {
        tracker.Update(emitted * row_bytes);
        ThrowIfInterrupted(ctx);
      }
      std::vector<Value> row;
      row.reserve(slots.size());
      for (const Slot& s : slots) {
        row.push_back(e.nodes()[s.node_idx]->block.GetValue(
            e.RowAt(s.node_idx), s.col_idx));
      }
      rows[i++] = std::move(row);
    }
    assert(i == base + offsets[end_row] && "DP count != enumeration count");
    tracker.Update(emitted * row_bytes);
    morsel_charged.fetch_add(tracker.charged(), std::memory_order_relaxed);
  };
  TaskScheduler::Global().ParallelFor(0, root_rows, kFlattenMorselRoots,
                                      max_workers, emit, ctx);
  if (budget != nullptr) {
    budget->Release(presize_bytes +
                    morsel_charged.load(std::memory_order_relaxed));
  }
}

size_t FTree::MemoryBytes() const {
  size_t bytes = 0;
  for (const FTreeNode* n : Preorder()) {
    bytes += n->block.MemoryBytes() + n->sel.capacity() +
             n->parent_index.capacity() * sizeof(IndexRange);
  }
  return bytes;
}

std::string FTree::DebugString() const {
  std::ostringstream os;
  for (const FTreeNode* n : Preorder()) {
    int depth = 0;
    for (const FTreeNode* p = n->parent; p != nullptr; p = p->parent) ++depth;
    for (int i = 0; i < depth; ++i) os << "  ";
    os << "node(rows=" << n->block.NumRows()
       << (n->block.lazy() ? ", lazy" : "") << "):";
    for (const ColumnDef& c : n->block.schema().columns()) {
      os << " " << c.name;
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// TupleEnumerator
// ---------------------------------------------------------------------------

TupleEnumerator::TupleEnumerator(const FTree& tree)
    : TupleEnumerator(tree, 0, UINT64_MAX) {}

TupleEnumerator::TupleEnumerator(const FTree& tree, uint64_t root_begin,
                                 uint64_t root_end)
    : root_begin_(root_begin), root_end_(root_end) {
  nodes_ = tree.Preorder();
  for (size_t i = 0; i < nodes_.size(); ++i) index_of_[nodes_[i]] = i;
  parent_idx_.resize(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    parent_idx_[i] =
        nodes_[i]->parent == nullptr ? 0 : index_of_[nodes_[i]->parent];
  }
  cur_.resize(nodes_.size(), 0);
  begin_.resize(nodes_.size(), 0);
  end_.resize(nodes_.size(), 0);
  done_ = nodes_.empty();
}

void TupleEnumerator::SetRange(size_t i) {
  const FTreeNode* node = nodes_[i];
  if (node->parent == nullptr) {
    uint64_t rows = node->block.NumRows();
    begin_[i] = std::min(root_begin_, rows);
    end_[i] = std::min(root_end_, rows);
  } else {
    const IndexRange& r = node->parent_index[cur_[parent_idx_[i]]];
    begin_[i] = r.begin;
    end_[i] = r.end;
  }
}

uint64_t TupleEnumerator::FindValid(size_t i, uint64_t from) const {
  const FTreeNode* node = nodes_[i];
  uint64_t lo = from < begin_[i] ? begin_[i] : from;
  for (uint64_t r = lo; r < end_[i]; ++r) {
    if (RowUsable(node, r)) return r;
  }
  return kNone;
}

bool TupleEnumerator::Fill(size_t from) {
  size_t m = nodes_.size();
  size_t i = from;
  while (i < m) {
    SetRange(i);
    uint64_t r = FindValid(i, begin_[i]);
    while (r == kNone) {
      if (i == 0) return false;
      --i;
      r = FindValid(i, cur_[i] + 1);
    }
    cur_[i] = r;
    ++i;
  }
  return true;
}

bool TupleEnumerator::Next() {
  if (done_) return false;
  if (!started_) {
    started_ = true;
    if (!Fill(0)) {
      done_ = true;
      return false;
    }
    return true;
  }
  size_t i = nodes_.size();
  while (i > 0) {
    --i;
    uint64_t r = FindValid(i, cur_[i] + 1);
    if (r != kNone) {
      cur_[i] = r;
      if (Fill(i + 1)) return true;
      // Fill backtracked and failed all the way: exhausted.
      done_ = true;
      return false;
    }
  }
  done_ = true;
  return false;
}

}  // namespace ges
