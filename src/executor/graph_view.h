// A read snapshot of the graph handed to executors (unified storage access
// interface in Figure 1).
#ifndef GES_EXECUTOR_GRAPH_VIEW_H_
#define GES_EXECUTOR_GRAPH_VIEW_H_

#include <vector>

#include "common/types.h"
#include "common/value.h"
#include "storage/graph.h"
#include "storage/intersect.h"

namespace ges {

class GraphView {
 public:
  GraphView(const Graph* graph, Version version)
      : graph_(graph), version_(version) {}
  // Snapshot at the current version.
  explicit GraphView(const Graph* graph)
      : GraphView(graph, graph->CurrentVersion()) {}

  const Graph& graph() const { return *graph_; }
  Version version() const { return version_; }

  // `scratch` backs decoding when the relation has a compressed segment
  // installed (DESIGN.md §16); the returned span is valid until the scratch
  // is reused. Call sites holding one span at a time reuse one scratch.
  AdjSpan Neighbors(RelationId rel, VertexId v,
                    AdjScratch* scratch = nullptr) const {
    return graph_->Neighbors(rel, v, version_, scratch);
  }
  uint32_t Degree(RelationId rel, VertexId v) const {
    return graph_->Degree(rel, v, version_);
  }
  Value Property(VertexId v, PropertyId p) const {
    return graph_->GetProperty(v, p, version_);
  }
  // Batched gather: appends `p` of ids[0..n) to `out`, zero placeholders
  // for rows deselected by the byte mask `sel` (may be null). Resolves the
  // MVCC snapshot once per batch; see Graph::GatherProperties.
  void GatherProperties(const VertexId* ids, size_t n, const uint8_t* sel,
                        PropertyId p, ValueVector* out) const {
    graph_->GatherProperties(ids, n, sel, p, version_, out);
  }
  LabelId LabelOf(VertexId v) const { return graph_->LabelOf(v, version_); }
  VertexId FindByExtId(LabelId label, int64_t ext_id) const {
    return graph_->FindByExtId(label, ext_id, version_);
  }
  void ScanLabel(LabelId label, std::vector<VertexId>* out) const {
    graph_->ScanLabel(label, version_, out);
  }

  // True if an edge v -> w exists in any of `rels` (tombstones skipped).
  // Galloping search over the sorted neighbor list (linear only for the
  // rare tombstoned base span); `stats` may be null. The probe consumes
  // each span before fetching the next, so one scratch serves all rels.
  bool HasEdge(const std::vector<RelationId>& rels, VertexId v, VertexId w,
               IntersectOpStats* stats = nullptr,
               AdjScratch* scratch = nullptr) const {
    for (RelationId rel : rels) {
      if (SpanContains(Neighbors(rel, v, scratch), w, stats)) return true;
    }
    return false;
  }

 private:
  const Graph* graph_;
  Version version_;
};

}  // namespace ges

#endif  // GES_EXECUTOR_GRAPH_VIEW_H_
