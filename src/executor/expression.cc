#include "executor/expression.h"

#include <cassert>
#include <memory>

namespace ges {

namespace {
std::shared_ptr<Expr> New(ExprOp op) {
  auto e = std::make_shared<Expr>();
  e->op = op;
  return e;
}
}  // namespace

ExprPtr Expr::Col(std::string name) {
  auto e = New(ExprOp::kColumn);
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = New(ExprOp::kConst);
  e->constant = std::move(v);
  return e;
}

ExprPtr Expr::Param(int index, Value hint) {
  auto e = New(ExprOp::kParam);
  e->param_index = index;
  e->constant = std::move(hint);
  return e;
}

ExprPtr Expr::Cmp(ExprOp op, ExprPtr a, ExprPtr b) {
  auto e = New(op);
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::And(ExprPtr a, ExprPtr b) {
  auto e = New(ExprOp::kAnd);
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Or(ExprPtr a, ExprPtr b) {
  auto e = New(ExprOp::kOr);
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Not(ExprPtr a) {
  auto e = New(ExprOp::kNot);
  e->args = {std::move(a)};
  return e;
}

ExprPtr Expr::Add(ExprPtr a, ExprPtr b) {
  auto e = New(ExprOp::kAdd);
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Sub(ExprPtr a, ExprPtr b) {
  auto e = New(ExprOp::kSub);
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Mul(ExprPtr a, ExprPtr b) {
  auto e = New(ExprOp::kMul);
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::In(ExprPtr a, std::vector<Value> values) {
  auto e = New(ExprOp::kIn);
  e->args = {std::move(a)};
  e->list = std::move(values);
  return e;
}

ExprPtr Expr::IsNull(ExprPtr a) {
  auto e = New(ExprOp::kIsNull);
  e->args = {std::move(a)};
  return e;
}

ExprPtr Expr::StartsWith(ExprPtr a, std::string prefix) {
  auto e = New(ExprOp::kStartsWith);
  e->args = {std::move(a)};
  e->constant = Value::String(std::move(prefix));
  return e;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (op == ExprOp::kColumn) out->push_back(column);
  for (const ExprPtr& a : args) a->CollectColumns(out);
}

std::string Expr::ToString() const {
  switch (op) {
    case ExprOp::kColumn:
      return column;
    case ExprOp::kConst:
      return constant.ToString();
    case ExprOp::kParam:
      return "$" + std::to_string(param_index);
    default: {
      std::string s = "(op";
      s += std::to_string(static_cast<int>(op));
      for (const ExprPtr& a : args) {
        s += " " + a->ToString();
      }
      s += ")";
      return s;
    }
  }
}

BoundExpr BoundExpr::Bind(const Expr& expr, const Schema& schema) {
  BoundExpr b;
  // kParam must be substituted by BindPlanParams before execution; if one
  // slips through, evaluate its first-seen literal hint as a constant.
  b.op_ = expr.op == ExprOp::kParam ? ExprOp::kConst : expr.op;
  b.constant_ = expr.constant;
  b.list_ = expr.list;
  if (expr.op == ExprOp::kColumn) {
    b.col_index_ = schema.IndexOf(expr.column);
    assert(b.col_index_ >= 0 && "column not bindable against schema");
  }
  b.args_.reserve(expr.args.size());
  for (const ExprPtr& a : expr.args) {
    b.args_.push_back(Bind(*a, schema));
  }
  return b;
}

}  // namespace ges
