// Tuple-at-a-time Volcano interpreter.
//
// This is the conventional-GDBMS executor architecture (virtual Next() per
// tuple, per-row materialization everywhere) used as the stand-in for the
// commercial systems of Table 4 / Figure 15 — see DESIGN.md substitutions.
#include <cassert>
#include <memory>
#include <unordered_set>

#include "common/timer.h"
#include "executor/executor.h"
#include "executor/executor_internal.h"

namespace ges {

namespace {

using Row = std::vector<Value>;

class VolOp {
 public:
  virtual ~VolOp() = default;
  virtual bool Next(Row* row) = 0;
  const Schema& schema() const { return schema_; }

 protected:
  Schema schema_;
};

class VolSeek : public VolOp {
 public:
  VolSeek(const PlanOp& op, const GraphView& view) : op_(op), view_(view) {
    schema_.Add(op.out_column, ValueType::kVertex);
  }
  bool Next(Row* row) override {
    if (done_) return false;
    done_ = true;
    VertexId v = view_.FindByExtId(op_.label, op_.seek_ext_id);
    if (v == kInvalidVertex) return false;
    *row = {Value::Vertex(v)};
    return true;
  }

 private:
  const PlanOp& op_;
  const GraphView& view_;
  bool done_ = false;
};

class VolScan : public VolOp {
 public:
  VolScan(const PlanOp& op, const GraphView& view) {
    schema_.Add(op.out_column, ValueType::kVertex);
    view.ScanLabel(op.label, &ids_);
  }
  bool Next(Row* row) override {
    if (pos_ >= ids_.size()) return false;
    *row = {Value::Vertex(ids_[pos_++])};
    return true;
  }

 private:
  std::vector<VertexId> ids_;
  size_t pos_ = 0;
};

class VolExpand : public VolOp {
 public:
  VolExpand(std::unique_ptr<VolOp> child, const PlanOp& op,
            const GraphView& view)
      : child_(std::move(child)), op_(op), view_(view) {
    schema_ = child_->schema();
    src_idx_ = schema_.IndexOf(op.in_column);
    assert(src_idx_ >= 0);
    schema_.Add(op.out_column, ValueType::kVertex);
    want_dist_ = !op.distance_column.empty();
    want_stamp_ = !op.stamp_column.empty();
    if (want_dist_) schema_.Add(op.distance_column, ValueType::kInt64);
    if (want_stamp_) schema_.Add(op.stamp_column, ValueType::kDate);
  }

  bool Next(Row* row) override {
    while (true) {
      if (pos_ < nbrs_.size()) {
        *row = current_;
        row->push_back(Value::Vertex(nbrs_[pos_].first));
        if (want_dist_) row->push_back(Value::Int(nbrs_[pos_].second));
        if (want_stamp_) row->push_back(Value::Date(stamps_[pos_]));
        ++pos_;
        return true;
      }
      if (!child_->Next(&current_)) return false;
      nbrs_.clear();
      stamps_.clear();
      pos_ = 0;
      CollectNeighbors(view_, op_.rels, current_[src_idx_].AsVertex(),
                       op_.min_hops, op_.max_hops, op_.distinct,
                       op_.exclude_start, &nbrs_,
                       want_stamp_ ? &stamps_ : nullptr);
    }
  }

 private:
  std::unique_ptr<VolOp> child_;
  const PlanOp& op_;
  const GraphView& view_;
  int src_idx_;
  bool want_dist_ = false;
  bool want_stamp_ = false;
  Row current_;
  std::vector<std::pair<VertexId, int>> nbrs_;
  std::vector<int64_t> stamps_;
  size_t pos_ = 0;
};

class VolGetProperty : public VolOp {
 public:
  VolGetProperty(std::unique_ptr<VolOp> child, const PlanOp& op,
                 const GraphView& view)
      : child_(std::move(child)), op_(op), view_(view) {
    schema_ = child_->schema();
    src_idx_ = schema_.IndexOf(op.in_column);
    assert(src_idx_ >= 0);
    schema_.Add(op.out_column, op.property_type);
  }
  bool Next(Row* row) override {
    if (!child_->Next(row)) return false;
    row->push_back(view_.Property((*row)[src_idx_].AsVertex(), op_.property));
    return true;
  }

 private:
  std::unique_ptr<VolOp> child_;
  const PlanOp& op_;
  const GraphView& view_;
  int src_idx_;
};

class VolFilter : public VolOp {
 public:
  VolFilter(std::unique_ptr<VolOp> child, const PlanOp& op)
      : child_(std::move(child)),
        pred_(BoundExpr::Bind(*op.predicate, child_->schema())) {
    schema_ = child_->schema();
  }
  bool Next(Row* row) override {
    while (child_->Next(row)) {
      if (pred_.EvalRow(*row).AsBool()) return true;
    }
    return false;
  }

 private:
  std::unique_ptr<VolOp> child_;
  BoundExpr pred_;
};

class VolExpandInto : public VolOp {
 public:
  VolExpandInto(std::unique_ptr<VolOp> child, const PlanOp& op,
                const GraphView& view, IntersectOpStats* istats)
      : child_(std::move(child)), op_(op), view_(view), istats_(istats) {
    schema_ = child_->schema();
    a_ = schema_.IndexOf(op.in_column);
    b_ = schema_.IndexOf(op.other_column);
    assert(a_ >= 0 && b_ >= 0);
  }
  bool Next(Row* row) override {
    while (child_->Next(row)) {
      bool has = view_.HasEdge(op_.rels, (*row)[a_].AsVertex(),
                               (*row)[b_].AsVertex(), istats_);
      if (has != op_.anti) return true;
    }
    return false;
  }

 private:
  std::unique_ptr<VolOp> child_;
  const PlanOp& op_;
  const GraphView& view_;
  IntersectOpStats* istats_;
  int a_;
  int b_;
};

// Tuple-at-a-time multiway intersection: per input row, materialize the
// surviving neighbors (via the shared leapfrog runner) and stream them.
class VolIntersectExpand : public VolOp {
 public:
  VolIntersectExpand(std::unique_ptr<VolOp> child, const PlanOp& op,
                     const GraphView& view, IntersectOpStats* istats)
      : child_(std::move(child)),
        op_(op),
        view_(view),
        istats_(istats),
        runner_(op) {
    schema_ = child_->schema();
    src_idx_ = schema_.IndexOf(op.in_column);
    assert(src_idx_ >= 0);
    for (const std::string& p : op.probe_columns) {
      int i = schema_.IndexOf(p);
      assert(i >= 0);
      probe_idx_.push_back(i);
    }
    probe_vals_.resize(probe_idx_.size());
    schema_.Add(op.out_column, ValueType::kVertex);
  }

  bool Next(Row* row) override {
    while (true) {
      if (pos_ < matches_.size()) {
        *row = current_;
        row->push_back(Value::Vertex(matches_[pos_++]));
        return true;
      }
      if (!child_->Next(&current_)) return false;
      matches_.clear();
      pos_ = 0;
      for (size_t c = 0; c < probe_idx_.size(); ++c) {
        probe_vals_[c] = current_[probe_idx_[c]].AsVertex();
      }
      runner_.Run(view_, current_[src_idx_].AsVertex(), probe_vals_.data(),
                  istats_, [&](VertexId w) { matches_.push_back(w); });
    }
  }

 private:
  std::unique_ptr<VolOp> child_;
  const PlanOp& op_;
  const GraphView& view_;
  IntersectOpStats* istats_;
  internal::IntersectExpandRunner runner_;
  int src_idx_;
  std::vector<int> probe_idx_;
  std::vector<VertexId> probe_vals_;
  Row current_;
  std::vector<VertexId> matches_;
  size_t pos_ = 0;
};

class VolLimit : public VolOp {
 public:
  VolLimit(std::unique_ptr<VolOp> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {
    schema_ = child_->schema();
  }
  bool Next(Row* row) override {
    if (n_ >= limit_) return false;
    if (!child_->Next(row)) return false;
    ++n_;
    return true;
  }

 private:
  std::unique_ptr<VolOp> child_;
  uint64_t limit_;
  uint64_t n_ = 0;
};

class VolDistinct : public VolOp {
 public:
  explicit VolDistinct(std::unique_ptr<VolOp> child)
      : child_(std::move(child)) {
    schema_ = child_->schema();
  }
  bool Next(Row* row) override {
    while (child_->Next(row)) {
      if (seen_.insert(*row).second) return true;
    }
    return false;
  }
  size_t BufferedBytes() const {
    size_t b = 0;
    for (const Row& r : seen_) b += r.capacity() * sizeof(Value);
    return b;
  }

 private:
  std::unique_ptr<VolOp> child_;
  std::unordered_set<Row, internal::RowHash, internal::RowEq> seen_;
};

// Blocking operator base: drains the child into a FlatBlock on first Next,
// applies `Process`, then streams the result.
class VolBlocking : public VolOp {
 public:
  VolBlocking(std::unique_ptr<VolOp> child, size_t* peak_bytes)
      : child_(std::move(child)), peak_bytes_(peak_bytes) {}

  bool Next(Row* row) override {
    if (!materialized_) {
      FlatBlock in(child_->schema());
      Row r;
      while (child_->Next(&r)) in.AppendRow(std::move(r));
      if (peak_bytes_ != nullptr) {
        *peak_bytes_ = std::max(*peak_bytes_, in.MemoryBytes());
      }
      out_ = Process(std::move(in));
      materialized_ = true;
    }
    if (pos_ >= out_.NumRows()) return false;
    *row = out_.Row(pos_++);
    return true;
  }

 protected:
  virtual FlatBlock Process(FlatBlock in) = 0;

  std::unique_ptr<VolOp> child_;

 private:
  size_t* peak_bytes_;
  bool materialized_ = false;
  FlatBlock out_;
  size_t pos_ = 0;
};

class VolOrderBy : public VolBlocking {
 public:
  VolOrderBy(std::unique_ptr<VolOp> child, const PlanOp& op,
             size_t* peak_bytes)
      : VolBlocking(std::move(child), peak_bytes), op_(op) {
    schema_ = child_->schema();
  }

 protected:
  FlatBlock Process(FlatBlock in) override {
    SortAndLimit(&in, op_.sort_keys, op_.limit);
    return in;
  }

 private:
  const PlanOp& op_;
};

class VolAggregate : public VolBlocking {
 public:
  VolAggregate(std::unique_ptr<VolOp> child, const PlanOp& op,
               size_t* peak_bytes)
      : VolBlocking(std::move(child), peak_bytes), op_(op) {
    // Output schema is computed by HashAggregate; approximate here for
    // parents (they resolve by name).
    FlatBlock probe(child_->schema());
    schema_ = HashAggregate(probe, op.group_by, op.aggs).schema();
  }

 protected:
  FlatBlock Process(FlatBlock in) override {
    return HashAggregate(in, op_.group_by, op_.aggs);
  }

 private:
  const PlanOp& op_;
};

class VolProject : public VolBlocking {
 public:
  VolProject(std::unique_ptr<VolOp> child, const PlanOp& op,
             size_t* peak_bytes)
      : VolBlocking(std::move(child), peak_bytes), op_(op) {
    FlatBlock probe(child_->schema());
    schema_ = ProjectFlat(probe, op).schema();
  }

 protected:
  FlatBlock Process(FlatBlock in) override { return ProjectFlat(in, op_); }

 private:
  const PlanOp& op_;
};

class VolProcedure : public VolOp {
 public:
  VolProcedure(const PlanOp& op, const GraphView& view)
      : out_(op.procedure(view)) {
    schema_ = out_.schema();
  }
  bool Next(Row* row) override {
    if (pos_ >= out_.NumRows()) return false;
    *row = out_.Row(pos_++);
    return true;
  }

 private:
  FlatBlock out_;
  size_t pos_ = 0;
};

}  // namespace

QueryResult RunVolcano(const Plan& plan, const GraphView& view) {
  QueryResult result;
  Timer total;
  size_t peak_bytes = 0;
  IntersectOpStats istats;

  std::unique_ptr<VolOp> pipeline;
  for (const PlanOp& op : plan.ops) {
    switch (op.type) {
      case OpType::kNodeByIdSeek:
        pipeline = std::make_unique<VolSeek>(op, view);
        break;
      case OpType::kScanByLabel:
        pipeline = std::make_unique<VolScan>(op, view);
        break;
      case OpType::kExpand:
        pipeline = std::make_unique<VolExpand>(std::move(pipeline), op, view);
        break;
      case OpType::kGetProperty:
        pipeline =
            std::make_unique<VolGetProperty>(std::move(pipeline), op, view);
        break;
      case OpType::kFilter:
        pipeline = std::make_unique<VolFilter>(std::move(pipeline), op);
        break;
      case OpType::kProject:
        pipeline =
            std::make_unique<VolProject>(std::move(pipeline), op, &peak_bytes);
        break;
      case OpType::kOrderBy:
      case OpType::kTopK:
        pipeline =
            std::make_unique<VolOrderBy>(std::move(pipeline), op, &peak_bytes);
        break;
      case OpType::kAggregate:
        pipeline = std::make_unique<VolAggregate>(std::move(pipeline), op,
                                                  &peak_bytes);
        break;
      case OpType::kLimit:
        pipeline = std::make_unique<VolLimit>(std::move(pipeline), op.limit);
        break;
      case OpType::kDistinct:
        pipeline = std::make_unique<VolDistinct>(std::move(pipeline));
        break;
      case OpType::kExpandInto:
        pipeline = std::make_unique<VolExpandInto>(std::move(pipeline), op,
                                                   view, &istats);
        break;
      case OpType::kIntersectExpand:
        pipeline = std::make_unique<VolIntersectExpand>(std::move(pipeline),
                                                        op, view, &istats);
        break;
      case OpType::kProcedure:
        pipeline = std::make_unique<VolProcedure>(op, view);
        break;
      default:
        // Fused operators never reach the Volcano engine (plans are only
        // optimized for kFactorizedFused); treat defensively as a bug.
        assert(false && "fused operator in Volcano plan");
        break;
    }
  }

  FlatBlock out(pipeline->schema());
  Row row;
  while (pipeline->Next(&row)) out.AppendRow(std::move(row));
  peak_bytes = std::max(peak_bytes, out.MemoryBytes());

  result.table = internal::ProjectOutput(out, plan.output);
  result.stats.peak_intermediate_bytes = peak_bytes;
  result.stats.intersect = istats;
  result.stats.total_millis = total.ElapsedMillis();
  return result;
}

}  // namespace ges
