// Operator-fusion plan rewrites (Section 4.3, "Operator Fusion").
#ifndef GES_EXECUTOR_OPTIMIZER_H_
#define GES_EXECUTOR_OPTIMIZER_H_

#include "executor/executor.h"
#include "executor/plan.h"

namespace ges {

// Applies the heuristic fusion rules enabled in `options` and returns the
// rewritten plan:
//
//  * FilterPushDown — Expand ; GetProperty ; Filter  =>  ExpandFiltered
//    (the predicate is evaluated while neighbors are generated, so unused
//    neighbors and their properties are never listed);
//  * AggregateProjectTop — Aggregate ; [Project] ; OrderBy+Limit  =>
//    one fused operator that aggregates directly on the f-Tree (or streams
//    tuples through group states) and keeps only the top-k rows;
//  * TopK — OrderBy with a small LIMIT  =>  bounded-heap de-factoring.
//
// Rewrites preserve result semantics; the equivalence tests run every
// query through fused and unfused plans.
Plan OptimizePlan(const Plan& plan, const ExecOptions& options);

}  // namespace ges

#endif  // GES_EXECUTOR_OPTIMIZER_H_
