// Operator-fusion plan rewrites (Section 4.3, "Operator Fusion").
#ifndef GES_EXECUTOR_OPTIMIZER_H_
#define GES_EXECUTOR_OPTIMIZER_H_

#include "executor/executor.h"
#include "executor/plan.h"

namespace ges {

// Applies the heuristic fusion rules enabled in `options` and returns the
// rewritten plan:
//
//  * FilterPushDown — Expand ; GetProperty ; Filter  =>  ExpandFiltered
//    (the predicate is evaluated while neighbors are generated, so unused
//    neighbors and their properties are never listed);
//  * AggregateProjectTop — Aggregate ; [Project] ; OrderBy+Limit  =>
//    one fused operator that aggregates directly on the f-Tree (or streams
//    tuples through group states) and keeps only the top-k rows;
//  * TopK — OrderBy with a small LIMIT  =>  bounded-heap de-factoring;
//  * IntersectExpand — Expand ; ExpandInto+ over the new column  =>  one
//    worst-case-optimal multiway intersection (DESIGN.md §12). When `view`
//    is provided, the rewrite is gated by a cost model over the per-label
//    average degrees from the adjacency metadata; without a view it is
//    applied rule-based (the intersection is never asymptotically worse).
//
// Rewrites preserve result semantics; the equivalence tests run every
// query through fused and unfused plans.
Plan OptimizePlan(const Plan& plan, const ExecOptions& options,
                  const GraphView* view = nullptr);

}  // namespace ges

#endif  // GES_EXECUTOR_OPTIMIZER_H_
