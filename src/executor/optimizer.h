// Operator-fusion plan rewrites (Section 4.3, "Operator Fusion") and the
// statistics-driven cost model (DESIGN.md §14).
#ifndef GES_EXECUTOR_OPTIMIZER_H_
#define GES_EXECUTOR_OPTIMIZER_H_

#include <string>
#include <unordered_map>

#include "executor/executor.h"
#include "executor/plan.h"

namespace ges {

// Applies the heuristic fusion rules enabled in `options` and returns the
// rewritten plan:
//
//  * FilterPushDown — Expand ; GetProperty ; Filter  =>  ExpandFiltered
//    (the predicate is evaluated while neighbors are generated, so unused
//    neighbors and their properties are never listed);
//  * AggregateProjectTop — Aggregate ; [Project] ; OrderBy+Limit  =>
//    one fused operator that aggregates directly on the f-Tree (or streams
//    tuples through group states) and keeps only the top-k rows;
//  * TopK — OrderBy with a small LIMIT  =>  bounded-heap de-factoring;
//  * IntersectExpand — Expand ; ExpandInto+ over the new column  =>  one
//    worst-case-optimal multiway intersection (DESIGN.md §12). When `view`
//    is provided, the rewrite is gated by a cost model over the per-label
//    average degrees from the adjacency metadata; without a view it is
//    applied rule-based (the intersection is never asymptotically worse).
//
// Rewrites preserve result semantics; the equivalence tests run every
// query through fused and unfused plans.
Plan OptimizePlan(const Plan& plan, const ExecOptions& options,
                  const GraphView* view = nullptr);

// Maps every intermediate column of `plan` to its statistics: vertex
// columns get their label's vertex count as NDV, property columns their
// (label, property) NDV/min-max from the catalog-owned GraphStats. Empty
// when statistics have not been built yet. The result feeds
// ExecOptions::column_stats (vectorized conjunct ordering) and is cached
// alongside prepared-plan templates.
std::unordered_map<std::string, ColumnStat> CollectPlanColumnStats(
    const Plan& plan, const Graph& graph);

// Estimated fraction of rows surviving `pred` (0..1), using `stats` for
// equality (1/NDV) and range (fraction of [min, max]) predicates and the
// static per-operator guesses otherwise. Parameter placeholders are
// estimated through their first-seen literal hint.
double EstimateSelectivity(
    const Expr& pred,
    const std::unordered_map<std::string, ColumnStat>& stats);

// Fills PlanOp::est_rows for every operator from the degree histograms and
// column statistics (-1 stays where no estimate is possible). Called by
// OptimizePlan when a view is available; exposed for EXPLAIN on non-fused
// plans and for tests.
void AnnotateCardinalities(
    Plan* plan, const Graph& graph,
    const std::unordered_map<std::string, ColumnStat>& column_stats);

}  // namespace ges

#endif  // GES_EXECUTOR_OPTIMIZER_H_
