// Column schemas for intermediate results.
#ifndef GES_EXECUTOR_SCHEMA_H_
#define GES_EXECUTOR_SCHEMA_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace ges {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

// Per-column statistics handed to the vectorized compiler so conjunct
// ordering can use real NDV / min-max instead of static guesses. Keyed by
// intermediate column name (the planner names property columns uniquely).
struct ColumnStat {
  uint64_t count = 0;  // non-null values sampled
  uint64_t ndv = 0;    // number of distinct values (0 = unknown)
  bool has_range = false;
  double min = 0;  // numeric min/max when has_range
  double max = 0;
};

// Ordered attribute list of a block. Attribute names are unique within a
// query plan (the planner enforces it), which gives the f-Tree its
// "disjoint schema partition" property for free.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> cols) : cols_(std::move(cols)) {}

  size_t size() const { return cols_.size(); }
  const ColumnDef& operator[](size_t i) const { return cols_[i]; }
  const std::vector<ColumnDef>& columns() const { return cols_; }

  void Add(std::string name, ValueType type) {
    cols_.push_back(ColumnDef{std::move(name), type});
  }

  // Index of `name`, or -1.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<ColumnDef> cols_;
};

}  // namespace ges

#endif  // GES_EXECUTOR_SCHEMA_H_
