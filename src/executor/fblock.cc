#include "executor/fblock.h"

namespace ges {

void FBlock::Materialize() {
  if (!lazy_) return;
  // Edge stamps, if an operator needs them, are fetched into an aligned
  // column while the block is still lazy (see ExpandOp); only the vertex
  // ids themselves are copied here.
  ValueVector ids(ValueType::kVertex);
  ids.Reserve(NumRows());
  for (const AdjSpan& s : segments_) {
    for (uint32_t k = 0; k < s.size; ++k) {
      ids.AppendVertex(s.ids[k]);
    }
  }
  // The materialized vertex column becomes storage column 0; existing
  // aligned columns shift right.
  columns_.insert(columns_.begin(), std::move(ids));
  lazy_ = false;
  segments_.clear();
  segments_.shrink_to_fit();
  owned_.clear();
  owned_.shrink_to_fit();
  seg_offsets_.clear();
  seg_offsets_.shrink_to_fit();
}

size_t FBlock::MemoryBytes() const {
  size_t bytes = 0;
  for (const ValueVector& c : columns_) bytes += c.MemoryBytes();
  bytes += segments_.capacity() * sizeof(AdjSpan) +
           seg_offsets_.capacity() * sizeof(uint64_t);
  for (const auto& o : owned_) {
    bytes += sizeof(AdjScratch) + o->ids.capacity() * sizeof(VertexId) +
             o->stamps.capacity() * sizeof(int64_t);
  }
  return bytes;
}

}  // namespace ges
