// The GES query executor: one Plan interpreter with four engine variants.
//
//   kVolcano         — tuple-at-a-time row engine (conventional-GDBMS proxy
//                      used in the system-comparison experiments);
//   kFlat            — block-based flat executor: every operator fully
//                      materializes row-oriented intermediate results
//                      (the paper's "GES" baseline);
//   kFactorized      — the factorized executor: operators run natively on
//                      the f-Tree, de-factoring only when required
//                      (the paper's "GES_f");
//   kFactorizedFused — factorized + operator fusion (FilterPushDown into
//                      Expand, TopK during de-factoring, AggregateProjectTop)
//                      and pointer-based joins (the paper's "GES_f*").
//
// All variants interpret the same Plan and must produce identical result
// relations (up to row order before the final OrderBy), which the test
// suite verifies — our stand-in for the LDBC audit.
#ifndef GES_EXECUTOR_EXECUTOR_H_
#define GES_EXECUTOR_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "executor/flatblock.h"
#include "executor/graph_view.h"
#include "executor/plan.h"
#include "executor/schema.h"
#include "runtime/query_context.h"

namespace ges {

enum class ExecMode : uint8_t {
  kVolcano,
  kFlat,
  kFactorized,
  kFactorizedFused,
};

const char* ExecModeName(ExecMode mode);

struct ExecOptions {
  // Pointer-based join: Expand stores (ptr, len) into adjacency arrays
  // instead of copying neighbor ids (factorized modes only).
  bool pointer_join = true;
  // Branch-free selection-vector kernels for simple int comparisons
  // (Section 5, "Vectorization"); factorized modes only.
  bool vectorized_filter = true;
  // Maximum concurrent workers for intra-query parallelism (the Runtime
  // component of Figure 1). <= 1 = sequential. Operators whose f-Tree
  // locality makes them embarrassingly parallel — Expand over source rows,
  // the vectorized filter kernel, and the Lemma 4.4 de-factor loop — run
  // as morsels on the process-wide TaskScheduler (runtime/scheduler.h),
  // the same pool the driver uses for inter-query parallelism. Results are
  // bit-identical for every setting.
  int intra_query_threads = 1;
  // Individual fusion rules (applied only in kFactorizedFused).
  bool fuse_filter_into_expand = true;
  bool fuse_topk = true;
  bool fuse_agg_project_top = true;
  // Worst-case-optimal rewrite (DESIGN.md §12): a 1-hop Expand followed by
  // an ExpandInto chain over its output column becomes one IntersectExpand
  // (leapfrog multiway intersection), gated by the degree-based cost model
  // when adjacency statistics are available. Disable to ablate against the
  // binary Expand + ExpandInto plan.
  bool intersect_expand = true;
  // Per-operator memory/row accounting (Figure 3, Table 2). Disable for
  // pure-throughput runs to avoid measurement overhead.
  bool collect_stats = true;
  // Compiled expression kernels + batched property gather (the vectorized
  // engine, DESIGN.md §9): filters, fused expand-filter, property fetch and
  // computed projections run type-specialized column kernels instead of the
  // interpreted BoundExpr walk. When false every path takes the interpreted
  // route — the differential-testing oracle. Filter kernels additionally
  // require `vectorized_filter` (the legacy ablation switch).
  bool vector_kernels = true;
  // Deadline/cancellation context (service layer). Not owned; may be null
  // (direct engine use). When set, operators poll it at morsel boundaries
  // and Run() reports interruption via QueryResult::interrupted instead of
  // finishing the query. Kept last so existing designated initializers
  // stay valid.
  QueryContext* context = nullptr;
  // Per-column statistics (CollectPlanColumnStats, optimizer.h) consumed by
  // the vectorized compiler so conjunct ordering uses real NDV / min-max
  // instead of static guesses. Not owned; may be null.
  const std::unordered_map<std::string, ColumnStat>* column_stats = nullptr;
  // The plan already went through OptimizePlan (a cached prepared-statement
  // template): kFactorizedFused skips its implicit optimization pass so the
  // cached rewrite is executed as stored.
  bool plan_is_optimized = false;
};

struct OpStats {
  std::string op;
  double millis = 0;
  // Size of the live intermediate representation after the operator.
  size_t intermediate_bytes = 0;
  uint64_t rows = 0;  // encoded tuples after the operator
  // Optimizer estimate for this operator (PlanOp::est_rows); -1 when the
  // plan was built without statistics. EXPLAIN ANALYZE prints est vs rows.
  double est_rows = -1;
  // Intersection counters (kIntersectExpand / membership probes); all-zero
  // for operators that never gallop. Shown by ExplainAnalyze.
  IntersectOpStats intersect;
};

struct QueryStats {
  double total_millis = 0;
  // Peak intermediate-result footprint across the pipeline (Table 2).
  size_t peak_intermediate_bytes = 0;
  // Peak bytes charged to the query's MemoryBudget (resource governor,
  // DESIGN.md §15); collected even with collect_stats off. Zero when no
  // budget was attached (direct engine use without a context).
  size_t peak_memory_bytes = 0;
  std::vector<OpStats> ops;
  // Query-wide intersection counters, collected even when per-op stats are
  // off (collect_stats=false): the service aggregates these into
  // ServiceStats so galloping regressions stay observable in production.
  IntersectOpStats intersect;
};

struct QueryResult {
  FlatBlock table;
  QueryStats stats;
  // kNone on normal completion; otherwise the query was cut short by
  // ExecOptions::context (table holds whatever was materialized so far and
  // must not be treated as the query answer).
  InterruptReason interrupted = InterruptReason::kNone;
};

class Executor {
 public:
  explicit Executor(ExecMode mode, ExecOptions options = ExecOptions{})
      : mode_(mode), options_(options) {}

  ExecMode mode() const { return mode_; }
  const ExecOptions& options() const { return options_; }

  // Executes `plan` against the snapshot. In kFactorizedFused mode the
  // fusion rewrites (optimizer.h) are applied to the plan first.
  QueryResult Run(const Plan& plan, const GraphView& view) const;

 private:
  QueryResult RunFlat(const Plan& plan, const GraphView& view) const;
  QueryResult RunFactorized(const Plan& plan, const GraphView& view) const;

  ExecMode mode_;
  ExecOptions options_;
};

// Volcano interpreter (volcano.cc).
QueryResult RunVolcano(const Plan& plan, const GraphView& view);

// --- shared helpers (used by all engine variants) ---

// Reusable BFS scratch for CollectNeighbors, backed by a (typically
// per-worker) arena: clear() keeps buckets/capacity, so repeated
// expansions allocate only on growth and never from the global allocator.
// Must not outlive the arena's next Reset.
struct NeighborScratch {
  using Set = std::unordered_set<VertexId, std::hash<VertexId>,
                                 std::equal_to<VertexId>,
                                 ArenaAllocator<VertexId>>;
  using Vec = std::vector<VertexId, ArenaAllocator<VertexId>>;

  explicit NeighborScratch(Arena* arena)
      : visited(/*bucket_count=*/8, std::hash<VertexId>(),
                std::equal_to<VertexId>(), ArenaAllocator<VertexId>(arena)),
        frontier(ArenaAllocator<VertexId>(arena)),
        next(ArenaAllocator<VertexId>(arena)) {}

  Set visited;
  Vec frontier;
  Vec next;
  // Decode buffer for compressed-segment adjacency (heap, not arena: the
  // vectors manage their own capacity across clear/refill cycles).
  AdjScratch adj;
};

// Collects the (multi-hop) neighbors of `src` via the union of `rels`,
// honoring min/max hops, distinct (min-distance BFS semantics) and
// exclude_start. Appends (vertex, distance) pairs; for 1-hop non-distinct
// expansion the adjacency order is preserved and `stamps` (if non-null)
// receives the edge stamps. `scratch`, when provided, supplies the BFS
// working set (hot paths pass per-worker arena scratch).
void CollectNeighbors(const GraphView& view,
                      const std::vector<RelationId>& rels, VertexId src,
                      int min_hops, int max_hops, bool distinct,
                      bool exclude_start,
                      std::vector<std::pair<VertexId, int>>* out,
                      std::vector<int64_t>* stamps = nullptr,
                      NeighborScratch* scratch = nullptr);

// Sorts `block` rows by `keys` and truncates to `limit`.
void SortAndLimit(FlatBlock* block, const std::vector<SortKey>& keys,
                  uint64_t limit);

// Hash-aggregates `block`; returns the grouped result.
FlatBlock HashAggregate(const FlatBlock& block,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs);

// Applies a kProject op to a flat block.
FlatBlock ProjectFlat(const FlatBlock& block, const PlanOp& op);

}  // namespace ges

#endif  // GES_EXECUTOR_EXECUTOR_H_
