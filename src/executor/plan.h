// Physical plan representation shared by all engine variants.
//
// A Plan is a linear operator pipeline (the shape of every LDBC interactive
// query after optimization; see Figure 8 of the paper) plus the output
// projection. The same Plan is interpreted by the Volcano, flat and
// factorized executors, which makes cross-engine result equivalence
// directly testable.
#ifndef GES_EXECUTOR_PLAN_H_
#define GES_EXECUTOR_PLAN_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "executor/expression.h"
#include "executor/flatblock.h"
#include "executor/graph_view.h"

namespace ges {

enum class OpType : uint8_t {
  kNodeByIdSeek,   // locate one vertex by (label, external id)
  kScanByLabel,    // all vertices of a label
  kExpand,         // (multi-hop) neighbor expansion
  kGetProperty,    // fetch a vertex property into a new column
  kFilter,         // predicate filter
  kProject,        // select / rename / compute columns
  kOrderBy,        // sort (with optional limit)
  kAggregate,      // group-by + aggregates
  kLimit,
  kDistinct,
  kExpandInto,     // edge-existence (semi/anti join) between bound columns
  kProcedure,      // stored-procedure escape hatch (IC13/IC14 path queries)
  // Fused operators (emitted by the optimizer for GES_f*):
  kExpandFiltered,  // Expand + GetProperty + Filter fused (FilterPushDown)
  kTopK,            // OrderBy+Limit fused into de-factoring (bounded heap)
  kAggProjectTop,   // Aggregate + Project + OrderBy/Limit fused
  // Worst-case-optimal multiway intersection (DESIGN.md §12): expands
  // in_column over `rels` and keeps only neighbors adjacent to every probe
  // column — a leapfrog intersection of k sorted adjacency lists.
  kIntersectExpand,
};

const char* OpTypeName(OpType t);

struct SortKey {
  std::string column;
  bool ascending = true;
};

struct AggSpec {
  enum Fn : uint8_t { kCount, kCountDistinct, kSum, kMin, kMax, kAvg };
  Fn fn = kCount;
  std::string input;   // empty for COUNT(*)
  std::string output;  // result column name
};

// A computed output column (used by kProject and inside kAggProjectTop).
struct ComputedColumn {
  ExprPtr expr;
  std::string name;
  ValueType type = ValueType::kInt64;
};

struct PlanOp {
  OpType type;

  // Common column naming.
  std::string in_column;   // consumed column (e.g. expand source)
  std::string out_column;  // produced column

  // kNodeByIdSeek / kScanByLabel.
  LabelId label = kInvalidLabel;
  int64_t seek_ext_id = 0;
  int seek_param = -1;  // when >= 0, seek_ext_id is bound from parameter $k

  // Optimizer cardinality estimate (rows out of this operator); -1 when the
  // plan was built without statistics. Surfaced by EXPLAIN ANALYZE.
  double est_rows = -1;

  // kExpand / kExpandFiltered / kExpandInto: adjacency tables to union
  // (e.g. HAS_CREATOR from both POST and COMMENT).
  std::vector<RelationId> rels;
  int min_hops = 1;
  int max_hops = 1;
  bool distinct = false;       // dedup neighbors per source (multi-hop)
  bool exclude_start = false;  // drop the source vertex itself
  std::string distance_column;  // optional hop-distance output
  std::string stamp_column;     // optional edge-stamp output

  // kGetProperty (+ fused property inside kExpandFiltered).
  PropertyId property = kInvalidProperty;
  ValueType property_type = ValueType::kNull;
  bool keep_property = true;  // kExpandFiltered: keep the fetched column?

  // kFilter / kExpandFiltered.
  ExprPtr predicate;

  // kOrderBy / kTopK / kLimit.
  std::vector<SortKey> sort_keys;
  uint64_t limit = std::numeric_limits<uint64_t>::max();

  // kAggregate / kAggProjectTop.
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;

  // kProject (select existing columns and/or computed expressions).
  std::vector<std::pair<std::string, std::string>> selections;  // (col, as)
  std::vector<ComputedColumn> computed;

  // kExpandInto: checks edge existence between in_column and other_column.
  std::string other_column;
  bool anti = false;

  // kIntersectExpand: already-bound probe columns; a candidate neighbor of
  // in_column survives iff every probe vertex also has an edge to it
  // through the matching probe_rels entry (OR across that entry's rels).
  // The driver (in_column/rels) fixes result multiplicity and order, so
  // the operator is row-for-row equivalent to Expand + an ExpandInto chain.
  std::vector<std::string> probe_columns;
  std::vector<std::vector<RelationId>> probe_rels;

  // kProcedure.
  std::function<FlatBlock(const GraphView&)> procedure;
};

struct Plan {
  std::vector<PlanOp> ops;
  // Number of positional parameters ($0..$n-1) this plan template expects;
  // 0 for fully-literal plans. Set by CompileTemplate, consumed by
  // BindPlanParams and the prepared-statement layer.
  int param_count = 0;
  // Final output column order (names must exist after the last op). When
  // empty, every live column is returned, but the column ORDER is then
  // engine-specific (the flat engine uses creation order, the factorized
  // engine uses f-Tree preorder); set an explicit output for cross-engine
  // comparable results.
  std::vector<std::string> output;
  std::string name;  // for reporting (e.g. "IC5")
};

// Fluent plan construction. Example (the paper's Figure 8 query):
//   PlanBuilder b("example");
//   b.NodeByIdSeek("p", person, p0)
//    .Expand("p", "f", {knows_out}, 1, 2, /*distinct=*/true)
//    .Expand("f", "msg", {creator_in_post, creator_in_comment})
//    .GetProperty("msg", len_prop, ValueType::kInt64, "msg_len")
//    .Filter(Expr::Gt(Expr::Col("msg_len"), Expr::Lit(Value::Int(125))))
//    .OrderBy({{"msg_len", false}, {"f", true}}, 2)
//    .Output({"f", "msg", "msg_len"});
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string name) { plan_.name = std::move(name); }

  PlanBuilder& NodeByIdSeek(std::string out, LabelId label, int64_t ext_id);
  // Parameterized seek: the external id comes from parameter $param at bind
  // time; `hint` (the first-seen literal) is used for costing only.
  PlanBuilder& NodeByIdSeekParam(std::string out, LabelId label, int param,
                                 int64_t hint);
  PlanBuilder& ScanByLabel(std::string out, LabelId label);
  PlanBuilder& Expand(std::string in, std::string out,
                      std::vector<RelationId> rels, int min_hops = 1,
                      int max_hops = 1, bool distinct = false,
                      bool exclude_start = false);
  // Expand emitting auxiliary columns (distance and/or edge stamp).
  PlanBuilder& ExpandEx(std::string in, std::string out,
                        std::vector<RelationId> rels, int min_hops,
                        int max_hops, bool distinct, bool exclude_start,
                        std::string distance_column,
                        std::string stamp_column);
  PlanBuilder& GetProperty(std::string vertex_col, PropertyId prop,
                           ValueType type, std::string out);
  PlanBuilder& Filter(ExprPtr predicate);
  PlanBuilder& Project(std::vector<std::pair<std::string, std::string>> sel,
                       std::vector<ComputedColumn> computed = {});
  PlanBuilder& OrderBy(std::vector<SortKey> keys,
                       uint64_t limit = std::numeric_limits<uint64_t>::max());
  PlanBuilder& Aggregate(std::vector<std::string> group_by,
                         std::vector<AggSpec> aggs);
  PlanBuilder& Limit(uint64_t n);
  PlanBuilder& Distinct();
  PlanBuilder& ExpandInto(std::string a, std::string b,
                          std::vector<RelationId> rels, bool anti);
  PlanBuilder& IntersectExpand(std::string in, std::string out,
                               std::vector<RelationId> rels,
                               std::vector<std::string> probe_columns,
                               std::vector<std::vector<RelationId>> probe_rels);
  PlanBuilder& Procedure(std::function<FlatBlock(const GraphView&)> fn);
  PlanBuilder& Output(std::vector<std::string> columns);

  Plan Build() { return std::move(plan_); }

 private:
  Plan plan_;
};

}  // namespace ges

#endif  // GES_EXECUTOR_PLAN_H_
