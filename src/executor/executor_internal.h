// Internal helpers shared between the flat and factorized interpreters.
// Not part of the public API.
#ifndef GES_EXECUTOR_EXECUTOR_INTERNAL_H_
#define GES_EXECUTOR_EXECUTOR_INTERNAL_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "executor/executor.h"

namespace ges::internal {

// Applies one plan operator to a flat state. Handles every OpType,
// including fused operators (executed stepwise). `istats`, when non-null,
// accumulates intersection/galloping counters (kIntersectExpand,
// kExpandInto membership probes). `ctx`, when non-null, is polled inside
// the replication-heavy operators (Expand) so a flat-mode memory hog is
// interruptible mid-operator, with its output growth charged against the
// query's MemoryBudget.
FlatBlock ApplyFlatOp(FlatBlock state, const PlanOp& op, const GraphView& view,
                      IntersectOpStats* istats = nullptr,
                      const QueryContext* ctx = nullptr);

// Final output projection (keeps all columns when `output` is empty).
FlatBlock ProjectOutput(const FlatBlock& in,
                        const std::vector<std::string>& output);

// Hash/equality over value rows (grouping, distinct).
struct RowHash {
  size_t operator()(const std::vector<Value>& row) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : row) {
      h = (h ^ v.Hash()) * 0x100000001b3ULL;
    }
    return h;
  }
};
struct RowEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// In a fused kExpandFiltered op, the fetched property column is named by
// `op.other_column` (reusing the field; see optimizer.cc).
inline const std::string& FusedPropertyColumn(const PlanOp& op) {
  return op.other_column;
}

// Per-row driver of kIntersectExpand, shared by the flat, Volcano and
// factorized engines: binds the probe adjacency lists of one input row,
// then walks the driver's neighbors in adjacency (sorted) order and emits
// exactly those adjacent to every probe vertex — a leapfrog intersection
// with advancing galloping cursors (storage/intersect.h). Driver order and
// multiplicity are preserved, so the operator is row-for-row equivalent to
// Expand followed by an ExpandInto chain over the reverse relations.
class IntersectExpandRunner {
 public:
  explicit IntersectExpandRunner(const PlanOp& op) : op_(&op) {
    size_t lists = 0;
    for (const auto& rels : op.probe_rels) lists += rels.size();
    scratch_.resize(lists);
    adj_scratch_.resize(lists);
  }

  template <typename Emit>
  void Run(const GraphView& view, VertexId src, const VertexId* probe_vals,
           IntersectOpStats* stats, Emit&& emit) {
    lists_.clear();
    column_of_.clear();
    size_t li = 0;
    for (size_t c = 0; c < op_->probe_rels.size(); ++c) {
      for (RelationId rel : op_->probe_rels[c]) {
        // Per-list decode scratch: every bound probe list stays live for
        // the whole leapfrog walk (NormalizeSpan keeps sorted_clean spans
        // in place, decoded segment spans included).
        lists_.push_back(NormalizeSpan(
            view.Neighbors(rel, probe_vals[c], &adj_scratch_[li]),
            &scratch_[li]));
        column_of_.push_back(static_cast<uint32_t>(c));
        ++li;
      }
    }
    prober_.Bind(lists_, column_of_, op_->probe_rels.size());
    if (prober_.AnyColumnEmpty()) return;
    for (RelationId rel : op_->rels) {
      AdjSpan span = view.Neighbors(rel, src, &driver_adj_);
      prober_.BeginDriverList();
      for (uint32_t i = 0; i < span.size; ++i) {
        VertexId w = span.ids[i];
        if (w == kInvalidVertex) continue;
        if (!prober_.Matches(w, stats)) continue;
        if (stats != nullptr) ++stats->emitted;
        emit(w);
      }
    }
  }

 private:
  const PlanOp* op_;
  IntersectProber prober_;
  std::vector<SortedList> lists_;
  std::vector<uint32_t> column_of_;
  std::vector<std::vector<VertexId>> scratch_;
  std::vector<AdjScratch> adj_scratch_;
  AdjScratch driver_adj_;
};

// Incremental hash-grouped aggregation shared by the flat engine, the
// direct (tuple-count DP) factorized path, and the streaming fused path.
// Feed (key, inputs[, multiplicity]) triples; Finish() emits one row per
// group in first-encounter order: group keys then aggregate outputs.
class GroupedAggregator {
 public:
  // `key_defs` name/type the group-by output columns; `input_types` align
  // with `aggs` (ignored for COUNT(*)).
  GroupedAggregator(std::vector<ColumnDef> key_defs, std::vector<AggSpec> aggs,
                    std::vector<ValueType> input_types);

  // `inputs` aligns with the agg specs (the value is ignored for COUNT(*)).
  void Add(std::vector<Value> key, const std::vector<Value>& inputs,
           int64_t multiplicity = 1);

  FlatBlock Finish();

 private:
  struct State {
    int64_t count = 0;
    int64_t sum_i = 0;
    double sum_d = 0;
    bool has_minmax = false;
    Value min, max;
    std::unordered_set<Value, ValueHash> distinct;
  };

  std::vector<ColumnDef> key_defs_;
  std::vector<AggSpec> aggs_;
  std::vector<ValueType> input_types_;
  std::unordered_map<std::vector<Value>, size_t, RowHash, RowEq> index_;
  std::vector<std::vector<Value>> keys_;
  std::vector<std::vector<State>> states_;
};

}  // namespace ges::internal

#endif  // GES_EXECUTOR_EXECUTOR_INTERNAL_H_
