// Row-oriented flat block: the classical fully-materialized intermediate
// representation ("flat representation" in the paper) and the universal
// result format.
#ifndef GES_EXECUTOR_FLATBLOCK_H_
#define GES_EXECUTOR_FLATBLOCK_H_

#include <vector>

#include "common/value.h"
#include "executor/schema.h"

namespace ges {

class FlatBlock {
 public:
  FlatBlock() = default;
  explicit FlatBlock(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t NumRows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void AppendRow(std::vector<Value> row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  const std::vector<Value>& Row(size_t i) const { return rows_[i]; }
  std::vector<Value>& MutableRow(size_t i) { return rows_[i]; }
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

  std::vector<std::vector<Value>>& rows() { return rows_; }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  // Approximate heap footprint (intermediate-result accounting, Table 2).
  size_t MemoryBytes() const {
    size_t bytes = rows_.capacity() * sizeof(std::vector<Value>);
    for (const auto& row : rows_) {
      bytes += row.capacity() * sizeof(Value);
      for (const Value& v : row) {
        if (v.type() == ValueType::kString) bytes += v.AsString().capacity();
      }
    }
    return bytes;
  }

  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace ges

#endif  // GES_EXECUTOR_FLATBLOCK_H_
