#include "executor/executor.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "executor/executor_internal.h"
#include "executor/optimizer.h"

namespace ges {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kVolcano:
      return "Volcano";
    case ExecMode::kFlat:
      return "GES";
    case ExecMode::kFactorized:
      return "GES_f";
    case ExecMode::kFactorizedFused:
      return "GES_f*";
  }
  return "?";
}

namespace {

// Min-distance BFS with dedup; the source itself is never emitted
// (variable-length expansion in the workload always excludes the start).
// Templated over the container types so the hot path can run on
// arena-backed scratch while one-off callers use plain std containers.
template <typename Set, typename Vec>
void BfsCollect(const GraphView& view, const std::vector<RelationId>& rels,
                VertexId src, int min_hops, int max_hops, Set& visited,
                Vec& frontier, Vec& next, AdjScratch* adj,
                std::vector<std::pair<VertexId, int>>* out,
                std::vector<int64_t>* stamps) {
  visited.insert(src);
  frontier.push_back(src);
  for (int d = 1; d <= max_hops && !frontier.empty(); ++d) {
    next.clear();
    for (VertexId v : frontier) {
      for (RelationId rel : rels) {
        // One scratch suffices: the span is consumed before the next fetch.
        AdjSpan span = view.Neighbors(rel, v, adj);
        for (uint32_t i = 0; i < span.size; ++i) {
          VertexId id = span.ids[i];
          if (id == kInvalidVertex) continue;
          if (!visited.insert(id).second) continue;
          next.push_back(id);
          if (d >= min_hops) {
            out->emplace_back(id, d);
            if (stamps != nullptr) {
              stamps->push_back(span.stamps == nullptr ? 0 : span.stamps[i]);
            }
          }
        }
      }
    }
    std::swap(frontier, next);
  }
}

}  // namespace

void CollectNeighbors(const GraphView& view,
                      const std::vector<RelationId>& rels, VertexId src,
                      int min_hops, int max_hops, bool distinct,
                      bool exclude_start,
                      std::vector<std::pair<VertexId, int>>* out,
                      std::vector<int64_t>* stamps,
                      NeighborScratch* scratch) {
  AdjScratch local_adj;
  AdjScratch* adj = scratch != nullptr ? &scratch->adj : &local_adj;
  if (max_hops == 1 && !distinct) {
    for (RelationId rel : rels) {
      AdjSpan span = view.Neighbors(rel, src, adj);
      for (uint32_t i = 0; i < span.size; ++i) {
        VertexId id = span.ids[i];
        if (id == kInvalidVertex) continue;
        if (exclude_start && id == src) continue;
        out->emplace_back(id, 1);
        if (stamps != nullptr) {
          stamps->push_back(span.stamps == nullptr ? 0 : span.stamps[i]);
        }
      }
    }
    return;
  }
  if (scratch != nullptr) {
    scratch->visited.clear();
    scratch->frontier.clear();
    scratch->next.clear();
    BfsCollect(view, rels, src, min_hops, max_hops, scratch->visited,
               scratch->frontier, scratch->next, adj, out, stamps);
    return;
  }
  std::unordered_set<VertexId> visited;
  std::vector<VertexId> frontier;
  std::vector<VertexId> next;
  BfsCollect(view, rels, src, min_hops, max_hops, visited, frontier, next,
             adj, out, stamps);
}

namespace {

using internal::GroupedAggregator;
using internal::RowEq;
using internal::RowHash;

}  // namespace

namespace internal {

GroupedAggregator::GroupedAggregator(std::vector<ColumnDef> key_defs,
                                     std::vector<AggSpec> aggs,
                                     std::vector<ValueType> input_types)
    : key_defs_(std::move(key_defs)),
      aggs_(std::move(aggs)),
      input_types_(std::move(input_types)) {}

void GroupedAggregator::Add(std::vector<Value> key,
                            const std::vector<Value>& inputs,
                            int64_t multiplicity) {
  auto [it, inserted] = index_.emplace(key, keys_.size());
  if (inserted) {
    keys_.push_back(std::move(key));
    states_.emplace_back(aggs_.size());
  }
  std::vector<State>& st = states_[it->second];
  for (size_t a = 0; a < aggs_.size(); ++a) {
    State& s = st[a];
    s.count += multiplicity;
    if (aggs_[a].input.empty()) continue;
    const Value& v = inputs[a];
    switch (aggs_[a].fn) {
      case AggSpec::kSum:
      case AggSpec::kAvg:
        s.sum_i += v.AsInt() * multiplicity;
        s.sum_d += v.AsDouble() * multiplicity;
        break;
      case AggSpec::kMin:
      case AggSpec::kMax:
        if (!s.has_minmax) {
          s.min = v;
          s.max = v;
          s.has_minmax = true;
        } else {
          if (v < s.min) s.min = v;
          if (s.max < v) s.max = v;
        }
        break;
      case AggSpec::kCountDistinct:
        s.distinct.insert(v);
        break;
      case AggSpec::kCount:
        break;
    }
  }
}

FlatBlock GroupedAggregator::Finish() {
  Schema out_schema;
  for (const ColumnDef& k : key_defs_) {
    out_schema.Add(k.name, k.type);
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    ValueType t;
    switch (aggs_[a].fn) {
      case AggSpec::kAvg:
        t = ValueType::kDouble;
        break;
      case AggSpec::kSum:
      case AggSpec::kMin:
      case AggSpec::kMax:
        t = aggs_[a].input.empty() ? ValueType::kInt64 : input_types_[a];
        break;
      default:
        t = ValueType::kInt64;
    }
    out_schema.Add(aggs_[a].output, t);
  }

  FlatBlock out(out_schema);
  if (keys_.empty() && key_defs_.empty()) {
    // Global aggregation of an empty relation: COUNT -> 0.
    std::vector<Value> row;
    for (const AggSpec& a : aggs_) {
      row.push_back(a.fn == AggSpec::kAvg ? Value::Double(0) : Value::Int(0));
    }
    out.AppendRow(std::move(row));
    return out;
  }
  for (size_t g = 0; g < keys_.size(); ++g) {
    std::vector<Value> row = keys_[g];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const State& s = states_[g][a];
      switch (aggs_[a].fn) {
        case AggSpec::kCount:
          row.push_back(Value::Int(s.count));
          break;
        case AggSpec::kCountDistinct:
          row.push_back(Value::Int(static_cast<int64_t>(s.distinct.size())));
          break;
        case AggSpec::kSum:
          if (!aggs_[a].input.empty() &&
              input_types_[a] == ValueType::kDouble) {
            row.push_back(Value::Double(s.sum_d));
          } else {
            row.push_back(Value::Int(s.sum_i));
          }
          break;
        case AggSpec::kAvg:
          row.push_back(Value::Double(s.count == 0 ? 0 : s.sum_d / s.count));
          break;
        case AggSpec::kMin:
          row.push_back(s.min);
          break;
        case AggSpec::kMax:
          row.push_back(s.max);
          break;
      }
    }
    out.AppendRow(std::move(row));
  }
  return out;
}

}  // namespace internal

void SortAndLimit(FlatBlock* block, const std::vector<SortKey>& keys,
                  uint64_t limit) {
  std::vector<int> idx;
  std::vector<bool> asc;
  for (const SortKey& k : keys) {
    int i = block->schema().IndexOf(k.column);
    assert(i >= 0 && "sort key not in schema");
    idx.push_back(i);
    asc.push_back(k.ascending);
  }
  auto cmp = [&](const std::vector<Value>& a, const std::vector<Value>& b) {
    for (size_t k = 0; k < idx.size(); ++k) {
      int c = a[idx[k]].Compare(b[idx[k]]);
      if (c != 0) return asc[k] ? c < 0 : c > 0;
    }
    return false;
  };
  std::stable_sort(block->rows().begin(), block->rows().end(), cmp);
  if (block->NumRows() > limit) {
    block->rows().resize(limit);
  }
}

FlatBlock HashAggregate(const FlatBlock& block,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs) {
  const Schema& in = block.schema();
  std::vector<ColumnDef> key_defs;
  std::vector<int> key_idx;
  for (const std::string& g : group_by) {
    int i = in.IndexOf(g);
    assert(i >= 0);
    key_idx.push_back(i);
    key_defs.push_back(ColumnDef{g, in[i].type});
  }
  std::vector<int> agg_idx;
  std::vector<ValueType> input_types;
  for (const AggSpec& a : aggs) {
    int i = a.input.empty() ? -1 : in.IndexOf(a.input);
    agg_idx.push_back(i);
    input_types.push_back(i >= 0 ? in[i].type : ValueType::kInt64);
  }

  GroupedAggregator agg(std::move(key_defs), aggs, std::move(input_types));
  std::vector<Value> inputs(aggs.size());
  for (const auto& row : block.rows()) {
    std::vector<Value> key;
    key.reserve(key_idx.size());
    for (int i : key_idx) key.push_back(row[i]);
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (agg_idx[a] >= 0) inputs[a] = row[agg_idx[a]];
    }
    agg.Add(std::move(key), inputs);
  }
  return agg.Finish();
}

FlatBlock ProjectFlat(const FlatBlock& block, const PlanOp& op) {
  const Schema& in = block.schema();
  Schema out_schema;
  std::vector<int> sel_idx;
  if (op.selections.empty()) {
    for (size_t i = 0; i < in.size(); ++i) {
      out_schema.Add(in[i].name, in[i].type);
      sel_idx.push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& [col, as] : op.selections) {
      int i = in.IndexOf(col);
      assert(i >= 0);
      out_schema.Add(as.empty() ? col : as, in[i].type);
      sel_idx.push_back(i);
    }
  }
  std::vector<BoundExpr> exprs;
  for (const ComputedColumn& c : op.computed) {
    out_schema.Add(c.name, c.type);
    exprs.push_back(BoundExpr::Bind(*c.expr, in));
  }
  FlatBlock out(out_schema);
  out.Reserve(block.NumRows());
  for (const auto& row : block.rows()) {
    std::vector<Value> r;
    r.reserve(sel_idx.size() + exprs.size());
    for (int i : sel_idx) r.push_back(row[i]);
    for (const BoundExpr& e : exprs) r.push_back(e.EvalRow(row));
    out.AppendRow(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Flat (block-based) operator implementations.
// ---------------------------------------------------------------------------

namespace {

FlatBlock FlatSeek(const PlanOp& op, const GraphView& view) {
  Schema s;
  s.Add(op.out_column, ValueType::kVertex);
  FlatBlock out(s);
  VertexId v = view.FindByExtId(op.label, op.seek_ext_id);
  if (v != kInvalidVertex) {
    out.AppendRow({Value::Vertex(v)});
  }
  return out;
}

FlatBlock FlatScan(const PlanOp& op, const GraphView& view) {
  Schema s;
  s.Add(op.out_column, ValueType::kVertex);
  FlatBlock out(s);
  std::vector<VertexId> ids;
  view.ScanLabel(op.label, &ids);
  out.Reserve(ids.size());
  for (VertexId v : ids) out.AppendRow({Value::Vertex(v)});
  return out;
}

FlatBlock FlatExpand(const FlatBlock& in, const PlanOp& op,
                     const GraphView& view, const QueryContext* ctx) {
  int src_idx = in.schema().IndexOf(op.in_column);
  assert(src_idx >= 0);
  Schema s = in.schema();
  s.Add(op.out_column, ValueType::kVertex);
  bool want_dist = !op.distance_column.empty();
  bool want_stamp = !op.stamp_column.empty();
  if (want_dist) s.Add(op.distance_column, ValueType::kInt64);
  if (want_stamp) s.Add(op.stamp_column, ValueType::kDate);
  FlatBlock out(s);
  std::vector<std::pair<VertexId, int>> nbrs;
  std::vector<int64_t> stamps;
  // Mid-operator governor charges: full tuple replication is the flat
  // engine's memory hot spot, so the budget must see the growth before the
  // operator returns. The O(1) row-width estimate stands in for the exact
  // MemoryBytes() walk; the per-op accounting in RunFlat trues it up.
  BudgetTracker tracker(ctx != nullptr ? ctx->budget() : nullptr);
  const size_t row_bytes =
      s.size() * sizeof(Value) + sizeof(std::vector<Value>);
  size_t rows_in = 0;
  for (const auto& row : in.rows()) {
    if ((++rows_in & 255u) == 0) {
      tracker.Update(out.NumRows() * row_bytes);
      ThrowIfInterrupted(ctx);
    }
    nbrs.clear();
    stamps.clear();
    CollectNeighbors(view, op.rels, row[src_idx].AsVertex(), op.min_hops,
                     op.max_hops, op.distinct, op.exclude_start, &nbrs,
                     want_stamp ? &stamps : nullptr);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      // Full tuple replication per neighbor — exactly the flat-representation
      // cost the paper profiles (Figure 4).
      std::vector<Value> r = row;
      r.push_back(Value::Vertex(nbrs[i].first));
      if (want_dist) r.push_back(Value::Int(nbrs[i].second));
      if (want_stamp) r.push_back(Value::Date(stamps[i]));
      out.AppendRow(std::move(r));
    }
  }
  tracker.Update(0);  // the caller's per-op delta re-charges the exact size
  return out;
}

// Property fetch extends each row in place — block-based engines append a
// column to the live block rather than rebuilding it.
FlatBlock FlatGetProperty(FlatBlock in, const PlanOp& op,
                          const GraphView& view) {
  int src_idx = in.schema().IndexOf(op.in_column);
  assert(src_idx >= 0);
  in.mutable_schema()->Add(op.out_column, op.property_type);
  for (auto& row : in.rows()) {
    row.push_back(view.Property(row[src_idx].AsVertex(), op.property));
  }
  return in;
}

FlatBlock FlatFilter(const FlatBlock& in, const PlanOp& op) {
  BoundExpr pred = BoundExpr::Bind(*op.predicate, in.schema());
  FlatBlock out(in.schema());
  for (const auto& row : in.rows()) {
    if (pred.EvalRow(row).AsBool()) {
      out.AppendRow(row);
    }
  }
  return out;
}

FlatBlock FlatDistinct(const FlatBlock& in) {
  std::unordered_set<std::vector<Value>, RowHash, RowEq> seen;
  FlatBlock out(in.schema());
  for (const auto& row : in.rows()) {
    if (seen.insert(row).second) out.AppendRow(row);
  }
  return out;
}

FlatBlock FlatExpandInto(const FlatBlock& in, const PlanOp& op,
                         const GraphView& view, IntersectOpStats* istats) {
  int a = in.schema().IndexOf(op.in_column);
  int b = in.schema().IndexOf(op.other_column);
  assert(a >= 0 && b >= 0);
  FlatBlock out(in.schema());
  AdjScratch adj;
  for (const auto& row : in.rows()) {
    bool has = view.HasEdge(op.rels, row[a].AsVertex(), row[b].AsVertex(),
                            istats, &adj);
    if (has != op.anti) out.AppendRow(row);
  }
  return out;
}

// Worst-case-optimal multiway intersection: one output row per driver
// neighbor adjacent to every probe vertex (see IntersectExpandRunner).
FlatBlock FlatIntersectExpand(const FlatBlock& in, const PlanOp& op,
                              const GraphView& view,
                              IntersectOpStats* istats) {
  int src_idx = in.schema().IndexOf(op.in_column);
  assert(src_idx >= 0);
  std::vector<int> probe_idx;
  for (const std::string& p : op.probe_columns) {
    int i = in.schema().IndexOf(p);
    assert(i >= 0);
    probe_idx.push_back(i);
  }
  Schema s = in.schema();
  s.Add(op.out_column, ValueType::kVertex);
  FlatBlock out(s);
  internal::IntersectExpandRunner runner(op);
  std::vector<VertexId> probe_vals(probe_idx.size());
  for (const auto& row : in.rows()) {
    for (size_t c = 0; c < probe_idx.size(); ++c) {
      probe_vals[c] = row[probe_idx[c]].AsVertex();
    }
    runner.Run(view, row[src_idx].AsVertex(), probe_vals.data(), istats,
               [&](VertexId w) {
                 std::vector<Value> r = row;
                 r.push_back(Value::Vertex(w));
                 out.AppendRow(std::move(r));
               });
  }
  return out;
}

FlatBlock FlatLimit(const FlatBlock& in, uint64_t n) {
  FlatBlock out(in.schema());
  for (size_t i = 0; i < in.NumRows() && i < n; ++i) {
    out.AppendRow(in.Row(i));
  }
  return out;
}

}  // namespace

namespace internal {

FlatBlock ApplyFlatOp(FlatBlock state, const PlanOp& op, const GraphView& view,
                      IntersectOpStats* istats, const QueryContext* ctx) {
  switch (op.type) {
    case OpType::kNodeByIdSeek:
      return FlatSeek(op, view);
    case OpType::kScanByLabel:
      return FlatScan(op, view);
    case OpType::kExpand:
      return FlatExpand(state, op, view, ctx);
    case OpType::kGetProperty:
      return FlatGetProperty(std::move(state), op, view);
    case OpType::kFilter:
      return FlatFilter(state, op);
    case OpType::kProject:
      // Computed-only projections extend rows in place.
      if (op.selections.empty()) {
        std::vector<BoundExpr> exprs;
        for (const ComputedColumn& c : op.computed) {
          exprs.push_back(BoundExpr::Bind(*c.expr, state.schema()));
        }
        for (auto& row : state.rows()) {
          for (const BoundExpr& e : exprs) row.push_back(e.EvalRow(row));
        }
        for (const ComputedColumn& c : op.computed) {
          state.mutable_schema()->Add(c.name, c.type);
        }
        return state;
      }
      return ProjectFlat(state, op);
    case OpType::kOrderBy:
    case OpType::kTopK:
      SortAndLimit(&state, op.sort_keys, op.limit);
      return state;
    case OpType::kAggregate:
      return HashAggregate(state, op.group_by, op.aggs);
    case OpType::kLimit:
      return FlatLimit(state, op.limit);
    case OpType::kDistinct:
      return FlatDistinct(state);
    case OpType::kExpandInto:
      return FlatExpandInto(state, op, view, istats);
    case OpType::kIntersectExpand:
      return FlatIntersectExpand(state, op, view, istats);
    case OpType::kProcedure:
      return op.procedure(view);
    case OpType::kExpandFiltered: {
      // Stepwise fallback: expand, fetch the fused property, filter.
      state = FlatExpand(state, op, view, ctx);
      PlanOp gp;
      gp.type = OpType::kGetProperty;
      gp.in_column = op.out_column;
      gp.out_column = FusedPropertyColumn(op);
      gp.property = op.property;
      gp.property_type = op.property_type;
      state = FlatGetProperty(std::move(state), gp, view);
      PlanOp f;
      f.type = OpType::kFilter;
      f.predicate = op.predicate;
      return FlatFilter(state, f);
    }
    case OpType::kAggProjectTop: {
      state = HashAggregate(state, op.group_by, op.aggs);
      if (!op.computed.empty() || !op.selections.empty()) {
        state = ProjectFlat(state, op);
      }
      SortAndLimit(&state, op.sort_keys, op.limit);
      return state;
    }
  }
  return state;
}

FlatBlock ProjectOutput(const FlatBlock& in,
                        const std::vector<std::string>& output) {
  if (output.empty()) return in;
  PlanOp op;
  op.type = OpType::kProject;
  for (const std::string& c : output) op.selections.emplace_back(c, c);
  return ProjectFlat(in, op);
}

}  // namespace internal

QueryResult Executor::RunFlat(const Plan& plan, const GraphView& view) const {
  QueryResult result;
  Timer total;
  FlatBlock state;
  MemoryBudget* budget =
      options_.context != nullptr ? options_.context->budget() : nullptr;
  BudgetTracker tracker(budget);
  for (const PlanOp& op : plan.ops) {
    ThrowIfInterrupted(options_.context);
    Timer t;
    IntersectOpStats istats;
    state = internal::ApplyFlatOp(std::move(state), op, view, &istats,
                                  options_.context);
    if (budget != nullptr) tracker.Update(state.MemoryBytes());
    result.stats.intersect.Add(istats);
    OpStats os;
    os.op = OpTypeName(op.type);
    os.intersect = istats;
    os.millis = t.ElapsedMillis();
    os.est_rows = op.est_rows;
    if (options_.collect_stats) {
      os.intermediate_bytes = state.MemoryBytes();
      os.rows = state.NumRows();
      result.stats.peak_intermediate_bytes = std::max(
          result.stats.peak_intermediate_bytes, os.intermediate_bytes);
    }
    result.stats.ops.push_back(std::move(os));
  }
  result.table = internal::ProjectOutput(state, plan.output);
  result.stats.total_millis = total.ElapsedMillis();
  return result;
}

QueryResult Executor::Run(const Plan& plan, const GraphView& view) const {
  MemoryBudget* budget =
      options_.context != nullptr ? options_.context->budget() : nullptr;
  QueryResult result;
  try {
    switch (mode_) {
      case ExecMode::kVolcano:
        result = RunVolcano(plan, view);
        break;
      case ExecMode::kFlat:
        result = RunFlat(plan, view);
        break;
      case ExecMode::kFactorized:
        result = RunFactorized(plan, view);
        break;
      case ExecMode::kFactorizedFused: {
        if (options_.plan_is_optimized) {
          result = RunFactorized(plan, view);
        } else {
          Plan fused = OptimizePlan(plan, options_, &view);
          result = RunFactorized(fused, view);
        }
        break;
      }
    }
  } catch (const QueryInterrupted& e) {
    // A checkpoint fired (deadline/cancel/memory via options_.context).
    // Surface it as data, not as an exception: no caller outside the engine
    // unwinds. The budget keeps whatever was charged until its owner (the
    // service) destroys it, which squares the global gauge.
    result = QueryResult{};
    result.interrupted = e.reason;
  }
  if (budget != nullptr) {
    result.stats.peak_memory_bytes = budget->peak();
  }
  return result;
}

}  // namespace ges
