// The factorized interpreter: operators run natively on the f-Tree and
// de-factor ("flatten") only when the computation genuinely requires global
// tuple-level information (Section 4.3 of the paper).
#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "executor/executor.h"
#include "executor/executor_internal.h"
#include "executor/ftree.h"
#include "executor/vector_expr.h"
#include "runtime/morsel.h"
#include "runtime/scheduler.h"

namespace ges {

namespace {

using internal::ApplyFlatOp;
using internal::FusedPropertyColumn;
using internal::RowEq;
using internal::RowHash;
using internal::ValueHash;

// Pipeline state: an f-Tree until some operator forces de-factoring, a flat
// block afterwards ("seamlessly reverts to block-based execution").
// Execution starts in tree mode (the leaf operator creates the root).
struct FactState {
  std::unique_ptr<FTree> tree;
  FlatBlock flat;
  bool flattened = false;
  // Largest transient representation produced inside the current operator
  // (e.g. the fully de-factored block consumed by a following aggregate);
  // folded into the peak accounting, then reset.
  size_t transient_bytes = 0;

  bool is_tree() const { return !flattened; }

  void SwitchToFlat(FlatBlock block) {
    flat = std::move(block);
    tree.reset();
    flattened = true;
    transient_bytes = std::max(transient_bytes, flat.MemoryBytes());
  }

  size_t MemoryBytes() const {
    return is_tree() ? (tree == nullptr ? 0 : tree->MemoryBytes())
                     : flat.MemoryBytes();
  }
};

// All column names of the tree, preorder node order then block order.
std::vector<std::string> AllTreeColumns(const FTree& tree) {
  std::vector<std::string> cols;
  for (const FTreeNode* n : tree.Preorder()) {
    for (const ColumnDef& c : n->block.schema().columns()) {
      cols.push_back(c.name);
    }
  }
  return cols;
}

Schema TreeSchema(const FTree& tree) {
  Schema s;
  for (const FTreeNode* n : tree.Preorder()) {
    for (const ColumnDef& c : n->block.schema().columns()) {
      s.Add(c.name, c.type);
    }
  }
  return s;
}

// De-factors the tree into the flat state (the "ultimate solution").
// Without a LIMIT the Lemma 4.4 loop runs morsel-parallel on the shared
// scheduler (FlattenParallel falls back to sequential for small trees).
void FlattenState(FactState* state, const ExecOptions& options,
                  uint64_t limit = UINT64_MAX) {
  assert(state->is_tree() && state->tree != nullptr);
  FlatBlock out(TreeSchema(*state->tree));
  const std::vector<std::string> cols = AllTreeColumns(*state->tree);
  if (limit == UINT64_MAX && options.intra_query_threads > 1) {
    state->tree->FlattenParallel(cols, &out, options.intra_query_threads,
                                 options.context);
  } else {
    state->tree->Flatten(cols, &out, limit, options.context);
  }
  state->SwitchToFlat(std::move(out));
}

// --- leaf creation -----------------------------------------------------

void FactSeek(FactState* state, const PlanOp& op, const GraphView& view) {
  state->tree = std::make_unique<FTree>();
  FTreeNode* root = state->tree->CreateRoot();
  ValueVector ids(ValueType::kVertex);
  VertexId v = view.FindByExtId(op.label, op.seek_ext_id);
  if (v != kInvalidVertex) ids.AppendVertex(v);
  root->block.AddColumn(op.out_column, std::move(ids));
  state->tree->RegisterColumns(root);
}

void FactScan(FactState* state, const PlanOp& op, const GraphView& view) {
  state->tree = std::make_unique<FTree>();
  FTreeNode* root = state->tree->CreateRoot();
  std::vector<VertexId> vertices;
  view.ScanLabel(op.label, &vertices);
  ValueVector ids(ValueType::kVertex);
  ids.Reserve(vertices.size());
  for (VertexId v : vertices) ids.AppendVertex(v);
  root->block.AddColumn(op.out_column, std::move(ids));
  state->tree->RegisterColumns(root);
}

// --- Expand -------------------------------------------------------------

// True if the lazy (pointer-based join) representation applies. Relations
// with a compressed segment installed are excluded: their spans decode into
// a transient scratch, so storing raw pointers would save nothing (the copy
// happens either way — see the AppendOwnedSegment fallback below for the
// race where a segment lands mid-operator).
bool CanExpandLazy(const PlanOp& op, const ExecOptions& options,
                   const GraphView& view) {
  if (!(options.pointer_join && op.max_hops == 1 && !op.distinct &&
        !op.exclude_start && op.distance_column.empty())) {
    return false;
  }
  for (RelationId rel : op.rels) {
    if (view.graph().RelationCompacted(rel)) return false;
  }
  return true;
}

void FactExpand(FactState* state, const PlanOp& op, const GraphView& view,
                const ExecOptions& options) {
  FTree& tree = *state->tree;
  FTreeNode* src = tree.NodeOfColumn(op.in_column);
  assert(src != nullptr && "expand source column not in tree");
  int src_col = src->block.schema().IndexOf(op.in_column);
  size_t rows = src->block.NumRows();

  FTreeNode* child = tree.AddChild(src);
  child->parent_index.assign(rows, IndexRange{0, 0});

  if (CanExpandLazy(op, options, view)) {
    // Pointer-based join: store (ptr, len) per source row, never copying
    // neighbor ids.
    child->block.InitLazy(op.out_column);
    AdjScratch adj;
    uint64_t off = 0;
    for (size_t r = 0; r < rows; ++r) {
      if (!src->RowValid(r)) continue;
      VertexId v = src->block.GetValue(r, src_col).AsVertex();
      if (v == kInvalidVertex) continue;
      uint64_t begin = off;
      for (RelationId rel : op.rels) {
        AdjSpan span = view.Neighbors(rel, v, &adj);
        if (span.size == 0) continue;
        if (!adj.ids.empty() && span.ids == adj.ids.data()) {
          // A compressed segment was installed between the CanExpandLazy
          // check and this fetch: the span lives in the reusable decode
          // scratch, so move the buffers into the block instead of storing
          // a pointer that the next decode would clobber.
          std::vector<int64_t> stamps;
          if (span.stamps != nullptr) stamps = std::move(adj.stamps);
          child->block.AppendOwnedSegment(std::move(adj.ids),
                                          std::move(stamps));
          adj = AdjScratch{};
        } else {
          child->block.AppendSegment(span);
        }
        off += span.size;
      }
      child->parent_index[r] = IndexRange{begin, off};
    }
    if (!op.stamp_column.empty()) {
      // Stamps are copied into an aligned column (they are consumed by
      // filters/sorts and cannot stay behind the pointer).
      ValueVector stamps(ValueType::kDate);
      stamps.Reserve(child->block.NumRows());
      for (size_t seg = 0; seg < child->block.NumSegments(); ++seg) {
        const AdjSpan& s = child->block.Segment(seg);
        for (uint32_t i = 0; i < s.size; ++i) {
          stamps.AppendInt(s.stamps == nullptr ? 0 : s.stamps[i]);
        }
      }
      child->block.AppendAlignedColumn(op.stamp_column, std::move(stamps));
    }
  } else {
    bool want_dist = !op.distance_column.empty();
    bool want_stamp = !op.stamp_column.empty();

    // Morsel-driven expansion on the shared TaskScheduler (the
    // intra-query-parallel path of the Runtime component): source rows are
    // claimed in kExpandMorselRows chunks from a shared cursor, so skewed
    // rows (power-law degrees) cannot pin a whole static partition to one
    // worker. Each morsel accumulates into its own Part — indexed by
    // morsel id, not by worker — so the stitched output is identical for
    // every thread count. With intra_query_threads <= 1 (or fewer rows
    // than one morsel) ParallelFor degenerates to the plain sequential
    // loop, no scheduler machinery involved.
    struct Part {
      ValueVector ids{ValueType::kVertex};
      ValueVector dist{ValueType::kInt64};
      ValueVector stamps{ValueType::kDate};
      std::vector<uint32_t> counts;  // per source row of the morsel
    };
    size_t num_morsels = (rows + kExpandMorselRows - 1) / kExpandMorselRows;
    std::vector<Part> parts(num_morsels);
    // Governor charge point: each morsel's scratch buffers are charged as
    // they grow (ValueVector::MemoryBytes is O(1) for non-string columns),
    // so a hog expansion trips its budget mid-operator instead of after the
    // stitch. Per-morsel trackers write the budget concurrently — that is
    // its contract. Released after the stitch, whose output the caller's
    // per-op accounting charges.
    auto part_bytes = [](const Part& p) {
      return p.ids.MemoryBytes() + p.dist.MemoryBytes() +
             p.stamps.MemoryBytes() + p.counts.capacity() * sizeof(uint32_t);
    };

    auto expand_morsel = [&](size_t begin_row, size_t end_row) {
      Part& part = parts[begin_row / kExpandMorselRows];
      BudgetTracker tracker(
          options.context != nullptr ? options.context->budget() : nullptr);
      // BFS working set from the per-worker arena: multi-hop expansion of
      // a morsel reuses one visited set / frontier, never touching the
      // global allocator row-to-row.
      NeighborScratch scratch(&TaskScheduler::LocalArena());
      std::vector<std::pair<VertexId, int>> nbrs;
      std::vector<int64_t> st;
      part.counts.reserve(end_row - begin_row);
      for (size_t r = begin_row; r < end_row; ++r) {
        // Per-source-row checkpoint: a multi-hop BFS morsel over high-degree
        // vertices can run for milliseconds, far past the per-morsel poll.
        tracker.Update(part_bytes(part));
        ThrowIfInterrupted(options.context);
        VertexId v = src->RowValid(r)
                         ? src->block.GetValue(r, src_col).AsVertex()
                         : kInvalidVertex;
        if (v == kInvalidVertex) {
          part.counts.push_back(0);
          continue;
        }
        nbrs.clear();
        st.clear();
        CollectNeighbors(view, op.rels, v, op.min_hops, op.max_hops,
                         op.distinct, op.exclude_start, &nbrs,
                         want_stamp ? &st : nullptr, &scratch);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          part.ids.AppendVertex(nbrs[i].first);
          if (want_dist) part.dist.AppendInt(nbrs[i].second);
          if (want_stamp) part.stamps.AppendInt(st[i]);
        }
        part.counts.push_back(static_cast<uint32_t>(nbrs.size()));
      }
      tracker.Update(part_bytes(part));
    };
    TaskScheduler::Global().ParallelFor(0, rows, kExpandMorselRows,
                                        options.intra_query_threads,
                                        expand_morsel, options.context);

    // Stitch slices in source-row order.
    ValueVector ids(ValueType::kVertex);
    ValueVector dist(ValueType::kInt64);
    ValueVector stamps(ValueType::kDate);
    uint64_t off = 0;
    size_t row = 0;
    for (const Part& part : parts) {
      if (!part.counts.empty()) {
        ids.AppendRange(part.ids, 0, part.ids.size());
        if (want_dist) dist.AppendRange(part.dist, 0, part.dist.size());
        if (want_stamp) {
          stamps.AppendRange(part.stamps, 0, part.stamps.size());
        }
      }
      for (uint32_t n : part.counts) {
        child->parent_index[row] = IndexRange{off, off + n};
        off += n;
        ++row;
      }
    }
    if (options.context != nullptr && options.context->budget() != nullptr) {
      size_t transient = 0;
      for (const Part& part : parts) transient += part_bytes(part);
      options.context->budget()->Release(transient);
    }
    child->block.AddColumn(op.out_column, std::move(ids));
    if (want_dist) {
      child->block.AppendAlignedColumn(op.distance_column, std::move(dist));
    }
    if (want_stamp) {
      child->block.AppendAlignedColumn(op.stamp_column, std::move(stamps));
    }
  }
  tree.RegisterColumns(child);
}

// For each row of `node`, the row of `ancestor` it descends from, walking
// the (parent, child) index vectors upward. Returns false when `ancestor`
// is not on `node`'s root path.
bool AncestorRowMap(const FTreeNode* node, const FTreeNode* ancestor,
                    std::vector<uint64_t>* map) {
  std::vector<const FTreeNode*> chain;
  for (const FTreeNode* n = node; n != nullptr; n = n->parent) {
    chain.push_back(n);
    if (n == ancestor) break;
  }
  if (chain.back() != ancestor) return false;
  size_t rows = node->block.NumRows();
  map->resize(rows);
  for (size_t r = 0; r < rows; ++r) (*map)[r] = r;
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    const FTreeNode* cur = chain[i];
    const FTreeNode* par = chain[i + 1];
    // Invert the (par, cur) index vector: parent row of each cur row.
    std::vector<uint64_t> parent_of(cur->block.NumRows(), 0);
    for (uint64_t pr = 0; pr < par->block.NumRows(); ++pr) {
      const IndexRange& rng = cur->parent_index[pr];
      for (uint64_t cr = rng.begin; cr < rng.end; ++cr) parent_of[cr] = pr;
    }
    for (size_t r = 0; r < rows; ++r) (*map)[r] = parent_of[(*map)[r]];
  }
  return true;
}

// Worst-case-optimal intersection as a factorized extension: the surviving
// neighbors of each driver row become a new child node under the driver's
// node, so the multiway intersection result is emitted directly in
// factorized form — never flattened. Applies when every probe column lives
// on the driver node's root path (each driver row then determines a unique
// probe tuple via the ancestor row maps); any other shape falls back to
// flat execution, exactly like kExpandInto.
bool TryFactIntersectExpand(FactState* state, const PlanOp& op,
                            const GraphView& view, const ExecOptions& options,
                            IntersectOpStats* istats) {
  FTree& tree = *state->tree;
  FTreeNode* src = tree.NodeOfColumn(op.in_column);
  if (src == nullptr) return false;
  int src_col = src->block.schema().IndexOf(op.in_column);
  size_t rows = src->block.NumRows();

  struct Probe {
    const FTreeNode* node;
    int col;
    std::vector<uint64_t> row_map;  // empty: probe lives on src itself
  };
  std::vector<Probe> probes(op.probe_columns.size());
  for (size_t c = 0; c < op.probe_columns.size(); ++c) {
    const FTreeNode* pn = tree.NodeOfColumn(op.probe_columns[c]);
    if (pn == nullptr) return false;
    probes[c].node = pn;
    probes[c].col = pn->block.schema().IndexOf(op.probe_columns[c]);
    if (pn != src && !AncestorRowMap(src, pn, &probes[c].row_map)) {
      return false;
    }
  }

  FTreeNode* child = tree.AddChild(src);
  child->parent_index.assign(rows, IndexRange{0, 0});

  // Morsel-driven on the shared TaskScheduler with the same Part-per-morsel
  // stitching as FactExpand: output is identical for every thread count.
  struct Part {
    ValueVector ids{ValueType::kVertex};
    std::vector<uint32_t> counts;  // per source row of the morsel
    IntersectOpStats stats;
  };
  size_t num_morsels = (rows + kExpandMorselRows - 1) / kExpandMorselRows;
  std::vector<Part> parts(num_morsels);
  // Governor charge point for the WCOJ probe output buffers; same
  // charge-while-growing / release-after-stitch protocol as FactExpand.
  auto part_bytes = [](const Part& p) {
    return p.ids.MemoryBytes() + p.counts.capacity() * sizeof(uint32_t);
  };

  auto morsel = [&](size_t begin_row, size_t end_row) {
    Part& part = parts[begin_row / kExpandMorselRows];
    BudgetTracker tracker(
        options.context != nullptr ? options.context->budget() : nullptr);
    internal::IntersectExpandRunner runner(op);
    std::vector<VertexId> probe_vals(probes.size());
    part.counts.reserve(end_row - begin_row);
    for (size_t r = begin_row; r < end_row; ++r) {
      // Per-row checkpoint: a high-degree driver can gallop for a while.
      tracker.Update(part_bytes(part));
      ThrowIfInterrupted(options.context);
      VertexId v = src->RowValid(r)
                       ? src->block.GetValue(r, src_col).AsVertex()
                       : kInvalidVertex;
      bool ok = v != kInvalidVertex;
      for (size_t c = 0; ok && c < probes.size(); ++c) {
        const Probe& p = probes[c];
        uint64_t pr = p.row_map.empty() ? r : p.row_map[r];
        VertexId u = p.node->block.GetValue(pr, p.col).AsVertex();
        if (u == kInvalidVertex) ok = false;
        probe_vals[c] = u;
      }
      if (!ok) {
        part.counts.push_back(0);
        continue;
      }
      uint32_t n = 0;
      runner.Run(view, v, probe_vals.data(), &part.stats, [&](VertexId w) {
        part.ids.AppendVertex(w);
        ++n;
      });
      part.counts.push_back(n);
    }
    tracker.Update(part_bytes(part));
  };
  TaskScheduler::Global().ParallelFor(0, rows, kExpandMorselRows,
                                      options.intra_query_threads, morsel,
                                      options.context);

  ValueVector ids(ValueType::kVertex);
  uint64_t off = 0;
  size_t row = 0;
  for (const Part& part : parts) {
    istats->Add(part.stats);
    if (!part.counts.empty()) ids.AppendRange(part.ids, 0, part.ids.size());
    for (uint32_t n : part.counts) {
      child->parent_index[row] = IndexRange{off, off + n};
      off += n;
      ++row;
    }
  }
  if (options.context != nullptr && options.context->budget() != nullptr) {
    size_t transient = 0;
    for (const Part& part : parts) transient += part_bytes(part);
    options.context->budget()->Release(transient);
  }
  child->block.AddColumn(op.out_column, std::move(ids));
  tree.RegisterColumns(child);
  return true;
}

// Fused Expand+GetProperty+Filter (FilterPushDown): only surviving
// neighbors and their property values are materialized. The property value
// of each candidate neighbor is fetched exactly once and reused for both
// the predicate and the kept column — never re-fetched.
void FactExpandFiltered(FactState* state, const PlanOp& op,
                        const GraphView& view, const ExecOptions& options) {
  FTree& tree = *state->tree;
  FTreeNode* src = tree.NodeOfColumn(op.in_column);
  assert(src != nullptr);
  int src_col = src->block.schema().IndexOf(op.in_column);
  size_t rows = src->block.NumRows();

  FTreeNode* child = tree.AddChild(src);
  child->parent_index.assign(rows, IndexRange{0, 0});

  const std::string& prop_col = FusedPropertyColumn(op);
  Schema pred_schema;
  pred_schema.Add(prop_col, op.property_type);

  ValueVector ids(ValueType::kVertex);
  ValueVector props(op.property_type);

  if (options.vector_kernels) {
    // Batched path: collect every candidate neighbor, gather their property
    // values in one batch (MVCC overlay and string dictionary resolved once
    // per batch, storage/graph.h), refine a byte mask with the compiled
    // kernel, then compact survivors. Missing properties take the typed
    // zero placeholder — the same value a non-fused GetProperty step would
    // materialize into the column before filtering.
    std::vector<VertexId> cand;
    std::vector<IndexRange> cand_range(rows, IndexRange{0, 0});
    // Each span is drained into `cand` before the next fetch, so one
    // decode scratch serves every (row, rel) pair.
    AdjScratch adj;
    // Governor charge point: the candidate buffer is the fused operator's
    // memory spike (every neighbor before filtering); charged as it grows,
    // released once survivors are compacted into the child block.
    BudgetTracker cand_tracker(
        options.context != nullptr ? options.context->budget() : nullptr);
    for (size_t r = 0; r < rows; ++r) {
      if ((r & 255u) == 0) {
        cand_tracker.Update(cand.capacity() * sizeof(VertexId));
        ThrowIfInterrupted(options.context);
      }
      if (!src->RowValid(r)) continue;
      VertexId v = src->block.GetValue(r, src_col).AsVertex();
      if (v == kInvalidVertex) continue;
      uint64_t begin = cand.size();
      for (RelationId rel : op.rels) {
        AdjSpan span = view.Neighbors(rel, v, &adj);
        for (uint32_t i = 0; i < span.size; ++i) {
          if (span.ids[i] != kInvalidVertex) cand.push_back(span.ids[i]);
        }
      }
      cand_range[r] = IndexRange{begin, cand.size()};
    }

    ValueVector cand_props(op.property_type);
    view.GatherProperties(cand.data(), cand.size(), nullptr, op.property,
                          &cand_props);
    cand_tracker.Update(cand.capacity() * sizeof(VertexId) +
                        cand_props.MemoryBytes() + cand.size());
    ThrowIfInterrupted(options.context);

    std::vector<uint8_t> keep(cand.size(), 1);
    std::vector<const ValueVector*> phys{&cand_props};
    std::unique_ptr<CompiledExpr> kernel = CompiledExpr::CompileFilter(
        *op.predicate, pred_schema, phys, options.column_stats);
    if (kernel != nullptr) {
      CompiledExpr* k = kernel.get();
      auto run = [k, &keep](size_t lo, size_t hi) {
        k->EvalFilter(keep.data(), lo, hi);
      };
      TaskScheduler::Global().ParallelFor(0, cand.size(), kFilterMorselRows,
                                          options.intra_query_threads, run,
                                          options.context);
    } else {
      BoundExpr pred = BoundExpr::Bind(*op.predicate, pred_schema);
      for (size_t i = 0; i < cand.size(); ++i) {
        Value pv = cand_props.GetValue(i);
        auto getter = [&pv](int) -> Value { return pv; };
        keep[i] = pred.Eval(getter).AsBool() ? 1 : 0;
      }
    }

    if (op.keep_property && cand_props.dict_encoded()) {
      props.InitDict(cand_props.dict());
    }
    uint64_t off = 0;
    for (size_t r = 0; r < rows; ++r) {
      uint64_t begin = off;
      for (uint64_t i = cand_range[r].begin; i < cand_range[r].end; ++i) {
        if (keep[i] == 0) continue;
        ids.AppendVertex(cand[i]);
        if (op.keep_property) props.AppendFrom(cand_props, i);
        ++off;
      }
      child->parent_index[r] = IndexRange{begin, off};
    }
    cand_tracker.Update(0);  // survivors are charged by per-op accounting
  } else {
    BoundExpr pred = BoundExpr::Bind(*op.predicate, pred_schema);
    AdjScratch adj;
    uint64_t off = 0;
    for (size_t r = 0; r < rows; ++r) {
      if ((r & 255u) == 0) ThrowIfInterrupted(options.context);
      if (!src->RowValid(r)) continue;
      VertexId v = src->block.GetValue(r, src_col).AsVertex();
      if (v == kInvalidVertex) continue;
      uint64_t begin = off;
      for (RelationId rel : op.rels) {
        AdjSpan span = view.Neighbors(rel, v, &adj);
        for (uint32_t i = 0; i < span.size; ++i) {
          VertexId id = span.ids[i];
          if (id == kInvalidVertex) continue;
          Value pv = view.Property(id, op.property);
          if (!pred.Eval([&pv](int) -> Value { return pv; }).AsBool()) {
            continue;
          }
          ids.AppendVertex(id);
          if (op.keep_property) props.AppendValue(pv);
          ++off;
        }
      }
      child->parent_index[r] = IndexRange{begin, off};
    }
  }
  child->block.AddColumn(op.out_column, std::move(ids));
  if (op.keep_property) {
    child->block.AppendAlignedColumn(prop_col, std::move(props));
  }
  tree.RegisterColumns(child);
}

// --- Projection / property fetch ---------------------------------------

void FactGetProperty(FactState* state, const PlanOp& op,
                     const GraphView& view, const ExecOptions& options) {
  FTree& tree = *state->tree;
  FTreeNode* node = tree.NodeOfColumn(op.in_column);
  assert(node != nullptr);
  int col = node->block.schema().IndexOf(op.in_column);
  size_t rows = node->block.NumRows();
  ValueVector out(op.property_type);
  out.Reserve(rows);
  // Invalid/tombstone rows receive a placeholder to keep row alignment
  // (they are never enumerated).
  if (options.vector_kernels) {
    // Batched gather: the MVCC overlay and the string dictionary are
    // resolved once per batch, base columns are copied slice-wise
    // (Graph::GatherProperties). Lazy blocks gather straight from the
    // adjacency segments — the ids are never materialized.
    const uint8_t* sel = node->sel.empty() ? nullptr : node->sel.data();
    if (node->block.lazy() && col == 0) {
      uint64_t row = 0;
      for (size_t seg = 0; seg < node->block.NumSegments(); ++seg) {
        const AdjSpan& s = node->block.Segment(seg);
        view.GatherProperties(s.ids, s.size,
                              sel == nullptr ? nullptr : sel + row,
                              op.property, &out);
        row += s.size;
      }
    } else {
      // Vertex columns store int64 physically; uint64 access to the same
      // array is the sanctioned signed/unsigned aliasing case.
      const ValueVector& ids = node->block.Column(col);
      view.GatherProperties(
          reinterpret_cast<const VertexId*>(ids.ints_data()), rows, sel,
          op.property, &out);
    }
  } else if (col == 0) {
    node->block.ForEachVertex([&](uint64_t row, VertexId v) {
      if (v == kInvalidVertex || !node->RowValid(row)) {
        out.AppendValue(Value::Null());
      } else {
        out.AppendValue(view.Property(v, op.property));
      }
    });
  } else {
    for (size_t r = 0; r < rows; ++r) {
      if (!node->RowValid(r)) {
        out.AppendValue(Value::Null());
        continue;
      }
      VertexId v = node->block.GetValue(r, col).AsVertex();
      out.AppendValue(v == kInvalidVertex ? Value::Null()
                                          : view.Property(v, op.property));
    }
  }
  node->block.AppendAlignedColumn(op.out_column, std::move(out));
  tree.RegisterColumns(node);
}

// Node containing every column in `cols`, or nullptr if they span nodes.
FTreeNode* SingleNodeOf(const FTree& tree,
                        const std::vector<std::string>& cols) {
  FTreeNode* node = nullptr;
  for (const std::string& c : cols) {
    FTreeNode* n = tree.NodeOfColumn(c);
    if (n == nullptr) return nullptr;
    if (node == nullptr) {
      node = n;
    } else if (node != n) {
      return nullptr;
    }
  }
  return node;
}

// Per-schema-column physical vectors for kernel compilation. The head
// column of a lazy block has no materialized vector — left nullptr, so a
// predicate referencing it fails compilation and the interpreted path runs.
std::vector<const ValueVector*> PhysicalColumns(const FBlock& block) {
  std::vector<const ValueVector*> cols(block.schema().size(), nullptr);
  for (size_t i = 0; i < cols.size(); ++i) {
    if (block.lazy() && i == 0) continue;
    cols[i] = &block.Column(static_cast<int>(i));
  }
  return cols;
}

// Vectorized filter: the whole predicate compiles to type-specialized
// selection kernels over the raw column arrays (executor/vector_expr.h) —
// comparisons, IN, StartsWith, arithmetic, and AND/OR with
// selectivity-ordered short-circuiting; string equality compares dictionary
// codes. Large blocks run the kernel morsel-parallel — each morsel refines
// a disjoint slice of the selection vector, so the result is independent of
// the thread count. Returns false when some construct has no kernel (the
// caller falls back to the interpreted BoundExpr loop).
bool TryVectorizedFilter(FTreeNode* node, const PlanOp& op,
                         const ExecOptions& options) {
  std::vector<const ValueVector*> phys = PhysicalColumns(node->block);
  std::unique_ptr<CompiledExpr> kernel = CompiledExpr::CompileFilter(
      *op.predicate, node->block.schema(), phys, options.column_stats);
  if (kernel == nullptr) return false;
  std::vector<uint8_t>& sel = node->MutableSel();
  CompiledExpr* k = kernel.get();
  auto run = [k, &sel](size_t lo, size_t hi) {
    k->EvalFilter(sel.data(), lo, hi);
  };
  TaskScheduler::Global().ParallelFor(0, node->block.NumRows(),
                                      kFilterMorselRows,
                                      options.intra_query_threads, run,
                                      options.context);
  return true;
}

// Filter: when the predicate's attributes live in one f-Tree node, update
// that node's selection vector in place — no data movement at all.
bool TryFactFilter(FactState* state, const PlanOp& op,
                   const ExecOptions& options) {
  std::vector<std::string> cols;
  op.predicate->CollectColumns(&cols);
  FTreeNode* node = SingleNodeOf(*state->tree, cols);
  if (node == nullptr && !cols.empty()) return false;
  if (node == nullptr) node = state->tree->root();
  if (options.vector_kernels && options.vectorized_filter &&
      TryVectorizedFilter(node, op, options)) {
    return true;
  }
  BoundExpr pred = BoundExpr::Bind(*op.predicate, node->block.schema());
  std::vector<uint8_t>& sel = node->MutableSel();
  size_t rows = node->block.NumRows();
  for (size_t r = 0; r < rows; ++r) {
    if (sel[r] == 0) continue;
    auto getter = [&](int i) -> Value { return node->block.GetValue(r, i); };
    if (!pred.Eval(getter).AsBool()) sel[r] = 0;
  }
  return true;
}

// Project: computed expressions whose inputs are confined to one node are
// appended to that node's block (columnar append). Kernelizable expressions
// run compiled column loops; anything else takes the interpreted per-row
// walk.
bool TryFactProject(FactState* state, const PlanOp& op,
                    const ExecOptions& options) {
  if (!op.selections.empty()) return false;  // pruning => flatten
  for (const ComputedColumn& c : op.computed) {
    std::vector<std::string> cols;
    c.expr->CollectColumns(&cols);
    if (SingleNodeOf(*state->tree, cols) == nullptr) return false;
  }
  for (const ComputedColumn& c : op.computed) {
    std::vector<std::string> cols;
    c.expr->CollectColumns(&cols);
    FTreeNode* node = SingleNodeOf(*state->tree, cols);
    size_t rows = node->block.NumRows();
    ValueVector out(c.type);
    out.Reserve(rows);
    bool kernelized = false;
    if (options.vector_kernels) {
      std::vector<const ValueVector*> phys = PhysicalColumns(node->block);
      std::unique_ptr<CompiledExpr> kernel =
          CompiledExpr::CompileProject(*c.expr, node->block.schema(), phys);
      if (kernel != nullptr) {
        kernel->EvalProject(0, rows, &out);
        kernelized = true;
      }
    }
    if (!kernelized) {
      BoundExpr e = BoundExpr::Bind(*c.expr, node->block.schema());
      for (size_t r = 0; r < rows; ++r) {
        auto getter = [&](int i) -> Value {
          return node->block.GetValue(r, i);
        };
        out.AppendValue(e.Eval(getter));
      }
    }
    node->block.AppendAlignedColumn(c.name, std::move(out));
    state->tree->RegisterColumns(node);
  }
  return true;
}

// --- Aggregation --------------------------------------------------------

// Direct factorized aggregation: when the group keys and all aggregate
// inputs live in one node u, per-group results follow from the tuple-count
// DP without enumerating tuples.
bool TryFactAggregate(const FTree& tree, const std::vector<std::string>& group_by,
                      const std::vector<AggSpec>& aggs, FlatBlock* out) {
  // Locate the single node carrying all referenced columns.
  std::vector<std::string> cols = group_by;
  for (const AggSpec& a : aggs) {
    if (!a.input.empty()) cols.push_back(a.input);
  }
  const FTreeNode* u;
  if (cols.empty()) {
    u = tree.root();
  } else {
    FTreeNode* n = SingleNodeOf(tree, cols);
    if (n == nullptr) return false;
    u = n;
  }

  std::vector<uint64_t> counts = tree.TupleCountsForNode(u);
  const Schema& us = u->block.schema();
  std::vector<ColumnDef> key_defs;
  std::vector<int> key_idx;
  for (const std::string& g : group_by) {
    int i = us.IndexOf(g);
    key_idx.push_back(i);
    key_defs.push_back(ColumnDef{g, us[i].type});
  }
  std::vector<int> agg_idx;
  std::vector<ValueType> input_types;
  for (const AggSpec& a : aggs) {
    int i = a.input.empty() ? -1 : us.IndexOf(a.input);
    agg_idx.push_back(i);
    input_types.push_back(i >= 0 ? us[i].type : ValueType::kInt64);
  }

  internal::GroupedAggregator agg(std::move(key_defs), aggs,
                                  std::move(input_types));
  std::vector<Value> inputs(aggs.size());
  size_t rows = u->block.NumRows();
  for (size_t r = 0; r < rows; ++r) {
    if (counts[r] == 0) continue;
    std::vector<Value> key;
    key.reserve(key_idx.size());
    for (int i : key_idx) key.push_back(u->block.GetValue(r, i));
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (agg_idx[a] >= 0) inputs[a] = u->block.GetValue(r, agg_idx[a]);
    }
    agg.Add(std::move(key), inputs, static_cast<int64_t>(counts[r]));
  }
  *out = agg.Finish();
  return true;
}

// Streaming aggregation over the enumerator: used by the fused
// AggregateProjectTop when the direct DP path does not apply. Tuples are
// consumed one at a time and folded into the group states; memory stays
// O(#groups) instead of O(#tuples).
FlatBlock StreamingAggregate(const FTree& tree,
                             const std::vector<std::string>& group_by,
                             const std::vector<AggSpec>& aggs) {
  TupleEnumerator e(tree);
  struct Slot {
    size_t node_idx;
    size_t col_idx;
    ValueType type;
  };
  auto resolve = [&](const std::string& name) {
    const FTreeNode* node = tree.NodeOfColumn(name);
    assert(node != nullptr);
    int col = node->block.schema().IndexOf(name);
    return Slot{e.IndexOf(node), static_cast<size_t>(col),
                node->block.schema()[col].type};
  };
  std::vector<Slot> key_slots;
  std::vector<ColumnDef> key_defs;
  for (const std::string& g : group_by) {
    Slot s = resolve(g);
    key_slots.push_back(s);
    key_defs.push_back(ColumnDef{g, s.type});
  }
  std::vector<Slot> input_slots;
  std::vector<ValueType> input_types;
  bool has_input = false;
  for (const AggSpec& a : aggs) {
    if (a.input.empty()) {
      input_slots.push_back(Slot{0, 0, ValueType::kInt64});
      input_types.push_back(ValueType::kInt64);
    } else {
      Slot s = resolve(a.input);
      input_slots.push_back(s);
      input_types.push_back(s.type);
      has_input = true;
    }
  }

  internal::GroupedAggregator agg(std::move(key_defs), aggs,
                                  std::move(input_types));
  std::vector<Value> inputs(aggs.size());
  auto value_at = [&](const Slot& s) {
    return e.nodes()[s.node_idx]->block.GetValue(e.RowAt(s.node_idx),
                                                 s.col_idx);
  };
  while (e.Next()) {
    std::vector<Value> key;
    key.reserve(key_slots.size());
    for (const Slot& s : key_slots) key.push_back(value_at(s));
    if (has_input) {
      for (size_t a = 0; a < aggs.size(); ++a) {
        if (!aggs[a].input.empty()) inputs[a] = value_at(input_slots[a]);
      }
    }
    agg.Add(std::move(key), inputs);
  }
  return agg.Finish();
}

// Fused TopK: de-factors through the enumerator while keeping only the
// current top `limit` tuples (bounded memory; Figure 8 step (vi)).
FlatBlock StreamTopK(const FTree& tree, const std::vector<SortKey>& keys,
                     uint64_t limit) {
  Schema schema = TreeSchema(tree);
  std::vector<int> idx;
  std::vector<bool> asc;
  for (const SortKey& k : keys) {
    int i = schema.IndexOf(k.column);
    assert(i >= 0);
    idx.push_back(i);
    asc.push_back(k.ascending);
  }
  auto cmp = [&](const std::vector<Value>& a, const std::vector<Value>& b) {
    for (size_t k = 0; k < idx.size(); ++k) {
      int c = a[idx[k]].Compare(b[idx[k]]);
      if (c != 0) return asc[k] ? c < 0 : c > 0;
    }
    return false;
  };

  TupleEnumerator e(tree);
  std::vector<const FTreeNode*> nodes = e.nodes();
  // Column slots in enumeration order = TreeSchema order.
  struct Slot {
    size_t node_idx;
    size_t col_idx;
  };
  std::vector<Slot> slots;
  for (size_t ni = 0; ni < nodes.size(); ++ni) {
    for (size_t c = 0; c < nodes[ni]->block.schema().size(); ++c) {
      slots.push_back(Slot{ni, c});
    }
  }

  std::vector<std::vector<Value>> top;  // kept sorted ascending by cmp
  while (e.Next()) {
    std::vector<Value> row;
    row.reserve(slots.size());
    for (const Slot& s : slots) {
      row.push_back(nodes[s.node_idx]->block.GetValue(e.RowAt(s.node_idx),
                                                      s.col_idx));
    }
    if (top.size() >= limit && !cmp(row, top.back())) continue;
    auto pos = std::upper_bound(top.begin(), top.end(), row, cmp);
    top.insert(pos, std::move(row));
    if (top.size() > limit) top.pop_back();
  }
  FlatBlock out(schema);
  for (auto& row : top) out.AppendRow(std::move(row));
  return out;
}

}  // namespace

QueryResult Executor::RunFactorized(const Plan& plan,
                                    const GraphView& view) const {
  QueryResult result;
  Timer total;
  FactState state;
  MemoryBudget* budget =
      options_.context != nullptr ? options_.context->budget() : nullptr;
  BudgetTracker tracker(budget);

  for (const PlanOp& op : plan.ops) {
    ThrowIfInterrupted(options_.context);
    Timer t;
    IntersectOpStats istats;
    if (!state.is_tree()) {
      state.flat = ApplyFlatOp(std::move(state.flat), op, view, &istats,
                               options_.context);
    } else {
      switch (op.type) {
        case OpType::kNodeByIdSeek:
          FactSeek(&state, op, view);
          break;
        case OpType::kScanByLabel:
          FactScan(&state, op, view);
          break;
        case OpType::kExpand:
          FactExpand(&state, op, view, options_);
          break;
        case OpType::kExpandFiltered:
          FactExpandFiltered(&state, op, view, options_);
          break;
        case OpType::kIntersectExpand:
          if (!TryFactIntersectExpand(&state, op, view, options_, &istats)) {
            FlattenState(&state, options_);
            state.flat = ApplyFlatOp(std::move(state.flat), op, view, &istats,
                                     options_.context);
          }
          break;
        case OpType::kGetProperty:
          FactGetProperty(&state, op, view, options_);
          break;
        case OpType::kFilter:
          if (!TryFactFilter(&state, op, options_)) {
            FlattenState(&state, options_);
            state.flat = ApplyFlatOp(std::move(state.flat), op, view, nullptr,
                                     options_.context);
          }
          break;
        case OpType::kProject:
          if (!TryFactProject(&state, op, options_)) {
            FlattenState(&state, options_);
            state.flat = ApplyFlatOp(std::move(state.flat), op, view, nullptr,
                                     options_.context);
          }
          break;
        case OpType::kAggregate: {
          // GES_f handles only the "simplest case" natively (keys confined
          // to a single-node tree); complex aggregations de-factor first.
          // GES_f* aggregates directly on the tree via the tuple-count DP,
          // or streams tuples into group states — never materializing the
          // flat intermediate.
          FlatBlock out;
          bool fused_engine = mode_ == ExecMode::kFactorizedFused;
          bool single_node = state.tree->root()->children.empty();
          if ((fused_engine || single_node) &&
              TryFactAggregate(*state.tree, op.group_by, op.aggs, &out)) {
            state.SwitchToFlat(std::move(out));
          } else if (fused_engine) {
            state.SwitchToFlat(
                StreamingAggregate(*state.tree, op.group_by, op.aggs));
          } else {
            FlattenState(&state, options_);
            state.flat = ApplyFlatOp(std::move(state.flat), op, view, nullptr,
                                     options_.context);
          }
          break;
        }
        case OpType::kOrderBy:
          // Order keys almost always span nodes; de-factor then sort.
          FlattenState(&state, options_);
          SortAndLimit(&state.flat, op.sort_keys, op.limit);
          break;
        case OpType::kTopK:
          state.SwitchToFlat(StreamTopK(*state.tree, op.sort_keys, op.limit));
          break;
        case OpType::kAggProjectTop: {
          FlatBlock out;
          if (!TryFactAggregate(*state.tree, op.group_by, op.aggs, &out)) {
            out = StreamingAggregate(*state.tree, op.group_by, op.aggs);
          }
          if (!op.computed.empty() || !op.selections.empty()) {
            out = ProjectFlat(out, op);
          }
          SortAndLimit(&out, op.sort_keys, op.limit);
          state.SwitchToFlat(std::move(out));
          break;
        }
        case OpType::kLimit:
          FlattenState(&state, options_, op.limit);
          break;
        case OpType::kDistinct:
        case OpType::kExpandInto:
          // Cyclic / global-dedup logic: revert to flat execution.
          FlattenState(&state, options_);
          state.flat = ApplyFlatOp(std::move(state.flat), op, view, &istats,
                                   options_.context);
          break;
        case OpType::kProcedure:
          state.SwitchToFlat(op.procedure(view));
          break;
      }
    }
    OpStats os;
    os.op = OpTypeName(op.type);
    os.millis = t.ElapsedMillis();
    os.est_rows = op.est_rows;
    os.intersect = istats;
    result.stats.intersect.Add(istats);
    if (budget != nullptr) {
      // Per-op governor accounting: true the budget up to the exact live
      // state (the intra-op trackers charged approximations and released
      // them), then let the checkpoint at the top of the next iteration —
      // or the one below for the last op — kill an over-budget query.
      tracker.Update(state.MemoryBytes());
      ThrowIfInterrupted(options_.context);
    }
    if (options_.collect_stats) {
      os.intermediate_bytes =
          std::max(state.MemoryBytes(), state.transient_bytes);
      state.transient_bytes = 0;
      os.rows = state.is_tree()
                    ? (state.tree == nullptr ? 0 : state.tree->CountTuples())
                    : state.flat.NumRows();
      result.stats.peak_intermediate_bytes = std::max(
          result.stats.peak_intermediate_bytes, os.intermediate_bytes);
    }
    result.stats.ops.push_back(std::move(os));
  }

  if (state.is_tree() && state.tree == nullptr) {
    // Empty plan: nothing was executed.
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }
  if (state.is_tree()) {
    const std::vector<std::string> cols =
        plan.output.empty() ? AllTreeColumns(*state.tree) : plan.output;
    Schema s;
    for (const std::string& c : cols) {
      const FTreeNode* n = state.tree->NodeOfColumn(c);
      int ci = n->block.schema().IndexOf(c);
      s.Add(c, n->block.schema()[ci].type);
    }
    FlatBlock shaped(s);
    if (options_.intra_query_threads > 1) {
      state.tree->FlattenParallel(cols, &shaped, options_.intra_query_threads,
                                  options_.context);
    } else {
      state.tree->Flatten(cols, &shaped, UINT64_MAX, options_.context);
    }
    if (budget != nullptr) {
      // The de-factored answer replaces the tree as the live state.
      tracker.Update(shaped.MemoryBytes());
      ThrowIfInterrupted(options_.context);
    }
    result.table = std::move(shaped);
  } else {
    result.table = internal::ProjectOutput(state.flat, plan.output);
  }
  result.stats.total_millis = total.ElapsedMillis();
  return result;
}

}  // namespace ges
