#include "executor/optimizer.h"

#include <cmath>
#include <limits>

namespace ges {

namespace {

// Largest LIMIT for which the bounded-insertion TopK is profitable.
constexpr uint64_t kMaxTopK = 1024;

bool PredicateUsesOnly(const Expr& pred, const std::string& column) {
  std::vector<std::string> cols;
  pred.CollectColumns(&cols);
  for (const std::string& c : cols) {
    if (c != column) return false;
  }
  return !cols.empty();
}

// Expand eligible for the filter fusion: plain single-hop expansion.
bool ExpandFusable(const PlanOp& op) {
  return op.type == OpType::kExpand && op.max_hops == 1 && !op.distinct &&
         !op.exclude_start && op.distance_column.empty() &&
         op.stamp_column.empty();
}

// Degree-based cost gate for the WCOJ rewrite (DESIGN.md §12), in probe
// comparisons per driver row:
//   binary:    d_drv * (1 + sum_c log2(1 + d_c)) + kMaterialize * d_drv
//   intersect: min(d_drv, min_c d_c) * (1 + sum_c log2(1 + d_c)) + d_drv
// The binary chain materializes every candidate extension before probing
// (and de-factors the f-Tree); the intersection rejects candidates past the
// shortest probe list in O(1) through its exhausted cursor and walks the
// driver list in place. Without statistics (view == nullptr) the rewrite is
// applied unconditionally — it is never asymptotically worse.
bool IntersectionProfitable(const GraphView* view, const PlanOp& expand,
                            const std::vector<std::vector<RelationId>>& probe_rels) {
  if (view == nullptr) return true;
  const Graph& g = view->graph();
  double d_drv = 0;
  for (RelationId r : expand.rels) d_drv += g.AvgDegree(r);
  double log_sum = 0;
  double d_min = std::numeric_limits<double>::infinity();
  for (const std::vector<RelationId>& rels : probe_rels) {
    double d = 0;
    for (RelationId r : rels) d += g.AvgDegree(r);
    d_min = std::min(d_min, d);
    log_sum += std::log2(1.0 + d);
  }
  constexpr double kMaterialize = 4.0;  // per-row extension + flatten cost
  double binary = d_drv * (1.0 + log_sum) + kMaterialize * d_drv;
  double intersect = std::min(d_drv, d_min) * (1.0 + log_sum) + d_drv;
  return intersect < binary;
}

}  // namespace

namespace {

// Columns produced by `op` (subset needed for the pushdown rule).
void CollectProduced(const PlanOp& op, std::vector<std::string>* out) {
  switch (op.type) {
    case OpType::kNodeByIdSeek:
    case OpType::kScanByLabel:
    case OpType::kExpand:
    case OpType::kGetProperty:
      out->push_back(op.out_column);
      if (!op.distance_column.empty()) out->push_back(op.distance_column);
      if (!op.stamp_column.empty()) out->push_back(op.stamp_column);
      break;
    default:
      break;
  }
}

bool IsStreamSafe(OpType t) {
  // Operators a filter may hop over without changing results: they neither
  // rename/remove columns nor depend on cardinality. (Aggregates, sorts,
  // limits, distinct and projections act as barriers.)
  return t == OpType::kExpand || t == OpType::kGetProperty ||
         t == OpType::kFilter || t == OpType::kExpandInto ||
         t == OpType::kExpandFiltered;
}

// Rule-based FilterPushDown (plan-level half): moves each Filter directly
// behind the earliest operator that produces all of its columns, so
// predicates prune intermediate results as early as possible and sit
// adjacent to their Expand for the fusion rule below.
void PushDownFilters(std::vector<PlanOp>* ops) {
  for (size_t i = 1; i < ops->size(); ++i) {
    if ((*ops)[i].type != OpType::kFilter) continue;
    std::vector<std::string> needed;
    (*ops)[i].predicate->CollectColumns(&needed);
    // Earliest position (just after op `j`) where every needed column
    // exists; the filter can only hop over stream-safe operators.
    size_t target = i;
    std::vector<std::string> available;
    // Recompute availability from the front.
    size_t have_all_after = ops->size();
    for (size_t j = 0; j < i; ++j) {
      CollectProduced((*ops)[j], &available);
      bool all = true;
      for (const std::string& c : needed) {
        bool found = false;
        for (const std::string& a : available) found |= a == c;
        all &= found;
      }
      if (all) {
        have_all_after = j;
        break;
      }
    }
    if (have_all_after == ops->size()) continue;  // columns appear at i only
    // Walk the insertion point forward over non-stream-safe barriers.
    target = have_all_after + 1;
    for (size_t j = have_all_after + 1; j < i; ++j) {
      if (!IsStreamSafe((*ops)[j].type)) target = j + 1;
    }
    if (target >= i) continue;
    PlanOp filter = std::move((*ops)[i]);
    ops->erase(ops->begin() + static_cast<std::ptrdiff_t>(i));
    ops->insert(ops->begin() + static_cast<std::ptrdiff_t>(target),
                std::move(filter));
  }
}

}  // namespace

Plan OptimizePlan(const Plan& plan, const ExecOptions& options,
                  const GraphView* view) {
  Plan out;
  out.name = plan.name;
  out.output = plan.output;

  // Rule-based reordering first (always sound), then pattern fusion.
  std::vector<PlanOp> reordered = plan.ops;
  PushDownFilters(&reordered);
  const std::vector<PlanOp>& ops = reordered;
  size_t i = 0;
  while (i < ops.size()) {
    // --- WCOJ: Expand ; ExpandInto+ -> IntersectExpand (DESIGN.md §12).
    // The cyclic closing edges of the bound plan (triangles, diamonds,
    // k-cliques) show up as semi-join ExpandInto ops against the column the
    // Expand just produced; the chain becomes one leapfrog intersection.
    if (options.intersect_expand && ExpandFusable(ops[i]) &&
        ops[i].min_hops == 1 && i + 1 < ops.size()) {
      const std::string& w = ops[i].out_column;
      std::vector<std::string> probe_cols;
      std::vector<std::vector<RelationId>> probe_rels;
      // Filters interleaved with the ExpandInto chain are deferred past the
      // fused operator: both are pure row selections, and selections
      // commute (no columns are added or dropped), so re-running them after
      // the intersection yields the same rows.
      std::vector<const PlanOp*> deferred_filters;
      size_t j = i + 1;
      for (; j < ops.size(); ++j) {
        if (ops[j].type == OpType::kFilter) {
          deferred_filters.push_back(&ops[j]);
          continue;
        }
        if (ops[j].type != OpType::kExpandInto || ops[j].anti) break;
        if (ops[j].other_column == w && ops[j].in_column != w) {
          // Checks edge p -> w: membership of w in N(p) as-is.
          probe_cols.push_back(ops[j].in_column);
          probe_rels.push_back(ops[j].rels);
        } else if (ops[j].in_column == w && ops[j].other_column != w) {
          // Checks edge w -> p: equivalent to w in N(p) over the reverse
          // relations (needs the catalog, i.e. a view).
          if (view == nullptr) break;
          std::vector<RelationId> rev;
          rev.reserve(ops[j].rels.size());
          for (RelationId r : ops[j].rels) {
            rev.push_back(view->graph().ReverseRelation(r));
          }
          probe_cols.push_back(ops[j].other_column);
          probe_rels.push_back(std::move(rev));
        } else {
          break;
        }
      }
      if (!probe_cols.empty() &&
          IntersectionProfitable(view, ops[i], probe_rels)) {
        PlanOp fused = ops[i];
        fused.type = OpType::kIntersectExpand;
        fused.probe_columns = std::move(probe_cols);
        fused.probe_rels = std::move(probe_rels);
        out.ops.push_back(std::move(fused));
        for (const PlanOp* f : deferred_filters) out.ops.push_back(*f);
        i = j;
        continue;
      }
    }
    // --- FilterPushDown: Expand ; GetProperty ; Filter -> ExpandFiltered
    if (options.fuse_filter_into_expand && i + 2 < ops.size() &&
        ExpandFusable(ops[i]) && ops[i + 1].type == OpType::kGetProperty &&
        ops[i + 1].in_column == ops[i].out_column &&
        ops[i + 2].type == OpType::kFilter &&
        PredicateUsesOnly(*ops[i + 2].predicate, ops[i + 1].out_column)) {
      PlanOp fused = ops[i];
      fused.type = OpType::kExpandFiltered;
      fused.property = ops[i + 1].property;
      fused.property_type = ops[i + 1].property_type;
      fused.other_column = ops[i + 1].out_column;  // fused property column
      fused.predicate = ops[i + 2].predicate;
      fused.keep_property = true;
      out.ops.push_back(std::move(fused));
      i += 3;
      continue;
    }
    // --- AggregateProjectTop: Aggregate ; [Project] ; OrderBy+Limit
    if (options.fuse_agg_project_top && ops[i].type == OpType::kAggregate) {
      size_t j = i + 1;
      const PlanOp* project = nullptr;
      if (j < ops.size() && ops[j].type == OpType::kProject) {
        project = &ops[j];
        ++j;
      }
      if (j < ops.size() && ops[j].type == OpType::kOrderBy &&
          ops[j].limit != std::numeric_limits<uint64_t>::max()) {
        PlanOp fused;
        fused.type = OpType::kAggProjectTop;
        fused.group_by = ops[i].group_by;
        fused.aggs = ops[i].aggs;
        if (project != nullptr) {
          fused.selections = project->selections;
          fused.computed = project->computed;
        }
        fused.sort_keys = ops[j].sort_keys;
        fused.limit = ops[j].limit;
        out.ops.push_back(std::move(fused));
        i = j + 1;
        continue;
      }
    }
    // --- TopK: OrderBy with a small LIMIT
    if (options.fuse_topk && ops[i].type == OpType::kOrderBy &&
        ops[i].limit != std::numeric_limits<uint64_t>::max() &&
        ops[i].limit <= kMaxTopK) {
      PlanOp fused = ops[i];
      fused.type = OpType::kTopK;
      out.ops.push_back(std::move(fused));
      ++i;
      continue;
    }
    out.ops.push_back(ops[i]);
    ++i;
  }
  return out;
}

}  // namespace ges
