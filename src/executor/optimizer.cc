#include "executor/optimizer.h"

#include <limits>

namespace ges {

namespace {

// Largest LIMIT for which the bounded-insertion TopK is profitable.
constexpr uint64_t kMaxTopK = 1024;

bool PredicateUsesOnly(const Expr& pred, const std::string& column) {
  std::vector<std::string> cols;
  pred.CollectColumns(&cols);
  for (const std::string& c : cols) {
    if (c != column) return false;
  }
  return !cols.empty();
}

// Expand eligible for the filter fusion: plain single-hop expansion.
bool ExpandFusable(const PlanOp& op) {
  return op.type == OpType::kExpand && op.max_hops == 1 && !op.distinct &&
         !op.exclude_start && op.distance_column.empty() &&
         op.stamp_column.empty();
}

}  // namespace

namespace {

// Columns produced by `op` (subset needed for the pushdown rule).
void CollectProduced(const PlanOp& op, std::vector<std::string>* out) {
  switch (op.type) {
    case OpType::kNodeByIdSeek:
    case OpType::kScanByLabel:
    case OpType::kExpand:
    case OpType::kGetProperty:
      out->push_back(op.out_column);
      if (!op.distance_column.empty()) out->push_back(op.distance_column);
      if (!op.stamp_column.empty()) out->push_back(op.stamp_column);
      break;
    default:
      break;
  }
}

bool IsStreamSafe(OpType t) {
  // Operators a filter may hop over without changing results: they neither
  // rename/remove columns nor depend on cardinality. (Aggregates, sorts,
  // limits, distinct and projections act as barriers.)
  return t == OpType::kExpand || t == OpType::kGetProperty ||
         t == OpType::kFilter || t == OpType::kExpandInto ||
         t == OpType::kExpandFiltered;
}

// Rule-based FilterPushDown (plan-level half): moves each Filter directly
// behind the earliest operator that produces all of its columns, so
// predicates prune intermediate results as early as possible and sit
// adjacent to their Expand for the fusion rule below.
void PushDownFilters(std::vector<PlanOp>* ops) {
  for (size_t i = 1; i < ops->size(); ++i) {
    if ((*ops)[i].type != OpType::kFilter) continue;
    std::vector<std::string> needed;
    (*ops)[i].predicate->CollectColumns(&needed);
    // Earliest position (just after op `j`) where every needed column
    // exists; the filter can only hop over stream-safe operators.
    size_t target = i;
    std::vector<std::string> available;
    // Recompute availability from the front.
    size_t have_all_after = ops->size();
    for (size_t j = 0; j < i; ++j) {
      CollectProduced((*ops)[j], &available);
      bool all = true;
      for (const std::string& c : needed) {
        bool found = false;
        for (const std::string& a : available) found |= a == c;
        all &= found;
      }
      if (all) {
        have_all_after = j;
        break;
      }
    }
    if (have_all_after == ops->size()) continue;  // columns appear at i only
    // Walk the insertion point forward over non-stream-safe barriers.
    target = have_all_after + 1;
    for (size_t j = have_all_after + 1; j < i; ++j) {
      if (!IsStreamSafe((*ops)[j].type)) target = j + 1;
    }
    if (target >= i) continue;
    PlanOp filter = std::move((*ops)[i]);
    ops->erase(ops->begin() + static_cast<std::ptrdiff_t>(i));
    ops->insert(ops->begin() + static_cast<std::ptrdiff_t>(target),
                std::move(filter));
  }
}

}  // namespace

Plan OptimizePlan(const Plan& plan, const ExecOptions& options) {
  Plan out;
  out.name = plan.name;
  out.output = plan.output;

  // Rule-based reordering first (always sound), then pattern fusion.
  std::vector<PlanOp> reordered = plan.ops;
  PushDownFilters(&reordered);
  const std::vector<PlanOp>& ops = reordered;
  size_t i = 0;
  while (i < ops.size()) {
    // --- FilterPushDown: Expand ; GetProperty ; Filter -> ExpandFiltered
    if (options.fuse_filter_into_expand && i + 2 < ops.size() &&
        ExpandFusable(ops[i]) && ops[i + 1].type == OpType::kGetProperty &&
        ops[i + 1].in_column == ops[i].out_column &&
        ops[i + 2].type == OpType::kFilter &&
        PredicateUsesOnly(*ops[i + 2].predicate, ops[i + 1].out_column)) {
      PlanOp fused = ops[i];
      fused.type = OpType::kExpandFiltered;
      fused.property = ops[i + 1].property;
      fused.property_type = ops[i + 1].property_type;
      fused.other_column = ops[i + 1].out_column;  // fused property column
      fused.predicate = ops[i + 2].predicate;
      fused.keep_property = true;
      out.ops.push_back(std::move(fused));
      i += 3;
      continue;
    }
    // --- AggregateProjectTop: Aggregate ; [Project] ; OrderBy+Limit
    if (options.fuse_agg_project_top && ops[i].type == OpType::kAggregate) {
      size_t j = i + 1;
      const PlanOp* project = nullptr;
      if (j < ops.size() && ops[j].type == OpType::kProject) {
        project = &ops[j];
        ++j;
      }
      if (j < ops.size() && ops[j].type == OpType::kOrderBy &&
          ops[j].limit != std::numeric_limits<uint64_t>::max()) {
        PlanOp fused;
        fused.type = OpType::kAggProjectTop;
        fused.group_by = ops[i].group_by;
        fused.aggs = ops[i].aggs;
        if (project != nullptr) {
          fused.selections = project->selections;
          fused.computed = project->computed;
        }
        fused.sort_keys = ops[j].sort_keys;
        fused.limit = ops[j].limit;
        out.ops.push_back(std::move(fused));
        i = j + 1;
        continue;
      }
    }
    // --- TopK: OrderBy with a small LIMIT
    if (options.fuse_topk && ops[i].type == OpType::kOrderBy &&
        ops[i].limit != std::numeric_limits<uint64_t>::max() &&
        ops[i].limit <= kMaxTopK) {
      PlanOp fused = ops[i];
      fused.type = OpType::kTopK;
      out.ops.push_back(std::move(fused));
      ++i;
      continue;
    }
    out.ops.push_back(ops[i]);
    ++i;
  }
  return out;
}

}  // namespace ges
