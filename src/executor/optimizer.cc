#include "executor/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "storage/graph_stats.h"

namespace ges {

namespace {

// Largest LIMIT for which the bounded-insertion TopK is profitable.
constexpr uint64_t kMaxTopK = 1024;

// Expected out-degree of `rel`: sampled histogram when statistics exist,
// base adjacency metadata otherwise, and never zero — a relation with no
// sampled edges falls back to kDefaultDegree so the WCOJ gate below stays
// well-defined (a zero estimate made binary == intersect == 0 and silently
// rejected the rewrite).
double ExpectedDegreeOf(const GraphStats* stats, const Graph& g,
                        RelationId rel) {
  if (stats != nullptr) return stats->ExpectedDegree(rel);
  double avg = g.AvgDegree(rel);
  return avg > 0 ? avg : kDefaultDegree;
}

// Expected fan-out of a relation union (rels expanded together).
double GroupDegree(const GraphStats* stats, const Graph& g,
                   const std::vector<RelationId>& rels) {
  double d = 0;
  for (RelationId r : rels) d += ExpectedDegreeOf(stats, g, r);
  return d;
}

bool PredicateUsesOnly(const Expr& pred, const std::string& column) {
  std::vector<std::string> cols;
  pred.CollectColumns(&cols);
  for (const std::string& c : cols) {
    if (c != column) return false;
  }
  return !cols.empty();
}

// Expand eligible for the filter fusion: plain single-hop expansion.
bool ExpandFusable(const PlanOp& op) {
  return op.type == OpType::kExpand && op.max_hops == 1 && !op.distinct &&
         !op.exclude_start && op.distance_column.empty() &&
         op.stamp_column.empty();
}

// Degree-based cost gate for the WCOJ rewrite (DESIGN.md §12), in probe
// comparisons per driver row:
//   binary:    d_drv * (1 + sum_c log2(1 + d_c)) + kMaterialize * d_drv
//   intersect: min(d_drv, min_c d_c) * (1 + sum_c log2(1 + d_c)) + d_drv
// The binary chain materializes every candidate extension before probing
// (and de-factors the f-Tree); the intersection rejects candidates past the
// shortest probe list in O(1) through its exhausted cursor and walks the
// driver list in place. Without statistics (view == nullptr) the rewrite is
// applied unconditionally — it is never asymptotically worse. Degrees come
// from the sampled histograms (ExpectedDegreeOf), which never report zero.
bool IntersectionProfitable(const GraphView* view, const GraphStats* stats,
                            const PlanOp& expand,
                            const std::vector<std::vector<RelationId>>& probe_rels) {
  if (view == nullptr) return true;
  const Graph& g = view->graph();
  double d_drv = GroupDegree(stats, g, expand.rels);
  double log_sum = 0;
  double d_min = std::numeric_limits<double>::infinity();
  for (const std::vector<RelationId>& rels : probe_rels) {
    double d = GroupDegree(stats, g, rels);
    d_min = std::min(d_min, d);
    log_sum += std::log2(1.0 + d);
  }
  constexpr double kMaterialize = 4.0;  // per-row extension + flatten cost
  double binary = d_drv * (1.0 + log_sum) + kMaterialize * d_drv;
  double intersect = std::min(d_drv, d_min) * (1.0 + log_sum) + d_drv;
  return intersect < binary;
}

}  // namespace

namespace {

// Columns produced by `op` (subset needed for the pushdown rule).
void CollectProduced(const PlanOp& op, std::vector<std::string>* out) {
  switch (op.type) {
    case OpType::kNodeByIdSeek:
    case OpType::kScanByLabel:
    case OpType::kExpand:
    case OpType::kGetProperty:
      out->push_back(op.out_column);
      if (!op.distance_column.empty()) out->push_back(op.distance_column);
      if (!op.stamp_column.empty()) out->push_back(op.stamp_column);
      break;
    default:
      break;
  }
}

bool IsStreamSafe(OpType t) {
  // Operators a filter may hop over without changing results: they neither
  // rename/remove columns nor depend on cardinality. (Aggregates, sorts,
  // limits, distinct and projections act as barriers.)
  return t == OpType::kExpand || t == OpType::kGetProperty ||
         t == OpType::kFilter || t == OpType::kExpandInto ||
         t == OpType::kExpandFiltered;
}

// Rule-based FilterPushDown (plan-level half): moves each Filter directly
// behind the earliest operator that produces all of its columns, so
// predicates prune intermediate results as early as possible and sit
// adjacent to their Expand for the fusion rule below.
void PushDownFilters(std::vector<PlanOp>* ops) {
  for (size_t i = 1; i < ops->size(); ++i) {
    if ((*ops)[i].type != OpType::kFilter) continue;
    std::vector<std::string> needed;
    (*ops)[i].predicate->CollectColumns(&needed);
    // Earliest position (just after op `j`) where every needed column
    // exists; the filter can only hop over stream-safe operators.
    size_t target = i;
    std::vector<std::string> available;
    // Recompute availability from the front.
    size_t have_all_after = ops->size();
    for (size_t j = 0; j < i; ++j) {
      CollectProduced((*ops)[j], &available);
      bool all = true;
      for (const std::string& c : needed) {
        bool found = false;
        for (const std::string& a : available) found |= a == c;
        all &= found;
      }
      if (all) {
        have_all_after = j;
        break;
      }
    }
    if (have_all_after == ops->size()) continue;  // columns appear at i only
    // Walk the insertion point forward over non-stream-safe barriers.
    target = have_all_after + 1;
    for (size_t j = have_all_after + 1; j < i; ++j) {
      if (!IsStreamSafe((*ops)[j].type)) target = j + 1;
    }
    if (target >= i) continue;
    PlanOp filter = std::move((*ops)[i]);
    ops->erase(ops->begin() + static_cast<std::ptrdiff_t>(i));
    ops->insert(ops->begin() + static_cast<std::ptrdiff_t>(target),
                std::move(filter));
  }
}

// Orders each run of consecutive Filters most-selective-first using the
// statistics-driven estimates, so cheap highly-selective predicates shrink
// the intermediate before expensive ones run. Filters commute (pure row
// selections), so results are unchanged.
void ReorderFilterRuns(
    std::vector<PlanOp>* ops,
    const std::unordered_map<std::string, ColumnStat>& column_stats) {
  size_t i = 0;
  while (i < ops->size()) {
    if ((*ops)[i].type != OpType::kFilter) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < ops->size() && (*ops)[j].type == OpType::kFilter) ++j;
    if (j - i > 1) {
      std::stable_sort(
          ops->begin() + static_cast<std::ptrdiff_t>(i),
          ops->begin() + static_cast<std::ptrdiff_t>(j),
          [&](const PlanOp& a, const PlanOp& b) {
            return EstimateSelectivity(*a.predicate, column_stats) <
                   EstimateSelectivity(*b.predicate, column_stats);
          });
    }
    i = j;
  }
}

}  // namespace

Plan OptimizePlan(const Plan& plan, const ExecOptions& options,
                  const GraphView* view) {
  Plan out;
  out.name = plan.name;
  out.output = plan.output;
  out.param_count = plan.param_count;

  // Statistics snapshot for the cost model (may be null before the first
  // RebuildStats; every estimator degrades to adjMeta averages then).
  std::shared_ptr<const GraphStats> stats_holder;
  const GraphStats* stats = nullptr;
  if (view != nullptr) {
    stats_holder = view->graph().catalog().stats();
    stats = stats_holder.get();
  }

  // Rule-based reordering first (always sound), then pattern fusion.
  std::vector<PlanOp> reordered = plan.ops;
  PushDownFilters(&reordered);
  const std::vector<PlanOp>& ops = reordered;
  size_t i = 0;
  while (i < ops.size()) {
    // --- WCOJ: Expand ; ExpandInto+ -> IntersectExpand (DESIGN.md §12).
    // The cyclic closing edges of the bound plan (triangles, diamonds,
    // k-cliques) show up as semi-join ExpandInto ops against the column the
    // Expand just produced; the chain becomes one leapfrog intersection.
    if (options.intersect_expand && ExpandFusable(ops[i]) &&
        ops[i].min_hops == 1 && i + 1 < ops.size()) {
      const std::string& w = ops[i].out_column;
      std::vector<std::string> probe_cols;
      std::vector<std::vector<RelationId>> probe_rels;
      // Filters interleaved with the ExpandInto chain are deferred past the
      // fused operator: both are pure row selections, and selections
      // commute (no columns are added or dropped), so re-running them after
      // the intersection yields the same rows.
      std::vector<const PlanOp*> deferred_filters;
      size_t j = i + 1;
      for (; j < ops.size(); ++j) {
        if (ops[j].type == OpType::kFilter) {
          deferred_filters.push_back(&ops[j]);
          continue;
        }
        if (ops[j].type != OpType::kExpandInto || ops[j].anti) break;
        if (ops[j].other_column == w && ops[j].in_column != w) {
          // Checks edge p -> w: membership of w in N(p) as-is.
          probe_cols.push_back(ops[j].in_column);
          probe_rels.push_back(ops[j].rels);
        } else if (ops[j].in_column == w && ops[j].other_column != w) {
          // Checks edge w -> p: equivalent to w in N(p) over the reverse
          // relations (needs the catalog, i.e. a view).
          if (view == nullptr) break;
          std::vector<RelationId> rev;
          rev.reserve(ops[j].rels.size());
          for (RelationId r : ops[j].rels) {
            rev.push_back(view->graph().ReverseRelation(r));
          }
          probe_cols.push_back(ops[j].other_column);
          probe_rels.push_back(std::move(rev));
        } else {
          break;
        }
      }
      if (!probe_cols.empty() &&
          IntersectionProfitable(view, stats, ops[i], probe_rels)) {
        // Probe the lowest-expected-degree lists first: the shortest list
        // exhausts earliest, so the leapfrog cursor rejects candidates
        // after the fewest gallops. Pure reordering — the surviving set is
        // the intersection either way.
        if (view != nullptr && probe_cols.size() > 1) {
          std::vector<size_t> order(probe_cols.size());
          std::iota(order.begin(), order.end(), size_t{0});
          const Graph& g = view->graph();
          std::stable_sort(order.begin(), order.end(),
                           [&](size_t a, size_t b) {
                             return GroupDegree(stats, g, probe_rels[a]) <
                                    GroupDegree(stats, g, probe_rels[b]);
                           });
          std::vector<std::string> cols2;
          std::vector<std::vector<RelationId>> rels2;
          for (size_t k : order) {
            cols2.push_back(std::move(probe_cols[k]));
            rels2.push_back(std::move(probe_rels[k]));
          }
          probe_cols = std::move(cols2);
          probe_rels = std::move(rels2);
        }
        PlanOp fused = ops[i];
        fused.type = OpType::kIntersectExpand;
        fused.probe_columns = std::move(probe_cols);
        fused.probe_rels = std::move(probe_rels);
        out.ops.push_back(std::move(fused));
        for (const PlanOp* f : deferred_filters) out.ops.push_back(*f);
        i = j;
        continue;
      }
    }
    // --- FilterPushDown: Expand ; GetProperty ; Filter -> ExpandFiltered
    if (options.fuse_filter_into_expand && i + 2 < ops.size() &&
        ExpandFusable(ops[i]) && ops[i + 1].type == OpType::kGetProperty &&
        ops[i + 1].in_column == ops[i].out_column &&
        ops[i + 2].type == OpType::kFilter &&
        PredicateUsesOnly(*ops[i + 2].predicate, ops[i + 1].out_column)) {
      PlanOp fused = ops[i];
      fused.type = OpType::kExpandFiltered;
      fused.property = ops[i + 1].property;
      fused.property_type = ops[i + 1].property_type;
      fused.other_column = ops[i + 1].out_column;  // fused property column
      fused.predicate = ops[i + 2].predicate;
      fused.keep_property = true;
      out.ops.push_back(std::move(fused));
      i += 3;
      continue;
    }
    // --- AggregateProjectTop: Aggregate ; [Project] ; OrderBy+Limit
    if (options.fuse_agg_project_top && ops[i].type == OpType::kAggregate) {
      size_t j = i + 1;
      const PlanOp* project = nullptr;
      if (j < ops.size() && ops[j].type == OpType::kProject) {
        project = &ops[j];
        ++j;
      }
      if (j < ops.size() && ops[j].type == OpType::kOrderBy &&
          ops[j].limit != std::numeric_limits<uint64_t>::max()) {
        PlanOp fused;
        fused.type = OpType::kAggProjectTop;
        fused.group_by = ops[i].group_by;
        fused.aggs = ops[i].aggs;
        if (project != nullptr) {
          fused.selections = project->selections;
          fused.computed = project->computed;
        }
        fused.sort_keys = ops[j].sort_keys;
        fused.limit = ops[j].limit;
        out.ops.push_back(std::move(fused));
        i = j + 1;
        continue;
      }
    }
    // --- TopK: OrderBy with a small LIMIT
    if (options.fuse_topk && ops[i].type == OpType::kOrderBy &&
        ops[i].limit != std::numeric_limits<uint64_t>::max() &&
        ops[i].limit <= kMaxTopK) {
      PlanOp fused = ops[i];
      fused.type = OpType::kTopK;
      out.ops.push_back(std::move(fused));
      ++i;
      continue;
    }
    out.ops.push_back(ops[i]);
    ++i;
  }
  if (view != nullptr) {
    auto column_stats = CollectPlanColumnStats(out, view->graph());
    ReorderFilterRuns(&out.ops, column_stats);
    AnnotateCardinalities(&out, view->graph(), column_stats);
  }
  return out;
}

std::unordered_map<std::string, ColumnStat> CollectPlanColumnStats(
    const Plan& plan, const Graph& graph) {
  std::unordered_map<std::string, ColumnStat> out;
  std::shared_ptr<const GraphStats> stats = graph.catalog().stats();
  if (stats == nullptr) return out;
  // Track which vertex label each column carries so property columns can be
  // resolved to their (label, property) statistics.
  std::unordered_map<std::string, LabelId> label_of;
  auto vertex_col = [&](const std::string& name, LabelId label) {
    label_of[name] = label;
    ColumnStat cs;
    cs.count = stats->LabelVertices(label);
    cs.ndv = cs.count;
    out[name] = cs;
  };
  auto property_col = [&](const std::string& name, LabelId label,
                          PropertyId prop) {
    const PropertyStats* ps = stats->Property(label, prop);
    if (ps == nullptr) return;
    ColumnStat cs;
    cs.count = ps->count;
    cs.ndv = ps->ndv;
    cs.has_range = ps->has_range;
    cs.min = ps->min;
    cs.max = ps->max;
    out[name] = cs;
  };
  for (const PlanOp& op : plan.ops) {
    switch (op.type) {
      case OpType::kNodeByIdSeek:
      case OpType::kScanByLabel:
        vertex_col(op.out_column, op.label);
        break;
      case OpType::kExpand:
      case OpType::kIntersectExpand:
        if (!op.rels.empty()) {
          vertex_col(op.out_column, graph.RelationKeyOf(op.rels[0]).dst_label);
        }
        break;
      case OpType::kExpandFiltered:
        if (!op.rels.empty()) {
          LabelId dst = graph.RelationKeyOf(op.rels[0]).dst_label;
          vertex_col(op.out_column, dst);
          if (!op.other_column.empty()) {
            property_col(op.other_column, dst, op.property);
          }
        }
        break;
      case OpType::kGetProperty: {
        auto it = label_of.find(op.in_column);
        if (it != label_of.end()) {
          property_col(op.out_column, it->second, op.property);
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

double EstimateSelectivity(
    const Expr& pred,
    const std::unordered_map<std::string, ColumnStat>& stats) {
  // Static fallbacks mirror the vectorized compiler's per-op guesses.
  auto fallback = [](ExprOp op) {
    switch (op) {
      case ExprOp::kEq:
        return 0.1;
      case ExprOp::kNe:
        return 0.9;
      case ExprOp::kLt:
      case ExprOp::kGt:
        return 0.4;
      default:
        return 0.6;
    }
  };
  switch (pred.op) {
    case ExprOp::kAnd: {
      double s = 1;
      for (const ExprPtr& a : pred.args) s *= EstimateSelectivity(*a, stats);
      return s;
    }
    case ExprOp::kOr: {
      double pass = 1;
      for (const ExprPtr& a : pred.args) {
        pass *= 1.0 - EstimateSelectivity(*a, stats);
      }
      return 1.0 - pass;
    }
    case ExprOp::kNot:
      return pred.args.empty()
                 ? 0.5
                 : 1.0 - EstimateSelectivity(*pred.args[0], stats);
    case ExprOp::kIsNull:
      return 0.05;
    case ExprOp::kStartsWith:
      return 0.1;
    case ExprOp::kIn: {
      double eq = 0.1;
      if (!pred.args.empty() && pred.args[0]->op == ExprOp::kColumn) {
        auto it = stats.find(pred.args[0]->column);
        if (it != stats.end() && it->second.ndv > 0) {
          eq = 1.0 / static_cast<double>(it->second.ndv);
        }
      }
      return std::min(1.0, eq * static_cast<double>(pred.list.size()));
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      if (pred.args.size() != 2) return fallback(pred.op);
      auto is_lit = [](const Expr& e) {
        return e.op == ExprOp::kConst || e.op == ExprOp::kParam;
      };
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      ExprOp op = pred.op;
      if (pred.args[0]->op == ExprOp::kColumn && is_lit(*pred.args[1])) {
        col = pred.args[0].get();
        lit = pred.args[1].get();
      } else if (pred.args[1]->op == ExprOp::kColumn &&
                 is_lit(*pred.args[0])) {
        col = pred.args[1].get();
        lit = pred.args[0].get();
        // Mirror the comparison so `col OP lit` still holds.
        op = op == ExprOp::kLt   ? ExprOp::kGt
             : op == ExprOp::kLe ? ExprOp::kGe
             : op == ExprOp::kGt ? ExprOp::kLt
             : op == ExprOp::kGe ? ExprOp::kLe
                                 : op;
      } else {
        return fallback(pred.op);
      }
      auto it = stats.find(col->column);
      if (it == stats.end()) return fallback(op);
      const ColumnStat& cs = it->second;
      if (op == ExprOp::kEq || op == ExprOp::kNe) {
        double eq = cs.ndv > 0 ? std::min(1.0, 1.0 / static_cast<double>(
                                                     cs.ndv))
                               : 0.1;
        return op == ExprOp::kEq ? eq : 1.0 - eq;
      }
      // Range predicate: fraction of the observed [min, max] interval.
      // kParam placeholders estimate through their first-seen literal hint
      // (Expr::constant).
      const Value& v = lit->constant;
      bool numeric = v.type() == ValueType::kDouble || IsIntegerPhysical(v.type());
      if (!cs.has_range || !numeric) return fallback(op);
      double c = v.AsDouble();
      double span = cs.max - cs.min;
      double f;
      if (span <= 0) {
        bool holds = op == ExprOp::kLt   ? cs.min < c
                     : op == ExprOp::kLe ? cs.min <= c
                     : op == ExprOp::kGt ? cs.min > c
                                         : cs.min >= c;
        f = holds ? 1.0 : 0.0;
      } else if (op == ExprOp::kLt || op == ExprOp::kLe) {
        f = (c - cs.min) / span;
      } else {
        f = (cs.max - c) / span;
      }
      return std::min(1.0, std::max(0.0, f));
    }
    default:
      return 0.5;
  }
}

void AnnotateCardinalities(
    Plan* plan, const Graph& graph,
    const std::unordered_map<std::string, ColumnStat>& column_stats) {
  std::shared_ptr<const GraphStats> stats_holder = graph.catalog().stats();
  const GraphStats* stats = stats_holder.get();
  constexpr uint64_t kNoLimit = std::numeric_limits<uint64_t>::max();
  double rows = 1;
  bool unknown = false;  // a kProcedure makes downstream estimates moot
  for (PlanOp& op : plan->ops) {
    if (unknown) {
      op.est_rows = -1;
      continue;
    }
    switch (op.type) {
      case OpType::kNodeByIdSeek:
        rows = 1;
        break;
      case OpType::kScanByLabel:
        rows = stats != nullptr
                   ? static_cast<double>(stats->LabelVertices(op.label))
                   : static_cast<double>(
                         graph.NumVertices(op.label, graph.CurrentVersion()));
        break;
      case OpType::kExpand: {
        double d = GroupDegree(stats, graph, op.rels);
        double fanout = 0;
        for (int h = op.min_hops; h <= op.max_hops && h <= 8; ++h) {
          fanout += std::pow(d, h);
        }
        rows *= fanout;
        break;
      }
      case OpType::kExpandFiltered: {
        rows *= GroupDegree(stats, graph, op.rels);
        if (op.predicate != nullptr) {
          rows *= EstimateSelectivity(*op.predicate, column_stats);
        }
        break;
      }
      case OpType::kIntersectExpand: {
        double d = GroupDegree(stats, graph, op.rels);
        // Containment: each probe keeps a candidate neighbor w with
        // probability ~ deg(probe) / |label(w)|.
        double n_w = 0;
        if (stats != nullptr && !op.rels.empty()) {
          n_w = static_cast<double>(stats->LabelVertices(
              graph.RelationKeyOf(op.rels[0]).dst_label));
        }
        double keep = 1;
        for (const std::vector<RelationId>& pr : op.probe_rels) {
          double dp = GroupDegree(stats, graph, pr);
          if (n_w > 0) keep *= std::min(1.0, dp / n_w);
        }
        rows *= d * keep;
        break;
      }
      case OpType::kExpandInto: {
        double dp = GroupDegree(stats, graph, op.rels);
        auto it = column_stats.find(op.other_column);
        double n = it != column_stats.end()
                       ? static_cast<double>(it->second.ndv)
                       : 0;
        double sel = n > 0 ? std::min(1.0, dp / n) : 0.5;
        rows *= op.anti ? 1.0 - sel : sel;
        break;
      }
      case OpType::kFilter:
        if (op.predicate != nullptr) {
          rows *= EstimateSelectivity(*op.predicate, column_stats);
        }
        break;
      case OpType::kOrderBy:
      case OpType::kTopK:
      case OpType::kLimit:
        if (op.limit != kNoLimit) {
          rows = std::min(rows, static_cast<double>(op.limit));
        }
        break;
      case OpType::kAggregate:
      case OpType::kAggProjectTop: {
        double groups;
        if (op.group_by.empty()) {
          groups = 1;
        } else {
          double prod = 1;
          bool all_known = true;
          for (const std::string& g : op.group_by) {
            auto it = column_stats.find(g);
            if (it != column_stats.end() && it->second.ndv > 0) {
              prod *= static_cast<double>(it->second.ndv);
            } else {
              all_known = false;
            }
          }
          groups = all_known ? std::min(rows, prod) : rows;
        }
        rows = groups;
        if (op.type == OpType::kAggProjectTop && op.limit != kNoLimit) {
          rows = std::min(rows, static_cast<double>(op.limit));
        }
        break;
      }
      case OpType::kGetProperty:
      case OpType::kProject:
      case OpType::kDistinct:
        break;  // cardinality-preserving (kDistinct: upper bound)
      case OpType::kProcedure:
        unknown = true;
        op.est_rows = -1;
        continue;
    }
    if (rows < 0) rows = 0;
    op.est_rows = rows;
  }
}

}  // namespace ges
