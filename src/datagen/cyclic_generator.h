// Planted-cycle graph generator: ground truth for the WCOJ / analytic tier.
//
// The graph is a disjoint union of `num_communities` cliques of
// `community_size` vertices, optionally linked into a chain by one bridge
// edge between consecutive communities. Bridges form a tree between the
// cliques, so they add NO new triangles, diamonds or 4-cycles — every
// cyclic-subgraph count has a closed form in (num_communities,
// community_size), which the tests and the wcoj benchmark verify against
// the engine (datagen → storage → executor round trip).
#ifndef GES_DATAGEN_CYCLIC_GENERATOR_H_
#define GES_DATAGEN_CYCLIC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "storage/graph.h"

namespace ges {

struct CyclicConfig {
  size_t num_communities = 16;
  size_t community_size = 8;  // clique size; >= 2
  // Chain bridge edges community i -> i+1 (tree: creates no cycles).
  bool bridge_chain = true;
  // Pendant leaves per clique vertex. Degree-1 vertices lie on no cycle,
  // so the closed forms below stay exact — but candidate lists grow, which
  // puts the censuses in the selective (candidates >> survivors) regime
  // the worst-case-optimal intersection targets. 0 = pure cliques.
  size_t chaff_per_vertex = 0;
  // Permutes vertex creation order (and hence VertexId assignment) so the
  // sorted-adjacency invariant is actually exercised, not an accident of
  // sequential ids. Same seed => identical graph.
  uint64_t seed = 7;
};

struct CyclicData {
  CyclicConfig config;
  LabelId node = kInvalidLabel;
  LabelId link = kInvalidLabel;
  RelationId rel = kInvalidRelation;  // node -[link]-> node, OUT
  std::vector<VertexId> vertices;    // community-major order
  PropertyId id_prop = kInvalidProperty;

  // Closed-form planted counts (definitions match analytics/algorithms.h):
  uint64_t triangles = 0;    // ncomm * C(s,3)
  uint64_t diamonds = 0;     // ncomm * C(s,2) * C(s-2,2)
  uint64_t four_cycles = 0;  // ncomm * 3 * C(s,4)
};

// Generates the planted graph into `graph` (must be empty): defines the
// schema, bulk-loads vertices and symmetric LINK edges, FinalizeBulk.
CyclicData GenerateCyclic(const CyclicConfig& config, Graph* graph);

}  // namespace ges

#endif  // GES_DATAGEN_CYCLIC_GENERATOR_H_
