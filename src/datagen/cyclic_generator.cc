#include "datagen/cyclic_generator.h"

#include <utility>

#include "common/random.h"

namespace ges {

namespace {

uint64_t Choose2(uint64_t n) { return n * (n - 1) / 2; }
uint64_t Choose3(uint64_t n) { return n * (n - 1) * (n - 2) / 6; }
uint64_t Choose4(uint64_t n) { return n * (n - 1) * (n - 2) * (n - 3) / 24; }

}  // namespace

CyclicData GenerateCyclic(const CyclicConfig& config, Graph* graph) {
  CyclicData data;
  data.config = config;
  Catalog& c = graph->catalog();
  data.node = c.AddVertexLabel("CNODE");
  data.link = c.AddEdgeLabel("LINK");
  data.id_prop = c.AddProperty(data.node, "id", ValueType::kInt64);
  graph->RegisterRelation(data.node, data.link, data.node);

  const size_t ncomm = config.num_communities;
  const size_t s = config.community_size;
  Rng rng(config.seed);

  data.vertices.resize(ncomm * s);
  for (size_t i = 0; i < ncomm * s; ++i) {
    VertexId v = graph->AddVertexBulk(data.node, static_cast<int64_t>(i));
    graph->SetPropertyBulk(v, data.id_prop, Value::Int(static_cast<int64_t>(i)));
    data.vertices[i] = v;
  }

  // Clique edges plus the tree of bridges, staged in shuffled order so the
  // Finalize sort has real work to do (sorted adjacency must be an
  // invariant of the storage layer, not of the generator).
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (size_t k = 0; k < ncomm; ++k) {
    const VertexId* comm = &data.vertices[k * s];
    for (size_t i = 0; i < s; ++i) {
      for (size_t j = i + 1; j < s; ++j) {
        edges.emplace_back(comm[i], comm[j]);
      }
    }
    if (config.bridge_chain && k + 1 < ncomm) {
      edges.emplace_back(comm[0], data.vertices[(k + 1) * s]);
    }
  }
  // Chaff: pendant leaves hanging off every clique vertex. A degree-1
  // vertex lies on no cycle, so the closed forms are untouched — but every
  // expansion's candidate list grows by `chaff_per_vertex` entries the
  // intersection must reject, making the censuses selective (candidates >>
  // survivors, the worst-case-optimal regime) instead of clique-dense.
  int64_t next_id = static_cast<int64_t>(ncomm * s);
  for (size_t i = 0; i < ncomm * s; ++i) {
    for (size_t l = 0; l < config.chaff_per_vertex; ++l) {
      VertexId leaf = graph->AddVertexBulk(data.node, next_id);
      graph->SetPropertyBulk(leaf, data.id_prop, Value::Int(next_id));
      ++next_id;
      edges.emplace_back(data.vertices[i], leaf);
    }
  }
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.Uniform(i)]);
  }
  for (const auto& [u, v] : edges) {
    graph->AddEdgeBulk(data.link, u, v);
    graph->AddEdgeBulk(data.link, v, u);
  }
  graph->FinalizeBulk();
  data.rel = graph->FindRelation(data.node, data.link, data.node,
                                 Direction::kOut);

  // Bridges are a tree between cliques: no new cycles, so every count is a
  // per-clique closed form.
  data.triangles = ncomm * Choose3(s);
  data.diamonds = ncomm * Choose2(s) * Choose2(s >= 2 ? s - 2 : 0);
  data.four_cycles = ncomm * 3 * Choose4(s);
  return data;
}

}  // namespace ges
