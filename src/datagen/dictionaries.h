// Name dictionaries backing the synthetic SNB generator.
#ifndef GES_DATAGEN_DICTIONARIES_H_
#define GES_DATAGEN_DICTIONARIES_H_

#include <string_view>
#include <vector>

namespace ges::dict {

// Each accessor returns a fixed, deterministic dictionary.
const std::vector<std::string_view>& FirstNames();
const std::vector<std::string_view>& LastNames();
const std::vector<std::string_view>& TagWords();
const std::vector<std::string_view>& TagClassNames();
const std::vector<std::string_view>& Continents();
const std::vector<std::string_view>& Countries();
const std::vector<std::string_view>& Cities();
const std::vector<std::string_view>& Browsers();
const std::vector<std::string_view>& Languages();
const std::vector<std::string_view>& ContentWords();

}  // namespace ges::dict

#endif  // GES_DATAGEN_DICTIONARIES_H_
