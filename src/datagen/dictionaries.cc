#include "datagen/dictionaries.h"

namespace ges::dict {

namespace {
// Function-local static references so the dictionaries are initialized on
// first use and never destroyed (trivial-destruction rule for globals).
template <typename... Args>
const std::vector<std::string_view>& Make(Args... args) {
  static const auto& v = *new std::vector<std::string_view>{args...};
  return v;
}
}  // namespace

const std::vector<std::string_view>& FirstNames() {
  static const auto& v = *new std::vector<std::string_view>{
      "Jan",     "Rahul",  "Maria",  "Chen",    "Ali",     "Yang",
      "Ivan",    "Anna",   "Jose",   "Wei",     "Ahmed",   "Olga",
      "Carlos",  "Mei",    "John",   "Fatima",  "Hans",    "Priya",
      "Pedro",   "Elena",  "Omar",   "Julia",   "Ken",     "Amara",
      "Lars",    "Nina",   "Paulo",  "Sofia",   "David",   "Lin",
      "Mohamed", "Emma",   "Bruno",  "Aisha",   "Victor",  "Lena",
      "Hugo",    "Zara",   "Felix",  "Iris",    "Otto",    "Mira",
      "Abdul",   "Alba",   "Bilal",  "Clara",   "Diego",   "Dora",
      "Emil",    "Faye",   "Gustav", "Hana",    "Igor",    "Jana",
      "Karl",    "Kira",   "Luis",   "Luna",    "Milan",   "Nora"};
  return v;
}

const std::vector<std::string_view>& LastNames() {
  static const auto& v = *new std::vector<std::string_view>{
      "Smith",   "Zhang",    "Kumar",   "Muller",  "Garcia",  "Ivanov",
      "Sato",    "Silva",    "Kim",     "Ali",     "Chen",    "Novak",
      "Haddad",  "Petrov",   "Lopez",   "Wang",    "Brown",   "Khan",
      "Dubois",  "Rossi",    "Yilmaz",  "Nakamura","Olsen",   "Costa",
      "Jensen",  "Popescu",  "Farkas",  "Kovacs",  "OBrien",  "Svensson",
      "Weber",   "Fischer",  "Moreau",  "Ricci",   "Santos",  "Dinh",
      "Pham",    "Nguyen",   "Haas",    "Vargas",  "Castro",  "Reyes",
      "Andersen","Virtanen", "Korhonen","Lindberg","Marino",  "Greco"};
  return v;
}

const std::vector<std::string_view>& TagWords() {
  static const auto& v = *new std::vector<std::string_view>{
      "rock",       "jazz",      "opera",      "football",  "chess",
      "photography","cooking",   "travel",     "history",   "physics",
      "astronomy",  "painting",  "cinema",     "poetry",    "hiking",
      "sailing",    "gardening", "philosophy", "economics", "biology",
      "robotics",   "karate",    "yoga",       "cycling",   "skiing",
      "surfing",    "archery",   "fencing",    "ballet",    "sculpture",
      "calligraphy","origami",   "aviation",   "geology",   "botany",
      "zoology",    "cartography","linguistics","archaeology","mythology"};
  return v;
}

const std::vector<std::string_view>& TagClassNames() {
  static const auto& v = *new std::vector<std::string_view>{
      "Thing",      "Agent",     "Person",   "Artist",      "Musician",
      "Place",      "Organisation", "Event", "CreativeWork","Song",
      "Film",       "Book",      "Sport",    "Science",     "Technology",
      "Hobby",      "Game",      "Politics", "Nature",      "Education"};
  return v;
}

const std::vector<std::string_view>& Continents() {
  static const auto& v = *new std::vector<std::string_view>{
      "Europe", "Asia", "Africa", "NorthAmerica", "SouthAmerica", "Oceania"};
  return v;
}

const std::vector<std::string_view>& Countries() {
  static const auto& v = *new std::vector<std::string_view>{
      "China",     "India",    "Germany",  "France",   "Brazil",
      "Nigeria",   "Japan",    "Mexico",   "Egypt",    "Spain",
      "Italy",     "Vietnam",  "Turkey",   "Kenya",    "Poland",
      "Canada",    "Peru",     "Sweden",   "Norway",   "Greece",
      "Hungary",   "Chile",    "Morocco",  "Thailand", "Portugal",
      "Finland",   "Austria",  "Colombia", "Ghana",    "Australia"};
  return v;
}

const std::vector<std::string_view>& Cities() {
  static const auto& v = *new std::vector<std::string_view>{
      "Beijing",   "Shanghai",  "Mumbai",   "Delhi",     "Berlin",
      "Munich",    "Paris",     "Lyon",     "SaoPaulo",  "Rio",
      "Lagos",     "Abuja",     "Tokyo",    "Osaka",     "MexicoCity",
      "Cairo",     "Madrid",    "Barcelona","Rome",      "Milan",
      "Hanoi",     "Istanbul",  "Nairobi",  "Warsaw",    "Toronto",
      "Lima",      "Stockholm", "Oslo",     "Athens",    "Budapest",
      "Santiago",  "Rabat",     "Bangkok",  "Lisbon",    "Helsinki",
      "Vienna",    "Bogota",    "Accra",    "Sydney",    "Melbourne",
      "Guangzhou", "Chengdu",   "Pune",     "Chennai",   "Hamburg",
      "Marseille", "Salvador",  "Kano",     "Kyoto",     "Puebla",
      "Alexandria","Valencia",  "Naples",   "Saigon",    "Ankara",
      "Mombasa",   "Krakow",    "Vancouver","Cusco",     "Gothenburg"};
  return v;
}

const std::vector<std::string_view>& Browsers() {
  static const auto& v = *new std::vector<std::string_view>{
      "Chrome", "Firefox", "Safari", "InternetExplorer", "Opera"};
  return v;
}

const std::vector<std::string_view>& Languages() {
  static const auto& v = *new std::vector<std::string_view>{
      "en", "zh", "es", "hi", "ar", "pt", "ru", "ja", "de", "fr"};
  return v;
}

const std::vector<std::string_view>& ContentWords() {
  static const auto& v = *new std::vector<std::string_view>{
      "about", "the",   "new",    "trip",   "photo",  "great", "concert",
      "game",  "match", "today",  "friend", "visit",  "city",  "music",
      "movie", "book",  "amazing","weather","weekend","party", "dinner",
      "beach", "museum","river",  "mountain","idea",  "plan",  "project"};
  return v;
}

}  // namespace ges::dict
