// LDBC SNB label-property-graph schema, resolved against a Graph catalog.
#ifndef GES_DATAGEN_SNB_SCHEMA_H_
#define GES_DATAGEN_SNB_SCHEMA_H_

#include "common/types.h"
#include "storage/graph.h"

namespace ges {

// Millisecond timestamps for the simulated social-network window.
inline constexpr int64_t kMillisPerDay = 86'400'000LL;
// 2010-01-01T00:00:00Z and 2013-01-01T00:00:00Z.
inline constexpr int64_t kSimStart = 1'262'304'000'000LL;
inline constexpr int64_t kSimEnd = 1'356'998'400'000LL;

// All label / edge-label / property ids of the SNB schema. Posts and
// comments are distinct labels (the LDBC "Message" supertype is expressed by
// expanding over both relations); places and organisations each use a single
// label with a `type` property (city/country/continent, university/company),
// mirroring the LDBC static hierarchy.
struct SnbSchema {
  // Vertex labels.
  LabelId person, post, comment, forum, tag, tagclass, place, organisation;
  // Edge labels.
  LabelId knows, has_creator, likes, reply_of, has_tag, has_interest,
      has_member, has_moderator, container_of, is_located_in, is_part_of,
      has_type, is_subclass_of, study_at, work_at;
  // Property keys.
  PropertyId id, first_name, last_name, gender, birthday, birthday_month,
      creation_date, browser_used, location_ip, content, length, language,
      image_file, title, name, url, type;

  // Registers every label, property and relation on `graph` and returns the
  // resolved ids. Must run before bulk load.
  static SnbSchema Define(Graph* graph);
};

}  // namespace ges

#endif  // GES_DATAGEN_SNB_SCHEMA_H_
