#include "datagen/snb_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <string>

#include "datagen/dictionaries.h"

namespace ges {

namespace {

using dict::Browsers;
using dict::Cities;
using dict::ContentWords;
using dict::Continents;
using dict::Countries;
using dict::FirstNames;
using dict::Languages;
using dict::LastNames;
using dict::TagClassNames;
using dict::TagWords;

std::string MakeContent(Rng& rng, int words) {
  const auto& w = ContentWords();
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += w[rng.Uniform(w.size())];
  }
  return out;
}

// Power-law-ish per-entity count with the configured average: a zipf draw
// over a small range scaled so the mean is ~avg.
uint32_t SkewedCount(Rng& rng, const ZipfSampler& zipf, double avg,
                     uint32_t max_factor = 20) {
  // zipf.Sample over [0, n) returns small values often; map rank r to a
  // count so that hubs (r==0) get ~max_factor*avg and the tail gets ~avg/2.
  size_t r = zipf.Sample(rng);
  double boost = 1.0 + (max_factor - 1.0) / (1.0 + static_cast<double>(r));
  double mean = avg * boost / 2.2;  // 2.2 ~ E[boost] under theta ~0.7
  uint32_t n = static_cast<uint32_t>(mean * (0.5 + rng.NextDouble()));
  return n;
}

}  // namespace

SnbSchema SnbSchema::Define(Graph* graph) {
  Catalog& c = graph->catalog();
  SnbSchema s;
  s.person = c.AddVertexLabel("PERSON");
  s.post = c.AddVertexLabel("POST");
  s.comment = c.AddVertexLabel("COMMENT");
  s.forum = c.AddVertexLabel("FORUM");
  s.tag = c.AddVertexLabel("TAG");
  s.tagclass = c.AddVertexLabel("TAGCLASS");
  s.place = c.AddVertexLabel("PLACE");
  s.organisation = c.AddVertexLabel("ORGANISATION");

  s.knows = c.AddEdgeLabel("KNOWS");
  s.has_creator = c.AddEdgeLabel("HAS_CREATOR");
  s.likes = c.AddEdgeLabel("LIKES");
  s.reply_of = c.AddEdgeLabel("REPLY_OF");
  s.has_tag = c.AddEdgeLabel("HAS_TAG");
  s.has_interest = c.AddEdgeLabel("HAS_INTEREST");
  s.has_member = c.AddEdgeLabel("HAS_MEMBER");
  s.has_moderator = c.AddEdgeLabel("HAS_MODERATOR");
  s.container_of = c.AddEdgeLabel("CONTAINER_OF");
  s.is_located_in = c.AddEdgeLabel("IS_LOCATED_IN");
  s.is_part_of = c.AddEdgeLabel("IS_PART_OF");
  s.has_type = c.AddEdgeLabel("HAS_TYPE");
  s.is_subclass_of = c.AddEdgeLabel("IS_SUBCLASS_OF");
  s.study_at = c.AddEdgeLabel("STUDY_AT");
  s.work_at = c.AddEdgeLabel("WORK_AT");

  // Property declarations per label.
  auto add = [&](LabelId l, const char* name, ValueType t) {
    return c.AddProperty(l, name, t);
  };
  s.id = add(s.person, "id", ValueType::kInt64);
  s.first_name = add(s.person, "firstName", ValueType::kString);
  s.last_name = add(s.person, "lastName", ValueType::kString);
  s.gender = add(s.person, "gender", ValueType::kString);
  s.birthday = add(s.person, "birthday", ValueType::kDate);
  s.birthday_month = add(s.person, "birthdayMonth", ValueType::kInt64);
  s.creation_date = add(s.person, "creationDate", ValueType::kDate);
  s.browser_used = add(s.person, "browserUsed", ValueType::kString);
  s.location_ip = add(s.person, "locationIP", ValueType::kString);

  add(s.post, "id", ValueType::kInt64);
  add(s.post, "creationDate", ValueType::kDate);
  s.content = add(s.post, "content", ValueType::kString);
  s.length = add(s.post, "length", ValueType::kInt64);
  s.language = add(s.post, "language", ValueType::kString);
  s.image_file = add(s.post, "imageFile", ValueType::kString);
  add(s.post, "browserUsed", ValueType::kString);
  add(s.post, "locationIP", ValueType::kString);

  add(s.comment, "id", ValueType::kInt64);
  add(s.comment, "creationDate", ValueType::kDate);
  add(s.comment, "content", ValueType::kString);
  add(s.comment, "length", ValueType::kInt64);
  add(s.comment, "browserUsed", ValueType::kString);
  add(s.comment, "locationIP", ValueType::kString);

  add(s.forum, "id", ValueType::kInt64);
  s.title = add(s.forum, "title", ValueType::kString);
  add(s.forum, "creationDate", ValueType::kDate);

  add(s.tag, "id", ValueType::kInt64);
  s.name = add(s.tag, "name", ValueType::kString);
  s.url = add(s.tag, "url", ValueType::kString);

  add(s.tagclass, "id", ValueType::kInt64);
  add(s.tagclass, "name", ValueType::kString);
  add(s.tagclass, "url", ValueType::kString);

  add(s.place, "id", ValueType::kInt64);
  add(s.place, "name", ValueType::kString);
  add(s.place, "url", ValueType::kString);
  s.type = add(s.place, "type", ValueType::kString);

  add(s.organisation, "id", ValueType::kInt64);
  add(s.organisation, "name", ValueType::kString);
  add(s.organisation, "url", ValueType::kString);
  add(s.organisation, "type", ValueType::kString);

  // Relations (both OUT and IN tables are created per call).
  graph->RegisterRelation(s.person, s.knows, s.person, /*has_stamp=*/true);
  graph->RegisterRelation(s.post, s.has_creator, s.person);
  graph->RegisterRelation(s.comment, s.has_creator, s.person);
  graph->RegisterRelation(s.person, s.likes, s.post, /*has_stamp=*/true);
  graph->RegisterRelation(s.person, s.likes, s.comment, /*has_stamp=*/true);
  graph->RegisterRelation(s.comment, s.reply_of, s.post);
  graph->RegisterRelation(s.comment, s.reply_of, s.comment);
  graph->RegisterRelation(s.post, s.has_tag, s.tag);
  graph->RegisterRelation(s.comment, s.has_tag, s.tag);
  graph->RegisterRelation(s.forum, s.has_tag, s.tag);
  graph->RegisterRelation(s.person, s.has_interest, s.tag);
  graph->RegisterRelation(s.forum, s.has_member, s.person,
                          /*has_stamp=*/true);
  graph->RegisterRelation(s.forum, s.has_moderator, s.person);
  graph->RegisterRelation(s.forum, s.container_of, s.post);
  graph->RegisterRelation(s.person, s.is_located_in, s.place);
  graph->RegisterRelation(s.post, s.is_located_in, s.place);
  graph->RegisterRelation(s.comment, s.is_located_in, s.place);
  graph->RegisterRelation(s.organisation, s.is_located_in, s.place);
  graph->RegisterRelation(s.place, s.is_part_of, s.place);
  graph->RegisterRelation(s.tag, s.has_type, s.tagclass);
  graph->RegisterRelation(s.tagclass, s.is_subclass_of, s.tagclass);
  graph->RegisterRelation(s.person, s.study_at, s.organisation,
                          /*has_stamp=*/true);  // classYear
  graph->RegisterRelation(s.person, s.work_at, s.organisation,
                          /*has_stamp=*/true);  // workFrom
  return s;
}

size_t SnbPersonCount(double scale_factor) {
  double n = 11000.0 * std::pow(scale_factor, 0.83);
  return static_cast<size_t>(std::max(50.0, n));
}

SnbData GenerateSnb(const SnbConfig& config, Graph* graph) {
  SnbData data;
  data.config = config;
  data.schema = SnbSchema::Define(graph);
  const SnbSchema& s = data.schema;
  Catalog& c = graph->catalog();
  Rng rng(config.seed);

  const size_t num_persons = SnbPersonCount(config.scale_factor);
  const size_t num_tags = std::min<size_t>(400, 40 + num_persons / 10);
  const size_t num_tagclasses = TagClassNames().size();
  const size_t num_cities = Cities().size();
  const size_t num_countries = Countries().size();
  const size_t num_continents = Continents().size();
  const size_t num_universities = 30;
  const size_t num_companies = 50;

  PropertyId p_id = c.Property("id");
  PropertyId p_name = c.Property("name");
  PropertyId p_url = c.Property("url");
  PropertyId p_type = c.Property("type");
  PropertyId p_creation = c.Property("creationDate");
  PropertyId p_content = c.Property("content");
  PropertyId p_length = c.Property("length");
  PropertyId p_browser = c.Property("browserUsed");
  PropertyId p_ip = c.Property("locationIP");
  PropertyId p_title = c.Property("title");
  PropertyId p_language = c.Property("language");
  PropertyId p_image = c.Property("imageFile");

  // ---- static hierarchy: places ----
  data.num_cities = num_cities;
  data.num_countries = num_countries;
  for (size_t i = 0; i < num_cities + num_countries + num_continents; ++i) {
    VertexId v = graph->AddVertexBulk(s.place, static_cast<int64_t>(i));
    std::string name;
    std::string type;
    if (i < num_cities) {
      name = std::string(Cities()[i]);
      type = "city";
    } else if (i < num_cities + num_countries) {
      name = std::string(Countries()[i - num_cities]);
      type = "country";
    } else {
      name = std::string(Continents()[i - num_cities - num_countries]);
      type = "continent";
    }
    graph->SetPropertyBulk(v, p_id, Value::Int(static_cast<int64_t>(i)));
    graph->SetPropertyBulk(v, p_name, Value::String(name));
    graph->SetPropertyBulk(v, p_url, Value::String("place/" + name));
    graph->SetPropertyBulk(v, p_type, Value::String(type));
    data.places.push_back(v);
  }
  // city -> country, country -> continent.
  for (size_t i = 0; i < num_cities; ++i) {
    size_t country = num_cities + i % num_countries;
    graph->AddEdgeBulk(s.is_part_of, data.places[i], data.places[country]);
  }
  for (size_t i = 0; i < num_countries; ++i) {
    size_t cont = num_cities + num_countries + i % num_continents;
    graph->AddEdgeBulk(s.is_part_of, data.places[num_cities + i],
                       data.places[cont]);
  }

  // ---- tag classes (hierarchy) and tags ----
  for (size_t i = 0; i < num_tagclasses; ++i) {
    VertexId v = graph->AddVertexBulk(s.tagclass, static_cast<int64_t>(i));
    std::string name(TagClassNames()[i]);
    graph->SetPropertyBulk(v, p_id, Value::Int(static_cast<int64_t>(i)));
    graph->SetPropertyBulk(v, p_name, Value::String(name));
    graph->SetPropertyBulk(v, p_url, Value::String("tagclass/" + name));
    data.tagclasses.push_back(v);
    if (i > 0) {
      size_t parent = rng.Uniform(i);
      graph->AddEdgeBulk(s.is_subclass_of, v, data.tagclasses[parent]);
    }
  }
  ZipfSampler tagclass_zipf(num_tagclasses, config.zipf_theta);
  for (size_t i = 0; i < num_tags; ++i) {
    VertexId v = graph->AddVertexBulk(s.tag, static_cast<int64_t>(i));
    std::string name = std::string(TagWords()[i % TagWords().size()]);
    if (i >= TagWords().size()) {
      name += "_" + std::to_string(i / TagWords().size());
    }
    graph->SetPropertyBulk(v, p_id, Value::Int(static_cast<int64_t>(i)));
    graph->SetPropertyBulk(v, p_name, Value::String(name));
    graph->SetPropertyBulk(v, p_url, Value::String("tag/" + name));
    data.tags.push_back(v);
    graph->AddEdgeBulk(s.has_type, v,
                       data.tagclasses[tagclass_zipf.Sample(rng)]);
  }

  // ---- organisations ----
  data.num_universities = num_universities;
  for (size_t i = 0; i < num_universities + num_companies; ++i) {
    VertexId v =
        graph->AddVertexBulk(s.organisation, static_cast<int64_t>(i));
    bool is_univ = i < num_universities;
    std::string name = (is_univ ? "Univ_" : "Co_") +
                       std::string(Cities()[i % Cities().size()]) + "_" +
                       std::to_string(i);
    graph->SetPropertyBulk(v, p_id, Value::Int(static_cast<int64_t>(i)));
    graph->SetPropertyBulk(v, p_name, Value::String(name));
    graph->SetPropertyBulk(v, p_url, Value::String("org/" + name));
    graph->SetPropertyBulk(v, p_type,
                           Value::String(is_univ ? "university" : "company"));
    data.organisations.push_back(v);
    // Organisations live in cities (universities) or countries (companies).
    size_t place = is_univ ? i % num_cities : num_cities + i % num_countries;
    graph->AddEdgeBulk(s.is_located_in, v, data.places[place]);
  }

  // ---- persons ----
  ZipfSampler person_zipf(std::max<size_t>(num_persons, 2),
                          config.zipf_theta);
  ZipfSampler tag_zipf(num_tags, config.zipf_theta);
  data.persons.reserve(num_persons);
  data.person_creation.reserve(num_persons);
  for (size_t i = 0; i < num_persons; ++i) {
    VertexId v = graph->AddVertexBulk(s.person, static_cast<int64_t>(i));
    int64_t creation =
        kSimStart + static_cast<int64_t>(rng.NextDouble() * 0.8 *
                                         (kSimEnd - kSimStart));
    // Birthday: 1950..1998, encoded as millis; month/day uniform.
    int64_t day_of_year = static_cast<int64_t>(rng.Uniform(360));
    int64_t birthday = -631152000000LL +  // 1950-01-01
                       static_cast<int64_t>(rng.Uniform(48)) * 365 *
                           kMillisPerDay +
                       day_of_year * kMillisPerDay;
    int64_t birthday_month = 1 + day_of_year / 30;
    graph->SetPropertyBulk(v, s.id, Value::Int(static_cast<int64_t>(i)));
    graph->SetPropertyBulk(
        v, s.first_name,
        Value::String(std::string(FirstNames()[rng.Uniform(FirstNames().size())])));
    graph->SetPropertyBulk(
        v, s.last_name,
        Value::String(std::string(LastNames()[rng.Uniform(LastNames().size())])));
    graph->SetPropertyBulk(v, s.gender,
                           Value::String(rng.Bernoulli(0.5) ? "male" : "female"));
    graph->SetPropertyBulk(v, s.birthday, Value::Date(birthday));
    graph->SetPropertyBulk(v, s.birthday_month, Value::Int(birthday_month));
    graph->SetPropertyBulk(v, s.creation_date, Value::Date(creation));
    graph->SetPropertyBulk(
        v, s.browser_used,
        Value::String(std::string(Browsers()[rng.Uniform(Browsers().size())])));
    graph->SetPropertyBulk(v, s.location_ip,
                           Value::String("10." + std::to_string(rng.Uniform(256)) +
                                         "." + std::to_string(rng.Uniform(256)) +
                                         "." + std::to_string(rng.Uniform(256))));
    data.persons.push_back(v);
    data.person_creation.push_back(creation);
    graph->AddEdgeBulk(s.is_located_in, v,
                       data.places[rng.Uniform(num_cities)]);
    // Interests: 4..16 tags, zipf over tags so some tags are very popular.
    size_t interests = 4 + rng.Uniform(13);
    for (size_t t = 0; t < interests; ++t) {
      graph->AddEdgeBulk(s.has_interest, v, data.tags[tag_zipf.Sample(rng)]);
    }
    // Education / employment.
    if (rng.Bernoulli(0.8)) {
      graph->AddEdgeBulk(s.study_at, v,
                         data.organisations[rng.Uniform(num_universities)],
                         /*stamp=*/1995 + static_cast<int64_t>(rng.Uniform(18)));
    }
    size_t jobs = rng.Bernoulli(0.3) ? 2 : 1;
    for (size_t j = 0; j < jobs; ++j) {
      graph->AddEdgeBulk(
          s.work_at, v,
          data.organisations[num_universities + rng.Uniform(num_companies)],
          /*stamp=*/1990 + static_cast<int64_t>(rng.Uniform(23)));
    }
  }

  // ---- knows (symmetric, skewed degree, creation-consistent stamps) ----
  {
    ZipfSampler degree_zipf(64, config.zipf_theta);
    std::unordered_set<uint64_t> seen;  // dedup: KNOWS is a set of pairs
    for (size_t i = 0; i < num_persons; ++i) {
      uint32_t deg = SkewedCount(rng, degree_zipf, config.avg_knows / 2, 16);
      for (uint32_t k = 0; k < deg; ++k) {
        // Mild locality: half the friends are "nearby" ids (shared city
        // clusters in LDBC); the rest uniform or hub-biased.
        size_t j;
        if (rng.Bernoulli(0.5)) {
          int64_t off = rng.UniformRange(-50, 50);
          int64_t cand = static_cast<int64_t>(i) + off;
          if (cand < 0 || cand >= static_cast<int64_t>(num_persons)) continue;
          j = static_cast<size_t>(cand);
        } else {
          j = person_zipf.Sample(rng);
        }
        if (j == i || j >= num_persons) continue;
        uint64_t key = i < j ? (uint64_t{static_cast<uint32_t>(i)} << 32 | j)
                             : (uint64_t{static_cast<uint32_t>(j)} << 32 | i);
        if (!seen.insert(key).second) continue;
        int64_t stamp = std::max(data.person_creation[i],
                                 data.person_creation[j]) +
                        static_cast<int64_t>(rng.Uniform(90)) * kMillisPerDay;
        graph->AddEdgeBulk(s.knows, data.persons[i], data.persons[j], stamp);
        graph->AddEdgeBulk(s.knows, data.persons[j], data.persons[i], stamp);
      }
    }
  }

  // ---- forums, moderators, members ----
  const size_t num_forums = std::max<size_t>(
      4, static_cast<size_t>(num_persons * config.forums_per_person));
  ZipfSampler member_zipf(64, config.zipf_theta);
  std::vector<std::vector<uint32_t>> forum_members(num_forums);
  for (size_t f = 0; f < num_forums; ++f) {
    size_t moderator = person_zipf.Sample(rng);
    VertexId v = graph->AddVertexBulk(s.forum, static_cast<int64_t>(f));
    int64_t creation = data.person_creation[moderator] +
                       static_cast<int64_t>(rng.Uniform(200)) * kMillisPerDay;
    graph->SetPropertyBulk(v, p_id, Value::Int(static_cast<int64_t>(f)));
    graph->SetPropertyBulk(v, p_title,
                           Value::String("Forum_" + std::to_string(f)));
    graph->SetPropertyBulk(v, p_creation, Value::Date(creation));
    data.forums.push_back(v);
    graph->AddEdgeBulk(s.has_moderator, v, data.persons[moderator]);
    size_t forum_tags = 1 + rng.Uniform(3);
    for (size_t t = 0; t < forum_tags; ++t) {
      graph->AddEdgeBulk(s.has_tag, v, data.tags[rng.Uniform(num_tags)]);
    }
    uint32_t members =
        SkewedCount(rng, member_zipf, config.members_per_forum, 20);
    for (uint32_t m = 0; m < members; ++m) {
      size_t p = person_zipf.Sample(rng);
      int64_t join = std::max(creation, data.person_creation[p]) +
                     static_cast<int64_t>(rng.Uniform(120)) * kMillisPerDay;
      graph->AddEdgeBulk(s.has_member, v, data.persons[p], join);
      forum_members[f].push_back(static_cast<uint32_t>(p));
    }
  }

  // ---- posts (inside forums, written by members) ----
  const size_t target_posts = static_cast<size_t>(
      std::max(8.0, num_persons * config.posts_per_person));
  ZipfSampler forum_zipf(num_forums, config.zipf_theta);
  data.posts.reserve(target_posts);
  data.post_creation.reserve(target_posts);
  std::vector<uint32_t> post_creator;
  post_creator.reserve(target_posts);
  for (size_t i = 0; i < target_posts; ++i) {
    size_t f = forum_zipf.Sample(rng);
    size_t creator = forum_members[f].empty()
                         ? person_zipf.Sample(rng)
                         : forum_members[f][rng.Uniform(
                               forum_members[f].size())];
    VertexId v = graph->AddVertexBulk(s.post, static_cast<int64_t>(i));
    int64_t creation = data.person_creation[creator] +
                       static_cast<int64_t>(rng.Uniform(600)) * kMillisPerDay;
    // Keep posts clear of the window end so reply timestamps can stay
    // strictly greater while remaining inside the simulation window.
    if (creation >= kSimEnd - 40 * kMillisPerDay) {
      creation = kSimEnd - 40 * kMillisPerDay -
                 static_cast<int64_t>(rng.Uniform(30)) * kMillisPerDay;
    }
    int64_t length = 20 + static_cast<int64_t>(rng.Uniform(230));
    graph->SetPropertyBulk(v, p_id, Value::Int(static_cast<int64_t>(i)));
    graph->SetPropertyBulk(v, p_creation, Value::Date(creation));
    graph->SetPropertyBulk(v, p_content,
                           Value::String(MakeContent(rng, 4 + rng.Uniform(6))));
    graph->SetPropertyBulk(v, p_length, Value::Int(length));
    graph->SetPropertyBulk(
        v, p_language,
        Value::String(std::string(Languages()[rng.Uniform(Languages().size())])));
    graph->SetPropertyBulk(v, p_image, Value::String(""));
    graph->SetPropertyBulk(
        v, p_browser,
        Value::String(std::string(Browsers()[rng.Uniform(Browsers().size())])));
    graph->SetPropertyBulk(v, p_ip, Value::String("10.0.0.1"));
    data.posts.push_back(v);
    data.post_creation.push_back(creation);
    post_creator.push_back(static_cast<uint32_t>(creator));
    graph->AddEdgeBulk(s.has_creator, v, data.persons[creator]);
    graph->AddEdgeBulk(s.container_of, data.forums[f], v);
    graph->AddEdgeBulk(s.is_located_in, v,
                       data.places[num_cities + rng.Uniform(num_countries)]);
    size_t post_tags = 1 + rng.Uniform(3);
    for (size_t t = 0; t < post_tags; ++t) {
      graph->AddEdgeBulk(s.has_tag, v, data.tags[rng.Uniform(num_tags)]);
    }
  }

  // ---- comments (reply trees under posts; repliers are friends-biased) ----
  const size_t target_comments = static_cast<size_t>(
      target_posts * config.comments_per_post);
  ZipfSampler post_zipf(std::max<size_t>(target_posts, 2), config.zipf_theta);
  data.comments.reserve(target_comments);
  data.comment_creation.reserve(target_comments);
  // For REPLY_OF chains: remember comments attached to each post.
  std::vector<std::vector<uint32_t>> post_comments(target_posts);
  for (size_t i = 0; i < target_comments; ++i) {
    size_t post_idx = post_zipf.Sample(rng);
    size_t creator = person_zipf.Sample(rng);
    VertexId v = graph->AddVertexBulk(s.comment, static_cast<int64_t>(i));
    // 30% of comments reply to an existing comment of the same post.
    bool reply_to_comment =
        !post_comments[post_idx].empty() && rng.Bernoulli(0.3);
    int64_t parent_creation;
    if (reply_to_comment) {
      uint32_t parent =
          post_comments[post_idx][rng.Uniform(post_comments[post_idx].size())];
      graph->AddEdgeBulk(s.reply_of, v, data.comments[parent]);
      parent_creation = data.comment_creation[parent];
    } else {
      graph->AddEdgeBulk(s.reply_of, v, data.posts[post_idx]);
      parent_creation = data.post_creation[post_idx];
    }
    // Strictly after the parent (reply ordering invariant), allowed to
    // spill slightly past the window end.
    int64_t creation = std::max(parent_creation,
                                data.person_creation[creator]) +
                       1 + static_cast<int64_t>(rng.Uniform(30)) * kMillisPerDay;
    int64_t length = 10 + static_cast<int64_t>(rng.Uniform(180));
    graph->SetPropertyBulk(v, p_id, Value::Int(static_cast<int64_t>(i)));
    graph->SetPropertyBulk(v, p_creation, Value::Date(creation));
    graph->SetPropertyBulk(v, p_content,
                           Value::String(MakeContent(rng, 2 + rng.Uniform(5))));
    graph->SetPropertyBulk(v, p_length, Value::Int(length));
    graph->SetPropertyBulk(
        v, p_browser,
        Value::String(std::string(Browsers()[rng.Uniform(Browsers().size())])));
    graph->SetPropertyBulk(v, p_ip, Value::String("10.0.0.2"));
    data.comments.push_back(v);
    data.comment_creation.push_back(creation);
    post_comments[post_idx].push_back(static_cast<uint32_t>(i));
    graph->AddEdgeBulk(s.has_creator, v, data.persons[creator]);
    graph->AddEdgeBulk(s.is_located_in, v,
                       data.places[num_cities + rng.Uniform(num_countries)]);
    if (rng.Bernoulli(0.4)) {
      graph->AddEdgeBulk(s.has_tag, v, data.tags[rng.Uniform(num_tags)]);
    }
  }

  // ---- likes ----
  {
    size_t target_likes = static_cast<size_t>(
        (target_posts + target_comments) * config.likes_per_message);
    for (size_t i = 0; i < target_likes; ++i) {
      size_t p = person_zipf.Sample(rng);
      bool like_post = data.comments.empty() || rng.Bernoulli(0.55);
      if (like_post) {
        size_t m = post_zipf.Sample(rng);
        int64_t stamp = std::max(data.post_creation[m],
                                 data.person_creation[p]) +
                        1 + static_cast<int64_t>(rng.Uniform(60)) * kMillisPerDay;
        graph->AddEdgeBulk(s.likes, data.persons[p], data.posts[m], stamp);
      } else {
        size_t m = rng.Uniform(data.comments.size());
        int64_t stamp = std::max(data.comment_creation[m],
                                 data.person_creation[p]) +
                        1 + static_cast<int64_t>(rng.Uniform(60)) * kMillisPerDay;
        graph->AddEdgeBulk(s.likes, data.persons[p], data.comments[m], stamp);
      }
    }
  }

  graph->FinalizeBulk();

  data.next_person_ext = static_cast<int64_t>(num_persons);
  data.next_post_ext = static_cast<int64_t>(target_posts);
  data.next_comment_ext = static_cast<int64_t>(target_comments);
  data.next_forum_ext = static_cast<int64_t>(num_forums);
  return data;
}

SnbData RebuildSnbData(Graph* graph) {
  SnbData data;
  // Define() resolves against the recovered catalog: every Add* call
  // dedupes by name and RegisterRelation is a no-op for known relations,
  // so on a loaded graph this only looks ids up.
  data.schema = SnbSchema::Define(graph);
  const SnbSchema& s = data.schema;
  const Version snap = graph->CurrentVersion();
  const PropertyId p_type = graph->catalog().Property("type");
  const PropertyId p_creation = graph->catalog().Property("creationDate");

  auto scan = [&](LabelId label) {
    std::vector<VertexId> out;
    graph->ScanLabel(label, snap, &out);
    return out;
  };
  auto creation_of = [&](const std::vector<VertexId>& pool,
                         std::vector<int64_t>* out) {
    out->reserve(pool.size());
    for (VertexId v : pool) {
      out->push_back(graph->GetProperty(v, p_creation, snap).AsInt());
    }
  };
  auto next_ext = [&](const std::vector<VertexId>& pool) {
    int64_t max_ext = -1;
    for (VertexId v : pool) {
      max_ext = std::max(max_ext, graph->ExtIdOf(v, snap));
    }
    return max_ext + 1;
  };

  data.persons = scan(s.person);
  data.posts = scan(s.post);
  data.comments = scan(s.comment);
  data.forums = scan(s.forum);
  data.tags = scan(s.tag);
  data.tagclasses = scan(s.tagclass);
  creation_of(data.persons, &data.person_creation);
  creation_of(data.posts, &data.post_creation);
  creation_of(data.comments, &data.comment_creation);

  // Places and organisations were generated as one label each with a
  // `type` property; the handle vectors are partitioned sub-ranges
  // ([cities..][countries..][continents..]). ScanLabel preserves the bulk
  // pool order, so a stable partition reproduces the generated layout.
  std::vector<VertexId> countries;
  std::vector<VertexId> continents;
  for (VertexId v : scan(s.place)) {
    std::string type = graph->GetProperty(v, p_type, snap).AsString();
    if (type == "city") {
      data.places.push_back(v);
      ++data.num_cities;
    } else if (type == "country") {
      countries.push_back(v);
      ++data.num_countries;
    } else {
      continents.push_back(v);
    }
  }
  data.places.insert(data.places.end(), countries.begin(), countries.end());
  data.places.insert(data.places.end(), continents.begin(), continents.end());
  std::vector<VertexId> companies;
  for (VertexId v : scan(s.organisation)) {
    std::string type = graph->GetProperty(v, p_type, snap).AsString();
    if (type == "university") {
      data.organisations.push_back(v);
      ++data.num_universities;
    } else {
      companies.push_back(v);
    }
  }
  data.organisations.insert(data.organisations.end(), companies.begin(),
                            companies.end());

  data.next_person_ext = next_ext(data.persons);
  data.next_post_ext = next_ext(data.posts);
  data.next_comment_ext = next_ext(data.comments);
  data.next_forum_ext = next_ext(data.forums);
  return data;
}

}  // namespace ges
