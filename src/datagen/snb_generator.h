// Deterministic in-memory generator of an LDBC-SNB-like social network.
//
// This replaces the Hadoop-based LDBC Datagen the paper uses (see
// DESIGN.md, substitutions). It preserves the schema shape and the skewed
// degree distributions that drive the executor behaviour the paper
// measures: power-law knows/membership/message degrees, correlated
// timestamps (replies after parents, likes after messages), a place
// hierarchy (city -> country -> continent) and a tag-class hierarchy.
#ifndef GES_DATAGEN_SNB_GENERATOR_H_
#define GES_DATAGEN_SNB_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "datagen/snb_schema.h"
#include "storage/graph.h"

namespace ges {

struct SnbConfig {
  // Continuous scale factor; #persons follows the paper's Table 1 curve
  // (#persons ~= 11000 * SF^0.83). SF1 in the paper is ~1 GiB of graph data.
  double scale_factor = 0.1;
  uint64_t seed = 42;

  // Density knobs (defaults approximate LDBC shape at laptop scale).
  double avg_knows = 15.0;          // avg friendships per person
  double posts_per_person = 12.0;   // wall+forum posts per person
  double comments_per_post = 2.0;   // avg reply tree size
  double likes_per_message = 1.5;   // avg likes
  double forums_per_person = 1.5;
  double members_per_forum = 12.0;  // avg forum membership
  double zipf_theta = 0.7;          // skew of all power-law draws
};

// Handles into the generated graph, used by workload parameter generation.
struct SnbData {
  SnbSchema schema;
  SnbConfig config;

  std::vector<VertexId> persons;
  std::vector<VertexId> posts;
  std::vector<VertexId> comments;
  std::vector<VertexId> forums;
  std::vector<VertexId> tags;
  std::vector<VertexId> tagclasses;
  std::vector<VertexId> places;         // [cities..][countries..][continents..]
  std::vector<VertexId> organisations;  // [universities..][companies..]
  size_t num_cities = 0;
  size_t num_countries = 0;
  size_t num_universities = 0;

  // Auxiliary columns aligned with the entity vectors above (used to draw
  // realistic query parameters, mirroring the LDBC parameter curation).
  std::vector<int64_t> person_creation;
  std::vector<int64_t> post_creation;
  std::vector<int64_t> comment_creation;

  // External-id counters for the update (IU) workload.
  int64_t next_person_ext = 0;
  int64_t next_post_ext = 0;
  int64_t next_comment_ext = 0;
  int64_t next_forum_ext = 0;
};

// Generates the network into `graph` (which must be empty) and returns the
// handles. Runs schema definition, bulk load and FinalizeBulk.
SnbData GenerateSnb(const SnbConfig& config, Graph* graph);

// Reconstructs the SnbData handles from a graph that was loaded from a
// snapshot (Graph::Open) rather than generated. Resolves the schema against
// the recovered catalog, scans the label pools (bulk order is preserved by
// the snapshot), partitions places/organisations by their `type` property
// and rebuilds the update-stream external-id counters from the maximum
// external id per pool, so IU workloads resume without colliding.
SnbData RebuildSnbData(Graph* graph);

// Number of persons implied by a scale factor (the paper's Table 1 curve).
size_t SnbPersonCount(double scale_factor);

}  // namespace ges

#endif  // GES_DATAGEN_SNB_GENERATOR_H_
