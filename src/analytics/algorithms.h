// Graph analytics (OLAP) over snapshot views.
//
// The paper's workload taxonomy (Section 2.2) includes OLAP tasks — large
// traversals for risk management and pattern detection — executed in GES as
// stored procedures over the storage layer. This module provides the
// classic kernels on top of GraphView snapshots: they read adjacency
// through the same unified storage interface as the query executor, so they
// compose with MV2PL snapshots for free.
#ifndef GES_ANALYTICS_ALGORITHMS_H_
#define GES_ANALYTICS_ALGORITHMS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "executor/graph_view.h"

namespace ges {

// PageRank over the vertices of `label`, following `out_rels` edges (the
// union). Vertices outside `label` reached by the edges are ignored
// (ranks flow only within the label's vertex set). Returns scores aligned
// with the returned vertex order.
struct PageRankResult {
  std::vector<VertexId> vertices;
  std::vector<double> scores;
};
PageRankResult PageRank(const GraphView& view, LabelId label,
                        const std::vector<RelationId>& out_rels,
                        int iterations = 20, double damping = 0.85);

// Weakly connected components over `label` vertices using the given
// relations in both directions (pass the OUT and IN tables, or a symmetric
// relation once). Returns a component id per vertex (ids are the smallest
// VertexId in each component) plus the number of components.
struct WccResult {
  std::vector<VertexId> vertices;
  std::vector<VertexId> component;
  size_t num_components = 0;
};
WccResult WeaklyConnectedComponents(const GraphView& view, LabelId label,
                                    const std::vector<RelationId>& rels);

// Global triangle count over a symmetric relation (each triangle counted
// once). Intended for KNOWS-like relations where (u,v) implies (v,u).
uint64_t CountTriangles(const GraphView& view, LabelId label,
                        RelationId symmetric_rel);

// Intersection-based triangle count (the analytic face of the WCOJ tier,
// DESIGN.md §12): per-edge leapfrog intersection of the two sorted
// adjacency spans via storage/intersect.h — no per-vertex neighbor-list
// materialization. Result identical to CountTriangles (parallel edges are
// deduplicated); `stats`, when non-null, accumulates galloping counters.
uint64_t CountTrianglesIntersect(const GraphView& view, LabelId label,
                                 RelationId symmetric_rel,
                                 IntersectOpStats* stats = nullptr);

// Diamond count over a symmetric relation: the number of (edge {u,v},
// unordered pair {w,x} of common neighbors) combinations, i.e.
// sum over edges of C(|N(u) ∩ N(v)|, 2). Each diamond (K4 minus one edge)
// is counted once via its unique chord; a full K4 contributes one per each
// of its 6 edges. Computed with the same per-edge leapfrog intersection.
uint64_t CountDiamonds(const GraphView& view, LabelId label,
                       RelationId symmetric_rel,
                       IntersectOpStats* stats = nullptr);

// 4-cycle (quadrilateral) count over a symmetric relation: each cycle on 4
// distinct vertices counted once, via co-degree accumulation over the
// label's vertices (sum over opposite pairs of C(codeg, 2), halved).
uint64_t CountFourCycles(const GraphView& view, LabelId label,
                         RelationId symmetric_rel);

// Single-source shortest-path distances (unweighted BFS) from `source`
// over `rels`, bounded by `max_depth` (-1 = unbounded). Unreachable
// vertices are absent from the map.
std::unordered_map<VertexId, int> BfsDistances(
    const GraphView& view, const std::vector<RelationId>& rels,
    VertexId source, int max_depth = -1);

// Degree distribution of `rel` over `label`: histogram[d] = #vertices with
// degree d (tombstones excluded), truncated at the maximum degree.
std::vector<uint64_t> DegreeHistogram(const GraphView& view, LabelId label,
                                      RelationId rel);

}  // namespace ges

#endif  // GES_ANALYTICS_ALGORITHMS_H_
