#include "analytics/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace ges {

namespace {

// Dense index of a label's vertices for array-based kernels.
struct DenseIndex {
  std::vector<VertexId> vertices;
  std::unordered_map<VertexId, uint32_t> index;

  explicit DenseIndex(const GraphView& view, LabelId label) {
    view.ScanLabel(label, &vertices);
    index.reserve(vertices.size());
    for (uint32_t i = 0; i < vertices.size(); ++i) index[vertices[i]] = i;
  }
};

}  // namespace

PageRankResult PageRank(const GraphView& view, LabelId label,
                        const std::vector<RelationId>& out_rels,
                        int iterations, double damping) {
  DenseIndex dense(view, label);
  size_t n = dense.vertices.size();
  PageRankResult result;
  result.vertices = dense.vertices;
  result.scores.assign(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
  if (n == 0) return result;

  // Out-degrees restricted to in-label targets.
  std::vector<uint32_t> out_degree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (RelationId rel : out_rels) {
      AdjSpan span = view.Neighbors(rel, dense.vertices[i]);
      for (uint32_t k = 0; k < span.size; ++k) {
        if (span.ids[k] == kInvalidVertex) continue;
        if (dense.index.count(span.ids[k]) != 0) ++out_degree[i];
      }
    }
  }

  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0;
    for (size_t i = 0; i < n; ++i) {
      if (out_degree[i] == 0) dangling += result.scores[i];
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (size_t i = 0; i < n; ++i) {
      if (out_degree[i] == 0) continue;
      double share =
          damping * result.scores[i] / static_cast<double>(out_degree[i]);
      for (RelationId rel : out_rels) {
        AdjSpan span = view.Neighbors(rel, dense.vertices[i]);
        for (uint32_t k = 0; k < span.size; ++k) {
          auto it2 = dense.index.find(span.ids[k]);
          if (it2 == dense.index.end()) continue;
          next[it2->second] += share;
        }
      }
    }
    std::swap(result.scores, next);
  }
  return result;
}

WccResult WeaklyConnectedComponents(const GraphView& view, LabelId label,
                                    const std::vector<RelationId>& rels) {
  DenseIndex dense(view, label);
  size_t n = dense.vertices.size();
  WccResult result;
  result.vertices = dense.vertices;
  result.component.assign(n, kInvalidVertex);

  for (size_t start = 0; start < n; ++start) {
    if (result.component[start] != kInvalidVertex) continue;
    // BFS labeling with the minimum VertexId of the component; the start
    // has the smallest index not yet visited, but not necessarily the
    // smallest id — track the minimum as we go, then relabel.
    std::vector<uint32_t> members;
    VertexId min_id = dense.vertices[start];
    std::deque<uint32_t> queue{static_cast<uint32_t>(start)};
    result.component[start] = 0;  // temporary "visited" mark
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop_front();
      members.push_back(u);
      min_id = std::min(min_id, dense.vertices[u]);
      for (RelationId rel : rels) {
        AdjSpan span = view.Neighbors(rel, dense.vertices[u]);
        for (uint32_t k = 0; k < span.size; ++k) {
          auto it = dense.index.find(span.ids[k]);
          if (it == dense.index.end()) continue;
          if (result.component[it->second] != kInvalidVertex) continue;
          result.component[it->second] = 0;
          queue.push_back(it->second);
        }
      }
    }
    for (uint32_t u : members) result.component[u] = min_id;
    ++result.num_components;
  }
  return result;
}

uint64_t CountTriangles(const GraphView& view, LabelId label,
                        RelationId symmetric_rel) {
  DenseIndex dense(view, label);
  size_t n = dense.vertices.size();
  // Sorted neighbor lists restricted to higher-indexed vertices ("forward"
  // edges); intersect forward lists of edge endpoints.
  std::vector<std::vector<uint32_t>> fwd(n);
  for (size_t i = 0; i < n; ++i) {
    AdjSpan span = view.Neighbors(symmetric_rel, dense.vertices[i]);
    for (uint32_t k = 0; k < span.size; ++k) {
      auto it = dense.index.find(span.ids[k]);
      if (it == dense.index.end()) continue;
      if (it->second > i) fwd[i].push_back(it->second);
    }
    std::sort(fwd[i].begin(), fwd[i].end());
    fwd[i].erase(std::unique(fwd[i].begin(), fwd[i].end()), fwd[i].end());
  }
  uint64_t triangles = 0;
  for (size_t u = 0; u < n; ++u) {
    for (uint32_t v : fwd[u]) {
      // |fwd[u] ∩ fwd[v]| triangles through edge (u, v).
      const auto& a = fwd[u];
      const auto& b = fwd[v];
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

std::unordered_map<VertexId, int> BfsDistances(
    const GraphView& view, const std::vector<RelationId>& rels,
    VertexId source, int max_depth) {
  std::unordered_map<VertexId, int> dist;
  dist[source] = 0;
  std::deque<VertexId> queue{source};
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    int d = dist[u];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (RelationId rel : rels) {
      AdjSpan span = view.Neighbors(rel, u);
      for (uint32_t k = 0; k < span.size; ++k) {
        VertexId w = span.ids[k];
        if (w == kInvalidVertex || dist.count(w) != 0) continue;
        dist[w] = d + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> DegreeHistogram(const GraphView& view, LabelId label,
                                      RelationId rel) {
  std::vector<VertexId> vertices;
  view.ScanLabel(label, &vertices);
  std::vector<uint64_t> histogram;
  for (VertexId v : vertices) {
    AdjSpan span = view.Neighbors(rel, v);
    uint32_t degree = 0;
    for (uint32_t k = 0; k < span.size; ++k) {
      if (span.ids[k] != kInvalidVertex) ++degree;
    }
    if (histogram.size() <= degree) histogram.resize(degree + 1, 0);
    ++histogram[degree];
  }
  return histogram;
}

}  // namespace ges
