#include "analytics/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace ges {

namespace {

// Dense index of a label's vertices for array-based kernels.
struct DenseIndex {
  std::vector<VertexId> vertices;
  std::unordered_map<VertexId, uint32_t> index;

  explicit DenseIndex(const GraphView& view, LabelId label) {
    view.ScanLabel(label, &vertices);
    index.reserve(vertices.size());
    for (uint32_t i = 0; i < vertices.size(); ++i) index[vertices[i]] = i;
  }
};

}  // namespace

PageRankResult PageRank(const GraphView& view, LabelId label,
                        const std::vector<RelationId>& out_rels,
                        int iterations, double damping) {
  DenseIndex dense(view, label);
  size_t n = dense.vertices.size();
  PageRankResult result;
  result.vertices = dense.vertices;
  result.scores.assign(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
  if (n == 0) return result;

  // Out-degrees restricted to in-label targets. Spans are drained before
  // the next fetch, so one decode scratch serves the whole kernel.
  AdjScratch adj;
  std::vector<uint32_t> out_degree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (RelationId rel : out_rels) {
      AdjSpan span = view.Neighbors(rel, dense.vertices[i], &adj);
      for (uint32_t k = 0; k < span.size; ++k) {
        if (span.ids[k] == kInvalidVertex) continue;
        if (dense.index.count(span.ids[k]) != 0) ++out_degree[i];
      }
    }
  }

  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0;
    for (size_t i = 0; i < n; ++i) {
      if (out_degree[i] == 0) dangling += result.scores[i];
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (size_t i = 0; i < n; ++i) {
      if (out_degree[i] == 0) continue;
      double share =
          damping * result.scores[i] / static_cast<double>(out_degree[i]);
      for (RelationId rel : out_rels) {
        AdjSpan span = view.Neighbors(rel, dense.vertices[i], &adj);
        for (uint32_t k = 0; k < span.size; ++k) {
          auto it2 = dense.index.find(span.ids[k]);
          if (it2 == dense.index.end()) continue;
          next[it2->second] += share;
        }
      }
    }
    std::swap(result.scores, next);
  }
  return result;
}

WccResult WeaklyConnectedComponents(const GraphView& view, LabelId label,
                                    const std::vector<RelationId>& rels) {
  DenseIndex dense(view, label);
  size_t n = dense.vertices.size();
  WccResult result;
  result.vertices = dense.vertices;
  result.component.assign(n, kInvalidVertex);

  AdjScratch adj;
  for (size_t start = 0; start < n; ++start) {
    if (result.component[start] != kInvalidVertex) continue;
    // BFS labeling with the minimum VertexId of the component; the start
    // has the smallest index not yet visited, but not necessarily the
    // smallest id — track the minimum as we go, then relabel.
    std::vector<uint32_t> members;
    VertexId min_id = dense.vertices[start];
    std::deque<uint32_t> queue{static_cast<uint32_t>(start)};
    result.component[start] = 0;  // temporary "visited" mark
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop_front();
      members.push_back(u);
      min_id = std::min(min_id, dense.vertices[u]);
      for (RelationId rel : rels) {
        AdjSpan span = view.Neighbors(rel, dense.vertices[u], &adj);
        for (uint32_t k = 0; k < span.size; ++k) {
          auto it = dense.index.find(span.ids[k]);
          if (it == dense.index.end()) continue;
          if (result.component[it->second] != kInvalidVertex) continue;
          result.component[it->second] = 0;
          queue.push_back(it->second);
        }
      }
    }
    for (uint32_t u : members) result.component[u] = min_id;
    ++result.num_components;
  }
  return result;
}

uint64_t CountTriangles(const GraphView& view, LabelId label,
                        RelationId symmetric_rel) {
  DenseIndex dense(view, label);
  size_t n = dense.vertices.size();
  // Sorted neighbor lists restricted to higher-indexed vertices ("forward"
  // edges); intersect forward lists of edge endpoints.
  std::vector<std::vector<uint32_t>> fwd(n);
  AdjScratch adj;
  for (size_t i = 0; i < n; ++i) {
    AdjSpan span = view.Neighbors(symmetric_rel, dense.vertices[i], &adj);
    for (uint32_t k = 0; k < span.size; ++k) {
      auto it = dense.index.find(span.ids[k]);
      if (it == dense.index.end()) continue;
      if (it->second > i) fwd[i].push_back(it->second);
    }
    std::sort(fwd[i].begin(), fwd[i].end());
    fwd[i].erase(std::unique(fwd[i].begin(), fwd[i].end()), fwd[i].end());
  }
  uint64_t triangles = 0;
  for (size_t u = 0; u < n; ++u) {
    for (uint32_t v : fwd[u]) {
      // |fwd[u] ∩ fwd[v]| triangles through edge (u, v).
      const auto& a = fwd[u];
      const auto& b = fwd[v];
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

namespace {

// Number of common ids of two sorted (kInvalidVertex-free) lists starting
// at positions a/b, restricted to members of `index` — a two-list leapfrog
// with galloping cursors. Duplicates (parallel edges) count once.
uint64_t IntersectCount(const SortedList& su, uint32_t a, const SortedList& sv,
                        uint32_t b,
                        const std::unordered_map<VertexId, uint32_t>& index,
                        IntersectOpStats* stats) {
  uint64_t count = 0;
  while (a < su.size && b < sv.size) {
    VertexId wa = su.ids[a];
    VertexId wb = sv.ids[b];
    if (wa < wb) {
      a = GallopLowerBound(su.ids, su.size, a + 1, wb, stats);
    } else if (wb < wa) {
      b = GallopLowerBound(sv.ids, sv.size, b + 1, wa, stats);
    } else {
      if (index.count(wa) != 0) {
        ++count;
        if (stats != nullptr) ++stats->emitted;
      }
      do {
        ++a;
      } while (a < su.size && su.ids[a] == wa);
      do {
        ++b;
      } while (b < sv.size && sv.ids[b] == wa);
    }
  }
  return count;
}

}  // namespace

uint64_t CountTrianglesIntersect(const GraphView& view, LabelId label,
                                 RelationId symmetric_rel,
                                 IntersectOpStats* stats) {
  DenseIndex dense(view, label);
  std::vector<VertexId> scratch_u, scratch_v;
  // Distinct decode scratches: NormalizeSpan keeps sorted_clean spans in
  // place, and `su` stays live across the inner `sv` fetches.
  AdjScratch adj_u, adj_v;
  uint64_t triangles = 0;
  for (VertexId u : dense.vertices) {
    SortedList su =
        NormalizeSpan(view.Neighbors(symmetric_rel, u, &adj_u), &scratch_u);
    for (uint32_t i = 0; i < su.size; ++i) {
      VertexId v = su.ids[i];
      if (v <= u) continue;
      if (i > 0 && su.ids[i - 1] == v) continue;  // parallel edge
      if (dense.index.count(v) == 0) continue;
      if (stats != nullptr) ++stats->probes;
      SortedList sv =
          NormalizeSpan(view.Neighbors(symmetric_rel, v, &adj_v), &scratch_v);
      // Common neighbors w > v close a triangle u < v < w exactly once.
      uint32_t a = GallopLowerBound(su.ids, su.size, i + 1, v + 1, stats);
      uint32_t b = GallopLowerBound(sv.ids, sv.size, 0, v + 1, stats);
      triangles += IntersectCount(su, a, sv, b, dense.index, stats);
    }
  }
  return triangles;
}

uint64_t CountDiamonds(const GraphView& view, LabelId label,
                       RelationId symmetric_rel, IntersectOpStats* stats) {
  DenseIndex dense(view, label);
  std::vector<VertexId> scratch_u, scratch_v;
  AdjScratch adj_u, adj_v;
  uint64_t diamonds = 0;
  for (VertexId u : dense.vertices) {
    SortedList su =
        NormalizeSpan(view.Neighbors(symmetric_rel, u, &adj_u), &scratch_u);
    for (uint32_t i = 0; i < su.size; ++i) {
      VertexId v = su.ids[i];
      if (v <= u) continue;  // each edge once
      if (i > 0 && su.ids[i - 1] == v) continue;
      if (dense.index.count(v) == 0) continue;
      if (stats != nullptr) ++stats->probes;
      SortedList sv =
          NormalizeSpan(view.Neighbors(symmetric_rel, v, &adj_v), &scratch_v);
      // Every unordered pair of common neighbors spans a diamond whose
      // chord is (u, v).
      uint64_t c = IntersectCount(su, 0, sv, 0, dense.index, stats);
      diamonds += c * (c - 1) / 2;
    }
  }
  return diamonds;
}

uint64_t CountFourCycles(const GraphView& view, LabelId label,
                         RelationId symmetric_rel) {
  DenseIndex dense(view, label);
  size_t n = dense.vertices.size();
  // codeg[{a, b}] = number of common neighbors of the dense pair a < b;
  // each 4-cycle is counted once per opposite pair (exactly two of them).
  std::unordered_map<uint64_t, uint32_t> codeg;
  std::vector<uint32_t> nbrs;
  AdjScratch adj;
  for (size_t i = 0; i < n; ++i) {
    AdjSpan span = view.Neighbors(symmetric_rel, dense.vertices[i], &adj);
    nbrs.clear();
    for (uint32_t k = 0; k < span.size; ++k) {
      if (span.ids[k] == kInvalidVertex) continue;
      auto it = dense.index.find(span.ids[k]);
      if (it != dense.index.end()) nbrs.push_back(it->second);
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        ++codeg[(uint64_t{nbrs[a]} << 32) | nbrs[b]];
      }
    }
  }
  uint64_t twice = 0;
  for (const auto& [key, c] : codeg) {
    (void)key;
    twice += uint64_t{c} * (c - 1) / 2;
  }
  return twice / 2;
}

std::unordered_map<VertexId, int> BfsDistances(
    const GraphView& view, const std::vector<RelationId>& rels,
    VertexId source, int max_depth) {
  std::unordered_map<VertexId, int> dist;
  dist[source] = 0;
  std::deque<VertexId> queue{source};
  AdjScratch adj;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    int d = dist[u];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (RelationId rel : rels) {
      AdjSpan span = view.Neighbors(rel, u, &adj);
      for (uint32_t k = 0; k < span.size; ++k) {
        VertexId w = span.ids[k];
        if (w == kInvalidVertex || dist.count(w) != 0) continue;
        dist[w] = d + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> DegreeHistogram(const GraphView& view, LabelId label,
                                      RelationId rel) {
  std::vector<VertexId> vertices;
  view.ScanLabel(label, &vertices);
  std::vector<uint64_t> histogram;
  AdjScratch adj;
  for (VertexId v : vertices) {
    AdjSpan span = view.Neighbors(rel, v, &adj);
    uint32_t degree = 0;
    for (uint32_t k = 0; k < span.size; ++k) {
      if (span.ids[k] != kInvalidVertex) ++degree;
    }
    if (histogram.size() <= degree) histogram.resize(degree + 1, 0);
    ++histogram[degree];
  }
  return histogram;
}

}  // namespace ges
