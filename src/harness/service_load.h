// Load generation against a running GES service (over the wire, not
// in-process Executor calls like harness/driver.h).
//
// Two modes:
//  - Closed loop (open_loop_rate == 0): each connection keeps exactly one
//    query outstanding; latency is measured send -> response. Throughput is
//    whatever the server sustains, but a slow server silently slows the
//    arrival rate too (coordinated omission).
//  - Open loop (open_loop_rate > 0): arrivals follow a fixed schedule at
//    the aggregate rate, split evenly across connections. Each connection
//    pipelines: a sender thread fires requests at their scheduled times
//    regardless of outstanding responses, a reader thread drains results.
//    Latency is measured from the *scheduled* arrival, so queueing delay a
//    client would experience behind a slow server is charged to the
//    server — the honest number for p99 under load.
#ifndef GES_HARNESS_SERVICE_LOAD_H_
#define GES_HARNESS_SERVICE_LOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/stats.h"
#include "harness/workload.h"
#include "queries/ldbc.h"
#include "service/client.h"

namespace ges {

struct ServiceLoadConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connections = 4;
  // Total operations across all connections (split evenly).
  uint64_t total_ops = 1000;
  // > 0: open-loop arrivals at this aggregate rate (ops/second).
  double open_loop_rate = 0;
  // Per-query deadline forwarded to the server (0 = none).
  uint32_t deadline_ms = 0;
  uint64_t seed = 7;
  std::vector<MixEntry> mix;  // empty = DefaultMix(); kIU entries update
};

struct ServiceLoadReport {
  uint64_t completed = 0;  // responses received (any status)
  uint64_t ok = 0;
  uint64_t rejected = 0;     // RESOURCE_EXHAUSTED (admission backpressure)
  uint64_t interrupted = 0;  // DEADLINE_EXCEEDED / CANCELLED
  uint64_t errors = 0;       // any other non-OK status or connection loss
  double elapsed_seconds = 0;
  double throughput = 0;  // completed / elapsed
  // Latency per query name, OK responses only. Closed loop: send ->
  // response. Open loop: scheduled arrival -> response.
  std::map<std::string, LatencyRecorder> per_query;
  // Server-reported per-phase times (QueryResponse trailing fields), OK
  // responses only: parse/normalize, plan + optimize, parameter bind,
  // execute. Ad-hoc LDBC kinds spend nothing outside execute, so the
  // first three stay at zero unless the load uses prepared statements.
  LatencyRecorder phase_parse, phase_plan, phase_bind, phase_exec;
  // OK responses whose plan came from the shared plan cache.
  uint64_t plan_cache_hits = 0;

  LatencyRecorder AggregateAll() const;
  // Merge of all queries whose name starts with `prefix` ("IC", "IS", ...).
  LatencyRecorder AggregatePrefix(const std::string& prefix) const;
};

// Runs the configured load against host:port. `params` supplies LDBC
// parameters (shared, thread-safe). Returns the merged report; any
// connection-level failure is counted in `errors` and the run continues on
// the remaining connections.
ServiceLoadReport RunServiceLoad(const ServiceLoadConfig& config,
                                 ParamGen* params);

}  // namespace ges

#endif  // GES_HARNESS_SERVICE_LOAD_H_
