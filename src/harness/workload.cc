#include "harness/workload.h"

namespace ges {

std::string QueryRef::Name() const {
  const char* prefix = kind == QueryKind::kIC   ? "IC"
                       : kind == QueryKind::kIS ? "IS"
                                                : "IU";
  return prefix + std::to_string(number);
}

std::vector<MixEntry> DefaultMix() {
  // Relative frequency factors of the complex reads from the LDBC SNB
  // interactive spec ("1 in N operations"); larger factor = rarer query.
  static const double kIcFactor[14] = {26,  37, 69, 36, 57, 129, 87,
                                       45, 157, 30, 16, 44, 19,  49};
  std::vector<MixEntry> mix;
  // Complex reads: 25% of operations, split by inverse factor.
  double ic_inv_sum = 0;
  for (double f : kIcFactor) ic_inv_sum += 1.0 / f;
  for (int k = 1; k <= 14; ++k) {
    mix.push_back(MixEntry{QueryRef{QueryKind::kIC, k},
                           0.25 * (1.0 / kIcFactor[k - 1]) / ic_inv_sum});
  }
  // Short reads: 65%, uniform.
  for (int k = 1; k <= 7; ++k) {
    mix.push_back(MixEntry{QueryRef{QueryKind::kIS, k}, 0.65 / 7});
  }
  // Updates: 10%, skewed toward likes/comments/posts as in the benchmark.
  static const double kIuShare[8] = {0.02, 0.30, 0.20, 0.02,
                                     0.06, 0.15, 0.20, 0.05};
  for (int k = 1; k <= 8; ++k) {
    mix.push_back(MixEntry{QueryRef{QueryKind::kIU, k}, 0.10 * kIuShare[k - 1]});
  }
  return mix;
}

MixSampler::MixSampler(std::vector<MixEntry> mix) : mix_(std::move(mix)) {
  double total = 0;
  for (const MixEntry& e : mix_) total += e.weight;
  double acc = 0;
  for (const MixEntry& e : mix_) {
    acc += e.weight / total;
    cumulative_.push_back(acc);
  }
}

QueryRef MixSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u <= cumulative_[i]) return mix_[i].query;
  }
  return mix_.back().query;
}

}  // namespace ges
