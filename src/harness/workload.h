// The LDBC SNB Interactive query mix.
#ifndef GES_HARNESS_WORKLOAD_H_
#define GES_HARNESS_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace ges {

enum class QueryKind : uint8_t { kIC, kIS, kIU };

struct QueryRef {
  QueryKind kind;
  int number;  // IC: 1..14, IS: 1..7, IU: 1..8

  std::string Name() const;
};

// One weighted entry of the mix.
struct MixEntry {
  QueryRef query;
  double weight;
};

// The default operation mix, approximating the LDBC SNB Interactive
// workload: short reads dominate the operation count, complex reads carry
// the computational weight (individual IC frequencies follow the spec's
// relative frequency factors), and ~10% of operations are updates.
std::vector<MixEntry> DefaultMix();

// Samples queries from a mix by cumulative weight.
class MixSampler {
 public:
  explicit MixSampler(std::vector<MixEntry> mix);
  QueryRef Sample(Rng& rng) const;

 private:
  std::vector<MixEntry> mix_;
  std::vector<double> cumulative_;
};

}  // namespace ges

#endif  // GES_HARNESS_WORKLOAD_H_
