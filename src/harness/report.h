// Plain-text table formatting for bench output.
#ifndef GES_HARNESS_REPORT_H_
#define GES_HARNESS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ges {

// "1.5 KB", "435.2 MB", ...
std::string HumanBytes(size_t bytes);
// "1.25 ms", "3.4 s", ...
std::string HumanMillis(double ms);

// Fixed-width table printer.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ges

#endif  // GES_HARNESS_REPORT_H_
