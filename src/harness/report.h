// Plain-text table formatting and JSON result files for bench output.
#ifndef GES_HARNESS_REPORT_H_
#define GES_HARNESS_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/stats.h"

namespace ges {

// "1.5 KB", "435.2 MB", ...
std::string HumanBytes(size_t bytes);
// "1.25 ms", "3.4 s", ...
std::string HumanMillis(double ms);

// Fixed-width table printer.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Machine-readable bench results, written as BENCH_<name>.json so runs can
// be diffed / plotted without scraping the text tables. Layout:
//
//   { "bench": "<name>",
//     "<key>": <scalar>, ...,
//     "sections": {
//       "<section>": {
//         "<key>": <scalar>, ...,
//         "queries": {
//           "<query>": {"count": N, "mean_ms": ..., "p50_ms": ...,
//                       "p99_ms": ..., "max_ms": ...}, ... } }, ... } }
//
// Sections typically name one bench configuration each (e.g.
// "fifo_closed", "prioritized_open"). Insertion order is preserved.
class BenchJsonReport {
 public:
  explicit BenchJsonReport(std::string bench_name);

  const std::string& name() const { return bench_name_; }

  // Top-level scalar (run parameters: sf, threads, duration, ...).
  void AddScalar(const std::string& key, double value);
  void AddString(const std::string& key, const std::string& value);

  // Section-level scalar (e.g. "throughput_qps").
  void AddSectionScalar(const std::string& section, const std::string& key,
                        double value);
  // Per-query latency stats under `section`; safe to call with an empty
  // recorder (all stats report 0 per the LatencyRecorder contract).
  void AddLatency(const std::string& section, const std::string& query,
                  const LatencyRecorder& rec);

  std::string ToJson() const;
  // Writes ToJson() to `path` ("" = default BENCH_<name>.json in the
  // current directory). Returns false on I/O failure.
  bool WriteFile(const std::string& path = "") const;

 private:
  struct QueryStats {
    std::string name;
    size_t count;
    double mean_ms, p50_ms, p99_ms, max_ms;
  };
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, double>> scalars;
    std::vector<QueryStats> queries;
  };
  Section* GetSection(const std::string& name);

  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> scalars_;  // pre-encoded
  std::vector<Section> sections_;
};

// Scans argv for the shared bench flag "--json [path]". Returns the empty
// string when the flag is absent, the explicit path when one follows the
// flag, and "BENCH_<name>.json" when the flag is bare (or followed by
// another flag). Leaves argv untouched.
std::string JsonPathFromArgs(int argc, char** argv, const std::string& name);

}  // namespace ges

#endif  // GES_HARNESS_REPORT_H_
