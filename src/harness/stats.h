// Latency statistics for benchmark reporting.
#ifndef GES_HARNESS_STATS_H_
#define GES_HARNESS_STATS_H_

#include <cstddef>
#include <vector>

namespace ges {

// Collects latency samples (milliseconds) and answers mean / percentile
// queries. Not thread-safe; the driver keeps one per worker and merges.
//
// Empty-recorder contract: every statistic (Sum/Mean/Min/Max/Percentile)
// returns 0.0 when no samples were recorded — callers (report printers,
// JSON writers) may query unconditionally without checking count() first.
class LatencyRecorder {
 public:
  void Add(double ms) {
    samples_.push_back(ms);
    sorted_ = false;
  }
  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  // p in [0, 100]; nearest-rank on the sorted samples.
  double Percentile(double p) const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace ges

#endif  // GES_HARNESS_STATS_H_
