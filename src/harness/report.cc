#include "harness/report.h"

#include <cstdio>
#include <sstream>

namespace ges {

std::string HumanBytes(size_t bytes) {
  char buf[32];
  double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", b / (1024.0 * 1024 * 1024));
  } else if (b >= 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string HumanMillis(double ms) {
  char buf[32];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ms / 1000);
  } else if (ms >= 1) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  }
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream os;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << rows_[r][i];
      for (size_t pad = rows_[r][i].size(); pad < width[i]; ++pad) os << ' ';
    }
    os << '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t i = 0; i < width.size(); ++i) {
        total += width[i] + (i == 0 ? 0 : 2);
      }
      for (size_t i = 0; i < total; ++i) os << '-';
      os << '\n';
    }
  }
  return os.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  // %.17g round-trips doubles but produces noisy output; benches only need
  // microsecond-level precision on millisecond values.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

BenchJsonReport::BenchJsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchJsonReport::AddScalar(const std::string& key, double value) {
  scalars_.emplace_back(key, JsonNumber(value));
}

void BenchJsonReport::AddString(const std::string& key,
                                const std::string& value) {
  scalars_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

BenchJsonReport::Section* BenchJsonReport::GetSection(
    const std::string& name) {
  for (Section& s : sections_) {
    if (s.name == name) return &s;
  }
  sections_.push_back(Section{name, {}, {}});
  return &sections_.back();
}

void BenchJsonReport::AddSectionScalar(const std::string& section,
                                       const std::string& key, double value) {
  GetSection(section)->scalars.emplace_back(key, value);
}

void BenchJsonReport::AddLatency(const std::string& section,
                                 const std::string& query,
                                 const LatencyRecorder& rec) {
  GetSection(section)->queries.push_back(QueryStats{
      query, rec.count(), rec.Mean(), rec.Percentile(50), rec.Percentile(99),
      rec.Max()});
}

std::string BenchJsonReport::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << JsonEscape(bench_name_) << "\"";
  for (const auto& [key, encoded] : scalars_) {
    os << ",\n  \"" << JsonEscape(key) << "\": " << encoded;
  }
  os << ",\n  \"sections\": {";
  for (size_t si = 0; si < sections_.size(); ++si) {
    const Section& s = sections_[si];
    os << (si == 0 ? "" : ",") << "\n    \"" << JsonEscape(s.name)
       << "\": {";
    bool first = true;
    for (const auto& [key, value] : s.scalars) {
      os << (first ? "" : ",") << "\n      \"" << JsonEscape(key)
         << "\": " << JsonNumber(value);
      first = false;
    }
    os << (first ? "" : ",") << "\n      \"queries\": {";
    for (size_t qi = 0; qi < s.queries.size(); ++qi) {
      const QueryStats& q = s.queries[qi];
      os << (qi == 0 ? "" : ",") << "\n        \"" << JsonEscape(q.name)
         << "\": {\"count\": " << q.count
         << ", \"mean_ms\": " << JsonNumber(q.mean_ms)
         << ", \"p50_ms\": " << JsonNumber(q.p50_ms)
         << ", \"p99_ms\": " << JsonNumber(q.p99_ms)
         << ", \"max_ms\": " << JsonNumber(q.max_ms) << "}";
    }
    os << "\n      }\n    }";
  }
  os << "\n  }\n}\n";
  return os.str();
}

bool BenchJsonReport::WriteFile(const std::string& path) const {
  std::string target = path.empty() ? "BENCH_" + bench_name_ + ".json" : path;
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) return false;
  std::string body = ToJson();
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int rc = std::fclose(f);
  return written == body.size() && rc == 0;
}

std::string JsonPathFromArgs(int argc, char** argv,
                             const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') return argv[i + 1];
      return "BENCH_" + name + ".json";
    }
  }
  return "";
}

}  // namespace ges
