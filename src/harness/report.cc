#include "harness/report.h"

#include <cstdio>
#include <sstream>

namespace ges {

std::string HumanBytes(size_t bytes) {
  char buf[32];
  double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", b / (1024.0 * 1024 * 1024));
  } else if (b >= 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string HumanMillis(double ms) {
  char buf[32];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ms / 1000);
  } else if (ms >= 1) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  }
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream os;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t i = 0; i < rows_[r].size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << rows_[r][i];
      for (size_t pad = rows_[r][i].size(); pad < width[i]; ++pad) os << ' ';
    }
    os << '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t i = 0; i < width.size(); ++i) {
        total += width[i] + (i == 0 ? 0 : 2);
      }
      for (size_t i = 0; i < total; ++i) os << '-';
      os << '\n';
    }
  }
  return os.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace ges
