#include "harness/service_load.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/timer.h"

namespace ges {
namespace {

using Clock = std::chrono::steady_clock;

struct ConnResult {
  uint64_t completed = 0, ok = 0, rejected = 0, interrupted = 0, errors = 0;
  uint64_t plan_cache_hits = 0;
  std::map<std::string, LatencyRecorder> per_query;
  LatencyRecorder phase_parse, phase_plan, phase_bind, phase_exec;

  void Record(const service::QueryResponse& resp, const std::string& name,
              double millis) {
    ++completed;
    switch (resp.status) {
      case service::WireStatus::kOk:
        ++ok;
        per_query[name].Add(millis);
        phase_parse.Add(resp.parse_millis);
        phase_plan.Add(resp.plan_millis);
        phase_bind.Add(resp.bind_millis);
        phase_exec.Add(resp.exec_millis);
        if (resp.plan_cache_hit != 0) ++plan_cache_hits;
        break;
      case service::WireStatus::kResourceExhausted:
        ++rejected;
        break;
      case service::WireStatus::kDeadlineExceeded:
      case service::WireStatus::kCancelled:
        ++interrupted;
        break;
      default:
        ++errors;
    }
  }
};

service::QueryRequest MakeRequest(service::Client* client, const QueryRef& q,
                                  ParamGen* params, uint32_t deadline_ms,
                                  uint64_t op_seed) {
  service::QueryRequest req;
  req.query_id = client->AllocQueryId();
  req.number = static_cast<uint8_t>(q.number);
  req.deadline_ms = deadline_ms;
  switch (q.kind) {
    case QueryKind::kIC:
      req.kind = service::QueryKind::kIC;
      req.params = params->Next();
      break;
    case QueryKind::kIS:
      req.kind = service::QueryKind::kIS;
      req.params = params->Next();
      break;
    case QueryKind::kIU:
      req.kind = service::QueryKind::kIU;
      req.seed = op_seed;
      break;
  }
  return req;
}

// Closed loop: one outstanding query, latency = send -> response.
void RunClosedConn(const ServiceLoadConfig& config, int conn_index,
                   uint64_t ops, ParamGen* params, ConnResult* out) {
  service::Client client;
  if (!client.Connect(config.host, config.port)) {
    out->errors += ops;
    return;
  }
  MixSampler sampler(config.mix.empty() ? DefaultMix() : config.mix);
  Rng rng(config.seed * 0x9e3779b9 +
          static_cast<uint64_t>(conn_index) * 2654435761u + 1);
  uint64_t op_seed =
      config.seed + static_cast<uint64_t>(conn_index) * 1000003;
  for (uint64_t i = 0; i < ops; ++i) {
    QueryRef q = sampler.Sample(rng);
    service::QueryRequest req =
        MakeRequest(&client, q, params, config.deadline_ms, ++op_seed);
    service::QueryResponse resp;
    Timer t;
    if (!client.Run(req, &resp)) {
      out->errors += ops - i;  // connection lost; remaining ops never ran
      return;
    }
    out->Record(resp, q.Name(), t.ElapsedMillis());
  }
}

// Open loop: sender fires at scheduled instants, reader drains. Latency is
// charged from the scheduled arrival so server-side queueing shows up in
// the percentiles (coordinated-omission correction).
void RunOpenConn(const ServiceLoadConfig& config, int conn_index,
                 uint64_t ops, double per_conn_rate, ParamGen* params,
                 ConnResult* out) {
  service::Client client;
  if (!client.Connect(config.host, config.port)) {
    out->errors += ops;
    return;
  }
  std::mutex mu;
  std::unordered_map<uint64_t, Clock::time_point> scheduled;
  std::unordered_map<uint64_t, std::string> names;
  std::atomic<uint64_t> sent{0};
  std::atomic<bool> sender_dead{false};

  const auto start = Clock::now();
  const double interval_s = 1.0 / per_conn_rate;
  // Stagger connections so aggregate arrivals are evenly spaced.
  const double offset_s =
      interval_s * static_cast<double>(conn_index) /
      static_cast<double>(std::max(1, config.connections));

  std::thread sender([&] {
    MixSampler sampler(config.mix.empty() ? DefaultMix() : config.mix);
    Rng rng(config.seed * 0x9e3779b9 +
            static_cast<uint64_t>(conn_index) * 2654435761u + 1);
    uint64_t op_seed =
        config.seed + static_cast<uint64_t>(conn_index) * 1000003;
    for (uint64_t i = 0; i < ops; ++i) {
      auto due = start + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 offset_s + static_cast<double>(i) *
                                                interval_s));
      std::this_thread::sleep_until(due);
      QueryRef q = sampler.Sample(rng);
      service::QueryRequest req =
          MakeRequest(&client, q, params, config.deadline_ms, ++op_seed);
      {
        std::lock_guard<std::mutex> lk(mu);
        scheduled[req.query_id] = due;
        names[req.query_id] = q.Name();
      }
      if (!client.Send(req)) {
        sender_dead.store(true);
        return;
      }
      sent.fetch_add(1, std::memory_order_release);
    }
  });

  uint64_t consumed = 0;
  while (consumed < ops) {
    service::QueryResponse resp;
    if (!client.ReadResponse(&resp)) break;
    ++consumed;
    Clock::time_point due;
    std::string name;
    {
      std::lock_guard<std::mutex> lk(mu);
      due = scheduled[resp.query_id];
      name = names[resp.query_id];
      scheduled.erase(resp.query_id);
      names.erase(resp.query_id);
    }
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - due).count();
    out->Record(resp, name, ms);
  }
  sender.join();
  // Anything sent but never answered (connection loss) plus anything the
  // sender never managed to send counts as an error.
  uint64_t attempted = sender_dead.load() ? sent.load() : ops;
  if (attempted > consumed) out->errors += attempted - consumed;
  if (ops > attempted) out->errors += ops - attempted;
}

}  // namespace

LatencyRecorder ServiceLoadReport::AggregateAll() const {
  LatencyRecorder agg;
  for (const auto& [name, rec] : per_query) agg.Merge(rec);
  return agg;
}

LatencyRecorder ServiceLoadReport::AggregatePrefix(
    const std::string& prefix) const {
  LatencyRecorder agg;
  for (const auto& [name, rec] : per_query) {
    if (name.rfind(prefix, 0) == 0) agg.Merge(rec);
  }
  return agg;
}

ServiceLoadReport RunServiceLoad(const ServiceLoadConfig& config,
                                 ParamGen* params) {
  const int conns = std::max(1, config.connections);
  std::vector<ConnResult> results(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);

  Timer wall;
  for (int c = 0; c < conns; ++c) {
    uint64_t ops = config.total_ops / conns +
                   (static_cast<uint64_t>(c) < config.total_ops % conns);
    if (config.open_loop_rate > 0) {
      double per_conn_rate = config.open_loop_rate / conns;
      threads.emplace_back([&, c, ops, per_conn_rate] {
        RunOpenConn(config, c, ops, per_conn_rate, params, &results[c]);
      });
    } else {
      threads.emplace_back(
          [&, c, ops] { RunClosedConn(config, c, ops, params, &results[c]); });
    }
  }
  for (std::thread& t : threads) t.join();

  ServiceLoadReport report;
  report.elapsed_seconds = wall.ElapsedSeconds();
  for (const ConnResult& res : results) {
    report.completed += res.completed;
    report.ok += res.ok;
    report.rejected += res.rejected;
    report.interrupted += res.interrupted;
    report.errors += res.errors;
    report.plan_cache_hits += res.plan_cache_hits;
    report.phase_parse.Merge(res.phase_parse);
    report.phase_plan.Merge(res.phase_plan);
    report.phase_bind.Merge(res.phase_bind);
    report.phase_exec.Merge(res.phase_exec);
    for (const auto& [name, rec] : res.per_query) {
      report.per_query[name].Merge(rec);
    }
  }
  report.throughput =
      report.elapsed_seconds > 0
          ? static_cast<double>(report.completed) / report.elapsed_seconds
          : 0;
  return report;
}

}  // namespace ges
