#include "harness/stats.h"

#include <algorithm>
#include <cmath>

namespace ges {

double LatencyRecorder::Sum() const {
  double s = 0;
  for (double v : samples_) s += v;
  return s;
}

double LatencyRecorder::Mean() const {
  return samples_.empty() ? 0 : Sum() / static_cast<double>(samples_.size());
}

double LatencyRecorder::Min() const {
  return samples_.empty()
             ? 0
             : *std::min_element(samples_.begin(), samples_.end());
}

double LatencyRecorder::Max() const {
  return samples_.empty()
             ? 0
             : *std::max_element(samples_.begin(), samples_.end());
}

void LatencyRecorder::EnsureSorted() const {
  if (sorted_) return;
  auto* self = const_cast<LatencyRecorder*>(this);
  std::sort(self->samples_.begin(), self->samples_.end());
  self->sorted_ = true;
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

}  // namespace ges
