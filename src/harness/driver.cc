#include "harness/driver.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/timer.h"
#include "runtime/scheduler.h"

namespace ges {

LatencyRecorder DriverReport::Aggregate(QueryKind kind) const {
  const char* prefix = kind == QueryKind::kIC   ? "IC"
                       : kind == QueryKind::kIS ? "IS"
                                                : "IU";
  LatencyRecorder agg;
  for (const auto& [name, rec] : per_query) {
    if (name.rfind(prefix, 0) == 0) agg.Merge(rec);
  }
  return agg;
}

Driver::Driver(Graph* graph, const SnbData* data)
    : graph_(graph),
      data_(data),
      ctx_(LdbcContext::Resolve(*graph, data->schema)),
      params_(graph, data, /*seed=*/0x5eed) {}

DriverReport Driver::Run(const DriverConfig& config) {
  std::vector<MixEntry> mix = config.mix.empty() ? DefaultMix() : config.mix;
  if (!config.include_updates) {
    std::vector<MixEntry> filtered;
    for (const MixEntry& e : mix) {
      if (e.query.kind != QueryKind::kIU) filtered.push_back(e);
    }
    mix = std::move(filtered);
  }
  MixSampler sampler(std::move(mix));
  Executor executor(config.mode, config.options);

  const bool timed = config.duration_seconds > 0;
  const bool capped = config.total_ops > 0;
  if (!timed && !capped) return DriverReport{};
  const size_t num_windows =
      config.trace_window_seconds > 0 && timed
          ? static_cast<size_t>(config.duration_seconds /
                                config.trace_window_seconds) +
                2
          : 0;

  struct WindowCounters {
    std::atomic<uint64_t> ic{0}, is{0}, iu{0};
  };
  std::vector<WindowCounters> windows(num_windows);

  std::atomic<uint64_t> ops_budget{config.total_ops};
  std::atomic<bool> stop{false};

  struct WorkerResult {
    std::map<std::string, LatencyRecorder> per_query;
    uint64_t completed = 0;
  };
  const int nthreads = std::max(1, config.threads);
  std::vector<WorkerResult> results(nthreads);

  Timer wall;
  auto worker = [&](int tid) {
    Rng rng(config.seed * 0x9e3779b9 + static_cast<uint64_t>(tid) + 1);
    WorkerResult& res = results[tid];
    uint64_t op_seed = config.seed + static_cast<uint64_t>(tid) * 1000003;
    while (true) {
      if (timed && wall.ElapsedSeconds() >= config.duration_seconds) break;
      if (capped) {
        uint64_t remaining = ops_budget.load(std::memory_order_relaxed);
        if (remaining == 0) break;
        if (!ops_budget.compare_exchange_weak(remaining, remaining - 1)) {
          continue;
        }
      }
      if (stop.load(std::memory_order_relaxed)) break;

      QueryRef q = sampler.Sample(rng);
      Timer t;
      switch (q.kind) {
        case QueryKind::kIC: {
          LdbcParams p = params_.Next();
          Plan plan = BuildIC(q.number, ctx_, p);
          GraphView view(graph_);
          executor.Run(plan, view);
          break;
        }
        case QueryKind::kIS: {
          LdbcParams p = params_.Next();
          Plan plan = BuildIS(q.number, ctx_, p);
          GraphView view(graph_);
          executor.Run(plan, view);
          break;
        }
        case QueryKind::kIU: {
          RunIU(q.number, ctx_, graph_, &params_, ++op_seed);
          break;
        }
      }
      double ms = t.ElapsedMillis();
      res.per_query[q.Name()].Add(ms);
      ++res.completed;
      if (num_windows > 0) {
        size_t w = static_cast<size_t>(wall.ElapsedSeconds() /
                                       config.trace_window_seconds);
        if (w < num_windows) {
          switch (q.kind) {
            case QueryKind::kIC:
              windows[w].ic.fetch_add(1, std::memory_order_relaxed);
              break;
            case QueryKind::kIS:
              windows[w].is.fetch_add(1, std::memory_order_relaxed);
              break;
            case QueryKind::kIU:
              windows[w].iu.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        }
      }
    }
  };

  // Stream workers run on the same process-wide scheduler that serves
  // intra-query morsels, so config.threads and intra_query_threads draw
  // from one pool instead of oversubscribing the machine.
  TaskScheduler& sched = TaskScheduler::Global();
  sched.EnsureWorkers(nthreads);
  TaskGroup group(&sched);
  for (int t = 0; t < nthreads; ++t) {
    group.Run([&, t] { worker(t); });
  }
  group.Wait();

  DriverReport report;
  report.elapsed_seconds = wall.ElapsedSeconds();
  for (const WorkerResult& res : results) {
    report.completed += res.completed;
    for (const auto& [name, rec] : res.per_query) {
      report.per_query[name].Merge(rec);
    }
  }
  report.throughput =
      report.elapsed_seconds > 0
          ? static_cast<double>(report.completed) / report.elapsed_seconds
          : 0;
  // Only full windows are reported (the run stops mid-window).
  size_t full_windows =
      num_windows == 0
          ? 0
          : std::min(num_windows,
                     static_cast<size_t>(config.duration_seconds /
                                         config.trace_window_seconds));
  for (size_t w = 0; w < full_windows; ++w) {
    report.trace.push_back(TraceWindow{windows[w].ic.load(),
                                       windows[w].is.load(),
                                       windows[w].iu.load()});
  }
  return report;
}

}  // namespace ges
