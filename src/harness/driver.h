// The benchmark driver: fires the LDBC mix at the engine from N worker
// threads, collects per-query latency and windowed throughput.
//
// This is the in-process equivalent of the LDBC driver machine (see
// DESIGN.md substitutions): queries are generated with curated parameters,
// executed against a snapshot, validated to be non-empty where applicable,
// and logged per query type.
#ifndef GES_HARNESS_DRIVER_H_
#define GES_HARNESS_DRIVER_H_

#include <map>
#include <string>
#include <vector>

#include "executor/executor.h"
#include "harness/stats.h"
#include "harness/workload.h"
#include "queries/ldbc.h"

namespace ges {

struct DriverConfig {
  ExecMode mode = ExecMode::kFactorizedFused;
  ExecOptions options;
  int threads = 1;
  // Stop conditions. The run ends at whichever limit is hit first:
  //  - total_ops > 0 caps the operation count (0 = uncapped);
  //  - duration_seconds > 0 caps the wall time (0 = untimed).
  // At least one must be set; a config with both at 0 runs nothing.
  // Timed benches that want pure duration runs must set total_ops = 0.
  uint64_t total_ops = 1000;
  double duration_seconds = 0;
  uint64_t seed = 7;
  bool include_updates = true;
  // Windowed throughput trace (Figure 14); 0 disables.
  double trace_window_seconds = 0;
  std::vector<MixEntry> mix;  // empty = DefaultMix()
};

struct TraceWindow {
  uint64_t ic = 0;
  uint64_t is = 0;
  uint64_t iu = 0;
  uint64_t total() const { return ic + is + iu; }
};

struct DriverReport {
  double elapsed_seconds = 0;
  uint64_t completed = 0;
  double throughput = 0;  // ops/second
  std::map<std::string, LatencyRecorder> per_query;
  std::vector<TraceWindow> trace;

  LatencyRecorder Aggregate(QueryKind kind) const;
};

class Driver {
 public:
  // `graph` must be bulk-loaded; updates run as MV2PL transactions against
  // it while reads use snapshots.
  Driver(Graph* graph, const SnbData* data);

  DriverReport Run(const DriverConfig& config);

  const LdbcContext& context() const { return ctx_; }
  ParamGen& params() { return params_; }

 private:
  Graph* graph_;
  const SnbData* data_;
  LdbcContext ctx_;
  ParamGen params_;
};

}  // namespace ges

#endif  // GES_HARNESS_DRIVER_H_
