#include "frontend/plan_cache.h"

#include <mutex>
#include <utility>

namespace ges {

std::shared_ptr<const PreparedPlan> PlanCache::Lookup(
    const std::string& normalized, uint64_t stats_epoch) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(normalized);
  if (it == entries_.end() || it->second->plan->stats_epoch != stats_epoch) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second->last_used.store(
      tick_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->plan;
}

void PlanCache::Insert(std::shared_ptr<const PreparedPlan> plan) {
  if (capacity_ == 0 || plan == nullptr) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto it = entries_.find(plan->normalized);
  if (it != entries_.end()) {
    // Replacement (e.g. re-plan after a stats-epoch bump) is not an
    // eviction: the key keeps its slot.
    it->second->plan = std::move(plan);
    it->second->last_used.store(now, std::memory_order_relaxed);
    return;
  }
  if (entries_.size() >= capacity_) {
    auto victim = entries_.end();
    uint64_t oldest = ~uint64_t{0};
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      uint64_t used = e->second->last_used.load(std::memory_order_relaxed);
      if (used <= oldest) {
        oldest = used;
        victim = e;
      }
    }
    if (victim != entries_.end()) {
      entries_.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  auto entry = std::make_unique<Entry>();
  std::string key = plan->normalized;
  entry->plan = std::move(plan);
  entry->last_used.store(now, std::memory_order_relaxed);
  entries_.emplace(std::move(key), std::move(entry));
}

void PlanCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
}

size_t PlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

}  // namespace ges
