// A small declarative frontend: a Cypher-like pattern language compiled to
// physical plans. This is the frontend-layer module of the composable
// architecture (Figure 1): parse -> IR -> physical plan, handed to the
// execution engine.
//
// Supported grammar (one linear MATCH chain):
//
//   query     := MATCH pattern [WHERE conj] RETURN items
//                [ORDER BY keys] [LIMIT n]
//   pattern   := node (edge node)*
//   node      := '(' var [':' LABEL] ')'
//   edge      := '-[' [':' TYPE] ['*' min '..' max] ']->' | '<-[...]-'
//   conj      := cmp (AND cmp)*
//   cmp       := operand op operand | id '(' var ')' '=' int
//   operand   := var '.' prop | literal
//   items     := item (',' item)*      item := var | var '.' prop
//   keys      := key (',' key)*        key  := item [ASC|DESC]
//
// Example:
//   MATCH (p:PERSON)-[:KNOWS*1..2]->(f:PERSON)<-[:HAS_CREATOR]-(m:POST)
//   WHERE id(p) = 5 AND m.length > 100
//   RETURN f.id, m.id, m.length
//   ORDER BY m.length DESC, f.id ASC LIMIT 10
#ifndef GES_FRONTEND_PARSER_H_
#define GES_FRONTEND_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "executor/plan.h"
#include "storage/graph.h"

namespace ges {

// Compiles `query` against `graph`'s catalog. On success fills `*plan`.
// Filters referencing a single property adjacent to their producing Expand
// are left for the optimizer to fuse; seeks are detected from `id(v) = N`
// predicates on the first pattern node. Queries containing `$k` parameter
// placeholders are rejected here — use NormalizeQuery + CompileTemplate +
// BindPlanParams (the prepared-statement path).
Status CompileQuery(const std::string& query, const Graph& graph, Plan* plan);

// Result of NormalizeQuery: the plan-cache key plus extracted bindings.
struct NormalizedQuery {
  // Canonical text: uppercase keywords, single spacing, literals in
  // parameterizable positions replaced by `$k` placeholders. Normalization
  // is a fixed point: NormalizeQuery(text).text == text.
  std::string text;
  // Literals lifted during auto-parameterization, in placeholder order
  // ($0 first). Empty when the query used explicit `$k` placeholders.
  std::vector<Value> params;
  int param_count = 0;
  bool explicit_params = false;
};

// Normalizes `query` for plan-cache keying. Two modes:
//  * explicit — the query already contains `$k` placeholders (indices must
//    be dense 0..n-1); remaining literals stay literal.
//  * auto — no placeholders present: every `id(v) = N` integer and every
//    comparison-RHS literal is lifted to the next placeholder, assigned in
//    canonical render order (seeks sorted by variable, then comparisons in
//    parse order). LIMIT stays literal (the TopK fusion depends on it).
Status NormalizeQuery(const std::string& query, NormalizedQuery* out);

// Compiles normalized text (possibly containing `$k`) into a parameterized
// plan template: placeholders become ExprOp::kParam nodes / PlanOp::
// seek_param slots. `hints` optionally supplies first-seen literals (from
// auto-parameterization) used for cost estimation only. Sets
// plan->param_count.
Status CompileTemplate(const std::string& normalized_text, const Graph& graph,
                       const std::vector<Value>& hints, Plan* plan);

// Clones `tmpl`, substituting every `$k` with params[k] (kParam -> kConst,
// seek_param -> seek_ext_id). Fails with kInvalidArgument on out-of-range
// indices or a non-integer id() binding. The result contains no kParam
// nodes and is safe for any executor.
Status BindPlanParams(const Plan& tmpl, const std::vector<Value>& params,
                      Plan* out);

}  // namespace ges

#endif  // GES_FRONTEND_PARSER_H_
