// A small declarative frontend: a Cypher-like pattern language compiled to
// physical plans. This is the frontend-layer module of the composable
// architecture (Figure 1): parse -> IR -> physical plan, handed to the
// execution engine.
//
// Supported grammar (one linear MATCH chain):
//
//   query     := MATCH pattern [WHERE conj] RETURN items
//                [ORDER BY keys] [LIMIT n]
//   pattern   := node (edge node)*
//   node      := '(' var [':' LABEL] ')'
//   edge      := '-[' [':' TYPE] ['*' min '..' max] ']->' | '<-[...]-'
//   conj      := cmp (AND cmp)*
//   cmp       := operand op operand | id '(' var ')' '=' int
//   operand   := var '.' prop | literal
//   items     := item (',' item)*      item := var | var '.' prop
//   keys      := key (',' key)*        key  := item [ASC|DESC]
//
// Example:
//   MATCH (p:PERSON)-[:KNOWS*1..2]->(f:PERSON)<-[:HAS_CREATOR]-(m:POST)
//   WHERE id(p) = 5 AND m.length > 100
//   RETURN f.id, m.id, m.length
//   ORDER BY m.length DESC, f.id ASC LIMIT 10
#ifndef GES_FRONTEND_PARSER_H_
#define GES_FRONTEND_PARSER_H_

#include <string>

#include "common/status.h"
#include "executor/plan.h"
#include "storage/graph.h"

namespace ges {

// Compiles `query` against `graph`'s catalog. On success fills `*plan`.
// Filters referencing a single property adjacent to their producing Expand
// are left for the optimizer to fuse; seeks are detected from `id(v) = N`
// predicates on the first pattern node.
Status CompileQuery(const std::string& query, const Graph& graph, Plan* plan);

}  // namespace ges

#endif  // GES_FRONTEND_PARSER_H_
