#include "frontend/parser.h"

#include <cctype>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace ges {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok : uint8_t {
  kIdent,
  kInt,
  kDouble,
  kString,
  kParam,   // $<digits> positional parameter placeholder
  kSymbol,  // single punctuation character
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t int_val = 0;
  double dbl_val = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) { Advance(); }

  const Token& cur() const { return cur_; }

  void Advance() {
    SkipSpace();
    cur_ = Token{};
    if (pos_ >= in_.size()) {
      cur_.kind = Tok::kEnd;
      return;
    }
    char c = in_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '_')) {
        ++pos_;
      }
      cur_.kind = Tok::kIdent;
      cur_.text = in_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      bool is_double = false;
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
      // A '.' is a decimal point only when followed by a digit, so the
      // hop-range operator `1..2` lexes as INT '.' '.' INT.
      if (pos_ + 1 < in_.size() && in_[pos_] == '.' &&
          std::isdigit(static_cast<unsigned char>(in_[pos_ + 1]))) {
        is_double = true;
        ++pos_;
        while (pos_ < in_.size() &&
               std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
          ++pos_;
        }
      }
      cur_.text = in_.substr(start, pos_ - start);
      if (is_double) {
        cur_.kind = Tok::kDouble;
        cur_.dbl_val = std::atof(cur_.text.c_str());
      } else {
        cur_.kind = Tok::kInt;
        cur_.int_val = std::atoll(cur_.text.c_str());
      }
      return;
    }
    if (c == '$' && pos_ + 1 < in_.size() &&
        std::isdigit(static_cast<unsigned char>(in_[pos_ + 1]))) {
      ++pos_;
      size_t start = pos_;
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
      cur_.kind = Tok::kParam;
      cur_.text = in_.substr(start, pos_ - start);
      cur_.int_val = std::atoll(cur_.text.c_str());
      return;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++pos_;
      size_t start = pos_;
      while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
      cur_.kind = Tok::kString;
      cur_.text = in_.substr(start, pos_ - start);
      if (pos_ < in_.size()) ++pos_;  // closing quote
      return;
    }
    cur_.kind = Tok::kSymbol;
    cur_.text = std::string(1, c);
    ++pos_;
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& in_;
  size_t pos_ = 0;
  Token cur_;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

// ---------------------------------------------------------------------------
// Parsed intermediate representation
// ---------------------------------------------------------------------------

struct NodePat {
  std::string var;
  std::string label;
};

struct EdgePat {
  std::string type;
  bool outgoing = true;
  int min_hops = 1;
  int max_hops = 1;
};

struct PropRef {
  std::string var;
  std::string prop;

  std::string ColumnName() const { return var + "_" + prop; }
  bool operator<(const PropRef& o) const {
    return var != o.var ? var < o.var : prop < o.prop;
  }
};

struct Comparison {
  PropRef lhs;
  ExprOp op = ExprOp::kEq;
  // Exactly one of rhs_literal / rhs_prop / rhs_param is engaged.
  std::optional<Value> rhs_literal;
  std::optional<PropRef> rhs_prop;
  int rhs_param = -1;  // explicit $k placeholder
};

struct ReturnItem {
  std::string var;  // bare variable form
  PropRef prop;     // var.prop form
  bool is_prop = false;

  std::string ColumnName() const { return is_prop ? prop.ColumnName() : var; }
};

struct SortItem {
  ReturnItem item;
  bool ascending = true;
};

// id(v) = N | id(v) = $k seek predicate.
struct SeekSpec {
  int64_t ext_id = 0;
  int param = -1;  // explicit $k placeholder when >= 0
};

struct ParsedQuery {
  std::vector<NodePat> nodes;
  std::vector<EdgePat> edges;
  std::vector<Comparison> where;
  std::map<std::string, SeekSpec> seeks;  // id(v) = ... predicates, by var
  std::vector<ReturnItem> returns;
  std::vector<SortItem> order_by;
  std::optional<uint64_t> limit;

  bool HasExplicitParams() const {
    for (const auto& [var, seek] : seeks) {
      if (seek.param >= 0) return true;
    }
    for (const Comparison& cmp : where) {
      if (cmp.rhs_param >= 0) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Recursive-descent parser over the grammar in parser.h
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& input) : lex_(input) {}

  Status Parse(ParsedQuery* out) {
    GES_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
    GES_RETURN_IF_ERROR(ParsePattern(out));
    if (IsKeyword("WHERE")) {
      lex_.Advance();
      GES_RETURN_IF_ERROR(ParseWhere(out));
    }
    GES_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
    GES_RETURN_IF_ERROR(ParseReturn(out));
    if (IsKeyword("ORDER")) {
      lex_.Advance();
      GES_RETURN_IF_ERROR(ExpectKeyword("BY"));
      GES_RETURN_IF_ERROR(ParseOrderBy(out));
    }
    if (IsKeyword("LIMIT")) {
      lex_.Advance();
      if (lex_.cur().kind != Tok::kInt) {
        return Status::InvalidArgument("LIMIT expects an integer");
      }
      out->limit = static_cast<uint64_t>(lex_.cur().int_val);
      lex_.Advance();
    }
    if (lex_.cur().kind != Tok::kEnd) {
      return Status::InvalidArgument("unexpected trailing input: '" +
                                     lex_.cur().text + "'");
    }
    return Status::OK();
  }

 private:
  bool IsKeyword(const char* kw) const {
    return lex_.cur().kind == Tok::kIdent && Upper(lex_.cur().text) == kw;
  }
  bool IsSymbol(char c) const {
    return lex_.cur().kind == Tok::kSymbol && lex_.cur().text[0] == c;
  }
  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     ", got '" + lex_.cur().text + "'");
    }
    lex_.Advance();
    return Status::OK();
  }
  Status ExpectSymbol(char c) {
    if (!IsSymbol(c)) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "', got '" + lex_.cur().text + "'");
    }
    lex_.Advance();
    return Status::OK();
  }

  Status ParseNode(NodePat* node) {
    GES_RETURN_IF_ERROR(ExpectSymbol('('));
    if (lex_.cur().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected node variable");
    }
    node->var = lex_.cur().text;
    lex_.Advance();
    if (IsSymbol(':')) {
      lex_.Advance();
      if (lex_.cur().kind != Tok::kIdent) {
        return Status::InvalidArgument("expected node label");
      }
      node->label = Upper(lex_.cur().text);
      lex_.Advance();
    }
    return ExpectSymbol(')');
  }

  // Parses `-[:TYPE*1..2]->` (outgoing) or `<-[:TYPE]-` (incoming).
  Status ParseEdge(EdgePat* edge) {
    bool leading_arrow = false;
    if (IsSymbol('<')) {
      leading_arrow = true;
      lex_.Advance();
    }
    GES_RETURN_IF_ERROR(ExpectSymbol('-'));
    GES_RETURN_IF_ERROR(ExpectSymbol('['));
    if (IsSymbol(':')) {
      lex_.Advance();
      if (lex_.cur().kind != Tok::kIdent) {
        return Status::InvalidArgument("expected edge type");
      }
      edge->type = Upper(lex_.cur().text);
      lex_.Advance();
    }
    if (IsSymbol('*')) {
      lex_.Advance();
      if (lex_.cur().kind != Tok::kInt) {
        return Status::InvalidArgument("expected min hop count");
      }
      edge->min_hops = static_cast<int>(lex_.cur().int_val);
      lex_.Advance();
      GES_RETURN_IF_ERROR(ExpectSymbol('.'));
      GES_RETURN_IF_ERROR(ExpectSymbol('.'));
      if (lex_.cur().kind != Tok::kInt) {
        return Status::InvalidArgument("expected max hop count");
      }
      edge->max_hops = static_cast<int>(lex_.cur().int_val);
      lex_.Advance();
    }
    GES_RETURN_IF_ERROR(ExpectSymbol(']'));
    GES_RETURN_IF_ERROR(ExpectSymbol('-'));
    if (leading_arrow) {
      edge->outgoing = false;
    } else {
      GES_RETURN_IF_ERROR(ExpectSymbol('>'));
      edge->outgoing = true;
    }
    return Status::OK();
  }

  Status ParsePattern(ParsedQuery* out) {
    NodePat first;
    GES_RETURN_IF_ERROR(ParseNode(&first));
    out->nodes.push_back(first);
    while (IsSymbol('-') || IsSymbol('<')) {
      EdgePat edge;
      GES_RETURN_IF_ERROR(ParseEdge(&edge));
      NodePat node;
      GES_RETURN_IF_ERROR(ParseNode(&node));
      out->edges.push_back(edge);
      out->nodes.push_back(node);
    }
    return Status::OK();
  }

  Status ParsePropRef(PropRef* ref) {
    if (lex_.cur().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected variable");
    }
    ref->var = lex_.cur().text;
    lex_.Advance();
    GES_RETURN_IF_ERROR(ExpectSymbol('.'));
    if (lex_.cur().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected property name");
    }
    ref->prop = lex_.cur().text;
    lex_.Advance();
    return Status::OK();
  }

  Status ParseLiteral(Value* out) {
    switch (lex_.cur().kind) {
      case Tok::kInt:
        *out = Value::Int(lex_.cur().int_val);
        break;
      case Tok::kDouble:
        *out = Value::Double(lex_.cur().dbl_val);
        break;
      case Tok::kString:
        *out = Value::String(lex_.cur().text);
        break;
      default:
        return Status::InvalidArgument("expected literal, got '" +
                                       lex_.cur().text + "'");
    }
    lex_.Advance();
    return Status::OK();
  }

  Status ParseCmpOp(ExprOp* op) {
    if (IsSymbol('=')) {
      lex_.Advance();
      *op = ExprOp::kEq;
      return Status::OK();
    }
    if (IsSymbol('<')) {
      lex_.Advance();
      if (IsSymbol('=')) {
        lex_.Advance();
        *op = ExprOp::kLe;
      } else if (IsSymbol('>')) {
        lex_.Advance();
        *op = ExprOp::kNe;
      } else {
        *op = ExprOp::kLt;
      }
      return Status::OK();
    }
    if (IsSymbol('>')) {
      lex_.Advance();
      if (IsSymbol('=')) {
        lex_.Advance();
        *op = ExprOp::kGe;
      } else {
        *op = ExprOp::kGt;
      }
      return Status::OK();
    }
    return Status::InvalidArgument("expected comparison operator");
  }

  Status ParseWhere(ParsedQuery* out) {
    while (true) {
      if (IsKeyword("ID")) {
        // Special form: id(v) = N (a NodeByIdSeek hint).
        lex_.Advance();
        GES_RETURN_IF_ERROR(ExpectSymbol('('));
        if (lex_.cur().kind != Tok::kIdent) {
          return Status::InvalidArgument("expected variable in id()");
        }
        std::string var = lex_.cur().text;
        lex_.Advance();
        GES_RETURN_IF_ERROR(ExpectSymbol(')'));
        GES_RETURN_IF_ERROR(ExpectSymbol('='));
        SeekSpec seek;
        if (lex_.cur().kind == Tok::kInt) {
          seek.ext_id = lex_.cur().int_val;
        } else if (lex_.cur().kind == Tok::kParam) {
          seek.param = static_cast<int>(lex_.cur().int_val);
        } else {
          return Status::InvalidArgument(
              "id() comparison expects integer or parameter");
        }
        out->seeks[var] = seek;
        lex_.Advance();
      } else {
        Comparison cmp;
        GES_RETURN_IF_ERROR(ParsePropRef(&cmp.lhs));
        GES_RETURN_IF_ERROR(ParseCmpOp(&cmp.op));
        if (lex_.cur().kind == Tok::kIdent) {
          PropRef rhs;
          GES_RETURN_IF_ERROR(ParsePropRef(&rhs));
          cmp.rhs_prop = rhs;
        } else if (lex_.cur().kind == Tok::kParam) {
          cmp.rhs_param = static_cast<int>(lex_.cur().int_val);
          lex_.Advance();
        } else {
          Value lit;
          GES_RETURN_IF_ERROR(ParseLiteral(&lit));
          cmp.rhs_literal = lit;
        }
        out->where.push_back(std::move(cmp));
      }
      if (IsKeyword("AND")) {
        lex_.Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseReturnItem(ReturnItem* item) {
    if (lex_.cur().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected return item");
    }
    std::string var = lex_.cur().text;
    lex_.Advance();
    if (IsSymbol('.')) {
      lex_.Advance();
      if (lex_.cur().kind != Tok::kIdent) {
        return Status::InvalidArgument("expected property name");
      }
      item->is_prop = true;
      item->prop = PropRef{var, lex_.cur().text};
      lex_.Advance();
    } else {
      item->var = var;
    }
    return Status::OK();
  }

  Status ParseReturn(ParsedQuery* out) {
    while (true) {
      ReturnItem item;
      GES_RETURN_IF_ERROR(ParseReturnItem(&item));
      out->returns.push_back(std::move(item));
      if (!IsSymbol(',')) break;
      lex_.Advance();
    }
    return Status::OK();
  }

  Status ParseOrderBy(ParsedQuery* out) {
    while (true) {
      SortItem key;
      GES_RETURN_IF_ERROR(ParseReturnItem(&key.item));
      if (IsKeyword("ASC")) {
        lex_.Advance();
      } else if (IsKeyword("DESC")) {
        key.ascending = false;
        lex_.Advance();
      }
      out->order_by.push_back(std::move(key));
      if (!IsSymbol(',')) break;
      lex_.Advance();
    }
    return Status::OK();
  }

  Lexer lex_;
};

// ---------------------------------------------------------------------------
// Canonical rendering (plan-cache key normalization)
// ---------------------------------------------------------------------------

const char* CmpOpText(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "<>";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    default:
      return ">=";
  }
}

// Literal rendering must re-lex to the same value (normalization is a fixed
// point). std::to_string for doubles prints plain "1.500000", which the
// lexer reads back without exponent support.
std::string RenderLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kString:
      return "'" + v.AsString() + "'";
    case ValueType::kDouble:
      return std::to_string(v.AsDouble());
    default:
      return std::to_string(v.AsInt());
  }
}

std::string RenderNode(const NodePat& n) {
  return n.label.empty() ? "(" + n.var + ")" : "(" + n.var + ":" + n.label + ")";
}

std::string RenderEdge(const EdgePat& e) {
  std::string body = "[";
  if (!e.type.empty()) body += ":" + e.type;
  if (e.min_hops != 1 || e.max_hops != 1) {
    body += "*" + std::to_string(e.min_hops) + ".." + std::to_string(e.max_hops);
  }
  body += "]";
  return e.outgoing ? "-" + body + "->" : "<-" + body + "-";
}

std::string RenderItem(const ReturnItem& item) {
  return item.is_prop ? item.prop.var + "." + item.prop.prop : item.var;
}

// Renders `q` back to canonical text. When `lift` is true every literal in
// a parameterizable position becomes the next `$k` placeholder (the literal
// is appended to *params); placeholder indices are assigned in render order
// — seeks first (sorted by variable, the map order), then comparisons in
// parse order. When `lift` is false explicit placeholders are kept as-is.
std::string RenderCanonical(const ParsedQuery& q, bool lift,
                            std::vector<Value>* params) {
  std::string s = "MATCH ";
  s += RenderNode(q.nodes[0]);
  for (size_t i = 0; i < q.edges.size(); ++i) {
    s += RenderEdge(q.edges[i]);
    s += RenderNode(q.nodes[i + 1]);
  }
  auto slot = [&](const Value& v) {
    std::string text = "$" + std::to_string(params->size());
    params->push_back(v);
    return text;
  };
  std::vector<std::string> conj;
  for (const auto& [var, seek] : q.seeks) {
    std::string rhs = seek.param >= 0 ? "$" + std::to_string(seek.param)
                      : lift          ? slot(Value::Int(seek.ext_id))
                                      : std::to_string(seek.ext_id);
    conj.push_back("id(" + var + ") = " + rhs);
  }
  for (const Comparison& cmp : q.where) {
    std::string rhs;
    if (cmp.rhs_prop.has_value()) {
      rhs = cmp.rhs_prop->var + "." + cmp.rhs_prop->prop;
    } else if (cmp.rhs_param >= 0) {
      rhs = "$" + std::to_string(cmp.rhs_param);
    } else if (lift) {
      rhs = slot(*cmp.rhs_literal);
    } else {
      rhs = RenderLiteral(*cmp.rhs_literal);
    }
    conj.push_back(cmp.lhs.var + "." + cmp.lhs.prop + " " + CmpOpText(cmp.op) +
                   " " + rhs);
  }
  if (!conj.empty()) {
    s += " WHERE ";
    for (size_t i = 0; i < conj.size(); ++i) {
      if (i > 0) s += " AND ";
      s += conj[i];
    }
  }
  s += " RETURN ";
  for (size_t i = 0; i < q.returns.size(); ++i) {
    if (i > 0) s += ", ";
    s += RenderItem(q.returns[i]);
  }
  if (!q.order_by.empty()) {
    s += " ORDER BY ";
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += RenderItem(q.order_by[i].item);
      s += q.order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (q.limit.has_value()) s += " LIMIT " + std::to_string(*q.limit);
  return s;
}

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

class Compiler {
 public:
  Compiler(const ParsedQuery& q, const Graph& graph,
           const std::vector<Value>* hints = nullptr)
      : q_(q), graph_(graph), catalog_(graph.catalog()), hints_(hints) {}

  Status Compile(Plan* plan) {
    GES_RETURN_IF_ERROR(ResolveLabels());
    PlanBuilder b("frontend");

    // Leaf operator for the first pattern node.
    const NodePat& first = q_.nodes[0];
    auto seek = q_.seeks.find(first.var);
    if (seek != q_.seeks.end()) {
      const SeekSpec& spec = seek->second;
      if (spec.param >= 0) {
        b.NodeByIdSeekParam(first.var, labels_.at(first.var), spec.param,
                            HintValue(spec.param).AsInt());
      } else {
        b.NodeByIdSeek(first.var, labels_.at(first.var), spec.ext_id);
      }
    } else {
      b.ScanByLabel(first.var, labels_.at(first.var));
    }
    bound_.insert(first.var);
    GES_RETURN_IF_ERROR(EmitVarPredicates(&b, first.var));

    // Expansion chain. Single-variable predicates are pushed right behind
    // the expansion that binds them (FilterPushDown fodder).
    for (size_t i = 0; i < q_.edges.size(); ++i) {
      const EdgePat& e = q_.edges[i];
      const NodePat& from = q_.nodes[i];
      const NodePat& to = q_.nodes[i + 1];
      LabelId edge_label = catalog_.EdgeLabel(e.type);
      if (edge_label == kInvalidLabel) {
        return Status::NotFound("edge type " + e.type);
      }
      RelationId rel = graph_.FindRelation(
          labels_.at(from.var), edge_label, labels_.at(to.var),
          e.outgoing ? Direction::kOut : Direction::kIn);
      if (rel == kInvalidRelation) {
        return Status::NotFound("no relation " + from.label + "-[" + e.type +
                                "]-" + to.label);
      }
      bool multi = e.max_hops > 1;
      b.Expand(from.var, to.var, {rel}, e.min_hops, e.max_hops,
               /*distinct=*/multi, /*exclude_start=*/multi);
      bound_.insert(to.var);
      GES_RETURN_IF_ERROR(EmitVarPredicates(&b, to.var));
    }

    // Cross-variable predicates after the chain.
    for (const Comparison& cmp : q_.where) {
      if (emitted_.count(&cmp) != 0) continue;
      GES_RETURN_IF_ERROR(EmitProperty(&b, cmp.lhs));
      if (cmp.rhs_prop.has_value()) {
        GES_RETURN_IF_ERROR(EmitProperty(&b, *cmp.rhs_prop));
      }
      b.Filter(BuildCmpExpr(cmp));
    }

    // RETURN / ORDER BY property fetches and the final shape.
    std::vector<std::string> output;
    for (const ReturnItem& item : q_.returns) {
      if (item.is_prop) {
        GES_RETURN_IF_ERROR(EmitProperty(&b, item.prop));
      } else if (bound_.count(item.var) == 0) {
        return Status::NotFound("unbound variable " + item.var);
      }
      output.push_back(item.ColumnName());
    }
    std::vector<SortKey> keys;
    for (const SortItem& key : q_.order_by) {
      if (key.item.is_prop) {
        GES_RETURN_IF_ERROR(EmitProperty(&b, key.item.prop));
      }
      keys.push_back(SortKey{key.item.ColumnName(), key.ascending});
    }
    if (!keys.empty()) {
      b.OrderBy(std::move(keys),
                q_.limit.value_or(std::numeric_limits<uint64_t>::max()));
    } else if (q_.limit.has_value()) {
      b.Limit(*q_.limit);
    }
    b.Output(std::move(output));
    *plan = b.Build();
    return Status::OK();
  }

 private:
  Status ResolveLabels() {
    for (const NodePat& n : q_.nodes) {
      if (n.label.empty()) {
        return Status::InvalidArgument("node " + n.var + " needs a :LABEL");
      }
      LabelId label = catalog_.VertexLabel(n.label);
      if (label == kInvalidLabel) {
        return Status::NotFound("vertex label " + n.label);
      }
      labels_[n.var] = label;
    }
    return Status::OK();
  }

  // Emits a GetProperty op for `ref` unless the column already exists.
  Status EmitProperty(PlanBuilder* b, const PropRef& ref) {
    if (fetched_.count(ref) != 0) return Status::OK();
    if (bound_.count(ref.var) == 0) {
      return Status::NotFound("unbound variable " + ref.var);
    }
    PropertyId prop = catalog_.Property(ref.prop);
    if (prop == kInvalidProperty) {
      return Status::NotFound("property " + ref.prop);
    }
    ValueType type = catalog_.PropertyType(labels_.at(ref.var), prop);
    if (type == ValueType::kNull) {
      return Status::NotFound("property " + ref.prop + " on label of '" +
                              ref.var + "'");
    }
    b->GetProperty(ref.var, prop, type, ref.ColumnName());
    fetched_.insert(ref);
    return Status::OK();
  }

  // First-seen literal for parameter `k` (used as a costing hint only).
  Value HintValue(int k) const {
    if (hints_ != nullptr && k >= 0 && k < static_cast<int>(hints_->size())) {
      return (*hints_)[k];
    }
    return Value();
  }

  ExprPtr BuildCmpExpr(const Comparison& cmp) {
    ExprPtr lhs = Expr::Col(cmp.lhs.ColumnName());
    ExprPtr rhs;
    if (cmp.rhs_prop.has_value()) {
      rhs = Expr::Col(cmp.rhs_prop->ColumnName());
    } else if (cmp.rhs_param >= 0) {
      rhs = Expr::Param(cmp.rhs_param, HintValue(cmp.rhs_param));
    } else {
      rhs = Expr::Lit(*cmp.rhs_literal);
    }
    return Expr::Cmp(cmp.op, std::move(lhs), std::move(rhs));
  }

  Status EmitVarPredicates(PlanBuilder* b, const std::string& var) {
    for (const Comparison& cmp : q_.where) {
      if (emitted_.count(&cmp) != 0) continue;
      if (cmp.lhs.var != var || cmp.rhs_prop.has_value()) continue;
      GES_RETURN_IF_ERROR(EmitProperty(b, cmp.lhs));
      b->Filter(BuildCmpExpr(cmp));
      emitted_.insert(&cmp);
    }
    return Status::OK();
  }

  const ParsedQuery& q_;
  const Graph& graph_;
  const Catalog& catalog_;
  const std::vector<Value>* hints_;
  std::map<std::string, LabelId> labels_;
  std::set<std::string> bound_;
  std::set<PropRef> fetched_;
  std::set<const Comparison*> emitted_;
};

// Collects every explicit $k index used in `q` into *used.
void CollectParamIndices(const ParsedQuery& q, std::set<int>* used) {
  for (const auto& [var, seek] : q.seeks) {
    if (seek.param >= 0) used->insert(seek.param);
  }
  for (const Comparison& cmp : q.where) {
    if (cmp.rhs_param >= 0) used->insert(cmp.rhs_param);
  }
}

}  // namespace

Status CompileQuery(const std::string& query, const Graph& graph,
                    Plan* plan) {
  ParsedQuery parsed;
  Parser parser(query);
  GES_RETURN_IF_ERROR(parser.Parse(&parsed));
  if (parsed.nodes.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  if (parsed.HasExplicitParams()) {
    return Status::InvalidArgument(
        "query contains $k parameters; use Prepare/Execute");
  }
  Compiler compiler(parsed, graph);
  return compiler.Compile(plan);
}

Status NormalizeQuery(const std::string& query, NormalizedQuery* out) {
  ParsedQuery parsed;
  Parser parser(query);
  GES_RETURN_IF_ERROR(parser.Parse(&parsed));
  if (parsed.nodes.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  out->params.clear();
  if (parsed.HasExplicitParams()) {
    std::set<int> used;
    CollectParamIndices(parsed, &used);
    int max_index = *used.rbegin();
    for (int i = 0; i <= max_index; ++i) {
      if (used.count(i) == 0) {
        return Status::InvalidArgument(
            "parameter indices must be dense: missing $" + std::to_string(i));
      }
    }
    out->explicit_params = true;
    out->param_count = max_index + 1;
    out->text = RenderCanonical(parsed, /*lift=*/false, &out->params);
  } else {
    out->explicit_params = false;
    out->text = RenderCanonical(parsed, /*lift=*/true, &out->params);
    out->param_count = static_cast<int>(out->params.size());
  }
  return Status::OK();
}

Status CompileTemplate(const std::string& normalized_text, const Graph& graph,
                       const std::vector<Value>& hints, Plan* plan) {
  ParsedQuery parsed;
  Parser parser(normalized_text);
  GES_RETURN_IF_ERROR(parser.Parse(&parsed));
  if (parsed.nodes.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  std::set<int> used;
  CollectParamIndices(parsed, &used);
  Compiler compiler(parsed, graph, &hints);
  GES_RETURN_IF_ERROR(compiler.Compile(plan));
  plan->param_count = used.empty() ? 0 : *used.rbegin() + 1;
  return Status::OK();
}

namespace {

bool ExprHasParam(const Expr& e) {
  if (e.op == ExprOp::kParam) return true;
  for (const ExprPtr& a : e.args) {
    if (ExprHasParam(*a)) return true;
  }
  return false;
}

// Substitutes kParam nodes with kConst literals; subtrees without params
// are shared, not copied.
Status SubstituteExpr(const ExprPtr& e, const std::vector<Value>& params,
                      ExprPtr* out) {
  if (e->op == ExprOp::kParam) {
    if (e->param_index < 0 ||
        e->param_index >= static_cast<int>(params.size())) {
      return Status::InvalidArgument("parameter $" +
                                     std::to_string(e->param_index) +
                                     " not bound");
    }
    *out = Expr::Lit(params[e->param_index]);
    return Status::OK();
  }
  if (!ExprHasParam(*e)) {
    *out = e;
    return Status::OK();
  }
  auto copy = std::make_shared<Expr>(*e);
  for (ExprPtr& a : copy->args) {
    ExprPtr replaced;
    GES_RETURN_IF_ERROR(SubstituteExpr(a, params, &replaced));
    a = std::move(replaced);
  }
  *out = std::move(copy);
  return Status::OK();
}

}  // namespace

Status BindPlanParams(const Plan& tmpl, const std::vector<Value>& params,
                      Plan* out) {
  *out = tmpl;
  for (PlanOp& op : out->ops) {
    if (op.seek_param >= 0) {
      if (op.seek_param >= static_cast<int>(params.size())) {
        return Status::InvalidArgument(
            "parameter $" + std::to_string(op.seek_param) + " not bound");
      }
      const Value& v = params[op.seek_param];
      if (!IsIntegerPhysical(v.type())) {
        return Status::InvalidArgument("id() parameter $" +
                                       std::to_string(op.seek_param) +
                                       " must be an integer");
      }
      op.seek_ext_id = v.AsInt();
    }
    if (op.predicate != nullptr) {
      ExprPtr replaced;
      GES_RETURN_IF_ERROR(SubstituteExpr(op.predicate, params, &replaced));
      op.predicate = std::move(replaced);
    }
    for (ComputedColumn& c : op.computed) {
      if (c.expr != nullptr) {
        ExprPtr replaced;
        GES_RETURN_IF_ERROR(SubstituteExpr(c.expr, params, &replaced));
        c.expr = std::move(replaced);
      }
    }
  }
  return Status::OK();
}

}  // namespace ges
