// Shared LRU cache of prepared-plan templates (DESIGN.md §14).
//
// Keyed by the normalized query text (frontend/parser.h NormalizeQuery):
// two sessions issuing `WHERE id(p) = 1` and `WHERE id(p) = 7` normalize to
// the same `$0` template and share one cached, already-optimized Plan.
// Entries record the catalog stats epoch at build time; a Lookup against a
// newer epoch misses (the caller re-plans and Insert replaces the entry),
// so schema changes and statistics refreshes invalidate stale templates
// without any cross-thread callback machinery.
//
// Concurrency: lookups take a shared lock and bump a per-entry atomic
// recency stamp, so the hot hit path never serializes readers. Inserts
// take the exclusive lock and evict the least-recently-stamped entry when
// full (approximate LRU — exact enough for a plan cache, and it keeps the
// read path lock-free of list surgery).
#ifndef GES_FRONTEND_PLAN_CACHE_H_
#define GES_FRONTEND_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "executor/plan.h"
#include "executor/schema.h"

namespace ges {

// An immutable compiled template shared across sessions. `plan` has been
// through OptimizePlan already (executors run it with plan_is_optimized);
// execution binds positional parameters via BindPlanParams.
struct PreparedPlan {
  std::string normalized;  // cache key (canonical text with $k slots)
  int param_count = 0;
  // Literals lifted during auto-parameterization, in slot order. Executing
  // with zero bindings falls back to these (the original query's values).
  std::vector<Value> default_params;
  Plan plan;
  // Column statistics captured with the template; feeds
  // ExecOptions::column_stats at execution time.
  std::unordered_map<std::string, ColumnStat> column_stats;
  // catalog().stats_epoch() when the template was built.
  uint64_t stats_epoch = 0;
  // True when `plan` already went through OptimizePlan (the fused exec
  // mode); executors then run it with ExecOptions::plan_is_optimized.
  bool optimized = false;
};

class PlanCache {
 public:
  // capacity == 0 disables caching (every Lookup misses, Insert drops).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the cached template for `normalized` built at `stats_epoch`,
  // or nullptr (counted as a miss) when absent or built under an older
  // epoch. A stale entry stays until the re-planned Insert replaces it.
  std::shared_ptr<const PreparedPlan> Lookup(const std::string& normalized,
                                             uint64_t stats_epoch);

  // Inserts (or replaces) the entry for plan->normalized, evicting the
  // least-recently-used entry when at capacity.
  void Insert(std::shared_ptr<const PreparedPlan> plan);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const PreparedPlan> plan;
    std::atomic<uint64_t> last_used{0};
  };

  const size_t capacity_;
  mutable std::shared_mutex mu_;
  // unique_ptr values: Entry holds an atomic and must not move on rehash.
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ges

#endif  // GES_FRONTEND_PLAN_CACHE_H_
