// Wire protocol of the GES query service (the "Service" half of the
// paper's title): a length-prefixed binary protocol over TCP.
//
// Frame layout (all integers little-endian):
//   [uint32 length][payload]         length = bytes of payload, bounded by
//                                    kMaxFrameBytes (oversized frames kill
//                                    the connection — no unbounded buffers)
//   payload = [uint8 MsgType][body]
//
// The client sends requests; every request except kCancel gets exactly one
// response frame. Query responses carry the query id assigned by the
// client, so a pipelined client matches responses without per-request
// state machines. Admission rejection and interruption are delivered as a
// kResult frame whose embedded status is non-OK (kError frames are
// reserved for connection-level failures such as malformed frames).
#ifndef GES_SERVICE_PROTOCOL_H_
#define GES_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "executor/flatblock.h"
#include "queries/ldbc.h"

namespace ges::service {

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

enum class MsgType : uint8_t {
  // client -> server
  kHello = 1,
  kQuery = 2,
  kCancel = 3,           // body: u64 query_id; no response frame
  kSetParam = 4,
  kGetParam = 5,
  kRefreshSnapshot = 6,  // re-pin the session to the current version
  kPing = 7,
  kBye = 8,
  kCheckpoint = 9,       // admin: snapshot + WAL truncate (durable graphs)
  // Replication handshake (replica -> primary). Body: u32 protocol
  // version, u64 from_version (0 = fresh bootstrap), string replica name.
  // The connection then becomes a one-way WAL stream: the primary sends
  // kSubscribeOk / kSnapshot* / kWalFrame / kWalHeartbeat frames and the
  // replica sends only kReplicaAck frames back (DESIGN.md §13).
  kSubscribe = 10,
  kReplicaAck = 11,  // body: u64 applied commit version
  // server -> client
  kHelloOk = 16,  // body: u64 session_id, u64 snapshot version
  kResult = 17,
  kError = 18,    // connection-level failure; connection closes after
  kParamOk = 19,
  kParamValue = 20,  // body: u8 present, string value
  kSnapshotOk = 21,  // body: u64 snapshot version
  kPong = 22,
  kByeOk = 23,
  // Body: u8 ok, string detail (why not, if !ok), then trailing GC
  // telemetry appended by newer servers (old clients simply stop reading):
  // u64 versions_pruned (lifetime), u64 overlay_bytes, u64 watermark.
  kCheckpointOk = 24,
  // Replication stream (primary -> replica).
  kSubscribeOk = 25,     // body: u64 live-from version, u8 sends_snapshot
  kSnapshotBegin = 26,   // body: u64 snapshot version, u64 total bytes
  kSnapshotChunk = 27,   // body: string chunk (<= kSnapshotChunkBytes)
  kSnapshotEnd = 28,     // empty body
  // One committed transaction: u64 commit version, u32 record count, then
  // that many length-prefixed EncodeWalRecord payloads (body records only;
  // BeginTx/CommitTx are implied by the frame itself).
  kWalFrame = 29,
  kWalHeartbeat = 30,    // body: u64 primary's current version
};

inline constexpr uint32_t kReplicationProtocolVersion = 1;
inline constexpr size_t kSnapshotChunkBytes = 4u << 20;  // 4 MiB

// Status embedded in kResult / kError frames.
enum class WireStatus : uint8_t {
  kOk = 0,
  kError = 1,
  kInvalidArgument = 2,
  kResourceExhausted = 3,  // admission queue full / connection limit
  kDeadlineExceeded = 4,
  kCancelled = 5,
  kShuttingDown = 6,
  kNotFound = 7,
  kReadOnly = 8,  // durable graph degraded read-only after an I/O failure
  // Replica could not satisfy the request's read-your-writes floor
  // (min_version) within the configured wait; route the read elsewhere.
  kLagging = 9,
};

const char* WireStatusName(WireStatus s);

// Query classes carried on the wire. IC/IS/IU map to the LDBC builders;
// kStress and kSleep are service diagnostics (deliberately heavy expansion
// for cancellation tests, deterministic delay for backpressure tests).
enum class QueryKind : uint8_t {
  kIC = 0,      // number in [1, 14]
  kIS = 1,      // number in [1, 7]
  kIU = 2,      // number in [1, 8]; `seed` feeds RunIU
  kStress = 3,  // number = max hops of a full knows-expansion (see server)
  kSleep = 4,   // `seed` = milliseconds of cooperative busy-wait
  kBI = 5,      // number in [1, 3]: cyclic censuses (WCOJ tier)
};

struct QueryRequest {
  uint64_t query_id = 0;  // client-assigned; echoed in the response
  QueryKind kind = QueryKind::kIS;
  uint8_t number = 1;
  uint32_t deadline_ms = 0;  // 0 = no deadline
  uint64_t seed = 0;         // IU randomness / kSleep millis
  LdbcParams params{};       // IC/IS parameters
  // Read-your-writes floor: the server answers only once its applied
  // version reaches this (waiting up to its configured bound), else it
  // responds kLagging so the router can bounce the read to the primary.
  // 0 = no floor (trailing field; absent from old clients' frames).
  uint64_t min_version = 0;
};

struct QueryResponse {
  uint64_t query_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;     // non-OK detail
  double server_millis = 0;  // execution time observed by the server
  FlatBlock table;         // empty unless status == kOk
  // Version the query executed at (commit version for updates). Trailing
  // field: zero when talking to a server that predates it.
  uint64_t snapshot_version = 0;
};

// --- body builders / parsers -------------------------------------------

// Append-only encoder for frame payloads.
class WireBuf {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(const std::string& s);  // u32 length + bytes

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked decoder. All Get* return defaults once `ok()` is false;
// callers check ok() after parsing a body.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  std::string GetString();

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }

 private:
  bool Need(size_t n);

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

void PutParams(WireBuf* out, const LdbcParams& p);
LdbcParams GetParams(WireReader* in);

void PutFlatBlock(WireBuf* out, const FlatBlock& block);
FlatBlock GetFlatBlock(WireReader* in);

// Encodes the full payload (MsgType byte included) of a request/response.
std::string EncodeQueryRequest(const QueryRequest& req);
bool DecodeQueryRequest(WireReader* in, QueryRequest* req);  // after type byte
std::string EncodeQueryResponse(const QueryResponse& resp);
bool DecodeQueryResponse(WireReader* in, QueryResponse* resp);

// --- frame I/O over a connected socket ---------------------------------

// Writes one [length][payload] frame, looping over partial writes.
// Returns false on any socket error (connection is then unusable).
bool WriteFrame(int fd, const std::string& payload);

enum class ReadResult { kOk, kClosed, kError, kTooLarge };

// Reads one frame into `payload`. kClosed = orderly EOF at a frame
// boundary; kError = socket error or truncated frame; kTooLarge = a length
// prefix above kMaxFrameBytes (the bytes were NOT consumed — the server
// can still send a clean refusal before closing).
ReadResult ReadFrame(int fd, std::string* payload);

}  // namespace ges::service

#endif  // GES_SERVICE_PROTOCOL_H_
