// Wire protocol of the GES query service (the "Service" half of the
// paper's title): a length-prefixed binary protocol over TCP.
//
// Frame layout (all integers little-endian):
//   [uint32 length][payload]         length = bytes of payload, bounded by
//                                    kMaxFrameBytes (oversized frames kill
//                                    the connection — no unbounded buffers)
//   payload = [uint8 MsgType][body]
//
// The client sends requests; every request except kCancel gets exactly one
// response frame. Query responses carry the query id assigned by the
// client, so a pipelined client matches responses without per-request
// state machines. Admission rejection and interruption are delivered as a
// kResult frame whose embedded status is non-OK (kError frames are
// reserved for connection-level failures such as malformed frames).
#ifndef GES_SERVICE_PROTOCOL_H_
#define GES_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "executor/flatblock.h"
#include "queries/ldbc.h"

namespace ges::service {

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

enum class MsgType : uint8_t {
  // client -> server
  kHello = 1,
  kQuery = 2,
  kCancel = 3,           // body: u64 query_id; no response frame
  kSetParam = 4,
  kGetParam = 5,
  kRefreshSnapshot = 6,  // re-pin the session to the current version
  kPing = 7,
  kBye = 8,
  kCheckpoint = 9,       // admin: snapshot + WAL truncate (durable graphs)
  // Replication handshake (replica -> primary). Body: u32 protocol
  // version, u64 from_version (0 = fresh bootstrap), string replica name.
  // The connection then becomes a one-way WAL stream: the primary sends
  // kSubscribeOk / kSnapshot* / kWalFrame / kWalHeartbeat frames and the
  // replica sends only kReplicaAck frames back (DESIGN.md §13).
  kSubscribe = 10,
  kReplicaAck = 11,  // body: u64 applied commit version
  // Prepared statements (DESIGN.md §14). kPrepare body: string query text
  // (declarative frontend syntax, either literal or with $k placeholders).
  // kExecute body: u64 query_id, u64 handle, u32 deadline_ms,
  // u64 min_version, u32 nparams, then nparams tagged values (PutValue).
  // Passing nparams == 0 executes with the literals captured at Prepare
  // time (auto-parameterized statements). Response: kResult.
  kPrepare = 12,
  kExecute = 13,
  // Admin: force-cancel a runaway query (resource governor, DESIGN.md §15).
  // Body: u64 query_id. Unlike kCancel it is not scoped to the sender's
  // session — every session's in-flight queries with that client-assigned
  // id are shot — and it DOES get a response (kKillQueryOk) so an operator
  // knows whether the id was found.
  kKillQuery = 14,
  // server -> client
  kHelloOk = 16,  // body: u64 session_id, u64 snapshot version
  kResult = 17,
  kError = 18,    // connection-level failure; connection closes after
  kParamOk = 19,
  kParamValue = 20,  // body: u8 present, string value
  kSnapshotOk = 21,  // body: u64 snapshot version
  kPong = 22,
  kByeOk = 23,
  // Body: u8 ok, string detail (why not, if !ok), then trailing GC
  // telemetry appended by newer servers (old clients simply stop reading):
  // u64 versions_pruned (lifetime), u64 overlay_bytes, u64 watermark.
  kCheckpointOk = 24,
  // Replication stream (primary -> replica).
  kSubscribeOk = 25,     // body: u64 live-from version, u8 sends_snapshot
  kSnapshotBegin = 26,   // body: u64 snapshot version, u64 total bytes
  kSnapshotChunk = 27,   // body: string chunk (<= kSnapshotChunkBytes)
  kSnapshotEnd = 28,     // empty body
  // One committed transaction: u64 commit version, u32 record count, then
  // that many length-prefixed EncodeWalRecord payloads (body records only;
  // BeginTx/CommitTx are implied by the frame itself).
  kWalFrame = 29,
  kWalHeartbeat = 30,    // body: u64 primary's current version
  // Reply to kPrepare. Body: u8 ok; on success u64 handle,
  // u32 param_count, u8 cache_hit, string normalized text; on failure
  // u8 WireStatus, string message (connection stays usable).
  kPrepareOk = 31,
  // Reply to kKillQuery. Body: u32 number of in-flight queries cancelled
  // (0 = id not found — already finished, or never existed).
  kKillQueryOk = 32,
};

inline constexpr uint32_t kReplicationProtocolVersion = 1;
inline constexpr size_t kSnapshotChunkBytes = 4u << 20;  // 4 MiB

// Status embedded in kResult / kError frames.
enum class WireStatus : uint8_t {
  kOk = 0,
  kError = 1,
  kInvalidArgument = 2,
  kResourceExhausted = 3,  // admission queue full / connection limit
  kDeadlineExceeded = 4,
  kCancelled = 5,
  kShuttingDown = 6,
  kNotFound = 7,
  kReadOnly = 8,  // durable graph degraded read-only after an I/O failure
  // Replica could not satisfy the request's read-your-writes floor
  // (min_version) within the configured wait; route the read elsewhere.
  kLagging = 9,
  // Watermark shedding (resource governor): the process is over its memory
  // watermark and this query class is being refused at admission. The
  // response's retry_after_ms hints when to come back; idempotent reads
  // are safe to retry.
  kOverloaded = 10,
};

const char* WireStatusName(WireStatus s);

// Query classes carried on the wire. IC/IS/IU map to the LDBC builders;
// kStress and kSleep are service diagnostics (deliberately heavy expansion
// for cancellation tests, deterministic delay for backpressure tests).
enum class QueryKind : uint8_t {
  kIC = 0,      // number in [1, 14]
  kIS = 1,      // number in [1, 7]
  kIU = 2,      // number in [1, 8]; `seed` feeds RunIU
  kStress = 3,  // number = max hops of a full knows-expansion (see server)
  kSleep = 4,   // `seed` = ms of cooperative busy-wait; `number` > 0
                // stretches the checkpoint interval to that many ms
                // (watchdog diagnostic: simulates a stuck operator)
  kBI = 5,      // number in [1, 3]: cyclic censuses (WCOJ tier)
  // Internal only: a kExecute frame re-packaged as a QueryRequest so
  // prepared executions flow through the same admission / deadline / job
  // machinery as ad-hoc queries. Never encoded by EncodeQueryRequest.
  kPrepared = 6,
  // Governor diagnostic: cooperatively allocates `seed` MiB of real,
  // budget-charged intermediate state in 1 MiB steps, polling the context
  // between steps, then holds the allocation for `number` milliseconds
  // (cancellation-responsive) before releasing — a deterministic memory
  // hog for governor tests and bench_governor, the way kSleep is a
  // deterministic delay.
  kHog = 7,
};

struct QueryRequest {
  uint64_t query_id = 0;  // client-assigned; echoed in the response
  QueryKind kind = QueryKind::kIS;
  uint8_t number = 1;
  uint32_t deadline_ms = 0;  // 0 = no deadline
  uint64_t seed = 0;         // IU randomness / kSleep millis
  LdbcParams params{};       // IC/IS parameters
  // Read-your-writes floor: the server answers only once its applied
  // version reaches this (waiting up to its configured bound), else it
  // responds kLagging so the router can bounce the read to the primary.
  // 0 = no floor (trailing field; absent from old clients' frames).
  uint64_t min_version = 0;
  // kPrepared only (decoded from kExecute frames, never from kQuery).
  uint64_t handle = 0;
  std::vector<Value> bind_params;
};

struct QueryResponse {
  uint64_t query_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;     // non-OK detail
  double server_millis = 0;  // execution time observed by the server
  FlatBlock table;         // empty unless status == kOk
  // Version the query executed at (commit version for updates). Trailing
  // field: zero when talking to a server that predates it.
  uint64_t snapshot_version = 0;
  // Per-phase server-side breakdown (trailing fields, zero from older
  // servers): time spent parsing/normalizing, planning + optimizing,
  // binding parameters, and executing. For ad-hoc LDBC kinds only
  // exec_millis is populated.
  double parse_millis = 0;
  double plan_millis = 0;
  double bind_millis = 0;
  double exec_millis = 0;
  // 1 when the plan came from the shared plan cache.
  uint8_t plan_cache_hit = 0;
  // Peak bytes the query charged against its MemoryBudget (resource
  // governor, DESIGN.md §15). Trailing field, zero from older servers.
  uint64_t peak_memory_bytes = 0;
  // For kOverloaded / kResourceExhausted refusals: the server's hint for
  // how long to back off before retrying (0 = no hint). Trailing field.
  uint32_t retry_after_ms = 0;
};

// Result of a kPrepare round-trip.
struct PrepareResult {
  uint64_t handle = 0;
  uint32_t param_count = 0;
  bool cache_hit = false;     // plan template was already cached
  std::string normalized;     // canonical text with $k slots
};

// Client-side view of a kExecute frame.
struct ExecuteRequest {
  uint64_t query_id = 0;
  uint64_t handle = 0;
  uint32_t deadline_ms = 0;
  uint64_t min_version = 0;
  std::vector<Value> params;  // empty = use Prepare-time literals
};

// --- body builders / parsers -------------------------------------------

// Append-only encoder for frame payloads.
class WireBuf {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(const std::string& s);  // u32 length + bytes

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked decoder. All Get* return defaults once `ok()` is false;
// callers check ok() after parsing a body.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  std::string GetString();

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }
  // Poisons the reader: a decoder that meets an unknown tag cannot know
  // where the next field starts, so the whole frame is rejected.
  void MarkBad() { ok_ = false; }

 private:
  bool Need(size_t n);

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

void PutParams(WireBuf* out, const LdbcParams& p);
LdbcParams GetParams(WireReader* in);

// Tagged value cell: u8 ValueType, then the FlatBlock cell payload
// (nothing for kNull, double for kDouble, string for kString, one int64
// slot otherwise).
void PutValue(WireBuf* out, const Value& v);
Value GetValue(WireReader* in);

void PutFlatBlock(WireBuf* out, const FlatBlock& block);
FlatBlock GetFlatBlock(WireReader* in);

// Encodes the full payload (MsgType byte included) of a request/response.
std::string EncodeQueryRequest(const QueryRequest& req);
bool DecodeQueryRequest(WireReader* in, QueryRequest* req);  // after type byte
std::string EncodeQueryResponse(const QueryResponse& resp);
bool DecodeQueryResponse(WireReader* in, QueryResponse* resp);

// Prepared statements. Encode* include the MsgType byte; Decode* start
// after it.
std::string EncodePrepareRequest(const std::string& query_text);
std::string EncodePrepareOk(const PrepareResult& r);
std::string EncodePrepareError(WireStatus status, const std::string& message);
// Decodes a kPrepareOk body. Returns true on a well-formed frame; `*r` is
// filled on success frames, `*status`/`*message` on refusals.
bool DecodePrepareOk(WireReader* in, PrepareResult* r, WireStatus* status,
                     std::string* message);
std::string EncodeExecuteRequest(const ExecuteRequest& req);
bool DecodeExecuteRequest(WireReader* in, ExecuteRequest* req);

// --- frame I/O over a connected socket ---------------------------------

// Writes one [length][payload] frame, looping over partial writes.
// Returns false on any socket error (connection is then unusable).
bool WriteFrame(int fd, const std::string& payload);

enum class ReadResult { kOk, kClosed, kError, kTooLarge };

// Reads one frame into `payload`. kClosed = orderly EOF at a frame
// boundary; kError = socket error or truncated frame; kTooLarge = a length
// prefix above kMaxFrameBytes (the bytes were NOT consumed — the server
// can still send a clean refusal before closing).
ReadResult ReadFrame(int fd, std::string* payload);

}  // namespace ges::service

#endif  // GES_SERVICE_PROTOCOL_H_
