#include "service/admission.h"

#include <algorithm>
#include <chrono>

#include "common/timer.h"

namespace ges::service {

const char* AdmissionPolicyName(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kPrioritized:
      return "prioritized";
  }
  return "?";
}

double QueryCostModel::Prior(const std::string& name) const {
  // IC* and STRESS* are the complex-read class (multi-hop expansions);
  // until observed otherwise they must not be scheduled as shorts — one
  // optimistic misclassification of an IC5 stalls the short lane. HOG (the
  // governor's memory-hog diagnostic) is long by construction: watermark
  // shedding must classify it as sheddable from its first appearance.
  bool long_prior = name.rfind("IC", 0) == 0 ||
                    name.rfind("STRESS", 0) == 0 || name.rfind("HOG", 0) == 0;
  return long_prior ? 4.0 * short_threshold_ms_ : short_threshold_ms_ / 4.0;
}

double QueryCostModel::EstimateMillis(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = ewma_ms_.find(name);
  return it == ewma_ms_.end() ? Prior(name) : it->second;
}

void QueryCostModel::Observe(const std::string& name, double millis) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = ewma_ms_.emplace(name, millis);
  if (!inserted) {
    it->second += alpha_ * (millis - it->second);
  }
}

AdmissionQueue::AdmissionQueue(AdmissionPolicy policy, size_t capacity,
                               int num_workers, QueryCostModel* cost_model)
    : policy_(policy),
      capacity_(std::max<size_t>(1, capacity)),
      // At least one worker can never be taken by a long query, so shorts
      // always have a lane; with one worker the cap degenerates to 1.
      max_long_running_(std::max(1, num_workers - 1)),
      cost_model_(cost_model) {
  num_workers = std::max(1, num_workers);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionQueue::~AdmissionQueue() { Shutdown(); }

bool AdmissionQueue::TrySubmit(QueryJob job) {
  bool is_short = cost_model_->IsShort(job.name);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (intake_closed_ || stop_) return false;
    size_t depth = short_q_.size() + long_q_.size();
    if (depth >= capacity_) {
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      (is_short ? stats_.rejected_short : stats_.rejected_long)
          .fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Item item{next_seq_++, is_short, std::move(job)};
    (is_short ? short_q_ : long_q_).push_back(std::move(item));
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    uint64_t now_depth = depth + 1;
    uint64_t peak = stats_.peak_queued.load(std::memory_order_relaxed);
    while (now_depth > peak && !stats_.peak_queued.compare_exchange_weak(
                                   peak, now_depth, std::memory_order_relaxed)) {
    }
  }
  work_cv_.notify_one();
  return true;
}

bool AdmissionQueue::PopLocked(Item* out) {
  if (policy_ == AdmissionPolicy::kFifo) {
    // Strict arrival order across both deques (they are each FIFO, so the
    // global minimum seq is at one of the two fronts).
    std::deque<Item>* q = nullptr;
    if (!short_q_.empty() &&
        (long_q_.empty() || short_q_.front().seq < long_q_.front().seq)) {
      q = &short_q_;
    } else if (!long_q_.empty()) {
      q = &long_q_;
    }
    if (q == nullptr) return false;
    *out = std::move(q->front());
    q->pop_front();
    return true;
  }
  // kPrioritized: shorts first; longs only below the long-running cap.
  if (!short_q_.empty()) {
    *out = std::move(short_q_.front());
    short_q_.pop_front();
    return true;
  }
  if (!long_q_.empty() && running_long_ < max_long_running_) {
    *out = std::move(long_q_.front());
    long_q_.pop_front();
    return true;
  }
  return false;
}

void AdmissionQueue::WorkerLoop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this, &item] {
        return stop_ || PopLocked(&item);
      });
      if (stop_ && item.job.run == nullptr) return;
      ++running_;
      if (!item.is_short) ++running_long_;
    }
    Timer t;
    item.job.run();
    double ms = t.ElapsedMillis();
    cost_model_->Observe(item.job.name, ms);
    stats_.executed.fetch_add(1, std::memory_order_relaxed);
    if (!item.is_short) {
      stats_.executed_long.fetch_add(1, std::memory_order_relaxed);
    }
    bool idle;
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (!item.is_short) --running_long_;
      idle = running_ == 0 && short_q_.empty() && long_q_.empty();
    }
    // Finishing a long query may unblock a queued long (the cap) even when
    // no new item arrived, so wake a peer.
    work_cv_.notify_one();
    if (idle) idle_cv_.notify_all();
  }
}

void AdmissionQueue::CloseIntake() {
  std::lock_guard<std::mutex> lk(mu_);
  intake_closed_ = true;
}

bool AdmissionQueue::WaitIdle(double grace_seconds) {
  std::unique_lock<std::mutex> lk(mu_);
  auto pred = [this] {
    return running_ == 0 && short_q_.empty() && long_q_.empty();
  };
  if (grace_seconds <= 0) return pred();
  return idle_cv_.wait_for(
      lk, std::chrono::duration<double>(grace_seconds), pred);
}

void AdmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    intake_closed_ = true;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t AdmissionQueue::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return short_q_.size() + long_q_.size();
}

}  // namespace ges::service
