#include "service/protocol.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace ges::service {

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kError:
      return "ERROR";
    case WireStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireStatus::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case WireStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireStatus::kCancelled:
      return "CANCELLED";
    case WireStatus::kShuttingDown:
      return "SHUTTING_DOWN";
    case WireStatus::kNotFound:
      return "NOT_FOUND";
    case WireStatus::kReadOnly:
      return "READ_ONLY";
    case WireStatus::kLagging:
      return "LAGGING";
    case WireStatus::kOverloaded:
      return "OVERLOADED";
  }
  return "?";
}

void WireBuf::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireBuf::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireBuf::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireBuf::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

bool WireReader::Need(size_t n) {
  if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t WireReader::GetU8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(*p_++);
}

uint32_t WireReader::GetU32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
  }
  p_ += 4;
  return v;
}

uint64_t WireReader::GetU64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
  }
  p_ += 8;
  return v;
}

double WireReader::GetDouble() {
  uint64_t bits = GetU64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::GetString() {
  uint32_t n = GetU32();
  if (!Need(n)) return std::string();
  std::string s(p_, n);
  p_ += n;
  return s;
}

void PutParams(WireBuf* out, const LdbcParams& p) {
  out->PutI64(p.person);
  out->PutI64(p.person2);
  out->PutI64(p.post);
  out->PutString(p.first_name);
  out->PutString(p.country_x);
  out->PutString(p.country_y);
  out->PutString(p.tag_name);
  out->PutString(p.tag_class);
  out->PutI64(p.max_date);
  out->PutI64(p.min_date);
  out->PutI64(p.duration_days);
  out->PutI64(p.work_year);
  out->PutI64(p.month);
}

LdbcParams GetParams(WireReader* in) {
  LdbcParams p{};
  p.person = in->GetI64();
  p.person2 = in->GetI64();
  p.post = in->GetI64();
  p.first_name = in->GetString();
  p.country_x = in->GetString();
  p.country_y = in->GetString();
  p.tag_name = in->GetString();
  p.tag_class = in->GetString();
  p.max_date = in->GetI64();
  p.min_date = in->GetI64();
  p.duration_days = in->GetI64();
  p.work_year = in->GetI64();
  p.month = in->GetI64();
  return p;
}

void PutValue(WireBuf* out, const Value& v) {
  out->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kDouble:
      out->PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      out->PutString(v.AsString());
      break;
    default:  // bool / int64 / date / vertex: one int64 slot
      out->PutI64(v.AsInt());
  }
}

Value GetValue(WireReader* in) {
  ValueType t = static_cast<ValueType>(in->GetU8());
  switch (t) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      return Value::Bool(in->GetI64() != 0);
    case ValueType::kDouble:
      return Value::Double(in->GetDouble());
    case ValueType::kString:
      return Value::String(in->GetString());
    case ValueType::kDate:
      return Value::Date(in->GetI64());
    case ValueType::kVertex:
      return Value::Vertex(static_cast<VertexId>(in->GetU64()));
    case ValueType::kInt64:
      return Value::Int(in->GetI64());
  }
  in->MarkBad();  // unknown tag: the stream position is unknowable
  return Value::Null();
}

void PutFlatBlock(WireBuf* out, const FlatBlock& block) {
  const Schema& s = block.schema();
  out->PutU32(static_cast<uint32_t>(s.size()));
  for (const ColumnDef& c : s.columns()) {
    out->PutString(c.name);
    out->PutU8(static_cast<uint8_t>(c.type));
  }
  out->PutU64(block.NumRows());
  for (const auto& row : block.rows()) {
    for (const Value& v : row) {
      out->PutU8(static_cast<uint8_t>(v.type()));
      switch (v.type()) {
        case ValueType::kNull:
          break;
        case ValueType::kDouble:
          out->PutDouble(v.AsDouble());
          break;
        case ValueType::kString:
          out->PutString(v.AsString());
          break;
        default:  // bool / int64 / date / vertex: one int64 slot
          out->PutI64(v.AsInt());
      }
    }
  }
}

FlatBlock GetFlatBlock(WireReader* in) {
  uint32_t ncols = in->GetU32();
  Schema schema;
  for (uint32_t i = 0; in->ok() && i < ncols; ++i) {
    std::string name = in->GetString();
    ValueType type = static_cast<ValueType>(in->GetU8());
    schema.Add(std::move(name), type);
  }
  FlatBlock block(std::move(schema));
  uint64_t nrows = in->GetU64();
  for (uint64_t r = 0; in->ok() && r < nrows; ++r) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint32_t c = 0; in->ok() && c < ncols; ++c) {
      ValueType t = static_cast<ValueType>(in->GetU8());
      switch (t) {
        case ValueType::kNull:
          row.push_back(Value::Null());
          break;
        case ValueType::kBool:
          row.push_back(Value::Bool(in->GetI64() != 0));
          break;
        case ValueType::kDouble:
          row.push_back(Value::Double(in->GetDouble()));
          break;
        case ValueType::kString:
          row.push_back(Value::String(in->GetString()));
          break;
        case ValueType::kDate:
          row.push_back(Value::Date(in->GetI64()));
          break;
        case ValueType::kVertex:
          row.push_back(Value::Vertex(static_cast<VertexId>(in->GetU64())));
          break;
        default:
          row.push_back(Value::Int(in->GetI64()));
      }
    }
    if (in->ok()) block.AppendRow(std::move(row));
  }
  return block;
}

std::string EncodeQueryRequest(const QueryRequest& req) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kQuery));
  b.PutU64(req.query_id);
  b.PutU8(static_cast<uint8_t>(req.kind));
  b.PutU8(req.number);
  b.PutU32(req.deadline_ms);
  b.PutU64(req.seed);
  PutParams(&b, req.params);
  b.PutU64(req.min_version);
  return b.Take();
}

bool DecodeQueryRequest(WireReader* in, QueryRequest* req) {
  req->query_id = in->GetU64();
  req->kind = static_cast<QueryKind>(in->GetU8());
  req->number = in->GetU8();
  req->deadline_ms = in->GetU32();
  req->seed = in->GetU64();
  req->params = GetParams(in);
  // Trailing read-your-writes floor; a frame from an older client simply
  // ends here and the floor stays 0.
  req->min_version = in->AtEnd() ? 0 : in->GetU64();
  return in->ok();
}

std::string EncodeQueryResponse(const QueryResponse& resp) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kResult));
  b.PutU64(resp.query_id);
  b.PutU8(static_cast<uint8_t>(resp.status));
  b.PutString(resp.message);
  b.PutDouble(resp.server_millis);
  if (resp.status == WireStatus::kOk) {
    PutFlatBlock(&b, resp.table);
  }
  b.PutU64(resp.snapshot_version);
  b.PutDouble(resp.parse_millis);
  b.PutDouble(resp.plan_millis);
  b.PutDouble(resp.bind_millis);
  b.PutDouble(resp.exec_millis);
  b.PutU8(resp.plan_cache_hit);
  b.PutU64(resp.peak_memory_bytes);
  b.PutU32(resp.retry_after_ms);
  return b.Take();
}

bool DecodeQueryResponse(WireReader* in, QueryResponse* resp) {
  resp->query_id = in->GetU64();
  resp->status = static_cast<WireStatus>(in->GetU8());
  resp->message = in->GetString();
  resp->server_millis = in->GetDouble();
  if (resp->status == WireStatus::kOk) {
    resp->table = GetFlatBlock(in);
  } else {
    resp->table = FlatBlock();
  }
  // Trailing executed-at version (old servers' frames end before it).
  resp->snapshot_version = in->AtEnd() ? 0 : in->GetU64();
  // Trailing per-phase breakdown + cache flag (same compatibility rule).
  resp->parse_millis = in->AtEnd() ? 0 : in->GetDouble();
  resp->plan_millis = in->AtEnd() ? 0 : in->GetDouble();
  resp->bind_millis = in->AtEnd() ? 0 : in->GetDouble();
  resp->exec_millis = in->AtEnd() ? 0 : in->GetDouble();
  resp->plan_cache_hit = in->AtEnd() ? 0 : in->GetU8();
  // Trailing governor fields (DESIGN.md §15): peak budget charge and the
  // retry-after hint attached to kOverloaded / kResourceExhausted refusals.
  resp->peak_memory_bytes = in->AtEnd() ? 0 : in->GetU64();
  resp->retry_after_ms = in->AtEnd() ? 0 : in->GetU32();
  return in->ok();
}

std::string EncodePrepareRequest(const std::string& query_text) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kPrepare));
  b.PutString(query_text);
  return b.Take();
}

std::string EncodePrepareOk(const PrepareResult& r) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kPrepareOk));
  b.PutU8(1);
  b.PutU64(r.handle);
  b.PutU32(r.param_count);
  b.PutU8(r.cache_hit ? 1 : 0);
  b.PutString(r.normalized);
  return b.Take();
}

std::string EncodePrepareError(WireStatus status, const std::string& message) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kPrepareOk));
  b.PutU8(0);
  b.PutU8(static_cast<uint8_t>(status));
  b.PutString(message);
  return b.Take();
}

bool DecodePrepareOk(WireReader* in, PrepareResult* r, WireStatus* status,
                     std::string* message) {
  uint8_t ok = in->GetU8();
  if (ok != 0) {
    r->handle = in->GetU64();
    r->param_count = in->GetU32();
    r->cache_hit = in->GetU8() != 0;
    r->normalized = in->GetString();
    *status = WireStatus::kOk;
    message->clear();
  } else {
    *status = static_cast<WireStatus>(in->GetU8());
    *message = in->GetString();
  }
  return in->ok();
}

std::string EncodeExecuteRequest(const ExecuteRequest& req) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kExecute));
  b.PutU64(req.query_id);
  b.PutU64(req.handle);
  b.PutU32(req.deadline_ms);
  b.PutU64(req.min_version);
  b.PutU32(static_cast<uint32_t>(req.params.size()));
  for (const Value& v : req.params) PutValue(&b, v);
  return b.Take();
}

bool DecodeExecuteRequest(WireReader* in, ExecuteRequest* req) {
  req->query_id = in->GetU64();
  req->handle = in->GetU64();
  req->deadline_ms = in->GetU32();
  req->min_version = in->GetU64();
  uint32_t n = in->GetU32();
  req->params.clear();
  for (uint32_t i = 0; in->ok() && i < n; ++i) {
    req->params.push_back(GetValue(in));
  }
  return in->ok() && in->AtEnd();
}

namespace {

bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

// Returns 1 on success, 0 on orderly EOF before any byte, -1 on error.
int ReadAll(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;  // mid-frame EOF is an error
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

bool WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  char hdr[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  // Header and payload as one logical write; two syscalls is fine here
  // (the protocol is not latency-bound by syscall count at this scale).
  return WriteAll(fd, hdr, 4) && WriteAll(fd, payload.data(), payload.size());
}

ReadResult ReadFrame(int fd, std::string* payload) {
  char hdr[4];
  int r = ReadAll(fd, hdr, 4);
  if (r == 0) return ReadResult::kClosed;
  if (r < 0) return ReadResult::kError;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(hdr[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) return ReadResult::kTooLarge;
  payload->resize(len);
  if (len > 0 && ReadAll(fd, payload->data(), len) != 1) {
    return ReadResult::kError;
  }
  return ReadResult::kOk;
}

}  // namespace ges::service
