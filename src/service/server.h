// The GES query service: a TCP front end over the engine (the "Service"
// component the paper's title promises).
//
// Architecture (one box per thread kind):
//
//   acceptor ──▶ per-connection session threads ──▶ AdmissionQueue workers
//                  (parse frames, own the session)     (execute queries)
//                            ▲                                │
//   reaper ──────────────────┘ (idle timeout, thread cleanup, │
//                               MVCC GC driver)               ▼
//                                            shared TaskScheduler (morsels)
//
// Sessions: each connection owns a Session pinned to the snapshot version
// current at connect time — all reads of that session see one consistent
// graph until the client refreshes (or its own IU commits advance it:
// read-your-writes). Query execution happens on admission workers, so a
// slow query never blocks its connection's control frames (Cancel, Ping).
// Every pinned session registers its snapshot with the graph's
// SnapshotRegistry (an RAII SnapshotHandle), and every admitted query
// re-registers the version it will execute at, so the version-chain GC the
// reaper drives (DESIGN.md §11) can never reclaim a chain entry a session
// or an in-flight morsel might still read. The GC cadence (interval +
// overlay-byte trigger) is independent of idle reaping: it runs even with
// idle_timeout_seconds = 0, and a session that holds the watermark past
// watermark_alert_seconds is logged and exported via
// ServiceStats::watermark_held_by_session.
//
// Cancellation: every query carries a QueryContext. Deadlines arm it at
// admission; kCancel frames and disconnects trip it; the engine's morsel
// checkpoints (Expand rows, filter morsels, de-factor loops) observe it
// and the worker returns DEADLINE_EXCEEDED / CANCELLED mid-flight.
//
// Drain: Drain() stops the acceptor, closes admission intake (new queries
// answer SHUTTING_DOWN), waits up to the grace period for in-flight work,
// cancels whatever remains, shuts every connection down and joins all
// threads. Safe to call from a signal-watcher thread.
#ifndef GES_SERVICE_SERVER_H_
#define GES_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/memory_budget.h"
#include "executor/executor.h"
#include "frontend/plan_cache.h"
#include "queries/ldbc.h"
#include "replication/log_shipper.h"
#include "service/admission.h"
#include "service/protocol.h"

namespace ges::service {

struct ServiceConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral (read back via Server::port())
  int max_connections = 64;
  size_t queue_capacity = 128;    // admission queue bound (backpressure)
  int query_workers = 4;          // admission worker threads
  AdmissionPolicy policy = AdmissionPolicy::kPrioritized;
  double short_threshold_ms = 5.0;
  double idle_timeout_seconds = 0;  // 0 = never reap idle sessions
  ExecMode exec_mode = ExecMode::kFactorizedFused;
  int intra_query_threads = 1;  // morsel parallelism per query

  // --- MVCC version-chain GC (reaper thread; DESIGN.md §11) ---
  // Periodic prune cadence; <= 0 disables interval-driven GC. Independent
  // of idle_timeout_seconds: the default config still collects garbage.
  double gc_interval_seconds = 1.0;
  // Prune immediately once Graph::OverlayBytes() exceeds this, without
  // waiting for the interval; 0 disables the byte trigger.
  size_t gc_trigger_bytes = 32u << 20;
  // A session whose pinned snapshot trails the current version and is
  // older than this is holding the watermark (and therefore garbage)
  // hostage: log it once and export it in the stats. <= 0 disables.
  double watermark_alert_seconds = 30.0;

  // --- background delta-merge compaction (DESIGN.md §16) ---
  // Periodic cadence for Graph::CompactRelations, driven from the reaper
  // and executed as a low-priority TaskScheduler job so it never displaces
  // query morsels. <= 0 disables background compaction.
  double compact_interval_seconds = 0;
  // Per-relation trigger: compact once the reclaimable share
  // (fragmentation + overlay bytes) reaches this fraction of the
  // relation's footprint.
  double compact_trigger_frag_pct = 0.30;

  // --- WAL-shipping replication (DESIGN.md §13) ---
  // Replica mode: the graph is fed by a replication::Replica applier; IU
  // requests answer READ_ONLY directing the client to the primary.
  // PromoteToPrimary() clears it at failover.
  bool replica = false;
  // Semi-synchronous commit: an IU responds OK only once this many
  // connected replicas acked its commit version (0 = fully async). On
  // timeout the commit is durable locally but the client gets an error —
  // i.e. it was NOT acknowledged, and failover may or may not retain it.
  int min_replica_acks = 0;
  double replica_ack_timeout_seconds = 2.0;
  // Read-your-writes: how long a query carrying min_version may wait for
  // the applied version to catch up before answering LAGGING.
  double ryw_wait_ms = 50.0;

  // --- resource governor (DESIGN.md §15) ---
  // Per-query budget: a query whose charged intermediate state crosses
  // this dies at its next cooperative checkpoint with RESOURCE_EXHAUSTED.
  // 0 = unlimited (usage is still tracked and fed to the global gauge).
  size_t query_memory_limit_bytes = 0;
  // Soft watermark on the process-wide gauge: at admission, once the sum
  // of all in-flight budgets reaches this, *long* queries are shed with
  // OVERLOADED (+ retry_after_ms hint); at 125% of it (the hard
  // watermark) everything is shed. 0 disables shedding.
  size_t memory_watermark_bytes = 0;
  // Watchdog: an in-flight query still running this long past its own
  // deadline has ignored cooperative cancellation for too long — it is
  // force-cancelled and logged as a slow-query report. <= 0 disables.
  double watchdog_grace_ms = 0;
  // Backoff hint attached to OVERLOADED refusals.
  uint32_t shed_retry_after_ms = 100;

  // --- prepared statements + statistics (DESIGN.md §14) ---
  // Capacity of the shared plan cache (entries keyed by normalized query
  // text); 0 disables caching — every Execute re-plans.
  size_t plan_cache_entries = 128;
  // Reaper cadence for Graph::RebuildStats. A rebuild is skipped while the
  // graph version is unchanged, so a read-only server settles into zero
  // stats churn (and zero epoch bumps). <= 0 disables periodic refresh;
  // Start() still builds one initial snapshot.
  double stats_refresh_seconds = 5.0;
};

struct ServiceStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> queries_received{0};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> queries_rejected{0};     // admission backpressure
  std::atomic<uint64_t> queries_interrupted{0};  // deadline or cancel
  std::atomic<uint64_t> queries_error{0};
  std::atomic<uint64_t> sessions_reaped{0};  // idle-timeout disconnects

  // MVCC GC (reaper-driven; gauges are "as of the last GC pass").
  std::atomic<uint64_t> gc_runs{0};
  std::atomic<uint64_t> versions_pruned{0};     // chain entries reclaimed
  std::atomic<uint64_t> gc_bytes_reclaimed{0};  // bytes those entries held
  std::atomic<uint64_t> overlay_bytes{0};       // gauge: live overlay bytes
  std::atomic<uint64_t> gc_watermark{0};        // gauge: last prune watermark
  // Gauge: id of a session that has held the oldest pinned snapshot for
  // longer than watermark_alert_seconds while updates kept committing
  // (0 = nobody is stalling the watermark); `watermark_stalls` counts how
  // many distinct offenders were flagged.
  std::atomic<uint64_t> watermark_held_by_session{0};
  std::atomic<uint64_t> watermark_stalls{0};

  // Background compaction (DESIGN.md §16). Mirrors of the graph's
  // lifetime totals, refreshed every reaper tick: `compaction_runs` and
  // `compaction_bytes_reclaimed` count all passes since startup (however
  // triggered), `compaction_segments` is a gauge of installed segments.
  std::atomic<uint64_t> compaction_runs{0};
  std::atomic<uint64_t> compaction_bytes_reclaimed{0};
  std::atomic<uint64_t> compaction_segments{0};

  // Resource governor (DESIGN.md §15). `governor_killed` counts queries
  // the governor terminated (budget overruns, watchdog force-cancels,
  // admin kills); `governor_shed` counts admission refusals at the memory
  // watermark. The byte gauges mirror the process-wide GlobalMemoryGauge
  // on the reaper cadence.
  std::atomic<uint64_t> governor_killed{0};
  std::atomic<uint64_t> governor_shed{0};
  std::atomic<uint64_t> governor_global_bytes{0};       // gauge: in use now
  std::atomic<uint64_t> governor_peak_global_bytes{0};  // gauge: lifetime peak
  // Admission per-class detail mirrored from AdmissionStats (reaper
  // cadence), plus the current queue depth.
  std::atomic<uint64_t> admission_rejected_short{0};
  std::atomic<uint64_t> admission_rejected_long{0};
  std::atomic<uint64_t> admission_queue_depth{0};

  // Plan cache (gauges mirrored from the shared PlanCache after every
  // prepare / prepared execution).
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> plan_cache_misses{0};
  std::atomic<uint64_t> plan_cache_evictions{0};

  // WCOJ intersection counters aggregated across all read queries
  // (IntersectExpand + galloping membership probes; DESIGN.md §12).
  std::atomic<uint64_t> intersect_probes{0};
  std::atomic<uint64_t> intersect_gallops{0};
  std::atomic<uint64_t> intersect_skipped{0};
  std::atomic<uint64_t> intersect_emitted{0};

  // Replication (primary side). Counters are gauges the reaper refreshes
  // from the log shipper; `replicas` carries per-replica lag detail.
  std::atomic<uint64_t> replicas_connected{0};
  std::atomic<uint64_t> wal_frames_shipped{0};
  std::atomic<uint64_t> wal_bytes_shipped{0};
  std::atomic<uint64_t> ryw_lagging{0};        // reads bounced with LAGGING
  std::atomic<uint64_t> semisync_timeouts{0};  // IU acks that timed out
  mutable std::mutex replica_mu;
  std::vector<replication::ReplicaLagInfo> replicas;  // guarded by replica_mu

  std::string ToString() const;
};

// A deliberately heavy IC5-class plan used by cancellation tests and the
// STRESS wire kind: full person scan, distinct multi-hop knows expansion
// (eager BFS per source row — the per-row cancellation checkpoint path),
// then the posts of every reached friend, collapsed to a count so the
// response frame stays tiny while the work does not.
Plan BuildStressExpand(const LdbcContext& ctx, int hops);

class Server {
 public:
  // `graph` and `data` must outlive the server. The graph must be
  // finalized (bulk load done).
  Server(Graph* graph, const SnbData* data, ServiceConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts the acceptor + reaper threads. Returns false
  // with `*error` set on socket failure.
  bool Start(std::string* error = nullptr);

  // Port actually bound (useful with config.port == 0).
  uint16_t port() const { return port_; }

  // Graceful drain; see file comment. Idempotent.
  void Drain(double grace_seconds = 5.0);

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  size_t ActiveSessions() const;

  // Failover: flips a replica-mode server into a writable primary. The
  // caller must have stopped the replication stream first (the applier no
  // longer advances the graph); the already-running log shipper then lets
  // the promoted node feed its own replicas.
  void PromoteToPrimary();
  bool replica_mode() const {
    return replica_mode_.load(std::memory_order_acquire);
  }
  replication::LogShipper* shipper() { return shipper_.get(); }

  const ServiceStats& stats() const { return stats_; }
  const QueryCostModel& cost_model() const { return cost_model_; }
  const AdmissionQueue& admission() const { return *admission_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Session {
    uint64_t id = 0;
    int fd = -1;
    std::atomic<Version> snapshot{0};
    // GC registration of the pinned snapshot. Invariant: while `pin` is
    // valid, pin.version() <= snapshot, so queries executing at the
    // session snapshot can safely re-register it (protected handover).
    // Guarded by snap_mu together with the `snapshot` store; `snapshot`
    // stays an atomic for lock-free readers.
    std::mutex snap_mu;
    SnapshotHandle pin;
    std::atomic<int64_t> pinned_at_ns{0};  // when pin's version last moved
    std::atomic<int64_t> last_active_ns{0};
    std::atomic<bool> closed{false};  // no further frames may be written
    std::atomic<bool> done{false};    // connection thread finished

    std::mutex write_mu;  // serializes response frames on fd

    std::mutex param_mu;
    std::unordered_map<std::string, std::string> params;

    // One admitted-but-unanswered query, as seen by control frames
    // (kCancel/kKillQuery) and the governor's watchdog sweep.
    struct InflightQuery {
      std::shared_ptr<QueryContext> ctx;
      std::string name;         // cost-model key, e.g. "IC5"
      int64_t admitted_ns = 0;  // when the query entered admission
      bool killed = false;      // watchdog already shot it (log/count once)
    };
    std::mutex inflight_mu;
    std::unordered_map<uint64_t, InflightQuery> inflight;

    // Prepared-statement handles (kPrepare/kExecute). Handles are scoped
    // to the session and die with it; the plan templates they point into
    // live in the server-wide PlanCache and are shared across sessions.
    // `params` keeps THIS session's Prepare-time literals — the shared
    // template's defaults may belong to whichever session populated the
    // cache first.
    struct PreparedHandle {
      std::shared_ptr<const PreparedPlan> plan;
      std::vector<Value> params;
    };
    std::mutex prepared_mu;
    std::unordered_map<uint64_t, PreparedHandle> prepared;
    uint64_t next_handle = 1;

    // Queries admitted but not yet answered; the connection must outlive
    // them (cleanup waits for pending == 0).
    std::mutex pending_mu;
    std::condition_variable pending_cv;
    int pending = 0;
  };

  struct SessionEntry {
    std::shared_ptr<Session> session;
    std::thread thread;
  };

  void AcceptLoop();
  void ReaperLoop();
  // Governor watchdog (own thread, started only when watchdog_grace_ms >
  // 0): sweeps every session's in-flight queries and force-cancels any
  // still running past deadline + grace, logging a slow-query report.
  void WatchdogLoop();
  // Cancels every in-flight query (any session) with this client-assigned
  // id; returns how many were cancelled. Backs the kKillQuery admin frame.
  uint32_t KillQuery(uint64_t query_id);
  // Mirrors the global memory gauge + admission counters into
  // ServiceStats (reaper cadence).
  void RefreshGovernorStats();
  // Reaper-thread helpers: idle-session reaping (only when
  // idle_timeout_seconds > 0), the GC driver (interval + byte trigger),
  // and the watermark-stall detector. All run on the reaper cadence.
  void ReapIdleSessions();
  void MaybeRunGc(int64_t* last_gc_ns);
  // Background compaction driver (compact_interval_seconds cadence): hands
  // Graph::CompactRelations to the shared TaskScheduler as a low-priority
  // job, at most one in flight.
  void MaybeRunCompaction(int64_t* last_compact_ns);
  // Copies the graph's lifetime compaction totals into stats_ (reaper tick
  // + end of every background pass).
  void MirrorCompactionStats();
  // Reaper-thread statistics refresh (stats_refresh_seconds cadence).
  void MaybeRefreshStats(int64_t* last_stats_ns);
  void CheckWatermarkStall();
  // Copies the shipper's per-replica lag view into ServiceStats.
  void RefreshReplicationStats();
  // Installs `fresh` (an already-registered handle) as the session's pin
  // under snap_mu, refusing to move the snapshot backwards; returns the
  // session's resulting snapshot version.
  Version RepinSession(Session* session, SnapshotHandle fresh);
  void HandleConnection(std::shared_ptr<Session> session);
  // Dispatches one parsed frame; returns false when the connection should
  // close (kBye or a protocol violation).
  bool HandleFrame(const std::shared_ptr<Session>& session,
                   const std::string& payload);
  // Turns the connection into a replication subscription: registers with
  // the log shipper (which streams snapshot/backlog/live frames from its
  // own sender thread) and reads kReplicaAck frames until the replica
  // disconnects. Always returns false — the connection never goes back to
  // regular query service.
  bool HandleSubscribe(const std::shared_ptr<Session>& session,
                       WireReader* in);
  void HandleQuery(const std::shared_ptr<Session>& session, WireReader* in);
  // Admission + snapshot pinning + job dispatch for an already-decoded
  // request (shared by ad-hoc kQuery and prepared kExecute frames).
  void AdmitQuery(const std::shared_ptr<Session>& session, QueryRequest req);
  // kPrepare: normalize, fetch-or-build the shared plan template, mint a
  // session handle, answer kPrepareOk. Runs on the connection thread.
  void HandlePrepare(const std::shared_ptr<Session>& session,
                     const std::string& text);
  void HandleExecute(const std::shared_ptr<Session>& session, WireReader* in);
  // Cache lookup / compile+optimize+insert for `normalized_text` (which
  // must already be canonical). `hints` are per-slot literal values used
  // for costing; `cache_hit` reports whether the template came from the
  // cache.
  Status PrepareStatement(const std::string& normalized_text,
                          const std::vector<Value>& hints,
                          std::shared_ptr<const PreparedPlan>* out,
                          bool* cache_hit);
  // Mirrors the PlanCache counters into ServiceStats.
  void SyncPlanCacheStats();
  QueryResponse ExecuteQuery(Session* session, const QueryRequest& req,
                             Version snapshot, QueryContext* ctx);
  QueryResponse ExecutePrepared(Session* session, const QueryRequest& req,
                                Version snapshot, QueryContext* ctx);
  // Writes a frame honoring session->closed / write_mu.
  bool SendToSession(Session* session, const std::string& payload);
  void CancelInflight(Session* session);
  // Joins finished session threads and erases their entries.
  void ReapDoneSessions();

  Graph* graph_;
  const SnbData* data_;
  ServiceConfig config_;
  LdbcContext ldbc_;
  ParamGen param_gen_;
  QueryCostModel cost_model_;
  std::unique_ptr<AdmissionQueue> admission_;

  // Process-wide governor gauge; every query budget mirrors into it.
  // Outlives all sessions (declared before them, destroyed after Drain).
  GlobalMemoryGauge memory_gauge_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_reaper_{false};
  std::atomic<bool> stop_watchdog_{false};
  std::thread acceptor_;
  std::thread reaper_;
  std::thread watchdog_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, SessionEntry> sessions_;
  uint64_t next_session_id_ = 1;

  // Last session already logged as a watermark stall (avoid log spam).
  uint64_t stall_logged_session_ = 0;

  // One background compaction job in flight at a time; the reaper skips
  // the cadence while the previous pass still runs on the scheduler.
  std::shared_ptr<std::atomic<bool>> compaction_inflight_ =
      std::make_shared<std::atomic<bool>>(false);

  // WAL shipping (always constructed, so a promoted replica can serve
  // subscribers without a restart). Shut down at the end of Drain, after
  // every subscriber connection thread has exited.
  std::unique_ptr<replication::LogShipper> shipper_;
  std::atomic<bool> replica_mode_{false};

  // Shared across sessions; entries invalidate via the catalog stats
  // epoch. Initialized in the constructor from plan_cache_entries.
  PlanCache plan_cache_;

  ServiceStats stats_;
};

}  // namespace ges::service

#endif  // GES_SERVICE_SERVER_H_
