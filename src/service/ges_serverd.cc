// ges_serverd: standalone GES query service daemon.
//
// Generates the synthetic SNB graph at the requested scale factor, then
// serves the wire protocol (service/protocol.h) until SIGTERM/SIGINT,
// which triggers a graceful drain: stop accepting, let in-flight queries
// finish (or cancel them past the grace period), flush stats to stdout.
//
// With --data-dir the store is durable (DESIGN.md §10): on first start the
// generated graph is checkpointed there and every update commit is WAL-
// logged; on restart the daemon recovers (snapshot + WAL replay) BEFORE
// accepting connections, and a clean SIGTERM drain ends with a final
// checkpoint so the next start replays nothing.
//
// Quickstart:
//   ges_serverd --port 7687 --sf 0.05 --data-dir /var/lib/ges &
//   # ... connect with service::Client, see README ...
//   kill -TERM %1
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "datagen/snb_generator.h"
#include "replication/replica.h"
#include "service/server.h"

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_promote{false};

void OnSignal(int) { g_shutdown.store(true); }
void OnPromote(int) { g_promote.store(true); }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N           listen port (default 0 = ephemeral)\n"
      "  --host H           bind address (default 127.0.0.1)\n"
      "  --sf X             SNB scale factor (default 0.05)\n"
      "  --workers N        query worker threads (default 4)\n"
      "  --threads N        intra-query morsel threads (default 1)\n"
      "  --queue N          admission queue capacity (default 128)\n"
      "  --policy P         admission policy: prio | fifo (default prio)\n"
      "  --max-connections N  concurrent session limit (default 64)\n"
      "  --idle-timeout S   reap sessions idle for S seconds (default off)\n"
      "  --gc-interval S    MVCC version-chain GC cadence in seconds\n"
      "                     (default 1; 0 disables interval-driven GC)\n"
      "  --gc-trigger-mb N  prune immediately once overlay garbage exceeds\n"
      "                     N MiB (default 32; 0 disables the byte trigger)\n"
      "  --watermark-alert S  log + export a session holding the GC\n"
      "                     watermark longer than S seconds (default 30)\n"
      "  --compact-interval-seconds S  background delta-merge compaction\n"
      "                     cadence in seconds; runs as a low-priority\n"
      "                     scheduler job (default 0 = disabled)\n"
      "  --compact-trigger-frag-pct F  fragmentation threshold in [0,1]: a\n"
      "                     relation is compacted once tombstones + slack\n"
      "                     exceed F of its adjacency pool (default 0.3)\n"
      "  --grace S          drain grace period on shutdown (default 5)\n"
      "  --data-dir DIR     durable store directory (snapshot + WAL);\n"
      "                     recovers from it on restart (default: in-memory)\n"
      "  --fsync P          WAL fsync policy: always | interval | never\n"
      "                     (default always)\n"
      "  --fsync-interval-ms N  group-commit flush period for\n"
      "                     --fsync interval (default 10)\n"
      "  --wal-rotate-mb N  auto-checkpoint once the WAL exceeds N MiB\n"
      "                     (default 64)\n"
      "  --replicate-from HOST:PORT  run as a read-only replica of the\n"
      "                     primary at HOST:PORT (bootstraps via snapshot\n"
      "                     + WAL catch-up; SIGUSR1 promotes to primary)\n"
      "  --replica-name S   name reported to the primary (default: host)\n"
      "  --min-replica-acks N  semi-sync: an update answers OK only after\n"
      "                     N replicas acked it (default 0 = async)\n"
      "  --ack-timeout S    semi-sync ack wait bound (default 2)\n"
      "  --ryw-wait-ms N    max wait for a read's min_version floor before\n"
      "                     answering LAGGING (default 50)\n"
      "  --query-memory-limit-mb N  per-query memory budget; a query whose\n"
      "                     charged intermediate state exceeds N MiB dies\n"
      "                     with RESOURCE_EXHAUSTED (default 0 = unlimited)\n"
      "  --memory-watermark-mb N  soft process watermark: at admission,\n"
      "                     once in-flight budgets total N MiB, long\n"
      "                     queries answer OVERLOADED; at 125%% of N\n"
      "                     everything is shed (default 0 = off)\n"
      "  --watchdog-grace-ms N  force-cancel queries still running N ms\n"
      "                     past their deadline and log a slow-query\n"
      "                     report (default 0 = off)\n"
      "  --plan-cache-entries N  prepared-plan LRU cache capacity\n"
      "                     (default 128; 0 disables caching)\n"
      "  --stats-refresh-seconds S  optimizer statistics refresh cadence;\n"
      "                     a refresh is skipped while the graph version is\n"
      "                     unchanged (default 5; <=0 disables periodic\n"
      "                     refresh, stats are still built at startup)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ges::service::ServiceConfig config;
  double sf = 0.05;
  double grace = 5.0;
  std::string data_dir;
  ges::DurabilityOptions dur;
  std::string replicate_from;
  std::string replica_name;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--host") {
      config.host = next();
    } else if (arg == "--sf") {
      sf = std::atof(next());
    } else if (arg == "--workers") {
      config.query_workers = std::atoi(next());
    } else if (arg == "--threads") {
      config.intra_query_threads = std::atoi(next());
    } else if (arg == "--queue") {
      config.queue_capacity = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--policy") {
      std::string p = next();
      if (p == "fifo") {
        config.policy = ges::service::AdmissionPolicy::kFifo;
      } else if (p == "prio" || p == "prioritized") {
        config.policy = ges::service::AdmissionPolicy::kPrioritized;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--max-connections") {
      config.max_connections = std::atoi(next());
    } else if (arg == "--idle-timeout") {
      config.idle_timeout_seconds = std::atof(next());
    } else if (arg == "--gc-interval") {
      config.gc_interval_seconds = std::atof(next());
    } else if (arg == "--gc-trigger-mb") {
      config.gc_trigger_bytes = static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--watermark-alert") {
      config.watermark_alert_seconds = std::atof(next());
    } else if (arg == "--compact-interval-seconds") {
      config.compact_interval_seconds = std::atof(next());
    } else if (arg == "--compact-trigger-frag-pct") {
      config.compact_trigger_frag_pct = std::atof(next());
    } else if (arg == "--grace") {
      grace = std::atof(next());
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--fsync") {
      if (!ges::ParseFsyncPolicy(next(), &dur.wal.fsync_policy)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--fsync-interval-ms") {
      dur.wal.fsync_interval_ms = std::atoi(next());
    } else if (arg == "--wal-rotate-mb") {
      dur.checkpoint_wal_bytes =
          static_cast<uint64_t>(std::atoll(next())) << 20;
    } else if (arg == "--replicate-from") {
      replicate_from = next();
    } else if (arg == "--replica-name") {
      replica_name = next();
    } else if (arg == "--min-replica-acks") {
      config.min_replica_acks = std::atoi(next());
    } else if (arg == "--ack-timeout") {
      config.replica_ack_timeout_seconds = std::atof(next());
    } else if (arg == "--ryw-wait-ms") {
      config.ryw_wait_ms = std::atof(next());
    } else if (arg == "--query-memory-limit-mb") {
      config.query_memory_limit_bytes =
          static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--memory-watermark-mb") {
      config.memory_watermark_bytes =
          static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--watchdog-grace-ms") {
      config.watchdog_grace_ms = std::atof(next());
    } else if (arg == "--plan-cache-entries") {
      config.plan_cache_entries = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--stats-refresh-seconds") {
      config.stats_refresh_seconds = std::atof(next());
    } else {
      Usage(argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }

  // Recovery/bootstrap happens HERE, before the server binds: no
  // connection is ever accepted against a partially recovered graph.
  std::unique_ptr<ges::Graph> owned_graph;
  std::unique_ptr<ges::replication::Replica> replica;
  ges::Graph* graph = nullptr;
  ges::SnbData data;
  if (!replicate_from.empty()) {
    size_t colon = replicate_from.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr,
                   "[ges_serverd] --replicate-from wants HOST:PORT, got %s\n",
                   replicate_from.c_str());
      return 2;
    }
    ges::replication::Replica::Options ropts;
    ropts.primary_host = replicate_from.substr(0, colon);
    ropts.primary_port =
        static_cast<uint16_t>(std::atoi(replicate_from.c_str() + colon + 1));
    ropts.name = replica_name.empty()
                     ? config.host + ":" + std::to_string(config.port)
                     : replica_name;
    ropts.data_dir = data_dir;
    ropts.dur = dur;
    ropts.reconnect_attempts = 10;
    std::fprintf(stderr, "[ges_serverd] bootstrapping replica from %s ...\n",
                 replicate_from.c_str());
    replica = std::make_unique<ges::replication::Replica>(std::move(ropts));
    ges::Status s = replica->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "[ges_serverd] replica bootstrap failed: %s\n",
                   s.message().c_str());
      return 1;
    }
    graph = replica->graph();
    data = ges::RebuildSnbData(graph);
    config.replica = true;
    std::fprintf(
        stderr,
        "[ges_serverd] replica caught up to v%llu (primary at v%llu); "
        "serving reads, SIGUSR1 promotes\n",
        static_cast<unsigned long long>(replica->applied_version()),
        static_cast<unsigned long long>(replica->primary_version()));
  } else if (!data_dir.empty() && ges::Graph::SnapshotExists(data_dir)) {
    std::fprintf(stderr, "[ges_serverd] recovering from %s ...\n",
                 data_dir.c_str());
    ges::RecoveryInfo info;
    ges::Status s = ges::Graph::Open(data_dir, dur, &owned_graph, &info);
    if (!s.ok()) {
      std::fprintf(stderr, "[ges_serverd] recovery failed: %s\n",
                   s.message().c_str());
      return 1;
    }
    graph = owned_graph.get();
    std::fprintf(stderr,
                 "[ges_serverd] recovered: snapshot v%llu, %llu txns "
                 "replayed, %llu skipped, %llu bytes of torn tail cut\n",
                 static_cast<unsigned long long>(info.snapshot_version),
                 static_cast<unsigned long long>(info.replayed_txns),
                 static_cast<unsigned long long>(info.skipped_txns),
                 static_cast<unsigned long long>(info.truncated_bytes));
    data = ges::RebuildSnbData(graph);
  } else {
    std::fprintf(stderr, "[ges_serverd] generating SNB graph sf=%g ...\n",
                 sf);
    owned_graph = std::make_unique<ges::Graph>();
    graph = owned_graph.get();
    ges::SnbConfig snb;
    snb.scale_factor = sf;
    data = ges::GenerateSnb(snb, graph);
    if (!data_dir.empty()) {
      ges::Status s = graph->EnableDurability(data_dir, dur);
      if (!s.ok()) {
        std::fprintf(stderr, "[ges_serverd] durability setup failed: %s\n",
                     s.message().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "[ges_serverd] initial checkpoint written to %s "
                   "(fsync=%s)\n",
                   data_dir.c_str(),
                   ges::FsyncPolicyName(dur.wal.fsync_policy));
    }
  }
  std::fprintf(stderr, "[ges_serverd] graph ready: %zu vertices, %zu edges\n",
               graph->NumVerticesTotal(), graph->NumEdgesTotal());

  ges::service::Server server(graph, &data, config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "[ges_serverd] start failed: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[ges_serverd] listening on %s:%u (policy=%s, workers=%d)\n",
               config.host.c_str(), server.port(),
               AdmissionPolicyName(config.policy), config.query_workers);

  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction sp {};
  sp.sa_handler = OnPromote;
  ::sigaction(SIGUSR1, &sp, nullptr);

  while (!g_shutdown.load(std::memory_order_acquire)) {
    if (g_promote.exchange(false) && replica != nullptr) {
      // Failover: stop the replication stream, then open the graph for
      // writes. The log shipper is already running, so replicas of the
      // dead primary can re-subscribe here.
      std::fprintf(stderr,
                   "[ges_serverd] SIGUSR1: promoting to primary at v%llu\n",
                   static_cast<unsigned long long>(
                       replica->applied_version()));
      ges::Status s = replica->Promote();
      if (s.ok()) {
        server.PromoteToPrimary();
        std::fprintf(stderr, "[ges_serverd] promotion complete\n");
      } else {
        std::fprintf(stderr, "[ges_serverd] promotion failed: %s\n",
                     s.message().c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "[ges_serverd] draining (grace %.1fs) ...\n", grace);
  if (replica != nullptr) replica->Stop();
  server.Drain(grace);
  if (graph->durable() && !graph->read_only()) {
    // Clean shutdowns leave an empty WAL behind: the next start loads the
    // snapshot and replays nothing.
    ges::Status s = graph->Checkpoint();
    if (s.ok()) {
      std::fprintf(stderr, "[ges_serverd] final checkpoint written\n");
    } else {
      std::fprintf(stderr, "[ges_serverd] final checkpoint failed: %s\n",
                   s.message().c_str());
    }
  }
  std::printf("%s\n", server.stats().ToString().c_str());
  std::fprintf(stderr, "[ges_serverd] bye\n");
  return 0;
}
