// ges_serverd: standalone GES query service daemon.
//
// Generates the synthetic SNB graph at the requested scale factor, then
// serves the wire protocol (service/protocol.h) until SIGTERM/SIGINT,
// which triggers a graceful drain: stop accepting, let in-flight queries
// finish (or cancel them past the grace period), flush stats to stdout.
//
// Quickstart:
//   ges_serverd --port 7687 --sf 0.05 &
//   # ... connect with service::Client, see README ...
//   kill -TERM %1
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "datagen/snb_generator.h"
#include "service/server.h"

namespace {

std::atomic<bool> g_shutdown{false};

void OnSignal(int) { g_shutdown.store(true); }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N           listen port (default 0 = ephemeral)\n"
      "  --host H           bind address (default 127.0.0.1)\n"
      "  --sf X             SNB scale factor (default 0.05)\n"
      "  --workers N        query worker threads (default 4)\n"
      "  --threads N        intra-query morsel threads (default 1)\n"
      "  --queue N          admission queue capacity (default 128)\n"
      "  --policy P         admission policy: prio | fifo (default prio)\n"
      "  --max-connections N  concurrent session limit (default 64)\n"
      "  --idle-timeout S   reap sessions idle for S seconds (default off)\n"
      "  --grace S          drain grace period on shutdown (default 5)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ges::service::ServiceConfig config;
  double sf = 0.05;
  double grace = 5.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--host") {
      config.host = next();
    } else if (arg == "--sf") {
      sf = std::atof(next());
    } else if (arg == "--workers") {
      config.query_workers = std::atoi(next());
    } else if (arg == "--threads") {
      config.intra_query_threads = std::atoi(next());
    } else if (arg == "--queue") {
      config.queue_capacity = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--policy") {
      std::string p = next();
      if (p == "fifo") {
        config.policy = ges::service::AdmissionPolicy::kFifo;
      } else if (p == "prio" || p == "prioritized") {
        config.policy = ges::service::AdmissionPolicy::kPrioritized;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--max-connections") {
      config.max_connections = std::atoi(next());
    } else if (arg == "--idle-timeout") {
      config.idle_timeout_seconds = std::atof(next());
    } else if (arg == "--grace") {
      grace = std::atof(next());
    } else {
      Usage(argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }

  std::fprintf(stderr, "[ges_serverd] generating SNB graph sf=%g ...\n", sf);
  ges::Graph graph;
  ges::SnbConfig snb;
  snb.scale_factor = sf;
  ges::SnbData data = ges::GenerateSnb(snb, &graph);
  std::fprintf(stderr, "[ges_serverd] graph ready: %zu vertices, %zu edges\n",
               graph.NumVerticesTotal(), graph.NumEdgesTotal());

  ges::service::Server server(&graph, &data, config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "[ges_serverd] start failed: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[ges_serverd] listening on %s:%u (policy=%s, workers=%d)\n",
               config.host.c_str(), server.port(),
               AdmissionPolicyName(config.policy), config.query_workers);

  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  while (!g_shutdown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "[ges_serverd] draining (grace %.1fs) ...\n", grace);
  server.Drain(grace);
  std::printf("%s\n", server.stats().ToString().c_str());
  std::fprintf(stderr, "[ges_serverd] bye\n");
  return 0;
}
