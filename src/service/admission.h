// Admission control in front of the shared execution resources.
//
// The paper's Figure 2 problem: one long analytical query (IC5/IC9-class)
// admitted naively can occupy every worker and push short-read tail
// latency off a cliff. The service therefore funnels every query through a
// *bounded* AdmissionQueue:
//
//   * QueryCostModel classifies queries short/long from an EWMA of the
//     latencies actually observed per query name (seeded by priors so the
//     first IC5 of the day is already treated as long);
//   * kPrioritized dequeues short queries first and caps the number of
//     concurrently running long queries below the worker count, so at
//     least one worker is always available to drain shorts;
//   * when the queue is full, TrySubmit fails and the caller answers
//     RESOURCE_EXHAUSTED — backpressure is explicit, the queue never grows
//     without bound.
//
// The queue owns a small pool of query worker threads (inter-query
// parallelism); each query may additionally fan out morsels onto the
// process-wide TaskScheduler (intra-query parallelism), exactly like the
// harness driver does.
#ifndef GES_SERVICE_ADMISSION_H_
#define GES_SERVICE_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ges::service {

enum class AdmissionPolicy : uint8_t {
  kFifo = 0,         // strict arrival order, no class distinction
  kPrioritized = 1,  // short-first + long-running cap
};

const char* AdmissionPolicyName(AdmissionPolicy p);

// Per-query-name latency EWMA driving the short/long split. Thread-safe.
class QueryCostModel {
 public:
  explicit QueryCostModel(double short_threshold_ms = 5.0,
                          double alpha = 0.25)
      : short_threshold_ms_(short_threshold_ms), alpha_(alpha) {}

  // Estimated latency for `name`. Unseen names get a prior: IC* and
  // STRESS* start long (the complex-read class the paper profiles),
  // everything else starts short.
  double EstimateMillis(const std::string& name) const;
  bool IsShort(const std::string& name) const {
    return EstimateMillis(name) < short_threshold_ms_;
  }

  // Folds an observed latency into the estimate.
  void Observe(const std::string& name, double millis);

  double short_threshold_ms() const { return short_threshold_ms_; }

 private:
  double Prior(const std::string& name) const;

  double short_threshold_ms_;
  double alpha_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, double> ewma_ms_;
};

struct AdmissionStats {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> rejected{0};   // queue full
  // Per-class split of `rejected` (short-read vs long-analytic), so an
  // operator can tell "the queue is drowning in longs" from "shorts are
  // being refused too" at a glance (ServiceStats mirrors these).
  std::atomic<uint64_t> rejected_short{0};
  std::atomic<uint64_t> rejected_long{0};
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> executed_long{0};
  // Peak queue depth observed (diagnostics for capacity tuning).
  std::atomic<uint64_t> peak_queued{0};
};

// A unit of admitted work. `run` executes the query AND delivers its
// response; the queue only schedules and times it.
struct QueryJob {
  std::string name;            // cost-model key, e.g. "IC5"
  std::function<void()> run;
};

class AdmissionQueue {
 public:
  AdmissionQueue(AdmissionPolicy policy, size_t capacity, int num_workers,
                 QueryCostModel* cost_model);
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Enqueues `job` unless the queue is at capacity or intake is closed.
  // Returns false without running the job in either case (the caller sends
  // the RESOURCE_EXHAUSTED / SHUTTING_DOWN response).
  bool TrySubmit(QueryJob job);

  // Stops accepting new work (drain phase 1). Queued jobs still run.
  void CloseIntake();

  // Blocks until the queue is empty and no job is running, or the grace
  // period elapses. Returns true if idle was reached.
  bool WaitIdle(double grace_seconds);

  // CloseIntake + join workers. Queued jobs that never ran are dropped;
  // callers that need them answered must drain first. Idempotent.
  void Shutdown();

  size_t queued() const;
  const AdmissionStats& stats() const { return stats_; }

 private:
  struct Item {
    uint64_t seq;
    bool is_short;
    QueryJob job;
  };

  // Pops per policy; requires mu_ held. Returns false if nothing eligible.
  bool PopLocked(Item* out);
  void WorkerLoop();

  AdmissionPolicy policy_;
  size_t capacity_;
  int max_long_running_;
  QueryCostModel* cost_model_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for eligible items
  std::condition_variable idle_cv_;  // WaitIdle waits for quiescence
  std::deque<Item> short_q_;
  std::deque<Item> long_q_;
  uint64_t next_seq_ = 0;
  int running_ = 0;
  int running_long_ = 0;
  bool intake_closed_ = false;
  bool stop_ = false;

  std::vector<std::thread> workers_;
  AdmissionStats stats_;
};

}  // namespace ges::service

#endif  // GES_SERVICE_ADMISSION_H_
