#include "service/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/timer.h"
#include "executor/optimizer.h"
#include "frontend/parser.h"
#include "runtime/scheduler.h"

namespace ges::service {

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "connections: accepted=" << connections_accepted.load()
     << " rejected=" << connections_rejected.load()
     << " reaped=" << sessions_reaped.load()
     << "\nqueries: received=" << queries_received.load()
     << " ok=" << queries_ok.load() << " rejected=" << queries_rejected.load()
     << " interrupted=" << queries_interrupted.load()
     << " error=" << queries_error.load()
     << "\ngc: runs=" << gc_runs.load()
     << " versions_pruned=" << versions_pruned.load()
     << " bytes_reclaimed=" << gc_bytes_reclaimed.load()
     << " overlay_bytes=" << overlay_bytes.load()
     << " watermark=" << gc_watermark.load()
     << " watermark_held_by_session=" << watermark_held_by_session.load()
     << " stalls=" << watermark_stalls.load()
     << "\ncompaction: runs=" << compaction_runs.load()
     << " bytes_reclaimed=" << compaction_bytes_reclaimed.load()
     << " segments=" << compaction_segments.load()
     << "\ngovernor: killed=" << governor_killed.load()
     << " shed=" << governor_shed.load()
     << " global_bytes=" << governor_global_bytes.load()
     << " peak_global_bytes=" << governor_peak_global_bytes.load()
     << "\nadmission: rejected_short=" << admission_rejected_short.load()
     << " rejected_long=" << admission_rejected_long.load()
     << " queue_depth=" << admission_queue_depth.load()
     << "\nplan_cache: hits=" << plan_cache_hits.load()
     << " misses=" << plan_cache_misses.load()
     << " evictions=" << plan_cache_evictions.load()
     << "\nintersect: probes=" << intersect_probes.load()
     << " gallops=" << intersect_gallops.load()
     << " skipped=" << intersect_skipped.load()
     << " emitted=" << intersect_emitted.load()
     << "\nreplication: replicas=" << replicas_connected.load()
     << " frames_shipped=" << wal_frames_shipped.load()
     << " bytes_shipped=" << wal_bytes_shipped.load()
     << " ryw_lagging=" << ryw_lagging.load()
     << " semisync_timeouts=" << semisync_timeouts.load();
  {
    std::lock_guard<std::mutex> lk(replica_mu);
    for (const auto& r : replicas) {
      os << "\n  replica \"" << r.name << "\" (sub " << r.subscriber_id
         << "): applied=v" << r.applied_version
         << " lag_commits=" << r.lag_commits << " lag_bytes=" << r.lag_bytes
         << " last_ack_age_s=" << r.last_ack_age_s
         << (r.connected ? "" : " DISCONNECTED");
    }
  }
  return os.str();
}

Plan BuildStressExpand(const LdbcContext& ctx, int hops) {
  PlanBuilder b("STRESS" + std::to_string(hops));
  b.ScanByLabel("p", ctx.s.person)
      .Expand("p", "f", {ctx.knows}, 1, std::max(1, hops),
              /*distinct=*/true, /*exclude_start=*/true)
      .Expand("f", "post", {ctx.person_posts})
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .Output({"cnt"});
  return b.Build();
}

namespace {

// Bookkeeping that must happen exactly once per admitted query, whether
// the job ran, was rejected, or was dropped during shutdown: answer the
// client if nobody else did, then release the session's inflight slot.
// Held by shared_ptr from both the submitting connection thread and the
// job closure; the last owner (normally the worker, after run()) settles.
struct JobGuard {
  JobGuard(std::function<bool(const std::string&)> send, uint64_t query_id)
      : send_frame(std::move(send)), query_id(query_id) {}

  ~JobGuard() {
    if (!responded.load(std::memory_order_acquire)) {
      QueryResponse resp;
      resp.query_id = query_id;
      resp.status = drop_status;
      resp.message = "query dropped before execution";
      send_frame(EncodeQueryResponse(resp));
    }
    if (release) release();
  }

  std::function<bool(const std::string&)> send_frame;
  uint64_t query_id;
  std::atomic<bool> responded{false};
  WireStatus drop_status = WireStatus::kShuttingDown;
  std::function<void()> release;  // inflight-erase + pending-decrement
};

std::string QueryName(const QueryRequest& req) {
  switch (req.kind) {
    case QueryKind::kIC:
      return "IC" + std::to_string(req.number);
    case QueryKind::kIS:
      return "IS" + std::to_string(req.number);
    case QueryKind::kIU:
      return "IU" + std::to_string(req.number);
    case QueryKind::kStress:
      return "STRESS" + std::to_string(req.number);
    case QueryKind::kSleep:
      return "SLEEP";
    case QueryKind::kBI:
      return "BI" + std::to_string(req.number);
    case QueryKind::kPrepared:
      return "PREPARED";
    case QueryKind::kHog:
      return "HOG";
  }
  return "?";
}

WireStatus StatusOfInterrupt(InterruptReason r) {
  switch (r) {
    case InterruptReason::kCancelled:
      return WireStatus::kCancelled;
    case InterruptReason::kMemoryExceeded:
      return WireStatus::kResourceExhausted;
    default:
      return WireStatus::kDeadlineExceeded;
  }
}

// Response detail for an interrupted query; a budget kill names the bytes
// so the client log is actionable without server access.
std::string InterruptMessage(InterruptReason r, const QueryContext* ctx) {
  if (r == InterruptReason::kMemoryExceeded && ctx != nullptr &&
      ctx->budget() != nullptr) {
    return "query memory budget exceeded: peak " +
           std::to_string(ctx->budget()->peak()) + " bytes > limit " +
           std::to_string(ctx->budget()->limit()) + " bytes";
  }
  return InterruptReasonName(r);
}

}  // namespace

Server::Server(Graph* graph, const SnbData* data, ServiceConfig config)
    : graph_(graph),
      data_(data),
      config_(std::move(config)),
      ldbc_(LdbcContext::Resolve(*graph, data->schema)),
      param_gen_(graph, data, /*seed=*/1),
      cost_model_(config_.short_threshold_ms),
      plan_cache_(config_.plan_cache_entries) {
  replica_mode_.store(config_.replica, std::memory_order_release);
}

Server::~Server() { Drain(/*grace_seconds=*/1.0); }

bool Server::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + ::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + config_.host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  admission_ = std::make_unique<AdmissionQueue>(
      config_.policy, config_.queue_capacity, config_.query_workers,
      &cost_model_);
  // The shipper exists on every server (a promoted replica feeds its own
  // replicas without a restart); with no subscribers it costs one branch
  // per commit.
  shipper_ = std::make_unique<replication::LogShipper>(graph_);
  shipper_->Start();
  // Initial statistics snapshot so the optimizer is costed from the first
  // query on; the reaper refreshes it on the stats_refresh_seconds cadence.
  graph_->RebuildStats();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  reaper_ = std::thread([this] { ReaperLoop(); });
  if (config_.watchdog_grace_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
  return true;
}

void Server::PromoteToPrimary() {
  replica_mode_.store(false, std::memory_order_release);
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (drain) or fatal error
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (ActiveSessions() >= static_cast<size_t>(config_.max_connections)) {
      // Bounded connection count: refuse with an explicit error frame
      // instead of letting connections pile up half-served.
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kError));
      b.PutU8(static_cast<uint8_t>(WireStatus::kResourceExhausted));
      b.PutString("connection limit reached");
      WriteFrame(fd, b.data());
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      // Lingering close: drain the client's (already in-flight) Hello
      // before closing, otherwise the close races the client's write and
      // the resulting RST wipes the refusal frame from its receive queue.
      ::shutdown(fd, SHUT_WR);
      struct timeval tv{1, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      char drain[256];
      while (::recv(fd, drain, sizeof(drain), 0) > 0) {
      }
      ::close(fd);
      continue;
    }

    auto session = std::make_shared<Session>();
    session->fd = fd;
    // Pin + snapshot are set from the same registration, so the session's
    // reads are GC-protected from the first frame on.
    SnapshotHandle pin = graph_->PinSnapshot();
    session->snapshot.store(pin.version(), std::memory_order_release);
    session->pin = std::move(pin);
    session->pinned_at_ns.store(QueryContext::NowNanos(),
                                std::memory_order_release);
    session->last_active_ns.store(QueryContext::NowNanos(),
                                  std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      session->id = next_session_id_++;
      SessionEntry entry;
      entry.session = session;
      entry.thread = std::thread([this, session] { HandleConnection(session); });
      sessions_.emplace(session->id, std::move(entry));
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ReaperLoop() {
  // The reaper doubles as the MVCC GC driver: GC cadence is deliberately
  // NOT tied to idle_timeout_seconds (the default 0 disables idle reaping
  // only), so a server that never reaps sessions still collects garbage.
  int64_t last_gc_ns = QueryContext::NowNanos();
  int64_t last_stats_ns = QueryContext::NowNanos();
  int64_t last_compact_ns = QueryContext::NowNanos();
  while (!stop_reaper_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ReapDoneSessions();
    ReapIdleSessions();
    MaybeRunGc(&last_gc_ns);
    MaybeRunCompaction(&last_compact_ns);
    MaybeRefreshStats(&last_stats_ns);
    CheckWatermarkStall();
    RefreshReplicationStats();
    RefreshGovernorStats();
  }
}

void Server::RefreshGovernorStats() {
  stats_.governor_global_bytes.store(memory_gauge_.used(),
                                     std::memory_order_relaxed);
  stats_.governor_peak_global_bytes.store(memory_gauge_.peak(),
                                          std::memory_order_relaxed);
  if (admission_ != nullptr) {
    const AdmissionStats& a = admission_->stats();
    stats_.admission_rejected_short.store(a.rejected_short.load(),
                                          std::memory_order_relaxed);
    stats_.admission_rejected_long.store(a.rejected_long.load(),
                                         std::memory_order_relaxed);
    stats_.admission_queue_depth.store(admission_->queued(),
                                       std::memory_order_relaxed);
  }
}

void Server::WatchdogLoop() {
  const int64_t grace_ns =
      static_cast<int64_t>(config_.watchdog_grace_ms * 1e6);
  while (!stop_watchdog_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    int64_t now = QueryContext::NowNanos();
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto& [sid, entry] : sessions_) {
      Session& s = *entry.session;
      if (s.done.load(std::memory_order_acquire)) continue;
      std::lock_guard<std::mutex> il(s.inflight_mu);
      for (auto& [qid, q] : s.inflight) {
        if (q.killed) continue;
        int64_t dl = q.ctx->deadline_nanos();
        if (dl == 0 || now < dl + grace_ns) continue;
        // Past deadline + grace: either the query is stuck between
        // cooperative checkpoints or a worker never picked up the
        // cancellation. Force the flag (idempotent) and report it.
        q.killed = true;
        q.ctx->Cancel();
        stats_.governor_killed.fetch_add(1, std::memory_order_relaxed);
        size_t peak =
            q.ctx->budget() != nullptr ? q.ctx->budget()->peak() : 0;
        std::fprintf(stderr,
                     "[ges_server] watchdog killed query %llu (%s) on "
                     "session %llu: running %.1fms past its deadline "
                     "(grace %.1fms), peak_memory=%zu bytes\n",
                     static_cast<unsigned long long>(qid), q.name.c_str(),
                     static_cast<unsigned long long>(sid), (now - dl) / 1e6,
                     config_.watchdog_grace_ms, peak);
      }
    }
  }
}

uint32_t Server::KillQuery(uint64_t query_id) {
  uint32_t killed = 0;
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto& [sid, entry] : sessions_) {
    Session& s = *entry.session;
    if (s.done.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> il(s.inflight_mu);
    auto it = s.inflight.find(query_id);
    if (it != s.inflight.end() && !it->second.killed) {
      it->second.killed = true;
      it->second.ctx->Cancel();
      ++killed;
    }
  }
  if (killed > 0) {
    stats_.governor_killed.fetch_add(killed, std::memory_order_relaxed);
  }
  return killed;
}

void Server::MaybeRefreshStats(int64_t* last_stats_ns) {
  if (config_.stats_refresh_seconds <= 0) return;
  int64_t now = QueryContext::NowNanos();
  if (now - *last_stats_ns <
      static_cast<int64_t>(config_.stats_refresh_seconds * 1e9)) {
    return;
  }
  *last_stats_ns = now;
  // Incremental: RebuildStats returns without installing (and without
  // bumping the plan-cache-invalidating epoch) while the graph version is
  // unchanged since the last snapshot.
  graph_->RebuildStats();
}

void Server::RefreshReplicationStats() {
  if (shipper_ == nullptr) return;
  std::vector<replication::ReplicaLagInfo> lag = shipper_->LagSnapshot();
  uint64_t connected = 0;
  for (const auto& r : lag) {
    if (r.connected) ++connected;
  }
  stats_.replicas_connected.store(connected, std::memory_order_relaxed);
  stats_.wal_frames_shipped.store(shipper_->frames_shipped(),
                                  std::memory_order_relaxed);
  stats_.wal_bytes_shipped.store(shipper_->bytes_shipped(),
                                 std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(stats_.replica_mu);
  stats_.replicas = std::move(lag);
}

void Server::ReapIdleSessions() {
  if (config_.idle_timeout_seconds <= 0) return;
  int64_t now = QueryContext::NowNanos();
  int64_t limit = static_cast<int64_t>(config_.idle_timeout_seconds * 1e9);
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto& [id, entry] : sessions_) {
    Session& s = *entry.session;
    if (s.done.load(std::memory_order_acquire)) continue;
    bool idle;
    {
      std::lock_guard<std::mutex> plk(s.pending_mu);
      idle = s.pending == 0;
    }
    if (idle &&
        now - s.last_active_ns.load(std::memory_order_acquire) > limit) {
      // Force EOF on the connection thread; it performs the cleanup.
      ::shutdown(s.fd, SHUT_RDWR);
      s.last_active_ns.store(now, std::memory_order_release);  // once
      stats_.sessions_reaped.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Server::MaybeRunGc(int64_t* last_gc_ns) {
  int64_t now = QueryContext::NowNanos();
  bool interval_due =
      config_.gc_interval_seconds > 0 &&
      now - *last_gc_ns >=
          static_cast<int64_t>(config_.gc_interval_seconds * 1e9);
  bool bytes_due = config_.gc_trigger_bytes > 0 &&
                   graph_->OverlayBytes() >= config_.gc_trigger_bytes;
  if (!interval_due && !bytes_due) return;
  *last_gc_ns = now;
  GcStats gc = graph_->PruneVersions();
  stats_.gc_runs.fetch_add(1, std::memory_order_relaxed);
  stats_.versions_pruned.fetch_add(gc.entries_pruned,
                                   std::memory_order_relaxed);
  stats_.gc_bytes_reclaimed.fetch_add(gc.bytes_reclaimed,
                                      std::memory_order_relaxed);
  stats_.gc_watermark.store(gc.watermark, std::memory_order_relaxed);
  stats_.overlay_bytes.store(graph_->OverlayBytes(),
                             std::memory_order_relaxed);
}

void Server::MirrorCompactionStats() {
  stats_.compaction_runs.store(graph_->compaction_runs_total(),
                               std::memory_order_relaxed);
  stats_.compaction_bytes_reclaimed.store(
      graph_->compaction_bytes_reclaimed_total(), std::memory_order_relaxed);
  stats_.compaction_segments.store(graph_->CompactedSegments(),
                                   std::memory_order_relaxed);
}

void Server::MaybeRunCompaction(int64_t* last_compact_ns) {
  // Mirror the graph's lifetime compaction totals into the stats snapshot
  // every reaper tick, so passes triggered elsewhere (snapshot load, admin
  // paths, tests sharing the graph) show up without waiting for our timer.
  MirrorCompactionStats();
  if (config_.compact_interval_seconds <= 0) return;
  int64_t now = QueryContext::NowNanos();
  if (now - *last_compact_ns <
      static_cast<int64_t>(config_.compact_interval_seconds * 1e9)) {
    return;
  }
  *last_compact_ns = now;
  bool expected = false;
  if (!compaction_inflight_->compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // previous pass still running; try again next interval
  }
  // Run the pass off the reaper thread as a fire-and-forget scheduler task:
  // it lands behind queued query morsels (de-facto low priority) and the
  // reaper keeps its 50 ms cadence for session/GC work. Drain() waits for
  // the inflight flag, so the captured `this` outlives the task.
  CompactionOptions opts;
  opts.trigger_frag_pct = config_.compact_trigger_frag_pct;
  std::shared_ptr<std::atomic<bool>> inflight = compaction_inflight_;
  TaskScheduler::Global().Submit([this, opts, inflight] {
    graph_->CompactRelations(opts);
    // Re-mirror here, not just on the next tick: Drain() may join the
    // reaper while this pass is still running, and the final totals must
    // not be lost.
    MirrorCompactionStats();
    inflight->store(false, std::memory_order_release);
  });
}

void Server::CheckWatermarkStall() {
  if (config_.watermark_alert_seconds <= 0) return;
  int64_t now = QueryContext::NowNanos();
  uint64_t holder = 0;
  Version oldest = 0;
  int64_t pinned_at = 0;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto& [id, entry] : sessions_) {
      Session& s = *entry.session;
      if (s.done.load(std::memory_order_acquire)) continue;
      std::lock_guard<std::mutex> sl(s.snap_mu);
      if (!s.pin.valid()) continue;
      if (holder == 0 || s.pin.version() < oldest) {
        holder = id;
        oldest = s.pin.version();
        pinned_at = s.pinned_at_ns.load(std::memory_order_acquire);
      }
    }
  }
  // Only a pin that actually trails the version counter holds garbage
  // hostage; an idle server at a stable version stalls nothing.
  if (holder == 0 || oldest >= graph_->CurrentVersion() ||
      now - pinned_at <
          static_cast<int64_t>(config_.watermark_alert_seconds * 1e9)) {
    stats_.watermark_held_by_session.store(0, std::memory_order_relaxed);
    stall_logged_session_ = 0;
    return;
  }
  stats_.watermark_held_by_session.store(holder, std::memory_order_relaxed);
  if (stall_logged_session_ != holder) {
    stall_logged_session_ = holder;
    stats_.watermark_stalls.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "[ges_server] session %llu has held the GC watermark at "
                 "v%llu for %.1fs (current v%llu); version chains behind it "
                 "cannot be pruned\n",
                 static_cast<unsigned long long>(holder),
                 static_cast<unsigned long long>(oldest),
                 (now - pinned_at) / 1e9,
                 static_cast<unsigned long long>(graph_->CurrentVersion()));
  }
}

Version Server::RepinSession(Session* session, SnapshotHandle fresh) {
  std::lock_guard<std::mutex> lk(session->snap_mu);
  Version cur = session->snapshot.load(std::memory_order_acquire);
  if (fresh.version() < cur) {
    // A concurrent IU commit already advanced the session past `fresh`
    // (read-your-writes); never move a session's snapshot backwards.
    return cur;
  }
  Version v = fresh.version();
  // `fresh` is already registered, so the watermark stays covered across
  // the swap; move-assignment releases the old pin after the new one is
  // in place.
  session->snapshot.store(v, std::memory_order_release);
  session->pin = std::move(fresh);
  session->pinned_at_ns.store(QueryContext::NowNanos(),
                              std::memory_order_release);
  return v;
}

void Server::ReapDoneSessions() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second.session->done.load(std::memory_order_acquire)) {
        joinable.push_back(std::move(it->second.thread));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : joinable) {
    if (t.joinable()) t.join();
  }
}

size_t Server::ActiveSessions() const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  size_t n = 0;
  for (const auto& [id, entry] : sessions_) {
    if (!entry.session->done.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

bool Server::SendToSession(Session* session, const std::string& payload) {
  std::lock_guard<std::mutex> lk(session->write_mu);
  if (session->closed.load(std::memory_order_acquire)) return false;
  return WriteFrame(session->fd, payload);
}

void Server::CancelInflight(Session* session) {
  std::lock_guard<std::mutex> lk(session->inflight_mu);
  for (auto& [id, q] : session->inflight) q.ctx->Cancel();
}

void Server::HandleConnection(std::shared_ptr<Session> session) {
  std::string payload;
  for (;;) {
    ReadResult r = ReadFrame(session->fd, &payload);
    if (r == ReadResult::kTooLarge) {
      // The oversized frame's bytes were not consumed, so the stream is
      // still coherent enough to refuse cleanly before disconnecting.
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kError));
      b.PutU8(static_cast<uint8_t>(WireStatus::kInvalidArgument));
      b.PutString("frame exceeds the maximum frame size");
      SendToSession(session.get(), b.data());
      break;
    }
    if (r != ReadResult::kOk) break;
    session->last_active_ns.store(QueryContext::NowNanos(),
                                  std::memory_order_release);
    if (!HandleFrame(session, payload)) break;
  }
  // Disconnect: whatever is still running belongs to a client that left —
  // cancel it so workers free up, then wait for the responses (which will
  // fail to send) to settle before closing the descriptor.
  CancelInflight(session.get());
  {
    std::unique_lock<std::mutex> lk(session->pending_mu);
    session->pending_cv.wait_for(lk, std::chrono::seconds(30),
                                 [&] { return session->pending == 0; });
  }
  // Drop the GC registration as soon as no query can execute on the
  // session's behalf: the Session object lingers in sessions_ until the
  // reaper joins the thread, and keeping the pin that long would hold the
  // watermark (and therefore garbage) for no reader.
  {
    std::lock_guard<std::mutex> lk(session->snap_mu);
    session->pin.Release();
  }
  {
    std::lock_guard<std::mutex> lk(session->write_mu);
    session->closed.store(true, std::memory_order_release);
    ::close(session->fd);
  }
  session->done.store(true, std::memory_order_release);
}

bool Server::HandleFrame(const std::shared_ptr<Session>& session,
                         const std::string& payload) {
  WireReader in(payload);
  // Malformed input never goes unanswered: the client gets an explicit
  // INVALID_ARGUMENT error frame before the server closes the connection
  // (the stream position is unknowable after a bad body).
  auto refuse = [&](const std::string& what) {
    WireBuf b;
    b.PutU8(static_cast<uint8_t>(MsgType::kError));
    b.PutU8(static_cast<uint8_t>(WireStatus::kInvalidArgument));
    b.PutString(what);
    SendToSession(session.get(), b.data());
    return false;
  };
  MsgType type = static_cast<MsgType>(in.GetU8());
  if (!in.ok()) return refuse("empty frame");
  switch (type) {
    case MsgType::kHello: {
      in.GetU32();  // protocol version; single version so far
      if (!in.ok()) return refuse("malformed hello frame");
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kHelloOk));
      b.PutU64(session->id);
      b.PutU64(session->snapshot.load(std::memory_order_acquire));
      return SendToSession(session.get(), b.data());
    }
    case MsgType::kQuery:
      HandleQuery(session, &in);
      return true;
    case MsgType::kPrepare: {
      std::string text = in.GetString();
      if (!in.ok() || !in.AtEnd()) return refuse("malformed prepare frame");
      HandlePrepare(session, text);
      return true;
    }
    case MsgType::kExecute:
      HandleExecute(session, &in);
      return true;
    case MsgType::kCancel: {
      uint64_t id = in.GetU64();
      if (!in.ok()) return refuse("malformed cancel frame");
      std::lock_guard<std::mutex> lk(session->inflight_mu);
      auto it = session->inflight.find(id);
      if (it != session->inflight.end()) it->second.ctx->Cancel();
      return true;  // no response frame; the query answers CANCELLED
    }
    case MsgType::kKillQuery: {
      // Admin force-kill (DESIGN.md §15): unlike kCancel this spans every
      // session and answers with the number of queries actually shot, so
      // an operator knows whether the id was still alive. Strict framing:
      // an admin tool that appends junk is broken, not forward-versioned.
      uint64_t id = in.GetU64();
      if (!in.ok() || !in.AtEnd()) return refuse("malformed kill-query frame");
      uint32_t killed = KillQuery(id);
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kKillQueryOk));
      b.PutU32(killed);
      return SendToSession(session.get(), b.data());
    }
    case MsgType::kSubscribe:
      return HandleSubscribe(session, &in);
    case MsgType::kReplicaAck:
      return refuse("ack frame outside an active subscription");
    case MsgType::kSetParam: {
      std::string key = in.GetString();
      std::string value = in.GetString();
      if (!in.ok()) return refuse("malformed set-param frame");
      {
        std::lock_guard<std::mutex> lk(session->param_mu);
        session->params[std::move(key)] = std::move(value);
      }
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kParamOk));
      return SendToSession(session.get(), b.data());
    }
    case MsgType::kGetParam: {
      std::string key = in.GetString();
      if (!in.ok()) return refuse("malformed get-param frame");
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kParamValue));
      std::lock_guard<std::mutex> lk(session->param_mu);
      auto it = session->params.find(key);
      b.PutU8(it != session->params.end() ? 1 : 0);
      b.PutString(it != session->params.end() ? it->second : std::string());
      return SendToSession(session.get(), b.data());
    }
    case MsgType::kRefreshSnapshot: {
      // Register the fresh version before dropping the old pin
      // (RepinSession): the session is never unprotected, so a concurrent
      // GC pass cannot prune a chain between the two registrations.
      Version v = RepinSession(session.get(), graph_->PinSnapshot());
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kSnapshotOk));
      b.PutU64(v);
      return SendToSession(session.get(), b.data());
    }
    case MsgType::kPing: {
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kPong));
      return SendToSession(session.get(), b.data());
    }
    case MsgType::kCheckpoint: {
      // Admin command: force a snapshot + WAL truncate. Runs on the
      // connection thread — checkpoints serialize against commits anyway,
      // and an admin willing to wait should see the true completion.
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kCheckpointOk));
      if (!graph_->durable()) {
        b.PutU8(0);
        b.PutString("graph is not durable (no --data-dir)");
      } else {
        Status s = graph_->Checkpoint();
        b.PutU8(s.ok() ? 1 : 0);
        b.PutString(s.ok() ? "checkpoint complete" : s.message());
      }
      // Trailing GC telemetry (protocol-compatible: old clients stop
      // reading after the string): lifetime pruned entries, live overlay
      // bytes, and the current GC watermark.
      b.PutU64(graph_->versions_pruned_total());
      b.PutU64(graph_->OverlayBytes());
      b.PutU64(graph_->OldestActiveSnapshot());
      return SendToSession(session.get(), b.data());
    }
    case MsgType::kBye: {
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kByeOk));
      SendToSession(session.get(), b.data());
      return false;
    }
    default: {
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kError));
      b.PutU8(static_cast<uint8_t>(WireStatus::kInvalidArgument));
      b.PutString("unexpected message type");
      SendToSession(session.get(), b.data());
      return false;
    }
  }
}

bool Server::HandleSubscribe(const std::shared_ptr<Session>& session,
                             WireReader* in) {
  auto refuse = [&](WireStatus status, const std::string& what) {
    WireBuf b;
    b.PutU8(static_cast<uint8_t>(MsgType::kError));
    b.PutU8(static_cast<uint8_t>(status));
    b.PutString(what);
    SendToSession(session.get(), b.data());
    return false;
  };
  uint32_t proto = in->GetU32();
  Version from = in->GetU64();
  std::string name = in->GetString();
  if (!in->ok()) {
    return refuse(WireStatus::kInvalidArgument, "malformed subscribe frame");
  }
  if (proto != kReplicationProtocolVersion) {
    return refuse(WireStatus::kInvalidArgument,
                  "unsupported replication protocol version " +
                      std::to_string(proto));
  }
  if (draining_.load(std::memory_order_acquire) || shipper_ == nullptr) {
    return refuse(WireStatus::kShuttingDown, "server is draining");
  }

  // A subscriber is not a reader: drop the session's snapshot pin so a
  // connection that lives for the primary's whole lifetime doesn't hold
  // the GC watermark at its connect-time version forever.
  {
    std::lock_guard<std::mutex> lk(session->snap_mu);
    session->pin.Release();
  }

  Status status = Status::OK();
  uint64_t sub_id = shipper_->AddSubscriber(
      name.empty() ? "session-" + std::to_string(session->id) : name, from,
      /*send=*/
      [this, session](const std::string& frame) {
        return SendToSession(session.get(), frame);
      },
      /*on_dead=*/
      [session] {
        // Kick the connection thread (blocked below reading acks) so it
        // runs the session cleanup and removes the subscriber.
        ::shutdown(session->fd, SHUT_RDWR);
      },
      &status);
  if (sub_id == 0) {
    return refuse(WireStatus::kError,
                  "subscription failed: " + status.message());
  }

  // The connection thread now belongs to the subscription: the shipper's
  // sender thread streams snapshot/backlog/live frames while this loop
  // consumes kReplicaAck progress reports.
  std::string payload;
  for (;;) {
    ReadResult r = ReadFrame(session->fd, &payload);
    if (r != ReadResult::kOk) break;
    session->last_active_ns.store(QueryContext::NowNanos(),
                                  std::memory_order_release);
    WireReader ack(payload);
    if (static_cast<MsgType>(ack.GetU8()) != MsgType::kReplicaAck) {
      refuse(WireStatus::kInvalidArgument,
             "only ack frames are valid on a subscription");
      break;
    }
    Version applied = ack.GetU64();
    if (!ack.ok()) {
      refuse(WireStatus::kInvalidArgument, "malformed ack frame");
      break;
    }
    shipper_->OnAck(sub_id, applied);
  }
  shipper_->RemoveSubscriber(sub_id);
  return false;
}

void Server::HandleQuery(const std::shared_ptr<Session>& session,
                         WireReader* in) {
  QueryRequest req;
  if (!DecodeQueryRequest(in, &req)) {
    QueryResponse resp;
    resp.query_id = req.query_id;
    resp.status = WireStatus::kInvalidArgument;
    resp.message = "malformed query frame";
    SendToSession(session.get(), EncodeQueryResponse(resp));
    return;
  }
  AdmitQuery(session, std::move(req));
}

void Server::HandlePrepare(const std::shared_ptr<Session>& session,
                           const std::string& text) {
  NormalizedQuery norm;
  Status s = NormalizeQuery(text, &norm);
  if (!s.ok()) {
    SendToSession(session.get(), EncodePrepareError(
                                     WireStatus::kInvalidArgument,
                                     s.message()));
    return;
  }
  std::shared_ptr<const PreparedPlan> plan;
  bool hit = false;
  s = PrepareStatement(norm.text, norm.params, &plan, &hit);
  if (!s.ok()) {
    SendToSession(session.get(), EncodePrepareError(
                                     WireStatus::kInvalidArgument,
                                     s.message()));
    return;
  }
  PrepareResult r;
  {
    std::lock_guard<std::mutex> lk(session->prepared_mu);
    r.handle = session->next_handle++;
    session->prepared[r.handle] = Session::PreparedHandle{plan, norm.params};
  }
  r.param_count = static_cast<uint32_t>(plan->param_count);
  r.cache_hit = hit;
  r.normalized = plan->normalized;
  SendToSession(session.get(), EncodePrepareOk(r));
}

void Server::HandleExecute(const std::shared_ptr<Session>& session,
                           WireReader* in) {
  ExecuteRequest ereq;
  if (!DecodeExecuteRequest(in, &ereq)) {
    QueryResponse resp;
    resp.query_id = ereq.query_id;
    resp.status = WireStatus::kInvalidArgument;
    resp.message = "malformed execute frame";
    SendToSession(session.get(), EncodeQueryResponse(resp));
    return;
  }
  QueryRequest req;
  req.query_id = ereq.query_id;
  req.kind = QueryKind::kPrepared;
  req.deadline_ms = ereq.deadline_ms;
  req.min_version = ereq.min_version;
  req.handle = ereq.handle;
  req.bind_params = std::move(ereq.params);
  AdmitQuery(session, std::move(req));
}

Status Server::PrepareStatement(const std::string& normalized_text,
                                const std::vector<Value>& hints,
                                std::shared_ptr<const PreparedPlan>* out,
                                bool* cache_hit) {
  uint64_t epoch = graph_->catalog().stats_epoch();
  if (auto cached = plan_cache_.Lookup(normalized_text, epoch)) {
    *out = std::move(cached);
    if (cache_hit != nullptr) *cache_hit = true;
    SyncPlanCacheStats();
    return Status::OK();
  }
  if (cache_hit != nullptr) *cache_hit = false;
  Plan compiled;
  Status s = CompileTemplate(normalized_text, *graph_, hints, &compiled);
  if (!s.ok()) {
    SyncPlanCacheStats();
    return s;
  }
  auto plan = std::make_shared<PreparedPlan>();
  plan->normalized = normalized_text;
  plan->default_params = hints;
  plan->stats_epoch = epoch;
  plan->param_count = compiled.param_count;
  if (config_.exec_mode == ExecMode::kFactorizedFused) {
    // Optimize the template once; executions run it with
    // plan_is_optimized so the per-query rewrite pass is skipped.
    GraphView view(graph_);
    compiled = OptimizePlan(compiled, ExecOptions{}, &view);
    plan->optimized = true;
  }
  plan->column_stats = CollectPlanColumnStats(compiled, *graph_);
  plan->plan = std::move(compiled);
  *out = plan;
  plan_cache_.Insert(std::move(plan));
  SyncPlanCacheStats();
  return Status::OK();
}

void Server::SyncPlanCacheStats() {
  stats_.plan_cache_hits.store(plan_cache_.hits(), std::memory_order_relaxed);
  stats_.plan_cache_misses.store(plan_cache_.misses(),
                                 std::memory_order_relaxed);
  stats_.plan_cache_evictions.store(plan_cache_.evictions(),
                                    std::memory_order_relaxed);
}

void Server::AdmitQuery(const std::shared_ptr<Session>& session,
                        QueryRequest req) {
  stats_.queries_received.fetch_add(1, std::memory_order_relaxed);
  const std::string name = QueryName(req);

  // Watermark shedding (resource governor, DESIGN.md §15), decided BEFORE
  // the query pins a snapshot or takes an inflight slot. Soft watermark:
  // in-flight budgets already hold watermark bytes — refuse the long
  // (memory-hungry) class and keep draining shorts, which finish fast and
  // release. Hard watermark (125% of soft): the shorts-only diet did not
  // stop the climb; refuse everything new and let in-flight work drain.
  if (config_.memory_watermark_bytes > 0) {
    size_t used = memory_gauge_.used();
    size_t soft = config_.memory_watermark_bytes;
    size_t hard = soft + soft / 4;
    bool shed = used >= hard ||
                (used >= soft && !cost_model_.IsShort(name));
    if (shed) {
      stats_.governor_shed.fetch_add(1, std::memory_order_relaxed);
      stats_.queries_rejected.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp;
      resp.query_id = req.query_id;
      resp.status = WireStatus::kOverloaded;
      resp.message = "shed at the memory watermark: " + std::to_string(used) +
                     " bytes in flight, " +
                     (used >= hard ? "hard" : "soft") + " watermark " +
                     std::to_string(used >= hard ? hard : soft) + " bytes";
      resp.retry_after_ms = config_.shed_retry_after_ms;
      SendToSession(session.get(), EncodeQueryResponse(resp));
      return;
    }
  }

  // Read-your-writes floor (DESIGN.md §13): the request carries the
  // client's latest commit version. On a replica whose applier hasn't
  // caught up yet, wait briefly; still behind → LAGGING, telling the
  // router to bounce this read to the primary rather than serve a state
  // older than the client's own write.
  if (req.min_version > 0) {
    int64_t wait_deadline =
        QueryContext::NowNanos() +
        static_cast<int64_t>(std::max(0.0, config_.ryw_wait_ms) * 1e6);
    while (graph_->CurrentVersion() < req.min_version &&
           QueryContext::NowNanos() < wait_deadline &&
           !draining_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Version applied = graph_->CurrentVersion();
    if (applied < req.min_version) {
      stats_.ryw_lagging.fetch_add(1, std::memory_order_relaxed);
      QueryResponse resp;
      resp.query_id = req.query_id;
      resp.status = WireStatus::kLagging;
      resp.message = "applied version is v" + std::to_string(applied) +
                     ", behind the requested floor v" +
                     std::to_string(req.min_version);
      resp.snapshot_version = applied;
      SendToSession(session.get(), EncodeQueryResponse(resp));
      return;
    }
    // The graph caught up, but the session may still be pinned below the
    // floor (it pins at connect time); advance it so the query snapshot
    // honors the floor.
    if (session->snapshot.load(std::memory_order_acquire) <
        req.min_version) {
      RepinSession(session.get(), graph_->PinSnapshot());
    }
  }

  // Pin the snapshot NOW (connection thread): the session's pinned version
  // may move (RefreshSnapshot, IU read-your-writes) while this query waits
  // in the admission queue, and a query must see the version current when
  // it was issued. The query registers its own GC pin under snap_mu —
  // the session pin (<= snapshot, still registered) makes the handover
  // safe — and parks it on the QueryContext, so the version chains it
  // will read outlive the queue wait and every morsel worker.
  Version snapshot;
  auto ctx = std::make_shared<QueryContext>();
  // Every query gets a budget (limit 0 = unlimited) so peak_memory_bytes
  // and the global gauge are populated regardless of configuration. The
  // budget lives exactly as long as the context: its destructor returns
  // any bytes an exception unwind left charged to the global gauge.
  ctx->AttachBudget(std::make_shared<MemoryBudget>(
      config_.query_memory_limit_bytes, &memory_gauge_));
  {
    std::lock_guard<std::mutex> lk(session->snap_mu);
    snapshot = session->snapshot.load(std::memory_order_acquire);
    ctx->HoldSnapshotPin(
        std::make_shared<SnapshotHandle>(graph_->PinSnapshotAt(snapshot)));
  }
  if (req.deadline_ms > 0) {
    // Armed at admission: queue wait counts against the deadline (the SLO
    // is end-to-end, not execution-only).
    ctx->SetDeadline(req.deadline_ms / 1000.0);
  }
  {
    std::lock_guard<std::mutex> lk(session->inflight_mu);
    session->inflight[req.query_id] = Session::InflightQuery{
        ctx, name, QueryContext::NowNanos(), /*killed=*/false};
  }
  {
    std::lock_guard<std::mutex> lk(session->pending_mu);
    ++session->pending;
  }

  auto guard = std::make_shared<JobGuard>(
      [this, session](const std::string& frame) {
        return SendToSession(session.get(), frame);
      },
      req.query_id);
  guard->drop_status = draining_.load(std::memory_order_acquire)
                           ? WireStatus::kShuttingDown
                           : WireStatus::kResourceExhausted;
  guard->release = [this, session, query_id = req.query_id] {
    {
      std::lock_guard<std::mutex> lk(session->inflight_mu);
      session->inflight.erase(query_id);
    }
    std::lock_guard<std::mutex> lk(session->pending_mu);
    --session->pending;
    session->pending_cv.notify_all();
  };

  QueryJob job;
  job.name = name;
  job.run = [this, session, req, snapshot, ctx, guard] {
    Timer t;
    QueryResponse resp = ExecuteQuery(session.get(), req, snapshot, ctx.get());
    resp.query_id = req.query_id;
    resp.server_millis = t.ElapsedMillis();
    if (ctx->budget() != nullptr) {
      resp.peak_memory_bytes = ctx->budget()->peak();
    }
    switch (resp.status) {
      case WireStatus::kOk:
        stats_.queries_ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case WireStatus::kDeadlineExceeded:
      case WireStatus::kCancelled:
        stats_.queries_interrupted.fetch_add(1, std::memory_order_relaxed);
        break;
      case WireStatus::kResourceExhausted:
        // Only the budget produces RESOURCE_EXHAUSTED on this path
        // (admission rejections never reach a worker): the governor
        // terminated the query mid-flight.
        stats_.queries_interrupted.fetch_add(1, std::memory_order_relaxed);
        stats_.governor_killed.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        stats_.queries_error.fetch_add(1, std::memory_order_relaxed);
    }
    guard->responded.store(true, std::memory_order_release);
    SendToSession(session.get(), EncodeQueryResponse(resp));
  };
  if (!admission_->TrySubmit(std::move(job))) {
    stats_.queries_rejected.fetch_add(1, std::memory_order_relaxed);
    // `job` (and its guard reference) is already destroyed; our own guard
    // reference is the last one and answers with drop_status on scope exit.
  }
}

QueryResponse Server::ExecuteQuery(Session* session, const QueryRequest& req,
                                   Version snapshot, QueryContext* ctx) {
  QueryResponse resp;
  // Version the caller's read executes at (IU overrides with its commit
  // version below); the routed client turns this into its RYW token.
  resp.snapshot_version = snapshot;
  InterruptReason pre = ctx->Check();
  if (pre != InterruptReason::kNone) {
    // Died waiting in the admission queue.
    resp.status = StatusOfInterrupt(pre);
    resp.message = "interrupted before execution";
    return resp;
  }

  switch (req.kind) {
    case QueryKind::kPrepared:
      return ExecutePrepared(session, req, snapshot, ctx);
    case QueryKind::kIC:
    case QueryKind::kIS:
    case QueryKind::kBI:
    case QueryKind::kStress: {
      Plan plan;
      if (req.kind == QueryKind::kIC) {
        if (req.number < 1 || req.number > 14) {
          resp.status = WireStatus::kInvalidArgument;
          resp.message = "IC number out of range";
          return resp;
        }
        plan = BuildIC(req.number, ldbc_, req.params);
      } else if (req.kind == QueryKind::kIS) {
        if (req.number < 1 || req.number > 7) {
          resp.status = WireStatus::kInvalidArgument;
          resp.message = "IS number out of range";
          return resp;
        }
        plan = BuildIS(req.number, ldbc_, req.params);
      } else if (req.kind == QueryKind::kBI) {
        if (req.number < 1 || req.number > 3) {
          resp.status = WireStatus::kInvalidArgument;
          resp.message = "BI number out of range";
          return resp;
        }
        plan = BuildBI(req.number, ldbc_, req.params);
      } else {
        plan = BuildStressExpand(ldbc_, req.number);
      }
      ExecOptions opts;
      opts.intra_query_threads = config_.intra_query_threads;
      opts.collect_stats = false;
      opts.context = ctx;
      Executor exec(config_.exec_mode, opts);
      GraphView view(graph_, snapshot);
      Timer exec_t;
      QueryResult result = exec.Run(plan, view);
      resp.exec_millis = exec_t.ElapsedMillis();
      // Query-wide intersection counters are collected even with per-op
      // stats off; aggregate them so galloping behaviour stays observable
      // in production (ServiceStats::ToString).
      if (result.stats.intersect.Any()) {
        stats_.intersect_probes.fetch_add(result.stats.intersect.probes,
                                          std::memory_order_relaxed);
        stats_.intersect_gallops.fetch_add(result.stats.intersect.gallops,
                                           std::memory_order_relaxed);
        stats_.intersect_skipped.fetch_add(result.stats.intersect.skipped,
                                           std::memory_order_relaxed);
        stats_.intersect_emitted.fetch_add(result.stats.intersect.emitted,
                                           std::memory_order_relaxed);
      }
      if (result.interrupted != InterruptReason::kNone) {
        resp.status = StatusOfInterrupt(result.interrupted);
        resp.message = InterruptMessage(result.interrupted, ctx);
        return resp;
      }
      resp.table = std::move(result.table);
      return resp;
    }
    case QueryKind::kIU: {
      if (req.number < 1 || req.number > 8) {
        resp.status = WireStatus::kInvalidArgument;
        resp.message = "IU number out of range";
        return resp;
      }
      if (replica_mode_.load(std::memory_order_acquire)) {
        // Single-writer topology: only the primary commits; the applier
        // is this graph's sole writer until promotion.
        resp.status = WireStatus::kReadOnly;
        resp.message = "replica is read-only; route updates to the primary";
        return resp;
      }
      if (graph_->read_only()) {
        // A WAL I/O failure latched the store read-only; reads keep
        // flowing but writes must fail fast with the root cause.
        resp.status = WireStatus::kReadOnly;
        resp.message = "graph is read-only: " + graph_->read_only_reason();
        return resp;
      }
      Version commit =
          RunIU(req.number, ldbc_, graph_, &param_gen_, req.seed);
      if (commit == 0) {
        // The commit failed mid-flight — either the WAL just failed (the
        // graph is read-only now) or the transaction itself errored.
        if (graph_->read_only()) {
          resp.status = WireStatus::kReadOnly;
          resp.message = "graph is read-only: " + graph_->read_only_reason();
        } else {
          resp.status = WireStatus::kError;
          resp.message = "update transaction failed to commit";
        }
        return resp;
      }
      graph_->MaybeCheckpoint();  // size-triggered WAL rotation
      // Read-your-writes: advance the session pin so the writer's next
      // reads observe its own update. snap_mu makes the
      // check-acquire-swap atomic against RefreshSnapshot and other IU
      // commits; while the old pin (< commit) is registered the watermark
      // sits below commit, so the AcquireAt handover is protected.
      {
        std::lock_guard<std::mutex> lk(session->snap_mu);
        if (session->snapshot.load(std::memory_order_acquire) < commit) {
          SnapshotHandle fresh = graph_->PinSnapshotAt(commit);
          session->snapshot.store(commit, std::memory_order_release);
          session->pin = std::move(fresh);
          session->pinned_at_ns.store(QueryContext::NowNanos(),
                                      std::memory_order_release);
        }
      }
      resp.snapshot_version = commit;
      // Semi-synchronous replication: hold the OK until enough replicas
      // acked this commit. On timeout the transaction is durable locally
      // but the client is told it was NOT acknowledged — the failover
      // drill counts only OK updates as "acknowledged".
      if (config_.min_replica_acks > 0 &&
          !shipper_->WaitForAcks(commit, config_.min_replica_acks,
                                 config_.replica_ack_timeout_seconds)) {
        stats_.semisync_timeouts.fetch_add(1, std::memory_order_relaxed);
        resp.status = WireStatus::kError;
        resp.message =
            "commit v" + std::to_string(commit) +
            " is durable locally but was not acknowledged by " +
            std::to_string(config_.min_replica_acks) +
            " replica(s) in time; it may or may not survive failover";
        return resp;
      }
      Schema s;
      s.Add("commit_version", ValueType::kInt64);
      resp.table = FlatBlock(std::move(s));
      resp.table.AppendRow({Value::Int(static_cast<int64_t>(commit))});
      return resp;
    }
    case QueryKind::kSleep: {
      // Deterministic service-time stand-in for tests and benches: holds a
      // worker for `seed` ms but stays fully cancellation-responsive.
      // `number` > 0 stretches the checkpoint interval to that many ms — a
      // stand-in for an operator stuck between checkpoints, which is the
      // gap the watchdog exists to cover.
      const auto poll = std::chrono::microseconds(
          req.number > 0 ? static_cast<int64_t>(req.number) * 1000 : 200);
      int64_t end =
          QueryContext::NowNanos() + static_cast<int64_t>(req.seed) * 1'000'000;
      while (QueryContext::NowNanos() < end) {
        InterruptReason r = ctx->Check();
        if (r != InterruptReason::kNone) {
          resp.status = StatusOfInterrupt(r);
          resp.message = InterruptMessage(r, ctx);
          return resp;
        }
        std::this_thread::sleep_for(poll);
      }
      Schema s;
      s.Add("slept_ms", ValueType::kInt64);
      resp.table = FlatBlock(std::move(s));
      resp.table.AppendRow({Value::Int(static_cast<int64_t>(req.seed))});
      return resp;
    }
    case QueryKind::kHog: {
      // Governor diagnostic (the memory analogue of kSleep): allocate
      // `seed` MiB of real, touched heap in 1 MiB budget-charged steps,
      // hold it for `number` ms, release. Every step is a cooperative
      // checkpoint, so a budget overrun or kill lands within one step.
      const size_t kStep = 1u << 20;
      const size_t target = static_cast<size_t>(req.seed) << 20;
      MemoryBudget* budget = ctx->budget();
      std::vector<std::vector<char>> slabs;
      size_t charged = 0;
      auto interrupted = [&](InterruptReason r) {
        resp.status = StatusOfInterrupt(r);
        resp.message = InterruptMessage(r, ctx);
        if (budget != nullptr) budget->Release(charged);
        return resp;
      };
      for (size_t got = 0; got < target; got += kStep) {
        if (budget != nullptr) {
          budget->Charge(kStep);
          charged += kStep;
        }
        InterruptReason r = ctx->Check();
        if (r != InterruptReason::kNone) return interrupted(r);
        slabs.emplace_back(kStep, 'h');  // touched: real RSS, not a mapping
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      int64_t hold_end = QueryContext::NowNanos() +
                         static_cast<int64_t>(req.number) * 1'000'000;
      while (QueryContext::NowNanos() < hold_end) {
        InterruptReason r = ctx->Check();
        if (r != InterruptReason::kNone) return interrupted(r);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (budget != nullptr) budget->Release(charged);
      Schema s;
      s.Add("hogged_mb", ValueType::kInt64);
      resp.table = FlatBlock(std::move(s));
      resp.table.AppendRow({Value::Int(static_cast<int64_t>(req.seed))});
      return resp;
    }
  }
  resp.status = WireStatus::kInvalidArgument;
  resp.message = "unknown query kind";
  return resp;
}

QueryResponse Server::ExecutePrepared(Session* session,
                                      const QueryRequest& req,
                                      Version snapshot, QueryContext* ctx) {
  QueryResponse resp;
  resp.snapshot_version = snapshot;

  Session::PreparedHandle handle;
  {
    std::lock_guard<std::mutex> lk(session->prepared_mu);
    auto it = session->prepared.find(req.handle);
    if (it == session->prepared.end()) {
      resp.status = WireStatus::kNotFound;
      resp.message = "unknown prepared-statement handle " +
                     std::to_string(req.handle);
      return resp;
    }
    handle = it->second;
  }

  // Fetch the template through the shared cache: the common case is a hit
  // (recency bump + counter); after a stats-epoch bump or an eviction this
  // transparently re-plans, billed to plan_millis and counted as a miss.
  Timer plan_t;
  std::shared_ptr<const PreparedPlan> tmpl;
  bool hit = false;
  Status s = PrepareStatement(
      handle.plan->normalized,
      !handle.params.empty() ? handle.params : handle.plan->default_params,
      &tmpl, &hit);
  if (!s.ok()) {
    resp.status = WireStatus::kError;
    resp.message = "re-prepare failed: " + s.message();
    return resp;
  }
  resp.plan_millis = plan_t.ElapsedMillis();
  resp.plan_cache_hit = hit ? 1 : 0;
  if (tmpl != handle.plan) {
    std::lock_guard<std::mutex> lk(session->prepared_mu);
    auto it = session->prepared.find(req.handle);
    if (it != session->prepared.end()) it->second.plan = tmpl;
  }

  // Positional bindings: a full set overrides; an empty set falls back to
  // the Prepare-time literals (auto-parameterized statements only).
  const std::vector<Value>* params = nullptr;
  size_t got = req.bind_params.size();
  if (got == static_cast<size_t>(tmpl->param_count)) {
    params = &req.bind_params;
  } else if (got == 0 &&
             handle.params.size() == static_cast<size_t>(tmpl->param_count)) {
    params = &handle.params;
  } else {
    resp.status = WireStatus::kInvalidArgument;
    resp.message = "statement takes " + std::to_string(tmpl->param_count) +
                   " parameter(s), got " + std::to_string(got);
    return resp;
  }

  Timer bind_t;
  Plan bound;
  Status bs = BindPlanParams(tmpl->plan, *params, &bound);
  if (!bs.ok()) {
    resp.status = WireStatus::kInvalidArgument;
    resp.message = bs.message();
    return resp;
  }
  resp.bind_millis = bind_t.ElapsedMillis();

  ExecOptions opts;
  opts.intra_query_threads = config_.intra_query_threads;
  opts.collect_stats = false;
  opts.context = ctx;
  opts.column_stats = &tmpl->column_stats;  // tmpl outlives the run
  opts.plan_is_optimized = tmpl->optimized;
  Executor exec(config_.exec_mode, opts);
  GraphView view(graph_, snapshot);
  Timer exec_t;
  QueryResult result = exec.Run(bound, view);
  resp.exec_millis = exec_t.ElapsedMillis();
  if (result.stats.intersect.Any()) {
    stats_.intersect_probes.fetch_add(result.stats.intersect.probes,
                                      std::memory_order_relaxed);
    stats_.intersect_gallops.fetch_add(result.stats.intersect.gallops,
                                       std::memory_order_relaxed);
    stats_.intersect_skipped.fetch_add(result.stats.intersect.skipped,
                                       std::memory_order_relaxed);
    stats_.intersect_emitted.fetch_add(result.stats.intersect.emitted,
                                       std::memory_order_relaxed);
  }
  if (result.interrupted != InterruptReason::kNone) {
    resp.status = StatusOfInterrupt(result.interrupted);
    resp.message = InterruptMessage(result.interrupted, ctx);
    return resp;
  }
  resp.table = std::move(result.table);
  return resp;
}

void Server::Drain(double grace_seconds) {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;

  // 1. Stop accepting: shutting the listen socket down fails the blocking
  //    accept() and the acceptor returns.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  if (admission_ != nullptr) {
    // 2. Close intake (new queries answer SHUTTING_DOWN) and give
    //    in-flight work the grace period to finish normally.
    admission_->CloseIntake();
    if (!admission_->WaitIdle(grace_seconds)) {
      // 3. Out of grace: cancel whatever is still running; cooperative
      //    checkpoints wind the queries down within morsels.
      std::lock_guard<std::mutex> lk(sessions_mu_);
      for (auto& [id, entry] : sessions_) CancelInflight(entry.session.get());
    }
    admission_->WaitIdle(std::max(grace_seconds, 1.0));
    // 4. Stop workers; still-queued jobs are dropped and their guards
    //    answer SHUTTING_DOWN, releasing session pending counts.
    admission_->Shutdown();
  }

  // 5. Force EOF on every connection; their threads run the session
  //    cleanup path and finish.
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto& [id, entry] : sessions_) {
      if (!entry.session->done.load(std::memory_order_acquire)) {
        ::shutdown(entry.session->fd, SHUT_RDWR);
      }
    }
  }
  stop_reaper_.store(true, std::memory_order_release);
  if (reaper_.joinable()) reaper_.join();
  // A compaction pass submitted to the shared TaskScheduler may still be
  // running; it captures `this` (graph_, stats_), so wait it out before
  // the server is torn down. Passes are short (merge + pointer swap).
  while (compaction_inflight_->load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop_watchdog_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto& [id, entry] : sessions_) {
      if (entry.thread.joinable()) entry.thread.join();
    }
    sessions_.clear();
  }

  // 6. Stop WAL shipping last: every subscriber connection thread has
  //    exited (and removed itself from the shipper), so this mostly
  //    detaches the commit listener and releases semi-sync waiters.
  if (shipper_ != nullptr) shipper_->Shutdown();
}

}  // namespace ges::service
