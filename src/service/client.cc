#include "service/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace ges::service {

bool Client::Fail(const std::string& what) {
  error_ = what;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return false;
}

bool Client::Connect(const std::string& host, uint16_t port) {
  host_ = host;
  port_ = port;
  for (int attempt = 0;; ++attempt) {
    if (ConnectOnce()) return true;
    if (attempt >= retry_.max_retries) return false;
    SleepBackoff(attempt);
  }
}

void Client::SleepBackoff(int attempt, uint32_t min_ms) {
  int64_t ms = std::max(1, retry_.base_backoff_ms);
  for (int i = 0; i < attempt && ms < retry_.max_backoff_ms; ++i) ms *= 2;
  ms = std::min<int64_t>(ms, std::max(1, retry_.max_backoff_ms));
  // Full jitter over [ms/2, ms]: concurrent clients hitting the same
  // failure must not retry in lockstep.
  rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
  int64_t half = ms / 2;
  ms = ms - half + static_cast<int64_t>((rng_state_ >> 33) %
                                        static_cast<uint64_t>(half + 1));
  // An overloaded server knows its own recovery horizon better than our
  // exponential guess: honor its retry-after hint as a floor.
  ms = std::max<int64_t>(ms, min_ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool Client::ConnectOnce() {
  Close();
  if (host_.empty()) {
    error_ = "no server address (Connect was never called)";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Fail(std::string("socket: ") + ::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Fail("inet_pton(" + host_ + ")");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Fail(std::string("connect: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  WireBuf hello;
  hello.PutU8(static_cast<uint8_t>(MsgType::kHello));
  hello.PutU32(1);  // protocol version
  if (!SendFrame(hello.data())) return false;
  std::string payload;
  if (!ReadExpected(MsgType::kHelloOk, &payload)) return false;
  WireReader in(payload);
  in.GetU8();  // type
  session_id_ = in.GetU64();
  snapshot_ = in.GetU64();
  if (!in.ok()) return Fail("malformed HelloOk");
  return true;
}

void Client::Close() {
  if (fd_ < 0) return;
  WireBuf bye;
  bye.PutU8(static_cast<uint8_t>(MsgType::kBye));
  if (SendFrame(bye.data())) {
    std::string payload;
    ReadExpected(MsgType::kByeOk, &payload);  // best effort
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::SendFrame(const std::string& payload) {
  std::lock_guard<std::mutex> lk(send_mu_);
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, payload)) return Fail("write failed");
  return true;
}

bool Client::ReadExpected(MsgType want, std::string* payload) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  ReadResult r = ReadFrame(fd_, payload);
  if (r != ReadResult::kOk) {
    return Fail(r == ReadResult::kClosed     ? "connection closed"
                : r == ReadResult::kTooLarge ? "oversized response frame"
                                             : "read failed");
  }
  WireReader in(*payload);
  MsgType got = static_cast<MsgType>(in.GetU8());
  if (got == want) return true;
  if (got == MsgType::kError) {
    WireStatus st = static_cast<WireStatus>(in.GetU8());
    return Fail(std::string("server error: ") + WireStatusName(st) + ": " +
                in.GetString());
  }
  return Fail("unexpected frame type");
}

bool Client::Send(const QueryRequest& req) {
  return SendFrame(EncodeQueryRequest(req));
}

bool Client::ReadResponse(QueryResponse* resp) {
  std::string payload;
  if (!ReadExpected(MsgType::kResult, &payload)) return false;
  WireReader in(payload);
  in.GetU8();  // type
  if (!DecodeQueryResponse(&in, resp)) return Fail("malformed result frame");
  return true;
}

bool Client::RunOnce(const QueryRequest& req, QueryResponse* resp,
                     bool* delivered) {
  *delivered = false;
  if (!Send(req)) return false;
  // The full request frame was handed to the kernel: from here on the
  // server may execute it even if we never see the response.
  *delivered = true;
  // A lone synchronous caller has exactly one query outstanding, so the
  // next kResult is ours (ids still verified for safety).
  if (!ReadResponse(resp)) return false;
  if (resp->query_id != req.query_id) return Fail("response id mismatch");
  return true;
}

bool Client::Run(const QueryRequest& req, QueryResponse* resp) {
  for (int attempt = 0;; ++attempt) {
    bool delivered = false;
    if (RunOnce(req, resp, &delivered)) {
      // Transient server refusals (watermark shedding, admission
      // backpressure, a budget kill) are retryable for idempotent reads —
      // the connection is fine, so no reconnect, just back off honoring
      // the server's retry-after hint. Updates surface the refusal.
      bool transient = resp->status == WireStatus::kOverloaded ||
                       resp->status == WireStatus::kResourceExhausted;
      if (transient && req.kind != QueryKind::kIU &&
          attempt < retry_.max_retries) {
        SleepBackoff(attempt, resp->retry_after_ms);
        continue;
      }
      return true;
    }
    if (delivered && req.kind == QueryKind::kIU) {
      // The update reached the server but was never acknowledged — it may
      // or may not have committed. Retrying could apply it twice; surface
      // the ambiguity to the caller instead.
      error_ +=
          " (update was delivered but not acknowledged; not retried "
          "because the outcome is ambiguous)";
      return false;
    }
    if (attempt >= retry_.max_retries) return false;
    // Reads (and never-delivered writes: the server drops a truncated
    // frame without executing it) are safe to retry on a new connection.
    SleepBackoff(attempt);
    ConnectOnce();  // best effort; a failure charges the next attempt
  }
}

bool Client::RunIC(int number, const LdbcParams& params, QueryResponse* resp,
                   uint32_t deadline_ms) {
  QueryRequest req;
  req.query_id = AllocQueryId();
  req.kind = QueryKind::kIC;
  req.number = static_cast<uint8_t>(number);
  req.deadline_ms = deadline_ms;
  req.params = params;
  return Run(req, resp);
}

bool Client::RunIS(int number, const LdbcParams& params, QueryResponse* resp,
                   uint32_t deadline_ms) {
  QueryRequest req;
  req.query_id = AllocQueryId();
  req.kind = QueryKind::kIS;
  req.number = static_cast<uint8_t>(number);
  req.deadline_ms = deadline_ms;
  req.params = params;
  return Run(req, resp);
}

bool Client::RunBI(int number, QueryResponse* resp, uint32_t deadline_ms) {
  QueryRequest req;
  req.query_id = AllocQueryId();
  req.kind = QueryKind::kBI;
  req.number = static_cast<uint8_t>(number);
  req.deadline_ms = deadline_ms;
  return Run(req, resp);
}

bool Client::RunIU(int number, uint64_t seed, QueryResponse* resp,
                   uint32_t deadline_ms) {
  QueryRequest req;
  req.query_id = AllocQueryId();
  req.kind = QueryKind::kIU;
  req.number = static_cast<uint8_t>(number);
  req.deadline_ms = deadline_ms;
  req.seed = seed;
  return Run(req, resp);
}

bool Client::RunHog(uint64_t mib, QueryResponse* resp, uint32_t deadline_ms,
                    uint8_t hold_ms) {
  QueryRequest req;
  req.query_id = AllocQueryId();
  req.kind = QueryKind::kHog;
  req.number = hold_ms;
  req.deadline_ms = deadline_ms;
  req.seed = mib;
  return Run(req, resp);
}

bool Client::Prepare(const std::string& query_text, PrepareResult* out) {
  if (!SendFrame(EncodePrepareRequest(query_text))) return false;
  std::string payload;
  if (!ReadExpected(MsgType::kPrepareOk, &payload)) return false;
  WireReader in(payload);
  in.GetU8();  // type
  PrepareResult r;
  WireStatus st = WireStatus::kOk;
  std::string message;
  if (!DecodePrepareOk(&in, &r, &st, &message)) {
    return Fail("malformed PrepareOk");
  }
  if (st != WireStatus::kOk) {
    // Clean refusal (parse error etc.); connection stays usable.
    error_ = std::string(WireStatusName(st)) + ": " + message;
    return false;
  }
  if (out != nullptr) *out = std::move(r);
  return true;
}

bool Client::Execute(uint64_t handle, const std::vector<Value>& params,
                     QueryResponse* resp, uint32_t deadline_ms) {
  ExecuteRequest req;
  req.query_id = AllocQueryId();
  req.handle = handle;
  req.deadline_ms = deadline_ms;
  req.params = params;
  if (!SendExecute(req)) return false;
  if (!ReadResponse(resp)) return false;
  if (resp->query_id != req.query_id) return Fail("response id mismatch");
  return true;
}

bool Client::SetParam(const std::string& key, const std::string& value) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kSetParam));
  b.PutString(key);
  b.PutString(value);
  if (!SendFrame(b.data())) return false;
  std::string payload;
  return ReadExpected(MsgType::kParamOk, &payload);
}

bool Client::GetParam(const std::string& key, std::string* value,
                      bool* present) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kGetParam));
  b.PutString(key);
  if (!SendFrame(b.data())) return false;
  std::string payload;
  if (!ReadExpected(MsgType::kParamValue, &payload)) return false;
  WireReader in(payload);
  in.GetU8();  // type
  bool p = in.GetU8() != 0;
  std::string v = in.GetString();
  if (!in.ok()) return Fail("malformed ParamValue");
  if (present != nullptr) *present = p;
  if (value != nullptr) *value = std::move(v);
  return true;
}

bool Client::RefreshSnapshot(uint64_t* version) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kRefreshSnapshot));
  if (!SendFrame(b.data())) return false;
  std::string payload;
  if (!ReadExpected(MsgType::kSnapshotOk, &payload)) return false;
  WireReader in(payload);
  in.GetU8();  // type
  snapshot_ = in.GetU64();
  if (!in.ok()) return Fail("malformed SnapshotOk");
  if (version != nullptr) *version = snapshot_;
  return true;
}

bool Client::Ping() {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kPing));
  if (!SendFrame(b.data())) return false;
  std::string payload;
  return ReadExpected(MsgType::kPong, &payload);
}

bool Client::Checkpoint(std::string* detail, CheckpointInfo* info) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kCheckpoint));
  if (!SendFrame(b.data())) return false;
  std::string payload;
  if (!ReadExpected(MsgType::kCheckpointOk, &payload)) return false;
  WireReader in(payload);
  in.GetU8();  // type
  bool ok = in.GetU8() != 0;
  std::string message = in.GetString();
  if (!in.ok()) return Fail("malformed CheckpointOk");
  if (info != nullptr) {
    *info = CheckpointInfo{};
    if (!in.AtEnd()) {
      // Newer servers append GC telemetry; an old server's frame simply
      // ends here and the zero-initialized info is returned.
      info->versions_pruned = in.GetU64();
      info->overlay_bytes = in.GetU64();
      info->watermark = in.GetU64();
      if (!in.ok()) return Fail("malformed CheckpointOk gc fields");
    }
  }
  if (detail != nullptr) *detail = message;
  if (!ok) error_ = message;  // clean refusal; connection stays usable
  return ok;
}

bool Client::Cancel(uint64_t query_id) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kCancel));
  b.PutU64(query_id);
  return SendFrame(b.data());
}

bool Client::KillQuery(uint64_t query_id, uint32_t* killed) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kKillQuery));
  b.PutU64(query_id);
  if (!SendFrame(b.data())) return false;
  std::string payload;
  if (!ReadExpected(MsgType::kKillQueryOk, &payload)) return false;
  WireReader in(payload);
  in.GetU8();  // type
  uint32_t n = in.GetU32();
  if (!in.ok()) return Fail("malformed KillQueryOk");
  if (killed != nullptr) *killed = n;
  return true;
}

}  // namespace ges::service
