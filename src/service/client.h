// C++ client for the GES query service. Used by the e2e tests, the
// harness's open-loop load generator and bench_service_throughput.
//
// Thread model: one connection, one logical request/response stream.
// Sends are serialized by an internal mutex, so any thread may Cancel()
// while another is blocked in a synchronous Run(); frame *reads* must stay
// on a single thread (either the thread calling Run()/control methods, or
// a dedicated reader thread using the pipelined Send/ReadResponse pair —
// not both patterns at once).
#ifndef GES_SERVICE_CLIENT_H_
#define GES_SERVICE_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "service/protocol.h"

namespace ges::service {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and performs the Hello handshake. Returns false with
  // last_error() set on failure (including a server kError refusal, e.g.
  // the connection limit).
  bool Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }
  // Snapshot version the session was pinned to at connect/refresh.
  uint64_t snapshot() const { return snapshot_; }
  const std::string& last_error() const { return error_; }

  // --- synchronous request/response ------------------------------------

  // Sends the query and blocks for its kResult frame. Returns false only
  // on connection failure; admission rejection, deadline and cancellation
  // arrive as resp->status.
  bool Run(const QueryRequest& req, QueryResponse* resp);

  // Convenience wrappers (auto-assign query ids).
  bool RunIC(int number, const LdbcParams& params, QueryResponse* resp,
             uint32_t deadline_ms = 0);
  bool RunIS(int number, const LdbcParams& params, QueryResponse* resp,
             uint32_t deadline_ms = 0);
  bool RunIU(int number, uint64_t seed, QueryResponse* resp,
             uint32_t deadline_ms = 0);

  bool SetParam(const std::string& key, const std::string& value);
  bool GetParam(const std::string& key, std::string* value, bool* present);
  // Re-pins the session to the server's current version.
  bool RefreshSnapshot(uint64_t* version = nullptr);
  bool Ping();

  // --- pipelining (open-loop load generation) ---------------------------

  // Sends without waiting. Thread-safe against other senders/Cancel.
  bool Send(const QueryRequest& req);
  // Blocks for the next kResult frame (single reader thread only).
  bool ReadResponse(QueryResponse* resp);

  // Requests cooperative cancellation of an in-flight query. Fire and
  // forget: the query's own response reports CANCELLED (or OK if it won
  // the race). Thread-safe.
  bool Cancel(uint64_t query_id);

  // Next unused query id for hand-built QueryRequests.
  uint64_t AllocQueryId() { return next_query_id_++; }

  // Orderly goodbye (best effort) + close. Idempotent.
  void Close();

 private:
  bool SendFrame(const std::string& payload);
  // Reads until a frame of `want` arrives; fails the connection on
  // kError/unexpected frames.
  bool ReadExpected(MsgType want, std::string* payload);
  bool Fail(const std::string& what);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint64_t snapshot_ = 0;
  uint64_t next_query_id_ = 1;
  std::mutex send_mu_;
  std::string error_;
};

}  // namespace ges::service

#endif  // GES_SERVICE_CLIENT_H_
