// C++ client for the GES query service. Used by the e2e tests, the
// harness's open-loop load generator and bench_service_throughput.
//
// Thread model: one connection, one logical request/response stream.
// Sends are serialized by an internal mutex, so any thread may Cancel()
// while another is blocked in a synchronous Run(); frame *reads* must stay
// on a single thread (either the thread calling Run()/control methods, or
// a dedicated reader thread using the pipelined Send/ReadResponse pair —
// not both patterns at once).
#ifndef GES_SERVICE_CLIENT_H_
#define GES_SERVICE_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "service/protocol.h"

namespace ges::service {

// Transient-failure handling. With max_retries = 0 (the default) every
// failure surfaces immediately — exactly the pre-retry behaviour. With
// max_retries > 0, Connect() retries refused connections and Run() retries
// failed queries (reconnecting in between) with exponential backoff plus
// jitter, EXCEPT a non-idempotent update (kIU) whose request frame was
// fully sent but never answered: the server may have committed it, so the
// client reports the ambiguity instead of risking a double-apply.
//
// Server refusals that signal transient pressure — OVERLOADED (watermark
// shedding) and RESOURCE_EXHAUSTED (admission backpressure / a budget
// kill) — are also retried for idempotent reads, honoring the response's
// retry_after_ms hint when it exceeds the computed backoff. Updates (kIU)
// are never auto-retried on those statuses either: by the time a refusal
// arrives the caller cannot know a retried commit would not double-apply
// on a response lost mid-retry, so the first refusal surfaces.
struct RetryPolicy {
  int max_retries = 0;       // extra attempts after the first
  int base_backoff_ms = 20;  // first backoff; doubles per attempt
  int max_backoff_ms = 1000;
};

// GC telemetry a kCheckpointOk frame carries (see protocol.h); all-zero
// when talking to a server that predates the trailing fields.
struct CheckpointInfo {
  uint64_t versions_pruned = 0;  // lifetime chain entries reclaimed
  uint64_t overlay_bytes = 0;    // live overlay bytes after the command
  uint64_t watermark = 0;        // oldest-active-snapshot watermark
};

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void set_retry_policy(const RetryPolicy& p) { retry_ = p; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Connects and performs the Hello handshake. Returns false with
  // last_error() set on failure (including a server kError refusal, e.g.
  // the connection limit). Retries per the retry policy.
  bool Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }
  // Snapshot version the session was pinned to at connect/refresh.
  uint64_t snapshot() const { return snapshot_; }
  const std::string& last_error() const { return error_; }

  // --- synchronous request/response ------------------------------------

  // Sends the query and blocks for its kResult frame. Returns false only
  // on connection failure; admission rejection, deadline and cancellation
  // arrive as resp->status. Connection failures are retried per the retry
  // policy (see RetryPolicy for the non-idempotent-update exception).
  bool Run(const QueryRequest& req, QueryResponse* resp);

  // Convenience wrappers (auto-assign query ids).
  bool RunIC(int number, const LdbcParams& params, QueryResponse* resp,
             uint32_t deadline_ms = 0);
  bool RunIS(int number, const LdbcParams& params, QueryResponse* resp,
             uint32_t deadline_ms = 0);
  bool RunIU(int number, uint64_t seed, QueryResponse* resp,
             uint32_t deadline_ms = 0);
  // Cyclic census queries (number in [1, 3]; the WCOJ tier).
  bool RunBI(int number, QueryResponse* resp, uint32_t deadline_ms = 0);
  // Governor diagnostic: allocate `mib` MiB of budget-charged state on the
  // server, hold it `hold_ms` (<= 255) ms, release. See QueryKind::kHog.
  bool RunHog(uint64_t mib, QueryResponse* resp, uint32_t deadline_ms = 0,
              uint8_t hold_ms = 0);

  // --- prepared statements ----------------------------------------------

  // Sends kPrepare and blocks for kPrepareOk. On a clean server refusal
  // (parse error, invalid parameter indices) returns false with
  // last_error() set and the connection still usable. Handles are scoped
  // to this connection; reconnecting invalidates them.
  bool Prepare(const std::string& query_text, PrepareResult* out);

  // Executes a prepared handle with positional parameters (empty = the
  // Prepare-time literals). Server-side errors (unknown handle, arity
  // mismatch) arrive as resp->status; false means connection failure.
  // Not retried: a reconnect would invalidate the handle.
  bool Execute(uint64_t handle, const std::vector<Value>& params,
               QueryResponse* resp, uint32_t deadline_ms = 0);

  // Pipelined variant of Execute (pair with ReadResponse).
  bool SendExecute(const ExecuteRequest& req) {
    return SendFrame(EncodeExecuteRequest(req));
  }

  bool SetParam(const std::string& key, const std::string& value);
  bool GetParam(const std::string& key, std::string* value, bool* present);
  // Re-pins the session to the server's current version.
  bool RefreshSnapshot(uint64_t* version = nullptr);
  bool Ping();
  // Admin: asks a durable server to checkpoint (snapshot + WAL truncate).
  // Returns true when the checkpoint completed; on a clean refusal (e.g.
  // non-durable server) returns false with `*detail` explaining why and
  // the connection still usable. `*info`, when provided, receives the GC
  // telemetry newer servers append to kCheckpointOk (zeros from an old
  // server) — usable as a stats probe even against non-durable servers.
  bool Checkpoint(std::string* detail = nullptr, CheckpointInfo* info = nullptr);

  // --- pipelining (open-loop load generation) ---------------------------

  // Sends without waiting. Thread-safe against other senders/Cancel.
  bool Send(const QueryRequest& req);
  // Blocks for the next kResult frame (single reader thread only).
  bool ReadResponse(QueryResponse* resp);

  // Requests cooperative cancellation of an in-flight query. Fire and
  // forget: the query's own response reports CANCELLED (or OK if it won
  // the race). Thread-safe.
  bool Cancel(uint64_t query_id);

  // Admin force-kill (resource governor): cancels every in-flight query
  // with this id across ALL sessions and reports how many were shot in
  // `*killed` (0 = not found). Synchronous — do not interleave with
  // pipelined reads; use a dedicated admin connection.
  bool KillQuery(uint64_t query_id, uint32_t* killed = nullptr);

  // Next unused query id for hand-built QueryRequests.
  uint64_t AllocQueryId() { return next_query_id_++; }

  // Orderly goodbye (best effort) + close. Idempotent.
  void Close();

 private:
  // One connection attempt + handshake (no retries).
  bool ConnectOnce();
  // One request/response attempt; `*delivered` reports whether the full
  // request frame reached the kernel (the ambiguity boundary for updates).
  bool RunOnce(const QueryRequest& req, QueryResponse* resp, bool* delivered);
  // Sleeps the exponential backoff for retry `attempt` (0-based),
  // jittered; never less than `min_ms` (the server's retry-after hint).
  void SleepBackoff(int attempt, uint32_t min_ms = 0);
  bool SendFrame(const std::string& payload);
  // Reads until a frame of `want` arrives; fails the connection on
  // kError/unexpected frames.
  bool ReadExpected(MsgType want, std::string* payload);
  bool Fail(const std::string& what);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint64_t snapshot_ = 0;
  uint64_t next_query_id_ = 1;
  std::mutex send_mu_;
  std::string error_;
  std::string host_;
  uint16_t port_ = 0;
  RetryPolicy retry_;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;  // backoff jitter
};

}  // namespace ges::service

#endif  // GES_SERVICE_CLIENT_H_
