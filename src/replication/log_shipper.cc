#include "replication/log_shipper.h"

#include <chrono>

#include "replication/replication_wire.h"
#include "service/protocol.h"

namespace ges::replication {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Idle senders wake this often to emit a heartbeat so replicas can track
// the primary's version (and so last-ack age stays fresh on both ends).
constexpr auto kHeartbeatInterval = std::chrono::milliseconds(200);

}  // namespace

using service::MsgType;
using service::WireBuf;

void LogShipper::Start() {
  if (started_.exchange(true)) return;
  graph_->SetCommitListener(
      [this](Version v, const std::vector<WalRecord>& recs) {
        OnCommit(v, recs);
      });
}

void LogShipper::Shutdown() {
  if (stopped_.exchange(true)) return;
  if (started_.load()) graph_->ClearCommitListener();
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto& [id, sub] : subs_) subs.push_back(sub);
    subs_.clear();
  }
  for (auto& sub : subs) CloseSubscriberLocked(sub);
  acks_cv_.notify_all();
}

uint64_t LogShipper::AddSubscriber(const std::string& name, Version from,
                                   SendFrame send, OnDead on_dead,
                                   Status* status) {
  if (stopped_.load()) {
    *status = Status::Error("log shipper is shut down");
    return 0;
  }
  auto sub = std::make_shared<Subscriber>();
  sub->name = name;
  sub->send = std::move(send);
  sub->on_dead = std::move(on_dead);
  sub->last_ack_ns.store(NowNs(), std::memory_order_relaxed);
  // The on_subscribed callback runs under the graph's commit mutex, which
  // makes backlog collection and registration one atomic step: every
  // commit is either in the backlog or will be delivered live — never
  // both, never neither.
  Status s = graph_->CollectReplicationBacklog(
      from, &sub->backlog, [this, &sub](Version /*current*/) {
        std::lock_guard<std::mutex> lock(subs_mu_);
        sub->id = next_id_++;
        subs_[sub->id] = sub;
      });
  if (!s.ok()) {
    if (sub->id != 0) {
      std::lock_guard<std::mutex> lock(subs_mu_);
      subs_.erase(sub->id);
    }
    *status = s;
    return 0;
  }
  sub->sender = std::thread([this, sub] { SenderLoop(sub); });
  return sub->id;
}

void LogShipper::OnCommit(Version version,
                          const std::vector<WalRecord>& records) {
  // Runs under the commit mutex; keep it cheap. Encode once, share the
  // buffer across all subscribers.
  std::shared_ptr<const std::string> frame;
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (auto& [id, sub] : subs_) {
    if (!sub->connected.load(std::memory_order_relaxed)) continue;
    if (frame == nullptr) {
      frame = std::make_shared<const std::string>(
          EncodeWalFrame(version, records));
    }
    std::lock_guard<std::mutex> sub_lock(sub->mu);
    if (sub->closed) continue;
    sub->queue.push_back(frame);
    sub->queued_bytes.fetch_add(frame->size(), std::memory_order_relaxed);
    sub->cv.notify_one();
  }
}

void LogShipper::SenderLoop(const std::shared_ptr<Subscriber>& sub) {
  auto fail = [&] {
    sub->connected.store(false, std::memory_order_release);
    if (sub->on_dead) sub->on_dead();
    acks_cv_.notify_all();
  };

  // Handshake: tell the replica where the live feed starts and whether a
  // snapshot precedes it.
  {
    WireBuf b;
    b.PutU8(static_cast<uint8_t>(MsgType::kSubscribeOk));
    b.PutU64(sub->backlog.live_from);
    b.PutU8(sub->backlog.need_snapshot ? 1 : 0);
    if (!sub->send(b.Take())) return fail();
  }

  if (sub->backlog.need_snapshot) {
    const std::string& img = sub->backlog.snapshot_bytes;
    {
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kSnapshotBegin));
      b.PutU64(sub->backlog.snapshot_version);
      b.PutU64(img.size());
      if (!sub->send(b.Take())) return fail();
    }
    for (size_t off = 0; off < img.size();
         off += service::kSnapshotChunkBytes) {
      size_t n = std::min(service::kSnapshotChunkBytes, img.size() - off);
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kSnapshotChunk));
      b.PutString(img.substr(off, n));
      if (!sub->send(b.Take())) return fail();
    }
    {
      WireBuf b;
      b.PutU8(static_cast<uint8_t>(MsgType::kSnapshotEnd));
      if (!sub->send(b.Take())) return fail();
    }
    sub->backlog.snapshot_bytes.clear();
    sub->backlog.snapshot_bytes.shrink_to_fit();
  }

  // WAL catch-up: committed transactions between snapshot and live_from.
  for (const WalTxn& tx : sub->backlog.txns) {
    std::string frame = EncodeWalFrame(tx.commit_version, tx.records);
    if (!sub->send(frame)) return fail();
    frames_shipped_.fetch_add(1, std::memory_order_relaxed);
    bytes_shipped_.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  sub->backlog.txns.clear();
  sub->backlog.txns.shrink_to_fit();

  // Live feed: drain the queue; heartbeat when idle.
  for (;;) {
    std::shared_ptr<const std::string> frame;
    {
      std::unique_lock<std::mutex> lock(sub->mu);
      sub->cv.wait_for(lock, kHeartbeatInterval,
                       [&] { return sub->closed || !sub->queue.empty(); });
      if (sub->closed && sub->queue.empty()) return;
      if (!sub->queue.empty()) {
        frame = std::move(sub->queue.front());
        sub->queue.pop_front();
      }
    }
    if (frame != nullptr) {
      sub->queued_bytes.fetch_sub(frame->size(), std::memory_order_relaxed);
      if (!sub->send(*frame)) return fail();
      frames_shipped_.fetch_add(1, std::memory_order_relaxed);
      bytes_shipped_.fetch_add(frame->size(), std::memory_order_relaxed);
    } else {
      if (!sub->send(EncodeHeartbeat(graph_->CurrentVersion()))) {
        return fail();
      }
    }
  }
}

void LogShipper::OnAck(uint64_t subscriber_id, Version applied) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(subscriber_id);
    if (it == subs_.end()) return;
    sub = it->second;
  }
  uint64_t prev = sub->acked.load(std::memory_order_relaxed);
  while (applied > prev &&
         !sub->acked.compare_exchange_weak(prev, applied,
                                           std::memory_order_release)) {
  }
  sub->last_ack_ns.store(NowNs(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(acks_mu_);
  }
  acks_cv_.notify_all();
}

void LogShipper::CloseSubscriberLocked(
    const std::shared_ptr<Subscriber>& sub) {
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->closed = true;
    sub->cv.notify_all();
  }
  if (sub->sender.joinable()) sub->sender.join();
  sub->connected.store(false, std::memory_order_release);
}

void LogShipper::RemoveSubscriber(uint64_t subscriber_id) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(subscriber_id);
    if (it == subs_.end()) return;
    sub = it->second;
    subs_.erase(it);
  }
  CloseSubscriberLocked(sub);
  acks_cv_.notify_all();
}

bool LogShipper::WaitForAcks(Version version, int min_acks,
                             double timeout_s) {
  if (min_acks <= 0) return true;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(timeout_s));
  auto satisfied = [&] {
    int acked = 0;
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (const auto& [id, sub] : subs_) {
      if (sub->connected.load(std::memory_order_acquire) &&
          sub->acked.load(std::memory_order_acquire) >= version) {
        ++acked;
      }
    }
    return acked >= min_acks;
  };
  std::unique_lock<std::mutex> lock(acks_mu_);
  return acks_cv_.wait_until(lock, deadline, [&] {
    return stopped_.load(std::memory_order_acquire) || satisfied();
  }) && !stopped_.load(std::memory_order_acquire) && satisfied();
}

std::vector<ReplicaLagInfo> LogShipper::LagSnapshot() const {
  Version current = graph_->CurrentVersion();
  int64_t now = NowNs();
  std::vector<ReplicaLagInfo> out;
  std::lock_guard<std::mutex> lock(subs_mu_);
  out.reserve(subs_.size());
  for (const auto& [id, sub] : subs_) {
    ReplicaLagInfo info;
    info.name = sub->name;
    info.subscriber_id = id;
    info.applied_version = sub->acked.load(std::memory_order_relaxed);
    info.lag_commits =
        current > info.applied_version ? current - info.applied_version : 0;
    info.lag_bytes = sub->queued_bytes.load(std::memory_order_relaxed);
    info.last_ack_age_s =
        static_cast<double>(now -
                            sub->last_ack_ns.load(std::memory_order_relaxed)) /
        1e9;
    info.connected = sub->connected.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

int LogShipper::ConnectedSubscribers() const {
  int n = 0;
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (const auto& [id, sub] : subs_) {
    if (sub->connected.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

}  // namespace ges::replication
