// Frame codecs for the WAL-shipping replication stream (DESIGN.md §13).
// Replication rides the service's length-prefixed TCP protocol: a replica
// opens an ordinary connection, sends kSubscribe, and the connection
// becomes a one-way stream of kSubscribeOk / kSnapshot* / kWalFrame /
// kWalHeartbeat frames with kReplicaAck frames flowing back.
#ifndef GES_REPLICATION_REPLICATION_WIRE_H_
#define GES_REPLICATION_REPLICATION_WIRE_H_

#include <string>
#include <vector>

#include "service/protocol.h"
#include "storage/wal.h"

namespace ges::replication {

// Encodes one committed transaction as a kWalFrame payload. `records` may
// include the kBeginTx / kCommitTx markers; they are stripped — the frame
// itself delimits the transaction and carries the commit version.
std::string EncodeWalFrame(Version commit_version,
                           const std::vector<WalRecord>& records);

// Decodes a kWalFrame payload; `in` must be positioned after the type
// byte. Returns false on malformed input.
bool DecodeWalFrame(service::WireReader* in, WalTxn* out);

std::string EncodeSubscribe(Version from, const std::string& name);
std::string EncodeHeartbeat(Version primary_version);
std::string EncodeAck(Version applied_version);

}  // namespace ges::replication

#endif  // GES_REPLICATION_REPLICATION_WIRE_H_
