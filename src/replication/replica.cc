#include "replication/replica.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "replication/replication_wire.h"
#include "service/protocol.h"
#include "storage/serialization.h"

namespace ges::replication {
namespace {

using service::MsgType;
using service::ReadResult;
using service::WireReader;

// Must match the durable-directory layout in storage/durability.cc.
constexpr const char* kSnapshotName = "/snapshot.ges";
constexpr const char* kWalName = "/wal.log";

int ConnectTo(const std::string& host, uint16_t port, std::string* err) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *err = "socket() failed";
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *err = "bad primary address: " + host;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    *err = "connect to " + host + ":" + std::to_string(port) + " failed";
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

void Replica::SetError(const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_error_.empty()) last_error_ = msg;
}

std::string Replica::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void Replica::CloseSocket() {
  std::lock_guard<std::mutex> lock(fd_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Replica::ConnectAndSubscribe(Version from, bool* sends_snapshot,
                                    Version* live_from) {
  std::string err;
  int fd = ConnectTo(opts_.primary_host, opts_.primary_port, &err);
  if (fd < 0) return Status::Error(err);
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    fd_ = fd;
  }
  if (!service::WriteFrame(fd_, EncodeSubscribe(from, opts_.name))) {
    CloseSocket();
    return Status::Error("failed to send subscribe request");
  }
  std::string payload;
  if (service::ReadFrame(fd_, &payload) != ReadResult::kOk) {
    CloseSocket();
    return Status::Error("primary closed the connection during subscribe");
  }
  WireReader in(payload);
  uint8_t type = in.GetU8();
  if (type == static_cast<uint8_t>(MsgType::kError)) {
    in.GetU8();  // wire status
    std::string msg = in.GetString();
    CloseSocket();
    return Status::Error("primary refused subscription: " + msg);
  }
  if (type != static_cast<uint8_t>(MsgType::kSubscribeOk)) {
    CloseSocket();
    return Status::Error("unexpected frame during subscribe handshake");
  }
  *live_from = in.GetU64();
  *sends_snapshot = in.GetU8() != 0;
  if (!in.ok()) {
    CloseSocket();
    return Status::Error("malformed subscribe-ok frame");
  }
  return Status::OK();
}

Status Replica::Bootstrap() {
  FileSystem* fs =
      opts_.dur.fs != nullptr ? opts_.dur.fs : FileSystem::Default();
  Version from = 0;
  if (!opts_.data_dir.empty() &&
      Graph::SnapshotExists(opts_.data_dir, opts_.dur.fs)) {
    // Durable replica restart: recover locally first, then ask the
    // primary only for what we're missing.
    GES_RETURN_IF_ERROR(Graph::Open(opts_.data_dir, opts_.dur, &graph_));
    from = graph_->CurrentVersion();
  }

  bool sends_snapshot = false;
  Version live_from = 0;
  GES_RETURN_IF_ERROR(ConnectAndSubscribe(from, &sends_snapshot, &live_from));
  primary_version_.store(live_from, std::memory_order_release);

  if (sends_snapshot) {
    // Receive the checkpoint image: kSnapshotBegin + chunks + kSnapshotEnd.
    std::string payload;
    if (service::ReadFrame(fd_, &payload) != ReadResult::kOk) {
      return Status::Error("stream ended before snapshot header");
    }
    WireReader hdr(payload);
    if (hdr.GetU8() != static_cast<uint8_t>(MsgType::kSnapshotBegin)) {
      return Status::Error("expected snapshot header");
    }
    Version snap_version = hdr.GetU64();
    uint64_t total = hdr.GetU64();
    if (!hdr.ok()) return Status::Error("malformed snapshot header");

    std::string image;
    image.reserve(total);
    for (;;) {
      if (service::ReadFrame(fd_, &payload) != ReadResult::kOk) {
        return Status::Error("stream ended mid-snapshot");
      }
      WireReader in(payload);
      uint8_t type = in.GetU8();
      if (type == static_cast<uint8_t>(MsgType::kSnapshotEnd)) break;
      if (type != static_cast<uint8_t>(MsgType::kSnapshotChunk)) {
        return Status::Error("unexpected frame inside snapshot transfer");
      }
      image += in.GetString();
      if (!in.ok()) return Status::Error("malformed snapshot chunk");
      if (image.size() > total) {
        return Status::Error("snapshot transfer overran announced size");
      }
    }
    if (image.size() != total) {
      return Status::Error("snapshot transfer truncated: got " +
                           std::to_string(image.size()) + " of " +
                           std::to_string(total) + " bytes");
    }

    if (opts_.data_dir.empty()) {
      // In-memory replica: load straight from the wire image.
      graph_ = std::make_unique<Graph>();
      std::istringstream is(std::move(image));
      GES_RETURN_IF_ERROR(LoadGraph(is, graph_.get()));
    } else {
      // Durable replica whose local state is behind the primary's oldest
      // retained WAL: replace the directory with the shipped checkpoint
      // and re-open. (Bootstrap-time only; a mid-stream reconnect never
      // accepts a snapshot — see StreamLoop.)
      graph_.reset();
      GES_RETURN_IF_ERROR(fs->CreateDir(opts_.data_dir));
      {
        std::ofstream out(opts_.data_dir + kSnapshotName,
                          std::ios::binary | std::ios::trunc);
        out.write(image.data(),
                  static_cast<std::streamsize>(image.size()));
        if (!out.good()) {
          return Status::Error("failed to write bootstrap snapshot");
        }
      }
      if (fs->Exists(opts_.data_dir + kWalName)) {
        GES_RETURN_IF_ERROR(fs->Remove(opts_.data_dir + kWalName));
      }
      GES_RETURN_IF_ERROR(Graph::Open(opts_.data_dir, opts_.dur, &graph_));
    }
    if (graph_->CurrentVersion() != snap_version) {
      return Status::Error("bootstrap snapshot loaded at version " +
                           std::to_string(graph_->CurrentVersion()) +
                           " but the primary announced " +
                           std::to_string(snap_version));
    }
  } else if (graph_ == nullptr) {
    // Defensive: the primary always ships a snapshot to a from=0
    // subscriber (CollectReplicationBacklog), so this cannot happen with
    // a well-behaved primary.
    return Status::Error("primary sent no snapshot for a fresh replica");
  }

  applied_.store(graph_->CurrentVersion(), std::memory_order_release);
  return Status::OK();
}

Status Replica::Start() {
  Status s = Bootstrap();
  if (!s.ok()) {
    CloseSocket();
    return s;
  }
  connected_.store(true, std::memory_order_release);
  applier_ = std::thread([this] { ApplierLoop(); });
  return Status::OK();
}

bool Replica::StreamLoop() {
  std::string payload;
  for (;;) {
    ReadResult r = service::ReadFrame(fd_, &payload);
    if (r != ReadResult::kOk) {
      return !stop_.load(std::memory_order_acquire);  // retryable unless stopping
    }
    WireReader in(payload);
    uint8_t type = in.GetU8();
    if (type == static_cast<uint8_t>(MsgType::kWalFrame)) {
      WalTxn tx;
      if (!DecodeWalFrame(&in, &tx)) {
        SetError("malformed WAL frame from primary");
        return false;
      }
      if (tx.commit_version <= applied_.load(std::memory_order_relaxed)) {
        continue;  // duplicate from a catch-up overlap; already applied
      }
      Status s = graph_->ApplyReplicatedTxn(tx);
      if (!s.ok()) {
        SetError(s.message());
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        applied_.store(tx.commit_version, std::memory_order_release);
      }
      applied_cv_.notify_all();
      if (graph_->durable()) (void)graph_->MaybeCheckpoint();
      if (!service::WriteFrame(fd_, EncodeAck(tx.commit_version))) {
        return !stop_.load(std::memory_order_acquire);
      }
    } else if (type == static_cast<uint8_t>(MsgType::kWalHeartbeat)) {
      Version v = in.GetU64();
      if (in.ok()) {
        primary_version_.store(v, std::memory_order_release);
      }
      // Ack the heartbeat too so the primary's last-ack age stays fresh
      // even on an idle stream.
      if (!service::WriteFrame(
              fd_, EncodeAck(applied_.load(std::memory_order_relaxed)))) {
        return !stop_.load(std::memory_order_acquire);
      }
    } else {
      SetError("unexpected frame type " + std::to_string(type) +
               " on replication stream");
      return false;
    }
  }
}

void Replica::ApplierLoop() {
  int attempts_left = opts_.reconnect_attempts;
  for (;;) {
    bool retryable = StreamLoop();
    CloseSocket();
    connected_.store(false, std::memory_order_release);
    if (!retryable || stop_.load(std::memory_order_acquire)) break;

    bool reconnected = false;
    while (attempts_left > 0 && !stop_.load(std::memory_order_acquire)) {
      --attempts_left;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.reconnect_backoff_ms));
      bool sends_snapshot = false;
      Version live_from = 0;
      Status s = ConnectAndSubscribe(
          applied_.load(std::memory_order_acquire), &sends_snapshot,
          &live_from);
      if (!s.ok()) continue;
      if (sends_snapshot) {
        // The primary checkpointed past our position and can no longer
        // serve a WAL-only catch-up. Re-bootstrapping mid-stream would
        // yank the graph out from under readers, so give up instead.
        SetError(
            "primary requires a snapshot to resume; replica needs a "
            "fresh bootstrap");
        CloseSocket();
        reconnected = false;
        break;
      }
      primary_version_.store(live_from, std::memory_order_release);
      connected_.store(true, std::memory_order_release);
      reconnected = true;
      break;
    }
    if (!reconnected) {
      if (attempts_left <= 0 && opts_.reconnect_attempts > 0) {
        SetError("gave up reconnecting to the primary");
      } else if (opts_.reconnect_attempts == 0) {
        SetError("replication stream ended");
      }
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stream_done_ = true;
  }
  applied_cv_.notify_all();
}

bool Replica::WaitForVersion(Version v, double timeout_s) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(timeout_s));
  std::unique_lock<std::mutex> lock(mu_);
  applied_cv_.wait_until(lock, deadline, [&] {
    return applied_.load(std::memory_order_acquire) >= v || stream_done_;
  });
  return applied_.load(std::memory_order_acquire) >= v;
}

void Replica::Stop() {
  if (stop_.exchange(true)) {
    if (applier_.joinable()) applier_.join();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (applier_.joinable()) applier_.join();
  CloseSocket();
  connected_.store(false, std::memory_order_release);
}

Status Replica::Promote() {
  if (graph_ == nullptr) {
    return Status::Error("replica never bootstrapped; nothing to promote");
  }
  Stop();
  // The graph is already a fully functional MVCC graph at applied_; the
  // read-only restriction lives in the serving layer, so releasing the
  // stream is all promotion needs. The caller re-serves graph() as the
  // new primary (optionally enabling durability / a fresh WAL first).
  return Status::OK();
}

}  // namespace ges::replication
