// Replica-aware client router. Wraps one service::Client per endpoint and
// routes by operation class:
//   - reads (IS/IC/BI) fan out round-robin across replicas, falling back
//     to the primary when a replica is down or answers kLagging;
//   - updates (IU) always go to the primary (the only writer), inheriting
//     Client's ambiguous-update rule: a fully-sent, unanswered IU is never
//     retried anywhere.
// Read-your-writes: every acknowledged update advances a token (its commit
// version); reads carry the token as QueryRequest.min_version, so a
// lagging replica either waits until it has applied that version or
// bounces the read back here with kLagging — the router then tries the
// next node and ultimately the primary, which always satisfies the floor.
//
// Not thread-safe: use one RoutedClient per thread (same model as Client).
#ifndef GES_REPLICATION_ROUTED_CLIENT_H_
#define GES_REPLICATION_ROUTED_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/client.h"

namespace ges::replication {

struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

class RoutedClient {
 public:
  struct Options {
    Endpoint primary;
    std::vector<Endpoint> replicas;
    service::RetryPolicy retry;
  };

  explicit RoutedClient(Options opts);
  ~RoutedClient() { Close(); }

  RoutedClient(const RoutedClient&) = delete;
  RoutedClient& operator=(const RoutedClient&) = delete;

  // Routes a read-only request (asserts kind != kIU). Returns false when
  // every eligible node failed or stayed lagging; resp holds the last
  // failure detail when it came from a server.
  bool RunRead(service::QueryRequest req, service::QueryResponse* resp);

  // Routes an update to the primary and advances the RYW token on success.
  bool RunUpdate(service::QueryRequest req, service::QueryResponse* resp);

  // Convenience wrappers mirroring service::Client.
  bool RunIS(int number, const LdbcParams& params,
             service::QueryResponse* resp, uint32_t deadline_ms = 0);
  bool RunIC(int number, const LdbcParams& params,
             service::QueryResponse* resp, uint32_t deadline_ms = 0);
  bool RunBI(int number, service::QueryResponse* resp,
             uint32_t deadline_ms = 0);
  bool RunIU(int number, uint64_t seed, service::QueryResponse* resp,
             uint32_t deadline_ms = 0);
  // Service-time-bound no-op (bench workloads).
  bool RunSleep(uint64_t millis, service::QueryResponse* resp);

  // Commit version of the latest acknowledged update through this router;
  // reads through this router never observe an older version.
  uint64_t ryw_token() const { return ryw_token_; }

  // Failover: point update traffic (and read fallback) at a new primary,
  // e.g. a promoted replica. Drops the old primary connection.
  void SetPrimary(const Endpoint& ep);

  const std::string& last_error() const { return error_; }
  void Close();

 private:
  struct Node {
    Endpoint ep;
    std::unique_ptr<service::Client> client;
  };

  bool EnsureConnected(Node* node);
  bool RunOn(Node* node, const service::QueryRequest& req,
             service::QueryResponse* resp);
  void Observe(const service::QueryResponse& resp);

  Options opts_;
  Node primary_;
  std::vector<Node> replicas_;
  size_t rr_ = 0;  // round-robin cursor over replicas
  uint64_t ryw_token_ = 0;
  uint64_t next_query_id_ = 1;
  std::string error_;
};

}  // namespace ges::replication

#endif  // GES_REPLICATION_ROUTED_CLIENT_H_
