#include "replication/routed_client.h"

namespace ges::replication {

using service::QueryKind;
using service::QueryRequest;
using service::QueryResponse;
using service::WireStatus;

RoutedClient::RoutedClient(Options opts) : opts_(std::move(opts)) {
  primary_.ep = opts_.primary;
  replicas_.reserve(opts_.replicas.size());
  for (const Endpoint& ep : opts_.replicas) {
    Node node;
    node.ep = ep;
    replicas_.push_back(std::move(node));
  }
}

void RoutedClient::Close() {
  if (primary_.client) primary_.client->Close();
  for (Node& node : replicas_) {
    if (node.client) node.client->Close();
  }
}

void RoutedClient::SetPrimary(const Endpoint& ep) {
  primary_.client.reset();
  primary_.ep = ep;
}

bool RoutedClient::EnsureConnected(Node* node) {
  if (node->client && node->client->connected()) return true;
  node->client = std::make_unique<service::Client>();
  node->client->set_retry_policy(opts_.retry);
  if (!node->client->Connect(node->ep.host, node->ep.port)) {
    error_ = node->client->last_error();
    node->client.reset();
    return false;
  }
  return true;
}

bool RoutedClient::RunOn(Node* node, const QueryRequest& req,
                         QueryResponse* resp) {
  if (!EnsureConnected(node)) return false;
  if (!node->client->Run(req, resp)) {
    error_ = node->client->last_error();
    node->client.reset();  // reconnect lazily on the next attempt
    return false;
  }
  return true;
}

void RoutedClient::Observe(const QueryResponse& resp) {
  if (resp.snapshot_version > ryw_token_) ryw_token_ = resp.snapshot_version;
}

bool RoutedClient::RunRead(QueryRequest req, QueryResponse* resp) {
  if (req.query_id == 0) req.query_id = next_query_id_++;
  req.min_version = ryw_token_;

  // Replicas first (round-robin so concurrent routers spread the load),
  // then the primary as the node that can always satisfy the RYW floor.
  std::vector<Node*> order;
  order.reserve(replicas_.size() + 1);
  if (!replicas_.empty()) {
    size_t start = rr_++ % replicas_.size();
    for (size_t i = 0; i < replicas_.size(); ++i) {
      order.push_back(&replicas_[(start + i) % replicas_.size()]);
    }
  }
  // The primary is always last: even with primary_serves_reads=false it
  // must back kLagging bounces and replica outages, or a stalled replica
  // set would fail RYW reads forever.
  order.push_back(&primary_);

  bool any_lagging = false;
  for (Node* node : order) {
    if (!RunOn(node, req, resp)) continue;
    if (resp->status == WireStatus::kLagging) {
      any_lagging = true;
      continue;
    }
    return true;
  }
  if (error_.empty() && any_lagging) {
    error_ = "every node (including the primary) reported LAGGING";
  }
  return false;
}

bool RoutedClient::RunUpdate(QueryRequest req, QueryResponse* resp) {
  if (req.query_id == 0) req.query_id = next_query_id_++;
  if (!RunOn(&primary_, req, resp)) return false;
  if (resp->status == WireStatus::kOk) Observe(*resp);
  return true;
}

bool RoutedClient::RunIS(int number, const LdbcParams& params,
                         QueryResponse* resp, uint32_t deadline_ms) {
  QueryRequest req;
  req.kind = QueryKind::kIS;
  req.number = static_cast<uint8_t>(number);
  req.params = params;
  req.deadline_ms = deadline_ms;
  return RunRead(std::move(req), resp);
}

bool RoutedClient::RunIC(int number, const LdbcParams& params,
                         QueryResponse* resp, uint32_t deadline_ms) {
  QueryRequest req;
  req.kind = QueryKind::kIC;
  req.number = static_cast<uint8_t>(number);
  req.params = params;
  req.deadline_ms = deadline_ms;
  return RunRead(std::move(req), resp);
}

bool RoutedClient::RunBI(int number, QueryResponse* resp,
                         uint32_t deadline_ms) {
  QueryRequest req;
  req.kind = QueryKind::kBI;
  req.number = static_cast<uint8_t>(number);
  req.deadline_ms = deadline_ms;
  return RunRead(std::move(req), resp);
}

bool RoutedClient::RunIU(int number, uint64_t seed, QueryResponse* resp,
                         uint32_t deadline_ms) {
  QueryRequest req;
  req.kind = QueryKind::kIU;
  req.number = static_cast<uint8_t>(number);
  req.seed = seed;
  req.deadline_ms = deadline_ms;
  return RunUpdate(std::move(req), resp);
}

bool RoutedClient::RunSleep(uint64_t millis, QueryResponse* resp) {
  QueryRequest req;
  req.kind = QueryKind::kSleep;
  req.seed = millis;
  return RunRead(std::move(req), resp);
}

}  // namespace ges::replication
