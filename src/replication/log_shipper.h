// Primary-side WAL shipping: fans committed transactions out to N
// subscribed replicas over the service wire protocol, tracks per-replica
// acknowledgement progress, and implements the optional semi-synchronous
// commit wait (ServiceConfig.min_replica_acks).
//
// Threading model
//   - OnCommit runs under the graph's commit mutex (it is the Graph commit
//     listener) and only enqueues pre-encoded frames; the actual socket
//     writes happen on one sender thread per subscriber.
//   - Lock order: commit_mutex -> subs_mu_ -> sub->mu. acks_mu_ is leaf-
//     level and never held while taking subs_mu_ from the notify side.
#ifndef GES_REPLICATION_LOG_SHIPPER_H_
#define GES_REPLICATION_LOG_SHIPPER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/graph.h"

namespace ges::replication {

// Point-in-time lag view of one subscriber, exported via ServiceStats.
struct ReplicaLagInfo {
  std::string name;
  uint64_t subscriber_id = 0;
  uint64_t applied_version = 0;  // last version the replica acked
  uint64_t lag_commits = 0;      // primary version - applied version
  uint64_t lag_bytes = 0;        // encoded frames queued but not yet sent
  double last_ack_age_s = 0.0;   // seconds since the last ack/heartbeat ack
  bool connected = false;
};

class LogShipper {
 public:
  // Sends one already-encoded frame to the subscriber's connection.
  // Returns false when the connection is gone.
  using SendFrame = std::function<bool(const std::string&)>;
  // Invoked (once) from the sender thread when shipping fails, so the
  // owner can kick the blocked ack-reader off the socket.
  using OnDead = std::function<void()>;

  explicit LogShipper(Graph* graph) : graph_(graph) {}
  ~LogShipper() { Shutdown(); }

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  // Installs the commit listener. Call before serving traffic.
  void Start();

  // Clears the commit listener, closes every subscriber, joins sender
  // threads, and releases any semi-sync waiters (they observe failure).
  // Safe to call more than once. Must not race AddSubscriber.
  void Shutdown();

  // Registers a subscriber wanting the stream from `from` (0 = fresh
  // bootstrap). Collects the backlog atomically with registration so no
  // commit falls between backlog and live feed. Returns the subscriber id
  // (non-zero) or 0 with *status set on failure. Spawns the sender thread.
  uint64_t AddSubscriber(const std::string& name, Version from,
                         SendFrame send, OnDead on_dead, Status* status);

  // Records an ack from the replica's applier. Monotonic.
  void OnAck(uint64_t subscriber_id, Version applied);

  // Unregisters and joins the subscriber's sender thread.
  void RemoveSubscriber(uint64_t subscriber_id);

  // Blocks until at least `min_acks` connected subscribers have acked
  // `version`, the timeout elapses, or the shipper shuts down. Returns
  // true only in the first case. min_acks <= 0 returns true immediately.
  bool WaitForAcks(Version version, int min_acks, double timeout_s);

  std::vector<ReplicaLagInfo> LagSnapshot() const;
  int ConnectedSubscribers() const;
  uint64_t frames_shipped() const {
    return frames_shipped_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_shipped() const {
    return bytes_shipped_.load(std::memory_order_relaxed);
  }

 private:
  struct Subscriber {
    uint64_t id = 0;
    std::string name;
    SendFrame send;
    OnDead on_dead;
    ReplicationBacklog backlog;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<const std::string>> queue;  // guarded by mu
    bool closed = false;                                   // guarded by mu
    std::thread sender;

    std::atomic<uint64_t> acked{0};
    std::atomic<int64_t> last_ack_ns{0};
    std::atomic<uint64_t> queued_bytes{0};
    std::atomic<bool> connected{true};
  };

  void OnCommit(Version version, const std::vector<WalRecord>& records);
  void SenderLoop(const std::shared_ptr<Subscriber>& sub);
  void CloseSubscriberLocked(const std::shared_ptr<Subscriber>& sub);

  Graph* graph_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  mutable std::mutex subs_mu_;
  uint64_t next_id_ = 1;  // guarded by subs_mu_
  std::map<uint64_t, std::shared_ptr<Subscriber>> subs_;  // guarded by subs_mu_

  mutable std::mutex acks_mu_;
  std::condition_variable acks_cv_;

  std::atomic<uint64_t> frames_shipped_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
};

}  // namespace ges::replication

#endif  // GES_REPLICATION_LOG_SHIPPER_H_
