// Replica-side of WAL-shipping replication: bootstraps a graph from the
// primary (checkpoint snapshot + WAL catch-up, or local recovery + WAL
// catch-up when it already has a data dir), then applies live kWalFrame
// transactions in commit order, acking each applied version back so the
// primary can track lag and satisfy semi-synchronous commits.
#ifndef GES_REPLICATION_REPLICA_H_
#define GES_REPLICATION_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "storage/graph.h"

namespace ges::replication {

class Replica {
 public:
  struct Options {
    std::string primary_host = "127.0.0.1";
    uint16_t primary_port = 0;
    std::string name = "replica";
    // Empty = keep the whole graph in memory (bootstrap re-fetches the
    // snapshot). Set = durable replica: recovers locally and subscribes
    // from its own applied version, then checkpoints as it applies.
    std::string data_dir;
    DurabilityOptions dur;
    // After a live-stream drop: how many reconnect attempts before the
    // applier gives up (0 = don't reconnect).
    int reconnect_attempts = 0;
    int reconnect_backoff_ms = 100;
  };

  explicit Replica(Options opts) : opts_(std::move(opts)) {}
  ~Replica() { Stop(); }

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Connects, bootstraps, and starts the applier thread. On return the
  // graph is loaded and consistent at the bootstrap version; the applier
  // keeps it moving forward.
  Status Start();

  // Shuts the stream down and joins the applier. Idempotent.
  void Stop();

  // Failover: stops replication and releases the graph for writes. The
  // caller owns serving it (e.g. hand it to a Server in primary mode).
  Status Promote();

  Graph* graph() { return graph_.get(); }
  Version applied_version() const {
    return applied_.load(std::memory_order_acquire);
  }
  Version primary_version() const {
    return primary_version_.load(std::memory_order_acquire);
  }
  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }

  // Blocks until the replica has applied at least `v` (true) or the
  // timeout elapses / the stream ends for good (false).
  bool WaitForVersion(Version v, double timeout_s);

  // Last stream/apply error, readable after connected() goes false.
  std::string last_error() const;

 private:
  Status ConnectAndSubscribe(Version from, bool* sends_snapshot,
                             Version* live_from);
  Status Bootstrap();
  void ApplierLoop();
  bool StreamLoop();  // false = fatal, true = retryable connection loss
  void SetError(const std::string& msg);
  void CloseSocket();

  Options opts_;
  std::unique_ptr<Graph> graph_;
  // fd_mu_ serializes open/close/shutdown of the stream socket: Stop()
  // shuts the fd down from another thread while the applier owns it, and
  // an unguarded close would let the kernel reuse the fd number under
  // that shutdown. Blocking reads/writes on an open fd take no lock.
  std::mutex fd_mu_;
  int fd_ = -1;

  std::thread applier_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> primary_version_{0};

  mutable std::mutex mu_;
  std::condition_variable applied_cv_;
  std::string last_error_;  // guarded by mu_
  bool stream_done_ = false;  // guarded by mu_; applier exited for good
};

}  // namespace ges::replication

#endif  // GES_REPLICATION_REPLICA_H_
