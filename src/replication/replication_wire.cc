#include "replication/replication_wire.h"

namespace ges::replication {

using service::MsgType;
using service::WireBuf;
using service::WireReader;

std::string EncodeWalFrame(Version commit_version,
                           const std::vector<WalRecord>& records) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kWalFrame));
  b.PutU64(commit_version);
  uint32_t n = 0;
  for (const WalRecord& r : records) {
    if (r.type != WalRecordType::kBeginTx &&
        r.type != WalRecordType::kCommitTx) {
      ++n;
    }
  }
  b.PutU32(n);
  for (const WalRecord& r : records) {
    if (r.type == WalRecordType::kBeginTx ||
        r.type == WalRecordType::kCommitTx) {
      continue;
    }
    b.PutString(EncodeWalRecord(r));
  }
  return b.Take();
}

bool DecodeWalFrame(WireReader* in, WalTxn* out) {
  *out = WalTxn{};
  out->commit_version = in->GetU64();
  out->txid = out->commit_version;
  out->committed = true;
  uint32_t n = in->GetU32();
  out->records.reserve(n);
  for (uint32_t i = 0; in->ok() && i < n; ++i) {
    WalRecord rec;
    if (!DecodeWalRecord(in->GetString(), &rec)) return false;
    out->records.push_back(std::move(rec));
  }
  return in->ok() && out->commit_version != 0;
}

std::string EncodeSubscribe(Version from, const std::string& name) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kSubscribe));
  b.PutU32(service::kReplicationProtocolVersion);
  b.PutU64(from);
  b.PutString(name);
  return b.Take();
}

std::string EncodeHeartbeat(Version primary_version) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kWalHeartbeat));
  b.PutU64(primary_version);
  return b.Take();
}

std::string EncodeAck(Version applied_version) {
  WireBuf b;
  b.PutU8(static_cast<uint8_t>(MsgType::kReplicaAck));
  b.PutU64(applied_version);
  return b.Take();
}

}  // namespace ges::replication
