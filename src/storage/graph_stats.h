// Graph statistics harvested from adjacency metadata and base property
// columns: per-(srcLabel, edgeLabel, dstLabel) degree histograms and
// per-(label, property) NDV / min-max. Owned by the Catalog as an immutable
// snapshot behind a shared_ptr; the service reaper thread rebuilds it
// (Graph::RebuildStats) and each install bumps the catalog stats epoch,
// which invalidates cached plans costed against the old snapshot.
#ifndef GES_STORAGE_GRAPH_STATS_H_
#define GES_STORAGE_GRAPH_STATS_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "storage/adjacency.h"

namespace ges {

// Documented default cardinality used when a relation has no sampled edges
// (empty table, or statistics not yet built). A zero estimate must never
// reach the cost model: it made both sides of the WCOJ gate collapse to 0
// and silently disabled the IntersectExpand rewrite.
inline constexpr double kDefaultDegree = 8.0;

// Log2-bucketed out-degree distribution of one adjacency table, sampled
// over source-label vertices at a fixed version. bucket[i] counts sampled
// vertices with degree in [2^i, 2^(i+1)).
struct DegreeHistogram {
  uint64_t sampled_vertices = 0;  // vertices sampled (including degree 0)
  uint64_t sampled_sources = 0;   // sampled vertices with >= 1 edge
  uint64_t sampled_edges = 0;
  uint32_t max_degree = 0;
  double base_avg_degree = 0;  // edges/sources from base adjMeta (exact)
  std::array<uint64_t, 32> buckets{};

  bool HasSamples() const { return sampled_sources > 0; }

  // Mean degree over sources with edges; falls back to the exact base
  // adjacency metadata when sampling saw nothing.
  double Avg() const {
    if (sampled_sources > 0) {
      return static_cast<double>(sampled_edges) /
             static_cast<double>(sampled_sources);
    }
    return base_avg_degree;
  }

  // Smallest degree d such that at least `q` (0..1) of sampled sources
  // have degree <= d; 0 without samples.
  double Quantile(double q) const;
};

// Sampled distribution of one (label, property) base column.
struct PropertyStats {
  uint64_t count = 0;  // total rows in the column
  uint64_t ndv = 0;    // estimated distinct values (0 = unknown)
  bool has_range = false;
  double min = 0;  // numeric range when has_range
  double max = 0;
};

// One immutable statistics snapshot. Index spaces follow the catalog:
// degrees by RelationId, label_vertices by vertex LabelId.
struct GraphStats {
  uint64_t built_at = 0;  // graph version the snapshot was sampled at
  std::vector<DegreeHistogram> degrees;
  std::vector<uint64_t> label_vertices;
  std::unordered_map<uint64_t, PropertyStats> properties;

  static uint64_t PropKey(LabelId label, PropertyId prop) {
    return (uint64_t{label} << 32) | uint64_t{prop};
  }

  const PropertyStats* Property(LabelId label, PropertyId prop) const {
    auto it = properties.find(PropKey(label, prop));
    return it == properties.end() ? nullptr : &it->second;
  }

  // Expected out-degree of `rel`, never zero: relations without sampled
  // edges get kDefaultDegree so the cost model stays well-defined.
  double ExpectedDegree(RelationId rel) const {
    if (rel == kInvalidRelation ||
        static_cast<size_t>(rel) >= degrees.size()) {
      return kDefaultDegree;
    }
    double avg = degrees[rel].Avg();
    return avg > 0 ? avg : kDefaultDegree;
  }

  uint64_t LabelVertices(LabelId label) const {
    return static_cast<size_t>(label) < label_vertices.size()
               ? label_vertices[label]
               : 0;
  }
};

}  // namespace ges

#endif  // GES_STORAGE_GRAPH_STATS_H_
