#include "storage/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32c.h"

namespace ges {

namespace {

constexpr char kMagicV1[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '1'};
constexpr char kMagicV2[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '2'};
constexpr char kMagicV3[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '3'};

// V2/V3 string-value subtags.
constexpr uint8_t kStrInline = 0;  // length + bytes follow
constexpr uint8_t kStrCode = 1;    // uint32 dictionary code follows

// --- little-endian primitives ---

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

bool ReadU64(std::istream& in, uint64_t* v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

void WriteI64(std::ostream& out, int64_t v) {
  WriteU64(out, static_cast<uint64_t>(v));
}

bool ReadI64(std::istream& in, int64_t* v) {
  uint64_t u;
  if (!ReadU64(in, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

bool ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t n;
  if (!ReadU64(in, &n)) return false;
  if (n > (1u << 30)) return false;  // sanity bound
  s->resize(n);
  return static_cast<bool>(in.read(s->data(), static_cast<std::streamsize>(n)));
}

// `dict` non-null => V2/V3 encoding: string values carry a subtag and, when
// the string is in the graph dictionary, are written as a uint32 code.
void WriteValue(std::ostream& out, const Value& v, const StringDict* dict) {
  out.put(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      WriteU64(out, bits);
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      if (dict != nullptr) {
        uint32_t code = dict->Find(s);
        if (code != StringDict::kInvalidCode) {
          out.put(static_cast<char>(kStrCode));
          WriteU32(out, code);
        } else {  // overlay value never interned: inline
          out.put(static_cast<char>(kStrInline));
          WriteString(out, s);
        }
      } else {
        WriteString(out, s);
      }
      break;
    }
    default:
      WriteI64(out, v.AsInt());
      break;
  }
}

// `dict` non-null => V2/V3 decoding (the dictionary section already
// loaded).
bool ReadValue(std::istream& in, Value* v,
               const std::vector<std::string>* dict) {
  int tag = in.get();
  if (tag < 0) return false;
  ValueType type = static_cast<ValueType>(tag);
  switch (type) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kBool: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Bool(i != 0);
      return true;
    }
    case ValueType::kInt64: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Int(i);
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      if (!ReadU64(in, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *v = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      if (dict != nullptr) {
        int sub = in.get();
        if (sub < 0) return false;
        if (sub == kStrCode) {
          uint32_t code;
          if (!ReadU32(in, &code)) return false;
          if (code >= dict->size()) return false;
          *v = Value::String((*dict)[code]);
          return true;
        }
        if (sub != kStrInline) return false;
      }
      std::string s;
      if (!ReadString(in, &s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    case ValueType::kDate: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Date(i);
      return true;
    }
    case ValueType::kVertex: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Vertex(static_cast<VertexId>(i));
      return true;
    }
  }
  return false;
}

// --- section writers, shared across formats. In V1/V2 the sections are
// concatenated directly; in V3 each one is CRC32C-framed. ---

struct RelSpec {
  LabelId src, edge, dst;
  bool has_stamp;
};

void WriteDictSection(std::ostream& out, const StringDict& dict) {
  WriteU64(out, dict.size());
  for (uint32_t c = 0; c < dict.size(); ++c) {
    WriteString(out, dict.Get(c));
  }
}

void WriteCatalogSection(std::ostream& out, const Catalog& catalog) {
  WriteU64(out, catalog.num_vertex_labels());
  for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
    WriteString(out, catalog.VertexLabelName(static_cast<LabelId>(l)));
    const auto& props = catalog.LabelProperties(static_cast<LabelId>(l));
    WriteU64(out, props.size());
    for (const auto& [prop, type] : props) {
      WriteString(out, catalog.PropertyName(prop));
      out.put(static_cast<char>(type));
    }
  }
  WriteU64(out, catalog.num_edge_labels());
  for (size_t l = 0; l < catalog.num_edge_labels(); ++l) {
    WriteString(out, catalog.EdgeLabelName(static_cast<LabelId>(l)));
  }
}

void WriteRelationsSection(std::ostream& out,
                           const std::vector<Graph::RelationInfo>& rels) {
  WriteU64(out, rels.size());
  for (const Graph::RelationInfo& r : rels) {
    WriteU64(out, r.key.src_label);
    WriteU64(out, r.key.edge_label);
    WriteU64(out, r.key.dst_label);
    out.put(r.has_stamp ? 1 : 0);
  }
}

void WriteVertexSection(std::ostream& out, const Graph& graph, LabelId label,
                        Version snap, const StringDict* dict) {
  const auto& props = graph.catalog().LabelProperties(label);
  std::vector<VertexId> vertices;
  graph.ScanLabel(label, snap, &vertices);
  WriteU64(out, vertices.size());
  for (VertexId v : vertices) {
    WriteI64(out, graph.ExtIdOf(v, snap));
    for (const auto& [prop, type] : props) {
      WriteValue(out, graph.GetProperty(v, prop, snap), dict);
    }
  }
}

void WriteEdgeSection(std::ostream& out, const Graph& graph,
                      const Graph::RelationInfo& r, Version snap) {
  RelationId rel = graph.FindRelation(r.key.src_label, r.key.edge_label,
                                      r.key.dst_label, Direction::kOut);
  std::vector<VertexId> sources;
  graph.ScanLabel(r.key.src_label, snap, &sources);
  // Count live edges first (tombstones are dropped by the snapshot).
  uint64_t count = 0;
  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap);
    for (uint32_t i = 0; i < span.size; ++i) {
      if (span.ids[i] != kInvalidVertex) ++count;
    }
  }
  WriteU64(out, count);
  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap);
    int64_t src_ext = graph.ExtIdOf(v, snap);
    for (uint32_t i = 0; i < span.size; ++i) {
      if (span.ids[i] == kInvalidVertex) continue;
      WriteI64(out, src_ext);
      WriteI64(out, graph.ExtIdOf(span.ids[i], snap));
      if (r.has_stamp) {
        WriteI64(out, span.stamps == nullptr ? 0 : span.stamps[i]);
      }
    }
  }
}

// --- section parsers, shared across formats ---

Status ParseDictSection(std::istream& in, std::vector<std::string>* out) {
  uint64_t n;
  if (!ReadU64(in, &n)) return Status::Error("truncated dictionary");
  if (n > (1u << 31)) return Status::Error("dictionary too large");
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!ReadString(in, &(*out)[i])) {
      return Status::Error("truncated dictionary entry");
    }
  }
  return Status::OK();
}

Status ParseCatalogSection(
    std::istream& in, Graph* graph,
    std::vector<std::vector<std::pair<PropertyId, ValueType>>>* label_props) {
  Catalog& catalog = graph->catalog();
  uint64_t num_vlabels;
  if (!ReadU64(in, &num_vlabels)) return Status::Error("truncated header");
  label_props->resize(num_vlabels);
  for (uint64_t l = 0; l < num_vlabels; ++l) {
    std::string name;
    if (!ReadString(in, &name)) return Status::Error("truncated label");
    LabelId label = catalog.AddVertexLabel(name);
    uint64_t num_props;
    if (!ReadU64(in, &num_props)) return Status::Error("truncated props");
    for (uint64_t p = 0; p < num_props; ++p) {
      std::string pname;
      if (!ReadString(in, &pname)) return Status::Error("truncated prop");
      int tag = in.get();
      if (tag < 0) return Status::Error("truncated prop type");
      PropertyId prop =
          catalog.AddProperty(label, pname, static_cast<ValueType>(tag));
      (*label_props)[l].emplace_back(prop, static_cast<ValueType>(tag));
    }
  }
  uint64_t num_elabels;
  if (!ReadU64(in, &num_elabels)) return Status::Error("truncated");
  for (uint64_t l = 0; l < num_elabels; ++l) {
    std::string name;
    if (!ReadString(in, &name)) return Status::Error("truncated edge label");
    catalog.AddEdgeLabel(name);
  }
  return Status::OK();
}

Status ParseRelationsSection(std::istream& in, Graph* graph,
                             std::vector<RelSpec>* rels) {
  uint64_t num_rels;
  if (!ReadU64(in, &num_rels)) return Status::Error("truncated");
  for (uint64_t r = 0; r < num_rels; ++r) {
    uint64_t src, edge, dst;
    if (!ReadU64(in, &src) || !ReadU64(in, &edge) || !ReadU64(in, &dst)) {
      return Status::Error("truncated relation");
    }
    int has_stamp = in.get();
    if (has_stamp < 0) return Status::Error("truncated relation");
    RelSpec spec{static_cast<LabelId>(src), static_cast<LabelId>(edge),
                 static_cast<LabelId>(dst), has_stamp != 0};
    graph->RegisterRelation(spec.src, spec.edge, spec.dst, spec.has_stamp);
    rels->push_back(spec);
  }
  return Status::OK();
}

Status ParseVertexSection(
    std::istream& in, Graph* graph, LabelId label,
    const std::vector<std::pair<PropertyId, ValueType>>& props,
    const std::vector<std::string>* dict) {
  uint64_t count;
  if (!ReadU64(in, &count)) return Status::Error("truncated vertices");
  for (uint64_t i = 0; i < count; ++i) {
    int64_t ext;
    if (!ReadI64(in, &ext)) return Status::Error("truncated vertex");
    VertexId v = graph->AddVertexBulk(label, ext);
    for (const auto& [prop, type] : props) {
      Value value;
      if (!ReadValue(in, &value, dict)) {
        return Status::Error("truncated value");
      }
      if (!value.is_null()) graph->SetPropertyBulk(v, prop, value);
    }
  }
  return Status::OK();
}

Status ParseEdgeSection(std::istream& in, Graph* graph, const RelSpec& spec) {
  uint64_t count;
  if (!ReadU64(in, &count)) return Status::Error("truncated edges");
  for (uint64_t i = 0; i < count; ++i) {
    int64_t src_ext, dst_ext, stamp = 0;
    if (!ReadI64(in, &src_ext) || !ReadI64(in, &dst_ext)) {
      return Status::Error("truncated edge");
    }
    if (spec.has_stamp && !ReadI64(in, &stamp)) {
      return Status::Error("truncated stamp");
    }
    VertexId src = graph->FindByExtId(spec.src, src_ext, 0);
    VertexId dst = graph->FindByExtId(spec.dst, dst_ext, 0);
    if (src == kInvalidVertex || dst == kInvalidVertex) {
      return Status::Error("edge references unknown vertex");
    }
    graph->AddEdgeBulk(spec.edge, src, dst, stamp);
  }
  return Status::OK();
}

// --- V3 section framing: [u64 len][u32 crc32c(bytes)][bytes] ---

void WriteFramed(std::ostream& out, const std::string& payload) {
  WriteU64(out, payload.size());
  WriteU32(out, Crc32c(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

Status SectionError(const std::string& name, const std::string& what) {
  return Status::Error("snapshot section '" + name + "' " + what);
}

Status ReadFramed(std::istream& in, const std::string& name,
                  std::string* buf) {
  uint64_t len;
  uint32_t crc;
  if (!ReadU64(in, &len) || !ReadU32(in, &crc)) {
    return SectionError(name, "truncated (missing frame header)");
  }
  if (len > (1ull << 33)) return SectionError(name, "implausibly large");
  buf->resize(len);
  if (len > 0 &&
      !in.read(buf->data(), static_cast<std::streamsize>(len))) {
    return SectionError(name, "truncated");
  }
  if (Crc32c(*buf) != crc) {
    return SectionError(name, "corrupt (CRC32C mismatch)");
  }
  return Status::OK();
}

std::string EdgeSectionName(const Catalog& catalog, const RelSpec& spec) {
  return std::string("edges[") + catalog.VertexLabelName(spec.src) + "-" +
         catalog.EdgeLabelName(spec.edge) + "->" +
         catalog.VertexLabelName(spec.dst) + "]";
}

}  // namespace

Status SaveGraph(const Graph& graph, std::ostream& out,
                 SnapshotFormat format) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before saving");
  }
  const Catalog& catalog = graph.catalog();
  Version snap = graph.CurrentVersion();
  const StringDict* dict =
      format == SnapshotFormat::kV1 ? nullptr : &graph.string_dict();
  std::vector<Graph::RelationInfo> rels = graph.Relations();

  switch (format) {
    case SnapshotFormat::kV1:
      out.write(kMagicV1, 8);
      break;
    case SnapshotFormat::kV2:
      out.write(kMagicV2, 8);
      break;
    case SnapshotFormat::kV3:
      out.write(kMagicV3, 8);
      break;
  }

  if (format == SnapshotFormat::kV3) {
    auto framed = [&out](auto&& fill) {
      std::ostringstream section;
      fill(section);
      WriteFramed(out, section.str());
    };
    // Header: the snapshot version, restored on load so recovery can skip
    // WAL transactions already folded into this snapshot.
    framed([&](std::ostream& s) { WriteU64(s, snap); });
    framed([&](std::ostream& s) { WriteDictSection(s, *dict); });
    framed([&](std::ostream& s) { WriteCatalogSection(s, catalog); });
    framed([&](std::ostream& s) { WriteRelationsSection(s, rels); });
    for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
      framed([&](std::ostream& s) {
        WriteVertexSection(s, graph, static_cast<LabelId>(l), snap, dict);
      });
    }
    for (const Graph::RelationInfo& r : rels) {
      framed([&](std::ostream& s) { WriteEdgeSection(s, graph, r, snap); });
    }
  } else {
    if (dict != nullptr) WriteDictSection(out, *dict);
    WriteCatalogSection(out, catalog);
    WriteRelationsSection(out, rels);
    for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
      WriteVertexSection(out, graph, static_cast<LabelId>(l), snap, dict);
    }
    for (const Graph::RelationInfo& r : rels) {
      WriteEdgeSection(out, graph, r, snap);
    }
  }
  if (!out) return Status::Error("write failure");
  return Status::OK();
}

Status LoadGraph(std::istream& in, Graph* graph) {
  char magic[8];
  if (!in.read(magic, 8)) {
    return Status::InvalidArgument("not a GES snapshot (bad magic)");
  }
  bool v3 = std::memcmp(magic, kMagicV3, 8) == 0;
  bool v2 = std::memcmp(magic, kMagicV2, 8) == 0;
  if (!v3 && !v2 && std::memcmp(magic, kMagicV1, 8) != 0) {
    return Status::InvalidArgument("not a GES snapshot (bad magic)");
  }

  std::vector<std::string> dict_strings;
  const std::vector<std::string>* dict =
      (v2 || v3) ? &dict_strings : nullptr;
  std::vector<std::vector<std::pair<PropertyId, ValueType>>> label_props;
  std::vector<RelSpec> rels;

  if (v3) {
    // Every section is read fully, CRC-verified, then parsed; any framing
    // or parse failure names the section instead of loading partial data.
    auto section = [&in](const std::string& name, auto&& parse) -> Status {
      std::string buf;
      GES_RETURN_IF_ERROR(ReadFramed(in, name, &buf));
      std::istringstream sec(buf);
      Status s = parse(sec);
      if (!s.ok()) {
        return SectionError(name, "invalid: " + s.message());
      }
      return Status::OK();
    };

    uint64_t snapshot_version = 0;
    GES_RETURN_IF_ERROR(section("header", [&](std::istream& s) {
      return ReadU64(s, &snapshot_version)
                 ? Status::OK()
                 : Status::Error("missing snapshot version");
    }));
    GES_RETURN_IF_ERROR(section("dict", [&](std::istream& s) {
      return ParseDictSection(s, &dict_strings);
    }));
    GES_RETURN_IF_ERROR(section("catalog", [&](std::istream& s) {
      return ParseCatalogSection(s, graph, &label_props);
    }));
    GES_RETURN_IF_ERROR(section("relations", [&](std::istream& s) {
      return ParseRelationsSection(s, graph, &rels);
    }));
    const Catalog& catalog = graph->catalog();
    for (uint64_t l = 0; l < label_props.size(); ++l) {
      LabelId label = static_cast<LabelId>(l);
      std::string name =
          std::string("vertices[") + catalog.VertexLabelName(label) + "]";
      GES_RETURN_IF_ERROR(section(name, [&](std::istream& s) {
        return ParseVertexSection(s, graph, label, label_props[l], dict);
      }));
    }
    for (const RelSpec& spec : rels) {
      GES_RETURN_IF_ERROR(
          section(EdgeSectionName(catalog, spec), [&](std::istream& s) {
            return ParseEdgeSection(s, graph, spec);
          }));
    }
    graph->FinalizeBulk();
    graph->RestoreVersionForRecovery(snapshot_version);
    return Status::OK();
  }

  // Legacy V1/V2: the same sections, concatenated without framing.
  if (v2) {
    GES_RETURN_IF_ERROR(ParseDictSection(in, &dict_strings));
  }
  GES_RETURN_IF_ERROR(ParseCatalogSection(in, graph, &label_props));
  GES_RETURN_IF_ERROR(ParseRelationsSection(in, graph, &rels));
  for (uint64_t l = 0; l < label_props.size(); ++l) {
    GES_RETURN_IF_ERROR(ParseVertexSection(
        in, graph, static_cast<LabelId>(l), label_props[l], dict));
  }
  for (const RelSpec& spec : rels) {
    GES_RETURN_IF_ERROR(ParseEdgeSection(in, graph, spec));
  }
  graph->FinalizeBulk();
  return Status::OK();
}

Status SaveGraphFile(const Graph& graph, const std::string& path,
                     SnapshotFormat format) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open " + path);
  return SaveGraph(graph, out, format);
}

Status LoadGraphFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadGraph(in, graph);
}

}  // namespace ges
