#include "storage/serialization.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32c.h"

namespace ges {

namespace {

constexpr char kMagicV1[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '1'};
constexpr char kMagicV2[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '2'};
constexpr char kMagicV3[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '3'};
constexpr char kMagicV4[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '4'};

// V2/V3 string-value subtags.
constexpr uint8_t kStrInline = 0;  // length + bytes follow
constexpr uint8_t kStrCode = 1;    // uint32 dictionary code follows

// --- little-endian primitives ---

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

bool ReadU64(std::istream& in, uint64_t* v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

void WriteI64(std::ostream& out, int64_t v) {
  WriteU64(out, static_cast<uint64_t>(v));
}

bool ReadI64(std::istream& in, int64_t* v) {
  uint64_t u;
  if (!ReadU64(in, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

bool ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

// LEB128 varints + zigzag, used by the V4 delta-compressed edge sections
// (the same codec the in-memory compressed segments use).
void WriteVarint(std::ostream& out, uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>(static_cast<uint8_t>(v) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

bool ReadVarint(std::istream& in, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (true) {
    int c = in.get();
    if (c < 0 || shift > 63) return false;
    *v |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
    shift += 7;
  }
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t n;
  if (!ReadU64(in, &n)) return false;
  if (n > (1u << 30)) return false;  // sanity bound
  s->resize(n);
  return static_cast<bool>(in.read(s->data(), static_cast<std::streamsize>(n)));
}

// `dict` non-null => V2/V3 encoding: string values carry a subtag and, when
// the string is in the graph dictionary, are written as a uint32 code.
void WriteValue(std::ostream& out, const Value& v, const StringDict* dict) {
  out.put(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      WriteU64(out, bits);
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      if (dict != nullptr) {
        uint32_t code = dict->Find(s);
        if (code != StringDict::kInvalidCode) {
          out.put(static_cast<char>(kStrCode));
          WriteU32(out, code);
        } else {  // overlay value never interned: inline
          out.put(static_cast<char>(kStrInline));
          WriteString(out, s);
        }
      } else {
        WriteString(out, s);
      }
      break;
    }
    default:
      WriteI64(out, v.AsInt());
      break;
  }
}

// `dict` non-null => V2/V3 decoding (the dictionary section already
// loaded).
bool ReadValue(std::istream& in, Value* v,
               const std::vector<std::string>* dict) {
  int tag = in.get();
  if (tag < 0) return false;
  ValueType type = static_cast<ValueType>(tag);
  switch (type) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kBool: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Bool(i != 0);
      return true;
    }
    case ValueType::kInt64: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Int(i);
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      if (!ReadU64(in, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *v = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      if (dict != nullptr) {
        int sub = in.get();
        if (sub < 0) return false;
        if (sub == kStrCode) {
          uint32_t code;
          if (!ReadU32(in, &code)) return false;
          if (code >= dict->size()) return false;
          *v = Value::String((*dict)[code]);
          return true;
        }
        if (sub != kStrInline) return false;
      }
      std::string s;
      if (!ReadString(in, &s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    case ValueType::kDate: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Date(i);
      return true;
    }
    case ValueType::kVertex: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Vertex(static_cast<VertexId>(i));
      return true;
    }
  }
  return false;
}

// --- section writers, shared across formats. In V1/V2 the sections are
// concatenated directly; in V3 each one is CRC32C-framed. ---

struct RelSpec {
  LabelId src, edge, dst;
  bool has_stamp;
};

void WriteDictSection(std::ostream& out, const StringDict& dict) {
  WriteU64(out, dict.size());
  for (uint32_t c = 0; c < dict.size(); ++c) {
    WriteString(out, dict.Get(c));
  }
}

void WriteCatalogSection(std::ostream& out, const Catalog& catalog) {
  WriteU64(out, catalog.num_vertex_labels());
  for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
    WriteString(out, catalog.VertexLabelName(static_cast<LabelId>(l)));
    const auto& props = catalog.LabelProperties(static_cast<LabelId>(l));
    WriteU64(out, props.size());
    for (const auto& [prop, type] : props) {
      WriteString(out, catalog.PropertyName(prop));
      out.put(static_cast<char>(type));
    }
  }
  WriteU64(out, catalog.num_edge_labels());
  for (size_t l = 0; l < catalog.num_edge_labels(); ++l) {
    WriteString(out, catalog.EdgeLabelName(static_cast<LabelId>(l)));
  }
}

void WriteRelationsSection(std::ostream& out,
                           const std::vector<Graph::RelationInfo>& rels) {
  WriteU64(out, rels.size());
  for (const Graph::RelationInfo& r : rels) {
    WriteU64(out, r.key.src_label);
    WriteU64(out, r.key.edge_label);
    WriteU64(out, r.key.dst_label);
    out.put(r.has_stamp ? 1 : 0);
  }
}

void WriteVertexSection(std::ostream& out, const Graph& graph, LabelId label,
                        Version snap, const StringDict* dict) {
  const auto& props = graph.catalog().LabelProperties(label);
  std::vector<VertexId> vertices;
  graph.ScanLabel(label, snap, &vertices);
  WriteU64(out, vertices.size());
  for (VertexId v : vertices) {
    WriteI64(out, graph.ExtIdOf(v, snap));
    for (const auto& [prop, type] : props) {
      WriteValue(out, graph.GetProperty(v, prop, snap), dict);
    }
  }
}

void WriteEdgeSection(std::ostream& out, const Graph& graph,
                      const Graph::RelationInfo& r, Version snap) {
  RelationId rel = graph.FindRelation(r.key.src_label, r.key.edge_label,
                                      r.key.dst_label, Direction::kOut);
  std::vector<VertexId> sources;
  AdjScratch adj;
  graph.ScanLabel(r.key.src_label, snap, &sources);
  // Count live edges first (tombstones are dropped by the snapshot).
  uint64_t count = 0;
  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap, &adj);
    for (uint32_t i = 0; i < span.size; ++i) {
      if (span.ids[i] != kInvalidVertex) ++count;
    }
  }
  WriteU64(out, count);
  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap, &adj);
    int64_t src_ext = graph.ExtIdOf(v, snap);
    for (uint32_t i = 0; i < span.size; ++i) {
      if (span.ids[i] == kInvalidVertex) continue;
      WriteI64(out, src_ext);
      WriteI64(out, graph.ExtIdOf(span.ids[i], snap));
      if (r.has_stamp) {
        WriteI64(out, span.stamps == nullptr ? 0 : span.stamps[i]);
      }
    }
  }
}

// V4 edge section: edges grouped by source, destinations sorted by
// external id and delta+varint compressed (zigzag first, non-negative
// gaps). Stamps ride along in destination order with the same null
// suppression as the in-memory segment codec: one mode byte per source, 0
// when every stamp is zero.
//
//   varint num_sources
//   per source:
//     zigzag src_ext | varint degree |
//     zigzag dst_ext[0], varint dst_ext[i]-dst_ext[i-1] ... |
//     [has_stamp: mode | mode==1: zigzag s[0], zigzag s[i]-s[i-1] ...]
void WriteEdgeSectionV4(std::ostream& out, const Graph& graph,
                        const Graph::RelationInfo& r, Version snap) {
  RelationId rel = graph.FindRelation(r.key.src_label, r.key.edge_label,
                                      r.key.dst_label, Direction::kOut);
  std::vector<VertexId> sources;
  AdjScratch adj;
  graph.ScanLabel(r.key.src_label, snap, &sources);
  uint64_t num_sources = 0;
  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap, &adj);
    for (uint32_t i = 0; i < span.size; ++i) {
      if (span.ids[i] != kInvalidVertex) {
        ++num_sources;
        break;
      }
    }
  }
  WriteVarint(out, num_sources);
  std::vector<std::pair<int64_t, int64_t>> dsts;  // (dst_ext, stamp)
  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap, &adj);
    dsts.clear();
    for (uint32_t i = 0; i < span.size; ++i) {
      if (span.ids[i] == kInvalidVertex) continue;
      dsts.emplace_back(graph.ExtIdOf(span.ids[i], snap),
                        span.stamps == nullptr ? 0 : span.stamps[i]);
    }
    if (dsts.empty()) continue;
    std::sort(dsts.begin(), dsts.end());
    WriteVarint(out, ZigZag(graph.ExtIdOf(v, snap)));
    WriteVarint(out, dsts.size());
    WriteVarint(out, ZigZag(dsts[0].first));
    for (size_t i = 1; i < dsts.size(); ++i) {
      WriteVarint(out,
                  static_cast<uint64_t>(dsts[i].first - dsts[i - 1].first));
    }
    if (r.has_stamp) {
      bool all_zero = true;
      for (const auto& [d, s] : dsts) {
        if (s != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) {
        out.put(0);
      } else {
        out.put(1);
        WriteVarint(out, ZigZag(dsts[0].second));
        for (size_t i = 1; i < dsts.size(); ++i) {
          WriteVarint(out, ZigZag(dsts[i].second - dsts[i - 1].second));
        }
      }
    }
  }
}

// V4 segments manifest: the relations with a compressed CSR segment
// installed at save time, identified by their catalog keys.
void WriteSegmentsManifest(std::ostream& out, const Graph& graph,
                           const std::vector<Graph::RelationInfo>& rels) {
  std::vector<const Graph::RelationInfo*> compacted;
  for (const Graph::RelationInfo& r : rels) {
    RelationId rel = graph.FindRelation(r.key.src_label, r.key.edge_label,
                                        r.key.dst_label, Direction::kOut);
    if (rel != kInvalidRelation && graph.RelationCompacted(rel)) {
      compacted.push_back(&r);
    }
  }
  WriteU64(out, compacted.size());
  for (const Graph::RelationInfo* r : compacted) {
    WriteU64(out, r->key.src_label);
    WriteU64(out, r->key.edge_label);
    WriteU64(out, r->key.dst_label);
  }
}

// --- section parsers, shared across formats ---

Status ParseDictSection(std::istream& in, std::vector<std::string>* out) {
  uint64_t n;
  if (!ReadU64(in, &n)) return Status::Error("truncated dictionary");
  if (n > (1u << 31)) return Status::Error("dictionary too large");
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!ReadString(in, &(*out)[i])) {
      return Status::Error("truncated dictionary entry");
    }
  }
  return Status::OK();
}

Status ParseCatalogSection(
    std::istream& in, Graph* graph,
    std::vector<std::vector<std::pair<PropertyId, ValueType>>>* label_props) {
  Catalog& catalog = graph->catalog();
  uint64_t num_vlabels;
  if (!ReadU64(in, &num_vlabels)) return Status::Error("truncated header");
  label_props->resize(num_vlabels);
  for (uint64_t l = 0; l < num_vlabels; ++l) {
    std::string name;
    if (!ReadString(in, &name)) return Status::Error("truncated label");
    LabelId label = catalog.AddVertexLabel(name);
    uint64_t num_props;
    if (!ReadU64(in, &num_props)) return Status::Error("truncated props");
    for (uint64_t p = 0; p < num_props; ++p) {
      std::string pname;
      if (!ReadString(in, &pname)) return Status::Error("truncated prop");
      int tag = in.get();
      if (tag < 0) return Status::Error("truncated prop type");
      PropertyId prop =
          catalog.AddProperty(label, pname, static_cast<ValueType>(tag));
      (*label_props)[l].emplace_back(prop, static_cast<ValueType>(tag));
    }
  }
  uint64_t num_elabels;
  if (!ReadU64(in, &num_elabels)) return Status::Error("truncated");
  for (uint64_t l = 0; l < num_elabels; ++l) {
    std::string name;
    if (!ReadString(in, &name)) return Status::Error("truncated edge label");
    catalog.AddEdgeLabel(name);
  }
  return Status::OK();
}

Status ParseRelationsSection(std::istream& in, Graph* graph,
                             std::vector<RelSpec>* rels) {
  uint64_t num_rels;
  if (!ReadU64(in, &num_rels)) return Status::Error("truncated");
  for (uint64_t r = 0; r < num_rels; ++r) {
    uint64_t src, edge, dst;
    if (!ReadU64(in, &src) || !ReadU64(in, &edge) || !ReadU64(in, &dst)) {
      return Status::Error("truncated relation");
    }
    int has_stamp = in.get();
    if (has_stamp < 0) return Status::Error("truncated relation");
    RelSpec spec{static_cast<LabelId>(src), static_cast<LabelId>(edge),
                 static_cast<LabelId>(dst), has_stamp != 0};
    graph->RegisterRelation(spec.src, spec.edge, spec.dst, spec.has_stamp);
    rels->push_back(spec);
  }
  return Status::OK();
}

Status ParseVertexSection(
    std::istream& in, Graph* graph, LabelId label,
    const std::vector<std::pair<PropertyId, ValueType>>& props,
    const std::vector<std::string>* dict) {
  uint64_t count;
  if (!ReadU64(in, &count)) return Status::Error("truncated vertices");
  for (uint64_t i = 0; i < count; ++i) {
    int64_t ext;
    if (!ReadI64(in, &ext)) return Status::Error("truncated vertex");
    VertexId v = graph->AddVertexBulk(label, ext);
    for (const auto& [prop, type] : props) {
      Value value;
      if (!ReadValue(in, &value, dict)) {
        return Status::Error("truncated value");
      }
      if (!value.is_null()) graph->SetPropertyBulk(v, prop, value);
    }
  }
  return Status::OK();
}

Status ParseEdgeSection(std::istream& in, Graph* graph, const RelSpec& spec) {
  uint64_t count;
  if (!ReadU64(in, &count)) return Status::Error("truncated edges");
  for (uint64_t i = 0; i < count; ++i) {
    int64_t src_ext, dst_ext, stamp = 0;
    if (!ReadI64(in, &src_ext) || !ReadI64(in, &dst_ext)) {
      return Status::Error("truncated edge");
    }
    if (spec.has_stamp && !ReadI64(in, &stamp)) {
      return Status::Error("truncated stamp");
    }
    VertexId src = graph->FindByExtId(spec.src, src_ext, 0);
    VertexId dst = graph->FindByExtId(spec.dst, dst_ext, 0);
    if (src == kInvalidVertex || dst == kInvalidVertex) {
      return Status::Error("edge references unknown vertex");
    }
    graph->AddEdgeBulk(spec.edge, src, dst, stamp);
  }
  return Status::OK();
}

Status ParseEdgeSectionV4(std::istream& in, Graph* graph,
                          const RelSpec& spec) {
  uint64_t num_sources;
  if (!ReadVarint(in, &num_sources)) return Status::Error("truncated edges");
  for (uint64_t s = 0; s < num_sources; ++s) {
    uint64_t zsrc, degree;
    if (!ReadVarint(in, &zsrc) || !ReadVarint(in, &degree)) {
      return Status::Error("truncated edge group");
    }
    if (degree == 0 || degree > (1ull << 32)) {
      return Status::Error("invalid edge group degree");
    }
    int64_t src_ext = UnZigZag(zsrc);
    VertexId src = graph->FindByExtId(spec.src, src_ext, 0);
    if (src == kInvalidVertex) {
      return Status::Error("edge references unknown source vertex");
    }
    std::vector<int64_t> dst_exts(degree);
    uint64_t zfirst;
    if (!ReadVarint(in, &zfirst)) return Status::Error("truncated edge");
    dst_exts[0] = UnZigZag(zfirst);
    for (uint64_t i = 1; i < degree; ++i) {
      uint64_t gap;
      if (!ReadVarint(in, &gap)) return Status::Error("truncated edge");
      dst_exts[i] = dst_exts[i - 1] + static_cast<int64_t>(gap);
    }
    std::vector<int64_t> stamps(degree, 0);
    if (spec.has_stamp) {
      int mode = in.get();
      if (mode < 0) return Status::Error("truncated stamp mode");
      if (mode == 1) {
        uint64_t z;
        if (!ReadVarint(in, &z)) return Status::Error("truncated stamp");
        stamps[0] = UnZigZag(z);
        for (uint64_t i = 1; i < degree; ++i) {
          if (!ReadVarint(in, &z)) return Status::Error("truncated stamp");
          stamps[i] = stamps[i - 1] + UnZigZag(z);
        }
      } else if (mode != 0) {
        return Status::Error("invalid stamp mode");
      }
    }
    for (uint64_t i = 0; i < degree; ++i) {
      VertexId dst = graph->FindByExtId(spec.dst, dst_exts[i], 0);
      if (dst == kInvalidVertex) {
        return Status::Error("edge references unknown vertex");
      }
      graph->AddEdgeBulk(spec.edge, src, dst, stamps[i]);
    }
  }
  return Status::OK();
}

Status ParseSegmentsManifest(std::istream& in,
                             std::vector<RelationKey>* keys) {
  uint64_t count;
  if (!ReadU64(in, &count)) return Status::Error("truncated manifest");
  if (count > (1u << 20)) return Status::Error("manifest too large");
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t src, edge, dst;
    if (!ReadU64(in, &src) || !ReadU64(in, &edge) || !ReadU64(in, &dst)) {
      return Status::Error("truncated manifest entry");
    }
    keys->push_back(RelationKey{static_cast<LabelId>(src),
                                static_cast<LabelId>(edge),
                                static_cast<LabelId>(dst), Direction::kOut});
  }
  return Status::OK();
}

// --- V3 section framing: [u64 len][u32 crc32c(bytes)][bytes] ---

void WriteFramed(std::ostream& out, const std::string& payload) {
  WriteU64(out, payload.size());
  WriteU32(out, Crc32c(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

Status SectionError(const std::string& name, const std::string& what) {
  return Status::Error("snapshot section '" + name + "' " + what);
}

Status ReadFramed(std::istream& in, const std::string& name,
                  std::string* buf) {
  uint64_t len;
  uint32_t crc;
  if (!ReadU64(in, &len) || !ReadU32(in, &crc)) {
    return SectionError(name, "truncated (missing frame header)");
  }
  if (len > (1ull << 33)) return SectionError(name, "implausibly large");
  buf->resize(len);
  if (len > 0 &&
      !in.read(buf->data(), static_cast<std::streamsize>(len))) {
    return SectionError(name, "truncated");
  }
  if (Crc32c(*buf) != crc) {
    return SectionError(name, "corrupt (CRC32C mismatch)");
  }
  return Status::OK();
}

std::string EdgeSectionName(const Catalog& catalog, const RelSpec& spec) {
  return std::string("edges[") + catalog.VertexLabelName(spec.src) + "-" +
         catalog.EdgeLabelName(spec.edge) + "->" +
         catalog.VertexLabelName(spec.dst) + "]";
}

}  // namespace

Status SaveGraph(const Graph& graph, std::ostream& out,
                 SnapshotFormat format) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before saving");
  }
  const Catalog& catalog = graph.catalog();
  Version snap = graph.CurrentVersion();
  const StringDict* dict =
      format == SnapshotFormat::kV1 ? nullptr : &graph.string_dict();
  std::vector<Graph::RelationInfo> rels = graph.Relations();

  switch (format) {
    case SnapshotFormat::kV1:
      out.write(kMagicV1, 8);
      break;
    case SnapshotFormat::kV2:
      out.write(kMagicV2, 8);
      break;
    case SnapshotFormat::kV3:
      out.write(kMagicV3, 8);
      break;
    case SnapshotFormat::kV4:
      out.write(kMagicV4, 8);
      break;
  }

  if (format == SnapshotFormat::kV3 || format == SnapshotFormat::kV4) {
    const bool v4 = format == SnapshotFormat::kV4;
    auto framed = [&out](auto&& fill) {
      std::ostringstream section;
      fill(section);
      WriteFramed(out, section.str());
    };
    // Header: the snapshot version, restored on load so recovery can skip
    // WAL transactions already folded into this snapshot.
    framed([&](std::ostream& s) { WriteU64(s, snap); });
    framed([&](std::ostream& s) { WriteDictSection(s, *dict); });
    framed([&](std::ostream& s) { WriteCatalogSection(s, catalog); });
    framed([&](std::ostream& s) { WriteRelationsSection(s, rels); });
    for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
      framed([&](std::ostream& s) {
        WriteVertexSection(s, graph, static_cast<LabelId>(l), snap, dict);
      });
    }
    for (const Graph::RelationInfo& r : rels) {
      framed([&](std::ostream& s) {
        if (v4) {
          WriteEdgeSectionV4(s, graph, r, snap);
        } else {
          WriteEdgeSection(s, graph, r, snap);
        }
      });
    }
    if (v4) {
      framed(
          [&](std::ostream& s) { WriteSegmentsManifest(s, graph, rels); });
    }
  } else {
    if (dict != nullptr) WriteDictSection(out, *dict);
    WriteCatalogSection(out, catalog);
    WriteRelationsSection(out, rels);
    for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
      WriteVertexSection(out, graph, static_cast<LabelId>(l), snap, dict);
    }
    for (const Graph::RelationInfo& r : rels) {
      WriteEdgeSection(out, graph, r, snap);
    }
  }
  if (!out) return Status::Error("write failure");
  return Status::OK();
}

Status LoadGraph(std::istream& in, Graph* graph) {
  char magic[8];
  if (!in.read(magic, 8)) {
    return Status::InvalidArgument("not a GES snapshot (bad magic)");
  }
  bool v4 = std::memcmp(magic, kMagicV4, 8) == 0;
  bool v3 = std::memcmp(magic, kMagicV3, 8) == 0;
  bool v2 = std::memcmp(magic, kMagicV2, 8) == 0;
  if (!v4 && !v3 && !v2 && std::memcmp(magic, kMagicV1, 8) != 0) {
    return Status::InvalidArgument("not a GES snapshot (bad magic)");
  }

  std::vector<std::string> dict_strings;
  const std::vector<std::string>* dict =
      (v2 || v3 || v4) ? &dict_strings : nullptr;
  std::vector<std::vector<std::pair<PropertyId, ValueType>>> label_props;
  std::vector<RelSpec> rels;

  if (v3 || v4) {
    // Every section is read fully, CRC-verified, then parsed; any framing
    // or parse failure names the section instead of loading partial data.
    auto section = [&in](const std::string& name, auto&& parse) -> Status {
      std::string buf;
      GES_RETURN_IF_ERROR(ReadFramed(in, name, &buf));
      std::istringstream sec(buf);
      Status s = parse(sec);
      if (!s.ok()) {
        return SectionError(name, "invalid: " + s.message());
      }
      return Status::OK();
    };

    uint64_t snapshot_version = 0;
    GES_RETURN_IF_ERROR(section("header", [&](std::istream& s) {
      return ReadU64(s, &snapshot_version)
                 ? Status::OK()
                 : Status::Error("missing snapshot version");
    }));
    GES_RETURN_IF_ERROR(section("dict", [&](std::istream& s) {
      return ParseDictSection(s, &dict_strings);
    }));
    GES_RETURN_IF_ERROR(section("catalog", [&](std::istream& s) {
      return ParseCatalogSection(s, graph, &label_props);
    }));
    GES_RETURN_IF_ERROR(section("relations", [&](std::istream& s) {
      return ParseRelationsSection(s, graph, &rels);
    }));
    const Catalog& catalog = graph->catalog();
    for (uint64_t l = 0; l < label_props.size(); ++l) {
      LabelId label = static_cast<LabelId>(l);
      std::string name =
          std::string("vertices[") + catalog.VertexLabelName(label) + "]";
      GES_RETURN_IF_ERROR(section(name, [&](std::istream& s) {
        return ParseVertexSection(s, graph, label, label_props[l], dict);
      }));
    }
    for (const RelSpec& spec : rels) {
      GES_RETURN_IF_ERROR(
          section(EdgeSectionName(catalog, spec), [&](std::istream& s) {
            return v4 ? ParseEdgeSectionV4(s, graph, spec)
                      : ParseEdgeSection(s, graph, spec);
          }));
    }
    std::vector<RelationKey> segment_keys;
    if (v4) {
      GES_RETURN_IF_ERROR(section("segments", [&](std::istream& s) {
        return ParseSegmentsManifest(s, &segment_keys);
      }));
    }
    graph->FinalizeBulk();
    graph->RestoreVersionForRecovery(snapshot_version);
    if (!segment_keys.empty()) {
      // Rebuild the compressed segments the snapshot had installed.
      // Internal vertex ids are not stable across a save/load cycle, so
      // the blobs are re-encoded by a forced compaction pass over exactly
      // the manifested relations; the parked pre-swap storage is freed
      // immediately (no reader can exist during load).
      CompactionOptions copts;
      copts.force = true;
      for (const RelationKey& key : segment_keys) {
        RelationId rel = graph->FindRelation(key.src_label, key.edge_label,
                                             key.dst_label, Direction::kOut);
        if (rel != kInvalidRelation) copts.only.push_back(rel);
      }
      if (!copts.only.empty()) {
        graph->CompactRelations(copts);
        graph->ForceReclaimRetiredForRecovery();
      }
    }
    return Status::OK();
  }

  // Legacy V1/V2: the same sections, concatenated without framing.
  if (v2) {
    GES_RETURN_IF_ERROR(ParseDictSection(in, &dict_strings));
  }
  GES_RETURN_IF_ERROR(ParseCatalogSection(in, graph, &label_props));
  GES_RETURN_IF_ERROR(ParseRelationsSection(in, graph, &rels));
  for (uint64_t l = 0; l < label_props.size(); ++l) {
    GES_RETURN_IF_ERROR(ParseVertexSection(
        in, graph, static_cast<LabelId>(l), label_props[l], dict));
  }
  for (const RelSpec& spec : rels) {
    GES_RETURN_IF_ERROR(ParseEdgeSection(in, graph, spec));
  }
  graph->FinalizeBulk();
  return Status::OK();
}

Status SaveGraphFile(const Graph& graph, const std::string& path,
                     SnapshotFormat format) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open " + path);
  return SaveGraph(graph, out, format);
}

Status LoadGraphFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadGraph(in, graph);
}

}  // namespace ges
