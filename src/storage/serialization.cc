#include "storage/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace ges {

namespace {

constexpr char kMagicV1[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '1'};
constexpr char kMagicV2[8] = {'G', 'E', 'S', 'S', 'N', 'A', 'P', '2'};

// V2 string-value subtags.
constexpr uint8_t kStrInline = 0;  // length + bytes follow
constexpr uint8_t kStrCode = 1;    // uint32 dictionary code follows

// --- little-endian primitives ---

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

bool ReadU64(std::istream& in, uint64_t* v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

void WriteI64(std::ostream& out, int64_t v) {
  WriteU64(out, static_cast<uint64_t>(v));
}

bool ReadI64(std::istream& in, int64_t* v) {
  uint64_t u;
  if (!ReadU64(in, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

bool ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t n;
  if (!ReadU64(in, &n)) return false;
  if (n > (1u << 30)) return false;  // sanity bound
  s->resize(n);
  return static_cast<bool>(in.read(s->data(), static_cast<std::streamsize>(n)));
}

// `dict` non-null => V2 encoding: string values carry a subtag and, when
// the string is in the graph dictionary, are written as a uint32 code.
void WriteValue(std::ostream& out, const Value& v, const StringDict* dict) {
  out.put(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      WriteU64(out, bits);
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      if (dict != nullptr) {
        uint32_t code = dict->Find(s);
        if (code != StringDict::kInvalidCode) {
          out.put(static_cast<char>(kStrCode));
          WriteU32(out, code);
        } else {  // overlay value never interned: inline
          out.put(static_cast<char>(kStrInline));
          WriteString(out, s);
        }
      } else {
        WriteString(out, s);
      }
      break;
    }
    default:
      WriteI64(out, v.AsInt());
      break;
  }
}

// `dict` non-null => V2 decoding (the dictionary section already loaded).
bool ReadValue(std::istream& in, Value* v,
               const std::vector<std::string>* dict) {
  int tag = in.get();
  if (tag < 0) return false;
  ValueType type = static_cast<ValueType>(tag);
  switch (type) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kBool: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Bool(i != 0);
      return true;
    }
    case ValueType::kInt64: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Int(i);
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      if (!ReadU64(in, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *v = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      if (dict != nullptr) {
        int sub = in.get();
        if (sub < 0) return false;
        if (sub == kStrCode) {
          uint32_t code;
          if (!ReadU32(in, &code)) return false;
          if (code >= dict->size()) return false;
          *v = Value::String((*dict)[code]);
          return true;
        }
        if (sub != kStrInline) return false;
      }
      std::string s;
      if (!ReadString(in, &s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    case ValueType::kDate: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Date(i);
      return true;
    }
    case ValueType::kVertex: {
      int64_t i;
      if (!ReadI64(in, &i)) return false;
      *v = Value::Vertex(static_cast<VertexId>(i));
      return true;
    }
  }
  return false;
}

}  // namespace

Status SaveGraph(const Graph& graph, std::ostream& out,
                 SnapshotFormat format) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before saving");
  }
  const Catalog& catalog = graph.catalog();
  Version snap = graph.CurrentVersion();
  const StringDict* dict =
      format == SnapshotFormat::kV2 ? &graph.string_dict() : nullptr;

  out.write(format == SnapshotFormat::kV2 ? kMagicV2 : kMagicV1, 8);

  // --- string dictionary (V2 only): codes 0..n-1 in order ---
  if (dict != nullptr) {
    WriteU64(out, dict->size());
    for (uint32_t c = 0; c < dict->size(); ++c) {
      WriteString(out, dict->Get(c));
    }
  }

  // --- catalog ---
  WriteU64(out, catalog.num_vertex_labels());
  for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
    WriteString(out, catalog.VertexLabelName(static_cast<LabelId>(l)));
    const auto& props = catalog.LabelProperties(static_cast<LabelId>(l));
    WriteU64(out, props.size());
    for (const auto& [prop, type] : props) {
      WriteString(out, catalog.PropertyName(prop));
      out.put(static_cast<char>(type));
    }
  }
  WriteU64(out, catalog.num_edge_labels());
  for (size_t l = 0; l < catalog.num_edge_labels(); ++l) {
    WriteString(out, catalog.EdgeLabelName(static_cast<LabelId>(l)));
  }

  // --- relations ---
  std::vector<Graph::RelationInfo> rels = graph.Relations();
  WriteU64(out, rels.size());
  for (const Graph::RelationInfo& r : rels) {
    WriteU64(out, r.key.src_label);
    WriteU64(out, r.key.edge_label);
    WriteU64(out, r.key.dst_label);
    out.put(r.has_stamp ? 1 : 0);
  }

  // --- vertices with properties ---
  for (size_t l = 0; l < catalog.num_vertex_labels(); ++l) {
    LabelId label = static_cast<LabelId>(l);
    std::vector<VertexId> vertices;
    graph.ScanLabel(label, snap, &vertices);
    WriteU64(out, vertices.size());
    const auto& props = catalog.LabelProperties(label);
    for (VertexId v : vertices) {
      WriteI64(out, graph.ExtIdOf(v, snap));
      for (const auto& [prop, type] : props) {
        WriteValue(out, graph.GetProperty(v, prop, snap), dict);
      }
    }
  }

  // --- edges (per OUT relation, endpoints as external ids) ---
  for (const Graph::RelationInfo& r : rels) {
    RelationId rel = graph.FindRelation(r.key.src_label, r.key.edge_label,
                                        r.key.dst_label, Direction::kOut);
    std::vector<VertexId> sources;
    graph.ScanLabel(r.key.src_label, snap, &sources);
    // Count live edges first (tombstones are dropped by the snapshot).
    uint64_t count = 0;
    for (VertexId v : sources) {
      AdjSpan span = graph.Neighbors(rel, v, snap);
      for (uint32_t i = 0; i < span.size; ++i) {
        if (span.ids[i] != kInvalidVertex) ++count;
      }
    }
    WriteU64(out, count);
    for (VertexId v : sources) {
      AdjSpan span = graph.Neighbors(rel, v, snap);
      int64_t src_ext = graph.ExtIdOf(v, snap);
      for (uint32_t i = 0; i < span.size; ++i) {
        if (span.ids[i] == kInvalidVertex) continue;
        WriteI64(out, src_ext);
        WriteI64(out, graph.ExtIdOf(span.ids[i], snap));
        if (r.has_stamp) {
          WriteI64(out, span.stamps == nullptr ? 0 : span.stamps[i]);
        }
      }
    }
  }
  if (!out) return Status::Error("write failure");
  return Status::OK();
}

Status LoadGraph(std::istream& in, Graph* graph) {
  char magic[8];
  if (!in.read(magic, 8)) {
    return Status::InvalidArgument("not a GES snapshot (bad magic)");
  }
  bool v2 = std::memcmp(magic, kMagicV2, 8) == 0;
  if (!v2 && std::memcmp(magic, kMagicV1, 8) != 0) {
    return Status::InvalidArgument("not a GES snapshot (bad magic)");
  }
  Catalog& catalog = graph->catalog();

  // --- string dictionary (V2 only) ---
  std::vector<std::string> dict_strings;
  if (v2) {
    uint64_t n;
    if (!ReadU64(in, &n)) return Status::Error("truncated dictionary");
    if (n > (1u << 31)) return Status::Error("dictionary too large");
    dict_strings.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!ReadString(in, &dict_strings[i])) {
        return Status::Error("truncated dictionary entry");
      }
    }
  }
  const std::vector<std::string>* dict = v2 ? &dict_strings : nullptr;

  // --- catalog ---
  uint64_t num_vlabels;
  if (!ReadU64(in, &num_vlabels)) return Status::Error("truncated header");
  std::vector<std::vector<std::pair<PropertyId, ValueType>>> label_props(
      num_vlabels);
  for (uint64_t l = 0; l < num_vlabels; ++l) {
    std::string name;
    if (!ReadString(in, &name)) return Status::Error("truncated label");
    LabelId label = catalog.AddVertexLabel(name);
    uint64_t num_props;
    if (!ReadU64(in, &num_props)) return Status::Error("truncated props");
    for (uint64_t p = 0; p < num_props; ++p) {
      std::string pname;
      if (!ReadString(in, &pname)) return Status::Error("truncated prop");
      int tag = in.get();
      if (tag < 0) return Status::Error("truncated prop type");
      PropertyId prop =
          catalog.AddProperty(label, pname, static_cast<ValueType>(tag));
      label_props[l].emplace_back(prop, static_cast<ValueType>(tag));
    }
  }
  uint64_t num_elabels;
  if (!ReadU64(in, &num_elabels)) return Status::Error("truncated");
  for (uint64_t l = 0; l < num_elabels; ++l) {
    std::string name;
    if (!ReadString(in, &name)) return Status::Error("truncated edge label");
    catalog.AddEdgeLabel(name);
  }

  // --- relations ---
  uint64_t num_rels;
  if (!ReadU64(in, &num_rels)) return Status::Error("truncated");
  struct RelSpec {
    LabelId src, edge, dst;
    bool has_stamp;
  };
  std::vector<RelSpec> rels;
  for (uint64_t r = 0; r < num_rels; ++r) {
    uint64_t src, edge, dst;
    if (!ReadU64(in, &src) || !ReadU64(in, &edge) || !ReadU64(in, &dst)) {
      return Status::Error("truncated relation");
    }
    int has_stamp = in.get();
    if (has_stamp < 0) return Status::Error("truncated relation");
    RelSpec spec{static_cast<LabelId>(src), static_cast<LabelId>(edge),
                 static_cast<LabelId>(dst), has_stamp != 0};
    graph->RegisterRelation(spec.src, spec.edge, spec.dst, spec.has_stamp);
    rels.push_back(spec);
  }

  // --- vertices ---
  for (uint64_t l = 0; l < num_vlabels; ++l) {
    uint64_t count;
    if (!ReadU64(in, &count)) return Status::Error("truncated vertices");
    for (uint64_t i = 0; i < count; ++i) {
      int64_t ext;
      if (!ReadI64(in, &ext)) return Status::Error("truncated vertex");
      VertexId v = graph->AddVertexBulk(static_cast<LabelId>(l), ext);
      for (const auto& [prop, type] : label_props[l]) {
        Value value;
        if (!ReadValue(in, &value, dict)) {
          return Status::Error("truncated value");
        }
        if (!value.is_null()) graph->SetPropertyBulk(v, prop, value);
      }
    }
  }

  // --- edges ---
  for (const RelSpec& spec : rels) {
    uint64_t count;
    if (!ReadU64(in, &count)) return Status::Error("truncated edges");
    for (uint64_t i = 0; i < count; ++i) {
      int64_t src_ext, dst_ext, stamp = 0;
      if (!ReadI64(in, &src_ext) || !ReadI64(in, &dst_ext)) {
        return Status::Error("truncated edge");
      }
      if (spec.has_stamp && !ReadI64(in, &stamp)) {
        return Status::Error("truncated stamp");
      }
      VertexId src = graph->FindByExtId(spec.src, src_ext, 0);
      VertexId dst = graph->FindByExtId(spec.dst, dst_ext, 0);
      if (src == kInvalidVertex || dst == kInvalidVertex) {
        return Status::Error("edge references unknown vertex");
      }
      graph->AddEdgeBulk(spec.edge, src, dst, stamp);
    }
  }

  graph->FinalizeBulk();
  return Status::OK();
}

Status SaveGraphFile(const Graph& graph, const std::string& path,
                     SnapshotFormat format) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open " + path);
  return SaveGraph(graph, out, format);
}

Status LoadGraphFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadGraph(in, graph);
}

}  // namespace ges
