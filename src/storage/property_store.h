// Columnar vertex property tables.
//
// Per the paper (Section 5): "For vertex properties, we organize them in a
// columnar table, with each row corresponding to a vertex and each column
// representing a property." There is one table per vertex label; rows are
// addressed by the vertex's dense offset within its label.
//
// String columns are dictionary-encoded against the graph's shared
// StringDict: cells hold uint32 codes, and Set() interns new strings during
// the (single-threaded) bulk-load phase. After Graph::FinalizeBulk the
// tables and the dictionary are immutable.
#ifndef GES_STORAGE_PROPERTY_STORE_H_
#define GES_STORAGE_PROPERTY_STORE_H_

#include <string_view>
#include <vector>

#include "common/string_dict.h"
#include "common/types.h"
#include "common/value.h"
#include "storage/catalog.h"

namespace ges {

class PropertyTable {
 public:
  // `dict` (owned by the graph) backs every kString column; may be null
  // only for tables without string columns.
  PropertyTable(std::vector<ValueType> column_types, StringDict* dict)
      : dict_(dict) {
    columns_.reserve(column_types.size());
    for (ValueType t : column_types) {
      ValueVector col(t);
      if (t == ValueType::kString) col.InitDict(dict);
      columns_.push_back(std::move(col));
    }
  }

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  // Appends a row of nulls/zeroes; returns its offset.
  size_t AppendRow();

  const ValueVector& Column(int slot) const { return columns_[slot]; }
  ValueVector& MutableColumn(int slot) { return columns_[slot]; }

  Value Get(size_t row, int slot) const { return columns_[slot].GetValue(row); }
  void Set(size_t row, int slot, const Value& v) {
    if (columns_[slot].dict_encoded()) {
      columns_[slot].SetCode(row, dict_->Intern(v.AsString()));
      return;
    }
    columns_[slot].SetValue(row, v);
  }
  // Bulk-load fast path for string cells: interns without boxing a Value.
  void SetString(size_t row, int slot, std::string_view s) {
    if (columns_[slot].dict_encoded()) {
      columns_[slot].SetCode(row, dict_->Intern(s));
      return;
    }
    columns_[slot].SetString(row, std::string(s));
  }

  size_t MemoryBytes() const;

 private:
  std::vector<ValueVector> columns_;
  StringDict* dict_;
};

}  // namespace ges

#endif  // GES_STORAGE_PROPERTY_STORE_H_
