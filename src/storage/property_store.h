// Columnar vertex property tables.
//
// Per the paper (Section 5): "For vertex properties, we organize them in a
// columnar table, with each row corresponding to a vertex and each column
// representing a property." There is one table per vertex label; rows are
// addressed by the vertex's dense offset within its label.
#ifndef GES_STORAGE_PROPERTY_STORE_H_
#define GES_STORAGE_PROPERTY_STORE_H_

#include <vector>

#include "common/types.h"
#include "common/value.h"
#include "storage/catalog.h"

namespace ges {

class PropertyTable {
 public:
  explicit PropertyTable(std::vector<ValueType> column_types) {
    columns_.reserve(column_types.size());
    for (ValueType t : column_types) columns_.emplace_back(t);
  }

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  // Appends a row of nulls/zeroes; returns its offset.
  size_t AppendRow();

  const ValueVector& Column(int slot) const { return columns_[slot]; }
  ValueVector& MutableColumn(int slot) { return columns_[slot]; }

  Value Get(size_t row, int slot) const { return columns_[slot].GetValue(row); }
  void Set(size_t row, int slot, const Value& v) {
    columns_[slot].SetValue(row, v);
  }

  size_t MemoryBytes() const;

 private:
  std::vector<ValueVector> columns_;
};

}  // namespace ges

#endif  // GES_STORAGE_PROPERTY_STORE_H_
