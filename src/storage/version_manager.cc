#include "storage/version_manager.h"

#include <algorithm>

namespace ges {

namespace {

uint64_t ExtKey(LabelId label, int64_t ext_id) {
  return (uint64_t{label} << 48) ^ static_cast<uint64_t>(ext_id);
}

size_t ValueHeapBytes(const Value& v) {
  return v.type() == ValueType::kString ? v.AsString().capacity() : 0;
}

// Heap footprint of one published entry (the entry node itself plus its
// vector/string payloads). Entries are immutable after publish, so this is
// stable between Publish and Prune and the overlays can keep an O(1) byte
// gauge instead of walking chains.
size_t EntryBytes(const AdjOverlayEntry& e) {
  return sizeof(AdjOverlayEntry) + e.ids.capacity() * sizeof(VertexId) +
         e.stamps.capacity() * sizeof(int64_t);
}

size_t EntryBytes(const PropOverlayEntry& e) {
  size_t bytes = sizeof(PropOverlayEntry) +
                 e.writes.capacity() * sizeof(std::pair<PropertyId, Value>);
  for (const auto& [pid, value] : e.writes) bytes += ValueHeapBytes(value);
  return bytes;
}

// Frees a detached chain tail iteratively. The naive shared_ptr teardown
// recurses once per entry and overflows the stack on the chains a sustained
// update workload builds (millions of entries on one hot vertex).
template <typename Entry>
void UnlinkChain(std::shared_ptr<Entry> tail) {
  while (tail != nullptr) {
    std::shared_ptr<Entry> next = std::move(tail->prev);
    tail = std::move(next);
  }
}

// Cuts one chain at its newest entry <= watermark. Returns the detached
// tail (to be destroyed outside the overlay lock) and accumulates what it
// held into `stats`.
template <typename Entry>
std::shared_ptr<Entry> CutChain(const std::shared_ptr<Entry>& head,
                                Version watermark, PruneStats* stats) {
  Entry* floor = head.get();
  while (floor != nullptr && floor->version > watermark) {
    floor = floor->prev.get();
  }
  if (floor == nullptr || floor->prev == nullptr) return nullptr;
  for (const Entry* dead = floor->prev.get(); dead != nullptr;
       dead = dead->prev.get()) {
    ++stats->entries;
    stats->bytes += EntryBytes(*dead);
  }
  return std::move(floor->prev);  // leaves floor->prev == nullptr
}

}  // namespace

// --- SnapshotRegistry ----------------------------------------------------

void SnapshotHandle::Release() {
  if (registry_ != nullptr) {
    registry_->Release(version_);
    registry_ = nullptr;
  }
}

SnapshotHandle SnapshotRegistry::AcquireCurrent(
    const std::atomic<Version>& current) {
  std::lock_guard<std::mutex> lock(mu_);
  // Loaded under the lock: a concurrent OldestActive either sees this pin
  // or computed its watermark from an older (<=) current version.
  Version v = current.load(std::memory_order_acquire);
  ++pins_[v];
  return SnapshotHandle(this, v);
}

SnapshotHandle SnapshotRegistry::AcquireAt(Version v) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[v];
  return SnapshotHandle(this, v);
}

SnapshotHandle SnapshotRegistry::AcquireOldest(
    const std::atomic<Version>& current) {
  std::lock_guard<std::mutex> lock(mu_);
  Version v = current.load(std::memory_order_acquire);
  if (!pins_.empty()) v = std::min(v, pins_.begin()->first);
  ++pins_[v];
  return SnapshotHandle(this, v);
}

void SnapshotRegistry::Release(Version v) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(v);
  if (it == pins_.end()) return;  // defensive; handles release exactly once
  if (--it->second == 0) pins_.erase(it);
}

Version SnapshotRegistry::OldestActive(Version current) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_.empty() ? current : std::min(current, pins_.begin()->first);
}

bool SnapshotRegistry::OldestPinned(Version* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pins_.empty()) return false;
  *out = pins_.begin()->first;
  return true;
}

size_t SnapshotRegistry::ActiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [version, count] : pins_) n += count;
  return n;
}

// --- AdjOverlay ----------------------------------------------------------

AdjOverlay::~AdjOverlay() {
  // Detach every chain before the map destructor runs so teardown is
  // iterative regardless of chain length.
  for (auto& [v, head] : heads_) UnlinkChain(std::move(head));
}

const AdjOverlayEntry* AdjOverlay::Find(VertexId v, Version snapshot) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it == heads_.end()) return nullptr;
  const AdjOverlayEntry* e = it->second.get();
  while (e != nullptr && e->version > snapshot) e = e->prev.get();
  return e;
}

std::shared_ptr<AdjOverlayEntry> AdjOverlay::Head(VertexId v) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  return it == heads_.end() ? nullptr : it->second;
}

void AdjOverlay::Publish(VertexId v, std::shared_ptr<AdjOverlayEntry> entry) {
  size_t entry_bytes = EntryBytes(*entry);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it != heads_.end()) {
    entry->prev = it->second;
    it->second = std::move(entry);
  } else {
    entry_bytes += sizeof(void*) * 4;  // rough map-slot overhead
    heads_.emplace(v, std::move(entry));
  }
  count_.fetch_add(1, std::memory_order_release);
  bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
}

PruneStats AdjOverlay::Prune(Version watermark) {
  PruneStats stats;
  if (empty()) return stats;
  std::vector<std::shared_ptr<AdjOverlayEntry>> cut;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (auto& [v, head] : heads_) {
      std::shared_ptr<AdjOverlayEntry> tail =
          CutChain(head, watermark, &stats);
      if (tail != nullptr) cut.push_back(std::move(tail));
    }
    count_.fetch_sub(stats.entries, std::memory_order_release);
    bytes_.fetch_sub(stats.bytes, std::memory_order_relaxed);
  }
  // Destruction happens after the lock drops: readers are never stalled on
  // a large free, and the detached tails are exclusively owned here.
  for (auto& tail : cut) UnlinkChain(std::move(tail));
  return stats;
}

size_t AdjOverlay::MemoryBytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

void UnlinkDetachedChain(std::shared_ptr<AdjOverlayEntry> head) {
  UnlinkChain(std::move(head));
}

PruneStats AdjOverlay::CollapseBelow(
    Version cut, std::vector<std::shared_ptr<AdjOverlayEntry>>* retired) {
  PruneStats stats;
  if (empty()) return stats;
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto it = heads_.begin(); it != heads_.end();) {
    // Everything <= cut leaves the chain; the segment built at `cut`
    // serves those reads from now on.
    if (it->second->version <= cut) {
      // Whole chain collapses; the map slot goes with it.
      for (const AdjOverlayEntry* e = it->second.get(); e != nullptr;
           e = e->prev.get()) {
        ++stats.entries;
        stats.bytes += EntryBytes(*e);
      }
      stats.bytes += sizeof(void*) * 4;  // map-slot overhead from Publish
      retired->push_back(std::move(it->second));
      it = heads_.erase(it);
      continue;
    }
    AdjOverlayEntry* e = it->second.get();
    while (e->prev != nullptr && e->prev->version > cut) e = e->prev.get();
    if (e->prev != nullptr) {
      for (const AdjOverlayEntry* dead = e->prev.get(); dead != nullptr;
           dead = dead->prev.get()) {
        ++stats.entries;
        stats.bytes += EntryBytes(*dead);
      }
      retired->push_back(std::move(e->prev));  // leaves e->prev == nullptr
    }
    ++it;
  }
  count_.fetch_sub(stats.entries, std::memory_order_release);
  bytes_.fetch_sub(stats.bytes, std::memory_order_relaxed);
  return stats;
}

// --- PropOverlay ---------------------------------------------------------

PropOverlay::~PropOverlay() {
  for (auto& [v, head] : heads_) UnlinkChain(std::move(head));
}

bool PropOverlay::Find(VertexId v, PropertyId prop, Version snapshot,
                       Value* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it == heads_.end()) return false;
  for (const PropOverlayEntry* e = it->second.get(); e != nullptr;
       e = e->prev.get()) {
    if (e->version > snapshot) continue;
    // `writes` was coalesced at publish: sorted by PropertyId, one write
    // per property.
    auto w = std::lower_bound(
        e->writes.begin(), e->writes.end(), prop,
        [](const auto& entry, PropertyId p) { return entry.first < p; });
    if (w != e->writes.end() && w->first == prop) {
      *out = w->second;
      return true;
    }
  }
  return false;
}

void PropOverlay::Publish(VertexId v, std::shared_ptr<PropOverlayEntry> entry) {
  // Coalesce once at publish so every Find can binary-search: stable-sort
  // by property (preserving program order of duplicates), keep the last
  // write per property.
  auto& writes = entry->writes;
  std::stable_sort(writes.begin(), writes.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  size_t out = 0;
  for (size_t i = 0; i < writes.size(); ++i) {
    if (i + 1 < writes.size() && writes[i + 1].first == writes[i].first) {
      continue;  // superseded by a later write of the same property
    }
    if (out != i) writes[out] = std::move(writes[i]);
    ++out;
  }
  writes.resize(out);

  size_t entry_bytes = EntryBytes(*entry);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it != heads_.end()) {
    entry->prev = it->second;
    it->second = std::move(entry);
  } else {
    entry_bytes += sizeof(void*) * 4;
    heads_.emplace(v, std::move(entry));
  }
  count_.fetch_add(1, std::memory_order_release);
  bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
}

PruneStats PropOverlay::Prune(Version watermark) {
  PruneStats stats;
  if (empty()) return stats;
  std::vector<std::shared_ptr<PropOverlayEntry>> cut;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (auto& [v, head] : heads_) {
      std::shared_ptr<PropOverlayEntry> tail =
          CutChain(head, watermark, &stats);
      if (tail != nullptr) cut.push_back(std::move(tail));
    }
    count_.fetch_sub(stats.entries, std::memory_order_release);
    bytes_.fetch_sub(stats.bytes, std::memory_order_relaxed);
  }
  for (auto& tail : cut) UnlinkChain(std::move(tail));
  return stats;
}

size_t PropOverlay::MemoryBytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

// --- NewVertexRegistry ---------------------------------------------------

void NewVertexRegistry::Publish(const NewVertex& v) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  vertices_[v.id] = v;
  by_label_[v.label].emplace_back(v.version, v.id);
  ext_index_[ExtKey(v.label, v.ext_id)] = {v.version, v.id};
  count_.fetch_add(1, std::memory_order_release);
}

bool NewVertexRegistry::Find(VertexId v, NewVertex* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = vertices_.find(v);
  if (it == vertices_.end()) return false;
  *out = it->second;
  return true;
}

void NewVertexRegistry::CollectVisible(LabelId label, Version snapshot,
                                       std::vector<VertexId>* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return;
  for (const auto& [version, id] : it->second) {
    if (version > snapshot) break;  // versions are nondecreasing per label
    out->push_back(id);
  }
}

size_t NewVertexRegistry::CountVisible(LabelId label, Version snapshot) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return 0;
  size_t n = 0;
  for (const auto& [version, id] : it->second) {
    if (version > snapshot) break;
    ++n;
  }
  return n;
}

bool NewVertexRegistry::FindByExtId(LabelId label, int64_t ext_id,
                                    Version snapshot, VertexId* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ext_index_.find(ExtKey(label, ext_id));
  if (it == ext_index_.end() || it->second.first > snapshot) return false;
  *out = it->second.second;
  return true;
}

PruneStats NewVertexRegistry::Prune(Version /*watermark*/) {
  PruneStats stats;
  if (empty()) return stats;
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [label, list] : by_label_) {
    if (list.capacity() >= list.size() * 2 && list.capacity() > 16) {
      stats.bytes +=
          (list.capacity() - list.size()) * sizeof(list.front());
      list.shrink_to_fit();
    }
  }
  return stats;
}

size_t NewVertexRegistry::MemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Map-slot overhead approximated the same way as the overlays.
  size_t bytes =
      vertices_.size() * (sizeof(NewVertex) + sizeof(void*) * 4) +
      ext_index_.size() *
          (sizeof(std::pair<Version, VertexId>) + sizeof(void*) * 4);
  for (const auto& [label, list] : by_label_) {
    bytes += sizeof(void*) * 4 + list.capacity() * sizeof(list.front());
  }
  return bytes;
}

// --- VersionManager ------------------------------------------------------

std::vector<size_t> VersionManager::LockWriteSet(
    const std::vector<VertexId>& write_set) {
  std::vector<size_t> stripes;
  stripes.reserve(write_set.size());
  for (VertexId v : write_set) stripes.push_back(v % kNumStripes);
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  for (size_t s : stripes) stripe_locks_[s].lock();
  return stripes;
}

void VersionManager::UnlockStripes(const std::vector<size_t>& stripes) {
  // Unlock in reverse acquisition order.
  for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
    stripe_locks_[*it].unlock();
  }
}

}  // namespace ges
