#include "storage/version_manager.h"

#include <algorithm>

namespace ges {

namespace {
uint64_t ExtKey(LabelId label, int64_t ext_id) {
  return (uint64_t{label} << 48) ^ static_cast<uint64_t>(ext_id);
}
}  // namespace

const AdjOverlayEntry* AdjOverlay::Find(VertexId v, Version snapshot) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it == heads_.end()) return nullptr;
  const AdjOverlayEntry* e = it->second.get();
  while (e != nullptr && e->version > snapshot) e = e->prev.get();
  return e;
}

std::shared_ptr<AdjOverlayEntry> AdjOverlay::Head(VertexId v) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  return it == heads_.end() ? nullptr : it->second;
}

void AdjOverlay::Publish(VertexId v, std::shared_ptr<AdjOverlayEntry> entry) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it != heads_.end()) {
    entry->prev = it->second;
    it->second = std::move(entry);
  } else {
    heads_.emplace(v, std::move(entry));
  }
  count_.fetch_add(1, std::memory_order_release);
}

bool PropOverlay::Find(VertexId v, PropertyId prop, Version snapshot,
                       Value* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it == heads_.end()) return false;
  for (const PropOverlayEntry* e = it->second.get(); e != nullptr;
       e = e->prev.get()) {
    if (e->version > snapshot) continue;
    for (const auto& [pid, value] : e->writes) {
      if (pid == prop) {
        *out = value;
        return true;
      }
    }
  }
  return false;
}

void PropOverlay::Publish(VertexId v, std::shared_ptr<PropOverlayEntry> entry) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = heads_.find(v);
  if (it != heads_.end()) {
    entry->prev = it->second;
    it->second = std::move(entry);
  } else {
    heads_.emplace(v, std::move(entry));
  }
  count_.fetch_add(1, std::memory_order_release);
}

void NewVertexRegistry::Publish(const NewVertex& v) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  vertices_[v.id] = v;
  by_label_[v.label].emplace_back(v.version, v.id);
  ext_index_[ExtKey(v.label, v.ext_id)] = {v.version, v.id};
  count_.fetch_add(1, std::memory_order_release);
}

bool NewVertexRegistry::Find(VertexId v, NewVertex* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = vertices_.find(v);
  if (it == vertices_.end()) return false;
  *out = it->second;
  return true;
}

void NewVertexRegistry::CollectVisible(LabelId label, Version snapshot,
                                       std::vector<VertexId>* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return;
  for (const auto& [version, id] : it->second) {
    if (version > snapshot) break;  // versions are nondecreasing per label
    out->push_back(id);
  }
}

size_t NewVertexRegistry::CountVisible(LabelId label, Version snapshot) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return 0;
  size_t n = 0;
  for (const auto& [version, id] : it->second) {
    if (version > snapshot) break;
    ++n;
  }
  return n;
}

bool NewVertexRegistry::FindByExtId(LabelId label, int64_t ext_id,
                                    Version snapshot, VertexId* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ext_index_.find(ExtKey(label, ext_id));
  if (it == ext_index_.end() || it->second.first > snapshot) return false;
  *out = it->second.second;
  return true;
}

std::vector<size_t> VersionManager::LockWriteSet(
    const std::vector<VertexId>& write_set) {
  std::vector<size_t> stripes;
  stripes.reserve(write_set.size());
  for (VertexId v : write_set) stripes.push_back(v % kNumStripes);
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  for (size_t s : stripes) stripe_locks_[s].lock();
  return stripes;
}

void VersionManager::UnlockStripes(const std::vector<size_t>& stripes) {
  // Unlock in reverse acquisition order.
  for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
    stripe_locks_[*it].unlock();
  }
}

}  // namespace ges
