#include "storage/fault_fs.h"

#include <chrono>
#include <thread>

namespace ges {

namespace {

// Wraps the base file handle so appends and syncs are counted and faultable
// like every other operation.
class FaultWalFile : public WalFile {
 public:
  FaultWalFile(FaultFS* owner, std::unique_ptr<WalFile> base)
      : owner_(owner), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override {
    FaultFS::FaultKind kind;
    if (owner_->NextOp(&kind)) {
      if (kind == FaultFS::FaultKind::kShortWrite) {
        // Half the bytes reach the file before the "crash": a torn tail.
        (void)base_->Append(data, n / 2);
        return Status::Error("injected short write");
      }
      if (kind == FaultFS::FaultKind::kFail) {
        return Status::Error("injected I/O failure (append)");
      }
    }
    return base_->Append(data, n);
  }

  Status Sync() override {
    FaultFS::FaultKind kind;
    if (owner_->NextOp(&kind) && kind != FaultFS::FaultKind::kDelay) {
      return Status::Error("injected I/O failure (fsync)");
    }
    return base_->Sync();
  }

 private:
  FaultFS* const owner_;
  std::unique_ptr<WalFile> base_;
};

}  // namespace

void FaultFS::Arm(int nth, FaultKind kind, int delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  countdown_ = nth;
  kind_ = kind;
  delay_ms_ = delay_ms;
}

void FaultFS::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
}

bool FaultFS::NextOp(FaultKind* kind) {
  ops_.fetch_add(1, std::memory_order_acq_rel);
  int delay_ms = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_ && --countdown_ <= 0) {
      armed_ = false;
      fire = true;
      *kind = kind_;
      delay_ms = delay_ms_;
    }
  }
  if (!fire) return false;
  fired_.fetch_add(1, std::memory_order_acq_rel);
  if (*kind == FaultKind::kDelay && delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return true;
}

Status FaultFS::OpenForAppend(const std::string& path,
                              std::unique_ptr<WalFile>* out, uint64_t* size) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (open " + path + ")");
  }
  std::unique_ptr<WalFile> base;
  GES_RETURN_IF_ERROR(base_->OpenForAppend(path, &base, size));
  out->reset(new FaultWalFile(this, std::move(base)));
  return Status::OK();
}

Status FaultFS::ReadFileToString(const std::string& path, std::string* out) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (read " + path + ")");
  }
  return base_->ReadFileToString(path, out);
}

Status FaultFS::Truncate(const std::string& path, uint64_t size) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (truncate " + path + ")");
  }
  return base_->Truncate(path, size);
}

Status FaultFS::Rename(const std::string& from, const std::string& to) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (rename " + from + ")");
  }
  return base_->Rename(from, to);
}

Status FaultFS::Remove(const std::string& path) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (remove " + path + ")");
  }
  return base_->Remove(path);
}

Status FaultFS::SyncFile(const std::string& path) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (fsync " + path + ")");
  }
  return base_->SyncFile(path);
}

Status FaultFS::SyncDir(const std::string& dir) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (fsync dir " + dir + ")");
  }
  return base_->SyncDir(dir);
}

bool FaultFS::Exists(const std::string& path) { return base_->Exists(path); }

Status FaultFS::CreateDir(const std::string& dir) {
  FaultKind kind;
  if (NextOp(&kind) && kind != FaultKind::kDelay) {
    return Status::Error("injected I/O failure (mkdir " + dir + ")");
  }
  return base_->CreateDir(dir);
}

}  // namespace ges
