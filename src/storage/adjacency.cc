#include "storage/adjacency.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ges {

void AdjacencyTable::StageEdge(VertexId src, VertexId dst, int64_t stamp) {
  assert(!finalized_);
  staged_src_.push_back(src);
  staged_dst_.push_back(dst);
  if (has_stamp_) staged_stamp_.push_back(stamp);
}

void AdjacencyTable::Finalize(size_t num_vertices) {
  assert(!finalized_);
  meta_.assign(num_vertices, Meta{});
  // Phase 1: degree count.
  std::vector<uint32_t> degree(num_vertices, 0);
  for (VertexId s : staged_src_) {
    assert(s < num_vertices);
    ++degree[s];
  }
  // Phase 2: prefix offsets.
  std::vector<size_t> offset(num_vertices + 1, 0);
  for (size_t v = 0; v < num_vertices; ++v) {
    offset[v + 1] = offset[v] + degree[v];
  }
  size_t total = offset[num_vertices];
  packed_ids_.resize(total);
  if (has_stamp_) packed_stamps_.resize(total);
  // Phase 3: fill (stable within each vertex: keeps datagen order).
  std::vector<size_t> cursor(offset.begin(), offset.end() - 1);
  for (size_t e = 0; e < staged_src_.size(); ++e) {
    size_t pos = cursor[staged_src_[e]]++;
    packed_ids_[pos] = staged_dst_[e];
    if (has_stamp_) packed_stamps_[pos] = staged_stamp_[e];
  }
  // Phase 4: sort each vertex's list by neighbor id (stable, so parallel
  // edges keep their staging order). Sorted lists are the storage invariant
  // the intersection/galloping primitives rely on (storage/intersect.h).
  std::vector<uint32_t> perm;
  std::vector<VertexId> tmp_ids;
  std::vector<int64_t> tmp_stamps;
  for (size_t v = 0; v < num_vertices; ++v) {
    uint32_t d = degree[v];
    if (d < 2) continue;
    VertexId* ids = packed_ids_.data() + offset[v];
    if (std::is_sorted(ids, ids + d)) continue;
    perm.resize(d);
    for (uint32_t i = 0; i < d; ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(),
                     [&](uint32_t a, uint32_t b) { return ids[a] < ids[b]; });
    tmp_ids.assign(ids, ids + d);
    for (uint32_t i = 0; i < d; ++i) ids[i] = tmp_ids[perm[i]];
    if (has_stamp_) {
      int64_t* stamps = packed_stamps_.data() + offset[v];
      tmp_stamps.assign(stamps, stamps + d);
      for (uint32_t i = 0; i < d; ++i) stamps[i] = tmp_stamps[perm[i]];
    }
  }
  size_t sources = 0;
  for (size_t v = 0; v < num_vertices; ++v) {
    Meta& m = meta_[v];
    m.size = m.capacity = degree[v];
    if (degree[v] > 0) {
      m.ids = packed_ids_.data() + offset[v];
      if (has_stamp_) m.stamps = packed_stamps_.data() + offset[v];
      ++sources;
    }
  }
  num_sources_.store(sources, std::memory_order_relaxed);
  num_edges_.store(total, std::memory_order_relaxed);
  staged_src_.clear();
  staged_src_.shrink_to_fit();
  staged_dst_.clear();
  staged_dst_.shrink_to_fit();
  staged_stamp_.clear();
  staged_stamp_.shrink_to_fit();
  finalized_ = true;
}

void AdjacencyTable::EnsureVertexCapacity(size_t n) {
  if (meta_.size() < n) meta_.resize(n);
}

void AdjacencyTable::Grow(Meta& m, uint32_t min_capacity) {
  uint32_t new_cap = m.capacity == 0 ? 4 : m.capacity * 2;
  while (new_cap < min_capacity) new_cap *= 2;
  if (update_arena_ == nullptr) update_arena_ = std::make_unique<Arena>();
  VertexId* new_ids = update_arena_->AllocateArray<VertexId>(new_cap);
  if (m.size > 0) std::memcpy(new_ids, m.ids, m.size * sizeof(VertexId));
  m.ids = new_ids;
  if (has_stamp_) {
    int64_t* new_stamps = update_arena_->AllocateArray<int64_t>(new_cap);
    if (m.size > 0) {
      std::memcpy(new_stamps, m.stamps, m.size * sizeof(int64_t));
    }
    m.stamps = new_stamps;
  }
  // The vertex's old array is orphaned (packed buffers and arena slabs are
  // never reused); the slack gauge follows the capacity change.
  dead_slots_ += m.capacity;
  slack_slots_ += new_cap - m.capacity;
  m.capacity = new_cap;
}

void AdjacencyTable::InsertEdge(VertexId src, VertexId dst, int64_t stamp) {
  EnsureVertexCapacity(src + 1);
  Meta& m = meta_[src];
  // Meta::ids is non-const by construction; packed storage is owned by us.
  VertexId* ids = const_cast<VertexId*>(m.ids);
  int64_t* stamps = const_cast<int64_t*>(m.stamps);
  // Compact tombstones away first: live ids stay sorted, so dropping the
  // kInvalidVertex slots restores a plain sorted array to insert into.
  if (m.tombstones > 0) {
    uint32_t w = 0;
    for (uint32_t i = 0; i < m.size; ++i) {
      if (ids[i] == kInvalidVertex) continue;
      ids[w] = ids[i];
      if (has_stamp_) stamps[w] = stamps[i];
      ++w;
    }
    tombstone_slots_ -= m.tombstones;
    slack_slots_ += m.size - w;  // freed slots become reusable slack
    m.size = w;
    m.tombstones = 0;
  }
  if (m.size == m.capacity) {
    Grow(m, m.size + 1);
    ids = const_cast<VertexId*>(m.ids);
    stamps = const_cast<int64_t*>(m.stamps);
  }
  if (m.size == 0) num_sources_.fetch_add(1, std::memory_order_relaxed);
  --slack_slots_;  // the inserted edge consumes one slot of capacity
  // Insert at the sorted position (upper bound: parallel edges keep
  // insertion order, matching Finalize's stable sort).
  uint32_t pos =
      static_cast<uint32_t>(std::upper_bound(ids, ids + m.size, dst) - ids);
  std::memmove(ids + pos + 1, ids + pos, (m.size - pos) * sizeof(VertexId));
  ids[pos] = dst;
  if (has_stamp_) {
    std::memmove(stamps + pos + 1, stamps + pos,
                 (m.size - pos) * sizeof(int64_t));
    stamps[pos] = stamp;
  }
  ++m.size;
  num_edges_.fetch_add(1, std::memory_order_relaxed);
}

bool AdjacencyTable::RemoveEdge(VertexId src, VertexId dst) {
  if (src >= meta_.size()) return false;
  Meta& m = meta_[src];
  for (uint32_t i = 0; i < m.size; ++i) {
    if (m.ids[i] == dst) {
      const_cast<VertexId*>(m.ids)[i] = kInvalidVertex;
      ++m.tombstones;
      ++tombstone_slots_;
      num_edges_.fetch_sub(1, std::memory_order_relaxed);
      if (m.size == m.tombstones &&
          num_sources_.load(std::memory_order_relaxed) > 0) {
        num_sources_.fetch_sub(1, std::memory_order_relaxed);
      }
      return true;
    }
  }
  return false;
}

size_t AdjacencyTable::MemoryBytes() const {
  // Capacity, not size, everywhere: the staging buffers (which used to be
  // invisible, so bulk loads under-reported by the whole edge list), the
  // packed arrays' slack, and every arena slab reserved for growth.
  return staged_src_.capacity() * sizeof(VertexId) +
         staged_dst_.capacity() * sizeof(VertexId) +
         staged_stamp_.capacity() * sizeof(int64_t) +
         packed_ids_.capacity() * sizeof(VertexId) +
         packed_stamps_.capacity() * sizeof(int64_t) +
         meta_.capacity() * sizeof(Meta) +
         (update_arena_ != nullptr ? update_arena_->bytes_reserved() : 0);
}

size_t AdjacencyTable::FragmentationBytes() const {
  return (tombstone_slots_ + slack_slots_ + dead_slots_) * SlotBytes();
}

std::shared_ptr<const void> AdjacencyTable::DetachStorage() {
  struct Holder {
    std::vector<VertexId> packed_ids;
    std::vector<int64_t> packed_stamps;
    std::vector<Meta> meta;
    std::unique_ptr<Arena> arena;
  };
  auto holder = std::make_shared<Holder>();
  holder->packed_ids = std::move(packed_ids_);
  holder->packed_stamps = std::move(packed_stamps_);
  holder->meta = std::move(meta_);
  holder->arena = std::move(update_arena_);
  packed_ids_ = std::vector<VertexId>();
  packed_stamps_ = std::vector<int64_t>();
  meta_ = std::vector<Meta>();
  update_arena_.reset();
  tombstone_slots_ = slack_slots_ = dead_slots_ = 0;
  num_edges_.store(0, std::memory_order_relaxed);
  num_sources_.store(0, std::memory_order_relaxed);
  return holder;
}

void AdjacencyTable::RestoreCompacted(size_t num_edges, size_t num_sources) {
  num_edges_.store(num_edges, std::memory_order_relaxed);
  num_sources_.store(num_sources, std::memory_order_relaxed);
  finalized_ = true;
}

}  // namespace ges
