// The LPG graph store: catalog + adjacency tables + columnar properties +
// MV2PL versioning, behind a unified storage access interface.
//
// Lifecycle: (1) declare schema via catalog() and RegisterRelation(); (2)
// bulk load with AddVertexBulk / SetPropertyBulk / AddEdgeBulk; (3)
// FinalizeBulk() packs adjacency arrays; (4) serve snapshot reads and MV2PL
// write transactions concurrently. Base storage is immutable after
// FinalizeBulk(); all later mutations are copy-on-write overlay versions.
#ifndef GES_STORAGE_GRAPH_H_
#define GES_STORAGE_GRAPH_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/string_dict.h"
#include "common/types.h"
#include "common/value.h"
#include "storage/adjacency.h"
#include "storage/catalog.h"
#include "storage/property_store.h"
#include "storage/version_manager.h"

namespace ges {

class WriteTxn;

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // --- schema / relations (single-threaded, before bulk load) ---
  // Declares edges `src -[edge]-> dst`, creating both the OUT table (keyed
  // by src vertices) and the IN table (keyed by dst vertices). `has_stamp`
  // declares one int64 edge property (e.g. creationDate).
  void RegisterRelation(LabelId src, LabelId edge, LabelId dst,
                        bool has_stamp = false);

  // Resolves the adjacency table for expanding from a `vertex_label` vertex
  // along `edge_label` edges in `dir`, reaching `neighbor_label` vertices.
  RelationId FindRelation(LabelId vertex_label, LabelId edge_label,
                          LabelId neighbor_label, Direction dir) const;

  // All registered relations (OUT direction only; IN tables are implied).
  struct RelationInfo {
    RelationKey key;
    bool has_stamp;
  };
  std::vector<RelationInfo> Relations() const;

  // --- bulk load ---
  VertexId AddVertexBulk(LabelId label, int64_t ext_id);
  void SetPropertyBulk(VertexId v, PropertyId prop, const Value& val);
  // Bulk-load fast path for string properties: interns directly into the
  // graph dictionary without boxing a Value.
  void SetPropertyBulkString(VertexId v, PropertyId prop, std::string_view s);
  // Stages an edge into both directions' tables; labels are inferred from
  // the endpoint vertices. The relation must have been registered.
  void AddEdgeBulk(LabelId edge_label, VertexId src, VertexId dst,
                   int64_t stamp = 0);
  void FinalizeBulk();
  bool finalized() const { return finalized_; }

  // --- snapshot reads (non-blocking) ---
  Version CurrentVersion() const { return version_manager_.CurrentVersion(); }

  // Adjacency of `v` in relation `rel` as of `snapshot`. Entries may be
  // kInvalidVertex (tombstones); callers skip them.
  AdjSpan Neighbors(RelationId rel, VertexId v, Version snapshot) const {
    const TableEntry& t = tables_[rel];
    if (!t.overlay->empty()) {
      const AdjOverlayEntry* e = t.overlay->Find(v, snapshot);
      if (e != nullptr) {
        return AdjSpan{e->ids.data(),
                       t.table->has_stamp() ? e->stamps.data() : nullptr,
                       static_cast<uint32_t>(e->ids.size())};
      }
    }
    return t.table->Neighbors(v);
  }

  uint32_t Degree(RelationId rel, VertexId v, Version snapshot) const;

  Value GetProperty(VertexId v, PropertyId prop, Version snapshot) const;
  // Fast path for bulk vertices when no overlay exists; used by vectorized
  // property projection. Returns nullptr if the column does not exist.
  const ValueVector* BasePropertyColumn(LabelId label, PropertyId prop) const;

  // Batched property gather: appends `prop` of ids[0..n) to `out` (which
  // must already have the property's type). `sel`, when non-null, is a byte
  // mask; deselected rows append the zero placeholder (0 / 0.0 / "") so
  // `out` stays positionally aligned with `ids`. MVCC overlay presence is
  // resolved once per batch and the per-label column/slot lookup is cached,
  // so the common (no-overlay) case is a typed column copy per row — no
  // boxed Values. Dict-encoded string columns copy uint32 codes.
  void GatherProperties(const VertexId* ids, size_t n, const uint8_t* sel,
                        PropertyId prop, Version snapshot,
                        ValueVector* out) const;

  // The per-graph string dictionary backing all base string property
  // columns. Immutable after FinalizeBulk().
  const StringDict& string_dict() const { return string_dict_; }

  LabelId LabelOf(VertexId v, Version snapshot) const;
  // Dense offset of a bulk vertex within its label's property table.
  uint32_t OffsetInLabel(VertexId v) const { return offset_in_label_[v]; }

  VertexId FindByExtId(LabelId label, int64_t ext_id, Version snapshot) const;
  // External id of `v` (the inverse of FindByExtId).
  int64_t ExtIdOf(VertexId v, Version snapshot) const;

  // All vertices with `label` visible at `snapshot` (bulk + committed new).
  void ScanLabel(LabelId label, Version snapshot,
                 std::vector<VertexId>* out) const;
  size_t NumVertices(LabelId label, Version snapshot) const;
  size_t NumVerticesTotal() const {
    return next_vertex_id_.load(std::memory_order_acquire);
  }
  size_t bulk_vertex_count() const { return bulk_vertex_count_; }
  size_t NumEdgesTotal() const;

  size_t MemoryBytes() const;

  // --- write transactions (MV2PL) ---
  // Locks the write set (growing phase) and returns a transaction handle.
  // `write_set` must contain every existing vertex the transaction will
  // modify; vertices created by the transaction need not be listed.
  std::unique_ptr<WriteTxn> BeginWrite(std::vector<VertexId> write_set);

 private:
  friend class WriteTxn;

  struct TableEntry {
    std::unique_ptr<AdjacencyTable> table;
    std::unique_ptr<AdjOverlay> overlay;
  };

  static uint64_t ExtKey(LabelId label, int64_t ext_id) {
    return (uint64_t{label} << 48) ^ static_cast<uint64_t>(ext_id);
  }

  Catalog catalog_;
  std::vector<TableEntry> tables_;
  std::unordered_map<RelationKey, RelationId, RelationKeyHash> table_index_;

  // Bulk vertex metadata (immutable after FinalizeBulk).
  std::vector<LabelId> label_of_;
  std::vector<int64_t> ext_of_;
  std::vector<uint32_t> offset_in_label_;
  std::vector<std::vector<VertexId>> bulk_by_label_;
  std::vector<std::unique_ptr<PropertyTable>> property_tables_;  // per label
  StringDict string_dict_;
  std::unordered_map<uint64_t, VertexId> ext_index_;
  size_t bulk_vertex_count_ = 0;
  bool finalized_ = false;

  std::atomic<VertexId> next_vertex_id_{0};

  // MVCC state.
  VersionManager version_manager_;
  PropOverlay prop_overlay_;
  NewVertexRegistry new_vertices_;
};

// A single MV2PL write transaction. Stage operations, then Commit() (or
// Abort()). Staged operations become visible atomically at the commit
// version. Not thread-safe; one thread drives a transaction.
class WriteTxn {
 public:
  ~WriteTxn();
  WriteTxn(const WriteTxn&) = delete;
  WriteTxn& operator=(const WriteTxn&) = delete;

  // Creates a vertex; returns its (provisional) id, usable in subsequent
  // AddEdge/SetProperty calls within this transaction.
  VertexId CreateVertex(LabelId label, int64_t ext_id,
                        std::vector<std::pair<PropertyId, Value>> props);

  Status AddEdge(LabelId edge_label, VertexId src, VertexId dst,
                 int64_t stamp = 0);
  Status RemoveEdge(LabelId edge_label, VertexId src, VertexId dst);
  void SetProperty(VertexId v, PropertyId prop, Value val);

  // Publishes all staged operations; returns the commit version.
  Version Commit();
  void Abort();

 private:
  friend class Graph;
  WriteTxn(Graph* graph, std::vector<VertexId> write_set);

  bool InWriteSet(VertexId v) const;

  struct EdgeOp {
    RelationId rel;
    VertexId vertex;
    VertexId neighbor;
    int64_t stamp;
    bool remove;
  };
  struct VertexOp {
    VertexId id;
    LabelId label;
    int64_t ext_id;
  };

  Graph* graph_;
  std::vector<VertexId> write_set_;
  std::vector<size_t> locked_stripes_;
  std::vector<EdgeOp> edge_ops_;
  std::vector<VertexOp> new_vertices_;
  std::vector<std::pair<VertexId, std::pair<PropertyId, Value>>> prop_ops_;
  bool done_ = false;
};

}  // namespace ges

#endif  // GES_STORAGE_GRAPH_H_
