// The LPG graph store: catalog + adjacency tables + columnar properties +
// MV2PL versioning, behind a unified storage access interface.
//
// Lifecycle: (1) declare schema via catalog() and RegisterRelation(); (2)
// bulk load with AddVertexBulk / SetPropertyBulk / AddEdgeBulk; (3)
// FinalizeBulk() packs adjacency arrays; (4) serve snapshot reads and MV2PL
// write transactions concurrently. Base storage is immutable after
// FinalizeBulk(); all later mutations are copy-on-write overlay versions.
#ifndef GES_STORAGE_GRAPH_H_
#define GES_STORAGE_GRAPH_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/string_dict.h"
#include "common/types.h"
#include "common/value.h"
#include "storage/adjacency.h"
#include "storage/catalog.h"
#include "storage/compressed_segment.h"
#include "storage/property_store.h"
#include "storage/version_manager.h"
#include "storage/wal.h"

namespace ges {

class WriteTxn;

// Configuration for a durable graph directory (snapshot.ges + wal.log).
struct DurabilityOptions {
  WalOptions wal;
  // Auto-checkpoint threshold: MaybeCheckpoint() rotates once the WAL
  // exceeds this many bytes.
  uint64_t checkpoint_wal_bytes = 64ull << 20;
  // Override for fault injection; nullptr = FileSystem::Default().
  FileSystem* fs = nullptr;
};

// What Graph::Open found while recovering (for logs and tests).
struct RecoveryInfo {
  Version snapshot_version = 0;   // version stored in the snapshot
  uint64_t replayed_txns = 0;     // committed WAL txns applied
  uint64_t skipped_txns = 0;      // already covered by the snapshot
  uint64_t dangling_records = 0;  // records of an unfinished trailing txn
  uint64_t truncated_bytes = 0;   // torn-tail bytes cut from the WAL
};

// One Graph::PruneVersions() pass: the watermark it ran at and what it
// reclaimed across every overlay structure.
struct GcStats {
  Version watermark = 0;
  uint64_t entries_pruned = 0;
  uint64_t bytes_reclaimed = 0;
};

// Knobs for one Graph::CompactRelations() pass (DESIGN.md §16).
struct CompactionOptions {
  // A relation is compacted when its reclaimable share — fragmentation
  // bytes in the base table plus overlay chain bytes — is at least this
  // fraction of its total footprint.
  double trigger_frag_pct = 0.30;
  // Ignore the trigger and compact every non-empty relation (tests,
  // GESSNAP4 load, `force` service admin path).
  bool force = false;
  // When non-empty, only these relations are considered (GESSNAP4 load
  // rebuilds exactly the segments the snapshot manifest lists).
  std::vector<RelationId> only;
};

// What one Graph::CompactRelations() pass did.
struct CompactionStats {
  Version cut = 0;                  // merge cut (the GC watermark)
  uint32_t relations_compacted = 0; // segments built and installed
  uint64_t entries_collapsed = 0;   // overlay entries merged away
  uint64_t edges_encoded = 0;       // edges in the new segments
  uint64_t bytes_before = 0;        // footprint of compacted relations
  uint64_t bytes_after = 0;         // same relations post-swap (live only)
  uint64_t bytes_retired = 0;       // parked until the watermark passes
};

// Everything a new replication subscriber needs to catch up to the primary
// before live WAL frames take over (DESIGN.md §13). Collected atomically
// with the subscriber registration, so snapshot + txns + live feed cover
// every commit exactly once.
struct ReplicationBacklog {
  bool need_snapshot = false;
  std::string snapshot_bytes;   // GESSNAP image when need_snapshot
  Version snapshot_version = 0; // version the snapshot captures
  std::vector<WalTxn> txns;     // committed txns after snapshot/from
  Version live_from = 0;        // live feed covers versions > this
};

// Observer of every commit, invoked under the commit mutex immediately
// after the commit's version is published — callback order is exactly
// commit order. `records` is the transaction's full WAL record list
// (kBeginTx first, kCommitTx last). Must not block and must not call back
// into the graph's write path.
using CommitListener =
    std::function<void(Version, const std::vector<WalRecord>&)>;

class Graph {
 public:
  Graph() = default;
  ~Graph();
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // --- durability (implemented in durability.cc; DESIGN.md §10) ---
  // True if `dir` holds a snapshot a previous process checkpointed.
  static bool SnapshotExists(const std::string& dir,
                             FileSystem* fs = nullptr);

  // Opens a durable graph directory: loads the latest valid snapshot,
  // replays committed WAL transactions newer than it, truncates any torn
  // tail, and attaches a WAL writer so subsequent commits are logged.
  static Status Open(const std::string& dir, const DurabilityOptions& opts,
                     std::unique_ptr<Graph>* out,
                     RecoveryInfo* info = nullptr);

  // Makes an existing (finalized) in-memory graph durable: creates `dir`,
  // writes an initial checkpoint, and starts a fresh WAL.
  Status EnableDurability(const std::string& dir,
                          const DurabilityOptions& opts);

  // Writes a new snapshot atomically (tmp + fsync + rename + dir fsync)
  // and empties the WAL. Serializes with concurrent commits via the commit
  // mutex and with other checkpoints via its own lock.
  Status Checkpoint();

  // Checkpoints only if the WAL outgrew the configured threshold and no
  // other thread is already checkpointing. Returns OK when nothing to do.
  Status MaybeCheckpoint();
  bool ShouldCheckpoint() const;

  bool durable() const { return wal_ != nullptr; }
  uint64_t WalBytes() const { return wal_ ? wal_->SizeBytes() : 0; }
  const std::string& data_dir() const { return data_dir_; }

  // A WAL append/fsync failure (disk full, EIO) latches the graph
  // read-only: reads keep working, further commits fail fast.
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }
  std::string read_only_reason() const;

  // Restores the global version counter after loading a snapshot that
  // recorded it. Recovery-time only (no concurrent readers or writers).
  void RestoreVersionForRecovery(Version v) {
    version_manager_.AdvanceVersionLocked(v);
  }

  // --- replication (primary side; implemented in durability.cc) ---
  // Installs/clears the commit feed. When a listener is set, every commit
  // builds its WAL records even on a non-durable graph. One listener slot:
  // the log shipper fans out to its subscribers.
  void SetCommitListener(CommitListener listener);
  void ClearCommitListener() { SetCommitListener(nullptr); }

  // Collects the catch-up state for a subscriber that has applied
  // everything up to `from` (0 = nothing), and atomically registers it
  // with the live feed: `on_subscribed` runs under the commit mutex with
  // the current version V, after which the commit listener sees every
  // commit > V while `out` covers everything <= V newer than `from` —
  // no gap, no duplicate. Durable graphs serve the last checkpoint file
  // plus the WAL tail; non-durable graphs serialize a fresh in-memory
  // snapshot (bench/test topologies).
  Status CollectReplicationBacklog(Version from, ReplicationBacklog* out,
                                   const std::function<void(Version)>&
                                       on_subscribed);

  // --- replication (replica side) ---
  // Applies one shipped transaction through the normal write path (so a
  // durable replica logs it to its own WAL and commit versions replicate
  // identically). Rejects version gaps: `tx.commit_version` must be
  // exactly CurrentVersion() + 1.
  Status ApplyReplicatedTxn(const WalTxn& tx);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // --- schema / relations (single-threaded, before bulk load) ---
  // Declares edges `src -[edge]-> dst`, creating both the OUT table (keyed
  // by src vertices) and the IN table (keyed by dst vertices). `has_stamp`
  // declares one int64 edge property (e.g. creationDate).
  void RegisterRelation(LabelId src, LabelId edge, LabelId dst,
                        bool has_stamp = false);

  // Resolves the adjacency table for expanding from a `vertex_label` vertex
  // along `edge_label` edges in `dir`, reaching `neighbor_label` vertices.
  RelationId FindRelation(LabelId vertex_label, LabelId edge_label,
                          LabelId neighbor_label, Direction dir) const;

  // All registered relations (OUT direction only; IN tables are implied).
  struct RelationInfo {
    RelationKey key;
    bool has_stamp;
  };
  std::vector<RelationInfo> Relations() const;

  // Dense RelationId iteration (both directions), used by the statistics
  // builder and the cost model.
  size_t NumRelations() const { return tables_.size(); }
  const RelationKey& RelationKeyOf(RelationId rel) const {
    return tables_[rel].table->key();
  }

  // Rebuilds the catalog-owned GraphStats snapshot (graph_stats.cc) at the
  // current version: degree histograms per relation, NDV/min-max per base
  // property column, vertex counts per label. Returns false when the graph
  // version is unchanged since the last build (no install, no epoch bump).
  // Sampling-bounded; called from the service reaper thread.
  bool RebuildStats();

  // --- bulk load ---
  VertexId AddVertexBulk(LabelId label, int64_t ext_id);
  void SetPropertyBulk(VertexId v, PropertyId prop, const Value& val);
  // Bulk-load fast path for string properties: interns directly into the
  // graph dictionary without boxing a Value.
  void SetPropertyBulkString(VertexId v, PropertyId prop, std::string_view s);
  // Stages an edge into both directions' tables; labels are inferred from
  // the endpoint vertices. The relation must have been registered.
  void AddEdgeBulk(LabelId edge_label, VertexId src, VertexId dst,
                   int64_t stamp = 0);
  void FinalizeBulk();
  bool finalized() const { return finalized_; }

  // --- snapshot reads (non-blocking) ---
  Version CurrentVersion() const { return version_manager_.CurrentVersion(); }

  // --- MVCC garbage collection (DESIGN.md §11) ---
  // Registers a reader at the current version; while the handle lives,
  // PruneVersions() never reclaims a chain entry that reader can resolve.
  // Readers that race PruneVersions() without a handle are only safe at
  // the current version.
  SnapshotHandle PinSnapshot() { return version_manager_.AcquireSnapshot(); }
  // Registers a reader at exactly `v`. Only safe while the caller already
  // holds a handle at version <= v (protected handover), or concurrent
  // pruning is otherwise excluded.
  SnapshotHandle PinSnapshotAt(Version v) {
    return version_manager_.AcquireSnapshotAt(v);
  }
  // The prune watermark: oldest pinned snapshot, or the current version.
  Version OldestActiveSnapshot() const {
    return version_manager_.OldestActiveSnapshot();
  }
  size_t ActiveSnapshots() const {
    return version_manager_.snapshots().ActiveCount();
  }

  // Cuts every overlay version chain at the watermark and frees the
  // unreachable tails. Cheap when nothing is reclaimable; safe against
  // concurrent reads (at pinned or current versions) and commits. Also
  // drains the compaction retire list once the watermark passes a swap.
  GcStats PruneVersions();

  // --- background delta-merge compaction (DESIGN.md §16) ---
  // Merges base arrays + overlay entries at the GC watermark into fresh
  // immutable delta/varint-compressed segments and swaps them in under the
  // checkpoint + commit mutexes (the replication backlog's atomic-cut
  // order). Pinned readers stay byte-identical: the cut is at or below
  // every pin, and the replaced storage is parked on the retire list until
  // the watermark passes the install version. One pass at a time; safe
  // against concurrent commits, reads, GC, and checkpoints.
  CompactionStats CompactRelations(const CompactionOptions& opts);

  // Frees retire-list batches whose install version the watermark has
  // passed (no reader can still hold spans into them). Returns bytes
  // freed. Called from PruneVersions; callable directly.
  size_t ReclaimRetired();
  // Recovery-time drain (no concurrent readers exist): frees everything
  // parked regardless of the watermark. Used after a GESSNAP4 load
  // rebuilds segments on a freshly recovered graph.
  size_t ForceReclaimRetiredForRecovery();

  // True once a compressed segment is installed for `rel`. The factorized
  // executor's lazy-expand path keys off this: decoded spans are
  // scratch-backed and cannot be stored across operator boundaries.
  bool RelationCompacted(RelationId rel) const {
    return tables_[rel].segment.load(std::memory_order_acquire) != nullptr;
  }
  size_t CompactedSegments() const {
    size_t n = 0;
    for (const TableEntry& t : tables_) {
      if (t.segment.load(std::memory_order_acquire) != nullptr) ++n;
    }
    return n;
  }
  // Bytes parked on the retire list (freed-pending-watermark).
  size_t RetiredBytes() const {
    return retired_bytes_.load(std::memory_order_relaxed);
  }

  // Lifetime compaction totals (service stats).
  uint64_t compaction_runs_total() const {
    return compaction_runs_total_.load(std::memory_order_relaxed);
  }
  uint64_t compaction_segments_total() const {
    return compaction_segments_total_.load(std::memory_order_relaxed);
  }
  uint64_t compaction_bytes_reclaimed_total() const {
    return compaction_bytes_reclaimed_total_.load(std::memory_order_relaxed);
  }
  // Set by a compaction swap; consumed by RebuildStats so the reaper's
  // next refresh re-samples degree distributions even though the graph
  // version did not move.
  bool stats_dirty() const {
    return stats_dirty_.load(std::memory_order_acquire);
  }

  // Lifetime totals across PruneVersions() calls (service stats).
  uint64_t versions_pruned_total() const {
    return versions_pruned_total_.load(std::memory_order_relaxed);
  }
  uint64_t gc_bytes_reclaimed_total() const {
    return gc_bytes_reclaimed_total_.load(std::memory_order_relaxed);
  }

  // Live bytes held by MVCC overlay state: adjacency/property version
  // chains plus the new-vertex registry. The GC byte trigger reads this.
  size_t OverlayBytes() const;

  // Adjacency of `v` in relation `rel` as of `snapshot`. Base spans may
  // contain kInvalidVertex (tombstones); callers skip them. Overlay entries
  // are tombstone-free and sorted (commit publishes compacted sorted
  // copies), so their spans are always sorted_clean().
  //
  // Resolution order: overlay chain, then the installed compressed segment
  // (DESIGN.md §16), then the base array. Decoding a segment materializes
  // into `scratch`, so the returned span is only valid until the scratch is
  // reused; call sites that can observe a compacted relation must pass one
  // (a decode with a null scratch aborts loudly — never-compacted graphs,
  // e.g. most unit-test fixtures, are unaffected).
  AdjSpan Neighbors(RelationId rel, VertexId v, Version snapshot,
                    AdjScratch* scratch = nullptr) const {
    const TableEntry& t = tables_[rel];
    if (!t.overlay->empty()) {
      const AdjOverlayEntry* e = t.overlay->Find(v, snapshot);
      if (e != nullptr) {
        return AdjSpan{e->ids.data(),
                       t.table->has_stamp() ? e->stamps.data() : nullptr,
                       static_cast<uint32_t>(e->ids.size())};
      }
    }
    const CompressedSegment* seg = t.segment.load(std::memory_order_acquire);
    if (seg != nullptr && seg->Covers(v)) return seg->Decode(v, scratch);
    return t.table->Neighbors(v);
  }

  // The table traversing the same edges from the destination side:
  // (src, e, dst, OUT) <-> (dst, e, src, IN). Always present —
  // RegisterRelation creates both directions.
  RelationId ReverseRelation(RelationId rel) const {
    const RelationKey& k = tables_[rel].table->key();
    RelationKey rk{k.dst_label, k.edge_label, k.src_label,
                   k.direction == Direction::kOut ? Direction::kIn
                                                  : Direction::kOut};
    auto it = table_index_.find(rk);
    return it == table_index_.end() ? kInvalidRelation : it->second;
  }

  // Mean live out-degree over vertices with out-edges, from the base
  // table's adjMeta. Drives the optimizer's intersection cost model; the
  // (small) overlay delta is deliberately ignored.
  double AvgDegree(RelationId rel) const {
    const AdjacencyTable& t = *tables_[rel].table;
    if (t.num_sources() == 0) return 0.0;
    return static_cast<double>(t.num_edges()) /
           static_cast<double>(t.num_sources());
  }

  uint32_t Degree(RelationId rel, VertexId v, Version snapshot) const;

  Value GetProperty(VertexId v, PropertyId prop, Version snapshot) const;
  // Fast path for bulk vertices when no overlay exists; used by vectorized
  // property projection. Returns nullptr if the column does not exist.
  const ValueVector* BasePropertyColumn(LabelId label, PropertyId prop) const;

  // Batched property gather: appends `prop` of ids[0..n) to `out` (which
  // must already have the property's type). `sel`, when non-null, is a byte
  // mask; deselected rows append the zero placeholder (0 / 0.0 / "") so
  // `out` stays positionally aligned with `ids`. MVCC overlay presence is
  // resolved once per batch and the per-label column/slot lookup is cached,
  // so the common (no-overlay) case is a typed column copy per row — no
  // boxed Values. Dict-encoded string columns copy uint32 codes.
  void GatherProperties(const VertexId* ids, size_t n, const uint8_t* sel,
                        PropertyId prop, Version snapshot,
                        ValueVector* out) const;

  // The per-graph string dictionary backing all base string property
  // columns. Immutable after FinalizeBulk().
  const StringDict& string_dict() const { return string_dict_; }

  LabelId LabelOf(VertexId v, Version snapshot) const;
  // Dense offset of a bulk vertex within its label's property table.
  uint32_t OffsetInLabel(VertexId v) const { return offset_in_label_[v]; }

  VertexId FindByExtId(LabelId label, int64_t ext_id, Version snapshot) const;
  // External id of `v` (the inverse of FindByExtId).
  int64_t ExtIdOf(VertexId v, Version snapshot) const;

  // All vertices with `label` visible at `snapshot` (bulk + committed new).
  void ScanLabel(LabelId label, Version snapshot,
                 std::vector<VertexId>* out) const;
  size_t NumVertices(LabelId label, Version snapshot) const;
  size_t NumVerticesTotal() const {
    return next_vertex_id_.load(std::memory_order_acquire);
  }
  size_t bulk_vertex_count() const { return bulk_vertex_count_; }
  size_t NumEdgesTotal() const;

  size_t MemoryBytes() const;

  // --- write transactions (MV2PL) ---
  // Locks the write set (growing phase) and returns a transaction handle.
  // `write_set` must contain every existing vertex the transaction will
  // modify; vertices created by the transaction need not be listed.
  std::unique_ptr<WriteTxn> BeginWrite(std::vector<VertexId> write_set);

 private:
  friend class WriteTxn;

  // Latches read-only mode with the failure that caused it (first wins).
  void EnterReadOnly(const Status& cause);

  // Snapshot + WAL rotation with checkpoint_mu_ already held.
  Status CheckpointLocked();

  struct TableEntry {
    TableEntry() = default;
    // Moves happen only during single-threaded relation registration
    // (tables_ growth), so copying the atomic's value is race-free.
    TableEntry(TableEntry&& o) noexcept
        : table(std::move(o.table)),
          overlay(std::move(o.overlay)),
          segment_owner(std::move(o.segment_owner)),
          segment(o.segment.load(std::memory_order_relaxed)) {}
    TableEntry& operator=(TableEntry&&) = delete;

    std::unique_ptr<AdjacencyTable> table;
    std::unique_ptr<AdjOverlay> overlay;
    // Installed compressed segment (DESIGN.md §16). `segment_owner` keeps
    // it alive (and feeds the retire list on replacement); the raw atomic
    // is the lock-free reader-side acquire point.
    std::shared_ptr<const CompressedSegment> segment_owner;
    std::atomic<const CompressedSegment*> segment{nullptr};
  };

  // One compaction swap's replaced storage, parked until the GC watermark
  // passes `install_version` (readers pinned at or below it may still hold
  // AdjSpans into the old arrays / collapsed chain entries).
  struct RetiredBatch {
    Version install_version = 0;
    size_t bytes = 0;
    std::vector<std::shared_ptr<const void>> keepalives;
    std::vector<std::shared_ptr<AdjOverlayEntry>> chains;
  };

  static uint64_t ExtKey(LabelId label, int64_t ext_id) {
    return (uint64_t{label} << 48) ^ static_cast<uint64_t>(ext_id);
  }

  Catalog catalog_;
  std::vector<TableEntry> tables_;
  std::unordered_map<RelationKey, RelationId, RelationKeyHash> table_index_;

  // Bulk vertex metadata (immutable after FinalizeBulk).
  std::vector<LabelId> label_of_;
  std::vector<int64_t> ext_of_;
  std::vector<uint32_t> offset_in_label_;
  std::vector<std::vector<VertexId>> bulk_by_label_;
  std::vector<std::unique_ptr<PropertyTable>> property_tables_;  // per label
  StringDict string_dict_;
  std::unordered_map<uint64_t, VertexId> ext_index_;
  size_t bulk_vertex_count_ = 0;
  bool finalized_ = false;

  std::atomic<VertexId> next_vertex_id_{0};

  // MVCC state.
  VersionManager version_manager_;
  PropOverlay prop_overlay_;
  NewVertexRegistry new_vertices_;

  // Durability state (null / empty for purely in-memory graphs).
  std::unique_ptr<WalWriter> wal_;
  DurabilityOptions dur_opts_;
  std::string data_dir_;
  // Version captured by the snapshot file currently on disk; guarded by
  // the commit mutex (writers hold it at every update site).
  Version last_checkpoint_version_ = 0;
  // Commit feed (DESIGN.md §13). The listener itself is guarded by the
  // commit mutex; the flag lets the commit path skip record-building
  // without taking any extra lock when no feed is attached.
  CommitListener commit_listener_;
  std::atomic<bool> has_commit_listener_{false};
  std::atomic<bool> read_only_{false};
  mutable std::mutex read_only_mu_;
  std::string read_only_reason_;
  std::mutex checkpoint_mu_;

  // GC bookkeeping: serializes PruneVersions passes; counters are lifetime
  // totals surfaced through the service stats.
  std::mutex gc_mu_;
  std::atomic<uint64_t> versions_pruned_total_{0};
  std::atomic<uint64_t> gc_bytes_reclaimed_total_{0};

  // Compaction bookkeeping (DESIGN.md §16): one pass at a time; the retire
  // list holds replaced storage until the watermark drains it.
  std::mutex compaction_mu_;
  mutable std::mutex retired_mu_;
  std::vector<RetiredBatch> retired_;
  std::atomic<size_t> retired_bytes_{0};
  std::atomic<uint64_t> compaction_runs_total_{0};
  std::atomic<uint64_t> compaction_segments_total_{0};
  std::atomic<uint64_t> compaction_bytes_reclaimed_total_{0};
  std::atomic<bool> stats_dirty_{false};
};

// A single MV2PL write transaction. Stage operations, then Commit() (or
// Abort()). Staged operations become visible atomically at the commit
// version. Not thread-safe; one thread drives a transaction.
class WriteTxn {
 public:
  ~WriteTxn();
  WriteTxn(const WriteTxn&) = delete;
  WriteTxn& operator=(const WriteTxn&) = delete;

  // Creates a vertex; returns its (provisional) id, usable in subsequent
  // AddEdge/SetProperty calls within this transaction.
  VertexId CreateVertex(LabelId label, int64_t ext_id,
                        std::vector<std::pair<PropertyId, Value>> props);

  Status AddEdge(LabelId edge_label, VertexId src, VertexId dst,
                 int64_t stamp = 0);
  Status RemoveEdge(LabelId edge_label, VertexId src, VertexId dst);
  void SetProperty(VertexId v, PropertyId prop, Value val);

  // Publishes all staged operations. When the graph is durable, the
  // transaction's WAL records are appended before publication and the call
  // returns only after the commit is durable per the fsync policy; a WAL
  // failure latches the graph read-only and fails the commit without
  // publishing. `*commit_version` receives the commit version on success.
  Status Commit(Version* commit_version);
  // Legacy convenience: returns the commit version, or 0 on failure (0 is
  // never a valid commit version).
  Version Commit();
  void Abort();

 private:
  friend class Graph;
  WriteTxn(Graph* graph, std::vector<VertexId> write_set);

  bool InWriteSet(VertexId v) const;

  struct EdgeOp {
    RelationId rel;
    VertexId vertex;
    VertexId neighbor;
    int64_t stamp;
    bool remove;
  };
  struct VertexOp {
    VertexId id;
    LabelId label;
    int64_t ext_id;
  };

  // Synthesizes the WAL records describing this transaction's staged
  // operations (vertices referenced by (label, ext id)).
  std::vector<WalRecord> BuildWalRecords(uint64_t txid) const;

  Graph* graph_;
  std::vector<VertexId> write_set_;
  std::vector<size_t> locked_stripes_;
  std::vector<EdgeOp> edge_ops_;
  std::vector<VertexOp> new_vertices_;
  std::vector<std::pair<VertexId, std::pair<PropertyId, Value>>> prop_ops_;
  bool done_ = false;
};

}  // namespace ges

#endif  // GES_STORAGE_GRAPH_H_
