#include "storage/catalog.h"

namespace ges {

LabelId Catalog::AddVertexLabel(const std::string& name) {
  auto it = vertex_label_ids_.find(name);
  if (it != vertex_label_ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(vertex_labels_.size());
  vertex_labels_.push_back(name);
  vertex_label_ids_[name] = id;
  label_properties_.emplace_back();
  BumpStatsEpoch();
  return id;
}

LabelId Catalog::AddEdgeLabel(const std::string& name) {
  auto it = edge_label_ids_.find(name);
  if (it != edge_label_ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(edge_labels_.size());
  edge_labels_.push_back(name);
  edge_label_ids_[name] = id;
  BumpStatsEpoch();
  return id;
}

PropertyId Catalog::AddProperty(LabelId label, const std::string& name,
                                ValueType type) {
  PropertyId id;
  auto it = property_ids_.find(name);
  if (it != property_ids_.end()) {
    id = it->second;
  } else {
    id = static_cast<PropertyId>(property_names_.size());
    property_names_.push_back(name);
    property_ids_[name] = id;
  }
  // Register the column slot on this label if not present yet.
  for (const auto& [pid, t] : label_properties_[label]) {
    if (pid == id) return id;
  }
  label_properties_[label].emplace_back(id, type);
  BumpStatsEpoch();
  return id;
}

void Catalog::InstallStats(std::shared_ptr<const GraphStats> stats) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = std::move(stats);
  }
  BumpStatsEpoch();
}

std::shared_ptr<const GraphStats> Catalog::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

LabelId Catalog::VertexLabel(const std::string& name) const {
  auto it = vertex_label_ids_.find(name);
  return it == vertex_label_ids_.end() ? kInvalidLabel : it->second;
}

LabelId Catalog::EdgeLabel(const std::string& name) const {
  auto it = edge_label_ids_.find(name);
  return it == edge_label_ids_.end() ? kInvalidLabel : it->second;
}

PropertyId Catalog::Property(const std::string& name) const {
  auto it = property_ids_.find(name);
  return it == property_ids_.end() ? kInvalidProperty : it->second;
}

int Catalog::PropertySlot(LabelId label, PropertyId prop) const {
  const auto& props = label_properties_[label];
  for (size_t i = 0; i < props.size(); ++i) {
    if (props[i].first == prop) return static_cast<int>(i);
  }
  return -1;
}

ValueType Catalog::PropertyType(LabelId label, PropertyId prop) const {
  const auto& props = label_properties_[label];
  for (const auto& [pid, t] : props) {
    if (pid == prop) return t;
  }
  return ValueType::kNull;
}

}  // namespace ges
