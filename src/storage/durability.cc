// Durable graph directories: crash recovery (snapshot load + WAL replay),
// checkpointing, and read-only degradation. See DESIGN.md §10.
//
// Directory layout:
//   <dir>/snapshot.ges      latest checkpoint (GESSNAP3, CRC per section)
//   <dir>/snapshot.ges.tmp  in-flight checkpoint (garbage after a crash)
//   <dir>/wal.log           transactions since the snapshot
//
// Recovery protocol (Graph::Open):
//   1. remove a leftover snapshot.ges.tmp (crash before the rename);
//   2. load snapshot.ges, restoring the global version counter to the
//      snapshot version V;
//   3. scan wal.log, stopping at the first torn/corrupt frame, and replay
//      every committed transaction with commit version > V in log order
//      (transactions <= V were already folded into the snapshot by the
//      checkpoint that crashed between its rename and WAL rotation);
//   4. truncate the torn tail, then attach a WalWriter so new commits log.
// Replay itself runs with the WAL detached, so replayed transactions are
// not re-logged; because commit versions are consecutive, replay reproduces
// the pre-crash version numbering.
#include <sstream>
#include <unordered_map>

#include "storage/graph.h"
#include "storage/serialization.h"

namespace ges {

namespace {

constexpr char kSnapshotName[] = "/snapshot.ges";
constexpr char kSnapshotTmpName[] = "/snapshot.ges.tmp";
constexpr char kWalName[] = "/wal.log";

// Writes a V3 snapshot of `graph` atomically into `dir`: tmp file + fsync +
// rename + directory fsync. The caller must hold the commit mutex (or
// otherwise exclude concurrent commits) so the snapshot version covers
// everything the WAL rotation is about to discard.
Status WriteSnapshotAtomic(const Graph& graph, FileSystem* fs,
                           const std::string& dir) {
  std::string tmp = dir + kSnapshotTmpName;
  GES_RETURN_IF_ERROR(SaveGraphFile(graph, tmp, SnapshotFormat::kV4));
  GES_RETURN_IF_ERROR(fs->SyncFile(tmp));
  GES_RETURN_IF_ERROR(fs->Rename(tmp, dir + kSnapshotName));
  GES_RETURN_IF_ERROR(fs->SyncDir(dir));
  return Status::OK();
}

uint64_t IdentKey(LabelId label, int64_t ext) {
  return (uint64_t{label} << 48) ^ static_cast<uint64_t>(ext);
}

// Re-applies one committed WAL transaction through the normal write path.
Status ReplayWalTxn(Graph* graph, const WalTxn& tx) {
  Version snap = graph->CurrentVersion();
  // The write set: every existing vertex the transaction touches.
  // Transaction-created vertices are resolved from the staged set below.
  std::vector<VertexId> write_set;
  auto note = [&](LabelId label, int64_t ext) {
    VertexId v = graph->FindByExtId(label, ext, snap);
    if (v != kInvalidVertex) write_set.push_back(v);
  };
  for (const WalRecord& r : tx.records) {
    switch (r.type) {
      case WalRecordType::kSetProperty:
        note(r.label, r.ext_id);
        break;
      case WalRecordType::kInsertEdge:
      case WalRecordType::kDeleteTombstone:
        note(r.src_label, r.src_ext);
        note(r.dst_label, r.dst_ext);
        break;
      default:
        break;
    }
  }

  std::unique_ptr<WriteTxn> txn = graph->BeginWrite(std::move(write_set));
  std::unordered_map<uint64_t, VertexId> created;
  auto resolve = [&](LabelId label, int64_t ext, VertexId* out) {
    auto it = created.find(IdentKey(label, ext));
    if (it != created.end()) {
      *out = it->second;
      return true;
    }
    VertexId v = graph->FindByExtId(label, ext, snap);
    if (v == kInvalidVertex) return false;
    *out = v;
    return true;
  };
  auto unknown = [&](LabelId label, int64_t ext) {
    return Status::Error("WAL replay: transaction " + std::to_string(tx.txid) +
                         " references unknown vertex (label " +
                         std::to_string(label) + ", ext " +
                         std::to_string(ext) + ")");
  };

  for (const WalRecord& r : tx.records) {
    switch (r.type) {
      case WalRecordType::kInsertVertex:
        created[IdentKey(r.label, r.ext_id)] =
            txn->CreateVertex(r.label, r.ext_id, {});
        break;
      case WalRecordType::kSetProperty: {
        VertexId v;
        if (!resolve(r.label, r.ext_id, &v)) return unknown(r.label, r.ext_id);
        txn->SetProperty(v, r.prop, r.value);
        break;
      }
      case WalRecordType::kInsertEdge:
      case WalRecordType::kDeleteTombstone: {
        VertexId src, dst;
        if (!resolve(r.src_label, r.src_ext, &src)) {
          return unknown(r.src_label, r.src_ext);
        }
        if (!resolve(r.dst_label, r.dst_ext, &dst)) {
          return unknown(r.dst_label, r.dst_ext);
        }
        Status s = r.type == WalRecordType::kInsertEdge
                       ? txn->AddEdge(r.edge_label, src, dst, r.stamp)
                       : txn->RemoveEdge(r.edge_label, src, dst);
        if (!s.ok()) {
          return Status::Error("WAL replay: transaction " +
                               std::to_string(tx.txid) + ": " + s.message());
        }
        break;
      }
      default:
        return Status::Error("WAL replay: unexpected record type");
    }
  }
  Version version = 0;
  GES_RETURN_IF_ERROR(txn->Commit(&version));
  return Status::OK();
}

}  // namespace

bool Graph::SnapshotExists(const std::string& dir, FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  return fs->Exists(dir + kSnapshotName);
}

Status Graph::Open(const std::string& dir, const DurabilityOptions& opts,
                   std::unique_ptr<Graph>* out, RecoveryInfo* info) {
  FileSystem* fs = opts.fs != nullptr ? opts.fs : FileSystem::Default();
  RecoveryInfo local;
  if (info == nullptr) info = &local;
  *info = RecoveryInfo{};

  // A leftover tmp file means a crash mid-checkpoint before the rename;
  // the previous snapshot is still the valid one.
  std::string tmp = dir + kSnapshotTmpName;
  if (fs->Exists(tmp)) GES_RETURN_IF_ERROR(fs->Remove(tmp));

  std::string snap_path = dir + kSnapshotName;
  if (!fs->Exists(snap_path)) {
    return Status::NotFound("no snapshot in " + dir);
  }
  auto graph = std::make_unique<Graph>();
  GES_RETURN_IF_ERROR(LoadGraphFile(snap_path, graph.get()));
  Version base = graph->CurrentVersion();
  info->snapshot_version = base;

  std::string wal_path = dir + kWalName;
  WalScanResult scan;
  GES_RETURN_IF_ERROR(ScanWal(wal_path, fs, &scan));
  for (const WalTxn& tx : scan.committed) {
    if (tx.commit_version <= base) {
      // Already folded into the snapshot (crash between a checkpoint's
      // rename and its WAL rotation); replaying would double-apply.
      ++info->skipped_txns;
      continue;
    }
    GES_RETURN_IF_ERROR(ReplayWalTxn(graph.get(), tx));
    ++info->replayed_txns;
  }
  info->dangling_records = scan.dangling_records;
  if (scan.torn_tail) {
    info->truncated_bytes = scan.file_bytes - scan.valid_bytes;
    GES_RETURN_IF_ERROR(fs->Truncate(wal_path, scan.valid_bytes));
  }

  graph->data_dir_ = dir;
  graph->dur_opts_ = opts;
  graph->last_checkpoint_version_ = base;
  GES_RETURN_IF_ERROR(WalWriter::Open(wal_path, opts.wal, fs, &graph->wal_));
  *out = std::move(graph);
  return Status::OK();
}

Status Graph::EnableDurability(const std::string& dir,
                               const DurabilityOptions& opts) {
  if (!finalized_) {
    return Status::InvalidArgument(
        "graph must be finalized before enabling durability");
  }
  if (wal_ != nullptr) {
    return Status::InvalidArgument("durability already enabled");
  }
  FileSystem* fs = opts.fs != nullptr ? opts.fs : FileSystem::Default();
  GES_RETURN_IF_ERROR(fs->CreateDir(dir));
  data_dir_ = dir;
  dur_opts_ = opts;
  {
    std::lock_guard<std::mutex> commit_lock(version_manager_.commit_mutex());
    GES_RETURN_IF_ERROR(WriteSnapshotAtomic(*this, fs, dir));
    last_checkpoint_version_ = CurrentVersion();
  }
  // Any log from a previous incarnation is superseded by the snapshot.
  GES_RETURN_IF_ERROR(fs->Remove(dir + kWalName));
  return WalWriter::Open(dir + kWalName, opts.wal, fs, &wal_);
}

Status Graph::CheckpointLocked() {
  FileSystem* fs =
      dur_opts_.fs != nullptr ? dur_opts_.fs : FileSystem::Default();
  // The commit mutex is held across snapshot + rotation: a transaction
  // committing after the snapshot version but before the rotation would
  // otherwise be dropped from the log without being in the snapshot.
  std::lock_guard<std::mutex> commit_lock(version_manager_.commit_mutex());
  // Register the checkpoint as a reader at the snapshot version so a
  // concurrent GC pass (the service reaper) can never prune a chain entry
  // the serializer is about to walk.
  SnapshotHandle ckpt_pin = version_manager_.AcquireSnapshot();
  GES_RETURN_IF_ERROR(WriteSnapshotAtomic(*this, fs, data_dir_));
  last_checkpoint_version_ = CurrentVersion();
  Status s = wal_->Rotate();
  if (!s.ok()) EnterReadOnly(s);
  return s;
}

Status Graph::Checkpoint() {
  if (wal_ == nullptr) return Status::Error("durability not enabled");
  if (read_only()) {
    return Status::Error("graph is read-only: " + read_only_reason());
  }
  std::lock_guard<std::mutex> ckpt_lock(checkpoint_mu_);
  return CheckpointLocked();
}

bool Graph::ShouldCheckpoint() const {
  return wal_ != nullptr && !read_only() &&
         wal_->SizeBytes() >= dur_opts_.checkpoint_wal_bytes;
}

Status Graph::MaybeCheckpoint() {
  if (!ShouldCheckpoint()) return Status::OK();
  std::unique_lock<std::mutex> ckpt_lock(checkpoint_mu_, std::try_to_lock);
  if (!ckpt_lock.owns_lock()) return Status::OK();  // someone else is on it
  if (!ShouldCheckpoint()) return Status::OK();
  return CheckpointLocked();
}

// --- replication (DESIGN.md §13) -----------------------------------------

void Graph::SetCommitListener(CommitListener listener) {
  // The commit mutex guards the listener slot: no commit can be mid-flight
  // while the feed is attached or detached.
  std::lock_guard<std::mutex> commit_lock(version_manager_.commit_mutex());
  commit_listener_ = std::move(listener);
  has_commit_listener_.store(static_cast<bool>(commit_listener_),
                             std::memory_order_release);
}

Status Graph::CollectReplicationBacklog(
    Version from, ReplicationBacklog* out,
    const std::function<void(Version)>& on_subscribed) {
  *out = ReplicationBacklog{};
  // checkpoint_mu_ freezes the snapshot file + WAL pair (a concurrent
  // checkpoint would rotate the WAL out from under the scan); the commit
  // mutex freezes the version counter so backlog + live feed partition the
  // commit history exactly at `live_from`.
  std::lock_guard<std::mutex> ckpt_lock(checkpoint_mu_);
  std::lock_guard<std::mutex> commit_lock(version_manager_.commit_mutex());
  Version current = CurrentVersion();
  if (wal_ != nullptr) {
    FileSystem* fs =
        dur_opts_.fs != nullptr ? dur_opts_.fs : FileSystem::Default();
    Version floor = from;
    if (from == 0 || from < last_checkpoint_version_) {
      // The WAL only reaches back to the last checkpoint, and a fresh
      // subscriber (from == 0) has no base graph at all — the bulk-loaded
      // data lives only in the snapshot. Bootstrap from the checkpoint
      // file first.
      GES_RETURN_IF_ERROR(fs->ReadFileToString(data_dir_ + kSnapshotName,
                                               &out->snapshot_bytes));
      out->need_snapshot = true;
      out->snapshot_version = last_checkpoint_version_;
      floor = last_checkpoint_version_;
    }
    WalScanResult scan;
    GES_RETURN_IF_ERROR(ScanWal(wal_->path(), fs, &scan));
    for (WalTxn& tx : scan.committed) {
      if (tx.commit_version > floor) out->txns.push_back(std::move(tx));
    }
  } else if (from == 0 || from < current) {
    // In-memory primary (bench/test topologies): serialize a fresh
    // snapshot at the current version; commits are excluded while the
    // commit mutex is held, exactly like a checkpoint.
    std::ostringstream os;
    GES_RETURN_IF_ERROR(SaveGraph(*this, os));
    out->need_snapshot = true;
    out->snapshot_bytes = os.str();
    out->snapshot_version = current;
  }
  out->live_from = current;
  if (on_subscribed) on_subscribed(current);
  return Status::OK();
}

Status Graph::ApplyReplicatedTxn(const WalTxn& tx) {
  Version expect = CurrentVersion() + 1;
  if (tx.commit_version != expect) {
    return Status::Error(
        "replication gap: next commit version is " + std::to_string(expect) +
        " but the shipped transaction carries " +
        std::to_string(tx.commit_version));
  }
  GES_RETURN_IF_ERROR(ReplayWalTxn(this, tx));
  if (CurrentVersion() != tx.commit_version) {
    return Status::Error("replicated transaction " + std::to_string(tx.txid) +
                         " committed at the wrong version");
  }
  return Status::OK();
}

}  // namespace ges
