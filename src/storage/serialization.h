// Binary graph snapshots: save a graph (schema + data, at the current
// version) to a single file and load it back.
//
// The format is a simple length-prefixed binary layout (magic + version
// header, catalog, per-label vertex/property sections, per-relation edge
// sections). Snapshots are self-describing: loading reconstructs the
// catalog and relations, so a loaded graph serves queries immediately.
// Overlay versions are folded into the snapshot (the save captures the
// graph as of Graph::CurrentVersion()).
//
// Four on-disk formats (DESIGN.md §9, §10, §16):
//  * "GESSNAP1" — every string value inline (length + bytes);
//  * "GESSNAP2" — the per-graph string dictionary is written once after
//    the magic, and string values carry a subtag: 0 = inline bytes,
//    1 = uint32 dictionary code;
//  * "GESSNAP3" — V2's encoding, but every section (header, dict, catalog,
//    relations, per-label vertices, per-relation edges) is framed as
//    [u64 len][u32 crc32c][bytes] and verified on load, and a header
//    section records the snapshot version so recovery can skip WAL
//    transactions the snapshot already contains. Corrupted or truncated
//    V3 snapshots fail with a Status naming the offending section.
//  * "GESSNAP4" — V3's framing, but edge sections are grouped by source
//    and delta+varint compressed (zigzag first id, non-negative gaps,
//    null-suppressed stamp runs), and a trailing manifest section lists
//    the relations that had a compressed CSR segment installed at save
//    time. Loading rebuilds those segments with a forced compaction pass
//    (internal vertex ids are not stable across a save/load cycle, so the
//    encoded blobs themselves cannot be reused).
// Saves default to V4; the loader accepts all four magics transparently
// (legacy footerless files keep working).
#ifndef GES_STORAGE_SERIALIZATION_H_
#define GES_STORAGE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "storage/graph.h"

namespace ges {

enum class SnapshotFormat : uint8_t {
  kV1 = 1,  // legacy: inline strings ("GESSNAP1")
  kV2 = 2,  // dictionary section + coded strings ("GESSNAP2")
  kV3 = 3,  // CRC32C-framed sections + snapshot version ("GESSNAP3")
  kV4 = 4,  // delta+varint edge sections + segment manifest ("GESSNAP4")
};

// Serializes `graph` (which must be finalized) into `out`.
Status SaveGraph(const Graph& graph, std::ostream& out,
                 SnapshotFormat format = SnapshotFormat::kV4);
Status SaveGraphFile(const Graph& graph, const std::string& path,
                     SnapshotFormat format = SnapshotFormat::kV4);

// Deserializes into `graph`, which must be freshly constructed (no schema,
// no data). The loaded graph is finalized and ready for reads and MV2PL
// writes.
Status LoadGraph(std::istream& in, Graph* graph);
Status LoadGraphFile(const std::string& path, Graph* graph);

}  // namespace ges

#endif  // GES_STORAGE_SERIALIZATION_H_
