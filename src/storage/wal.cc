#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crc32c.h"

namespace ges {

namespace {

constexpr char kWalMagic[8] = {'G', 'E', 'S', 'W', 'A', 'L', '0', '1'};
constexpr size_t kMagicSize = 8;
constexpr size_t kFrameHeaderSize = 8;  // u32 len + u32 crc
// Sanity bound on one record's payload; anything larger is treated as a
// torn/corrupt frame during the scan.
constexpr uint32_t kMaxPayload = 16u << 20;

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// --- little-endian buffer codec ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Cursor {
 public:
  explicit Cursor(const std::string& buf) : buf_(buf) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > buf_.size()) return false;
    *v = static_cast<uint8_t>(buf_[pos_++]);
    return true;
  }
  bool U16(uint16_t* v) {
    if (pos_ + 2 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<unsigned char>(buf_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (pos_ + n > buf_.size()) return false;
    s->assign(buf_, pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  size_t pos_ = 0;
};

// Value codec for SetProperty payloads: u8 type tag + type-specific body.
// Strings are always inline (the WAL outlives any dictionary state).
void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
    default:
      PutI64(out, v.AsInt());
      break;
  }
}

bool GetValue(Cursor* c, Value* v) {
  uint8_t tag;
  if (!c->U8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kBool: {
      int64_t i;
      if (!c->I64(&i)) return false;
      *v = Value::Bool(i != 0);
      return true;
    }
    case ValueType::kInt64: {
      int64_t i;
      if (!c->I64(&i)) return false;
      *v = Value::Int(i);
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      if (!c->U64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *v = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!c->Str(&s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    case ValueType::kDate: {
      int64_t i;
      if (!c->I64(&i)) return false;
      *v = Value::Date(i);
      return true;
    }
    case ValueType::kVertex: {
      int64_t i;
      if (!c->I64(&i)) return false;
      *v = Value::Vertex(static_cast<VertexId>(i));
      return true;
    }
  }
  return false;
}

// --- POSIX filesystem ---

class PosixWalFile : public WalFile {
 public:
  explicit PosixWalFile(int fd) : fd_(fd) {}
  ~PosixWalFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::Error(ErrnoMessage("wal append"));
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return Status::Error(ErrnoMessage("wal fsync"));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixFileSystem : public FileSystem {
 public:
  Status OpenForAppend(const std::string& path, std::unique_ptr<WalFile>* out,
                       uint64_t* size) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                    0644);
    if (fd < 0) return Status::Error(ErrnoMessage("open " + path));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::Error(ErrnoMessage("fstat " + path));
    }
    *size = static_cast<uint64_t>(st.st_size);
    out->reset(new PosixWalFile(fd));
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::Error(ErrnoMessage("open " + path));
    out->clear();
    char buf[1 << 16];
    for (;;) {
      ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::Error(ErrnoMessage("read " + path));
      }
      if (r == 0) break;
      out->append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::Error(ErrnoMessage("truncate " + path));
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Error(ErrnoMessage("rename " + from + " -> " + to));
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Error(ErrnoMessage("unlink " + path));
    }
    return Status::OK();
  }

  Status SyncFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::Error(ErrnoMessage("open " + path));
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::Error(ErrnoMessage("fsync " + path));
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Status::Error(ErrnoMessage("open dir " + dir));
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::Error(ErrnoMessage("fsync dir " + dir));
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Error(ErrnoMessage("mkdir " + dir));
    }
    return Status::OK();
  }
};

}  // namespace

FileSystem* FileSystem::Default() {
  static PosixFileSystem fs;
  return &fs;
}

// --- record codec ---

std::string EncodeWalRecord(const WalRecord& rec) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kBeginTx:
    case WalRecordType::kCommitTx:
      PutU64(&out, rec.txid);
      break;
    case WalRecordType::kInsertVertex:
      PutU16(&out, rec.label);
      PutI64(&out, rec.ext_id);
      break;
    case WalRecordType::kSetProperty:
      PutU16(&out, rec.label);
      PutI64(&out, rec.ext_id);
      PutU16(&out, rec.prop);
      PutValue(&out, rec.value);
      break;
    case WalRecordType::kInsertEdge:
    case WalRecordType::kDeleteTombstone:
      PutU16(&out, rec.edge_label);
      PutU16(&out, rec.src_label);
      PutI64(&out, rec.src_ext);
      PutU16(&out, rec.dst_label);
      PutI64(&out, rec.dst_ext);
      if (rec.type == WalRecordType::kInsertEdge) PutI64(&out, rec.stamp);
      break;
  }
  return out;
}

bool DecodeWalRecord(const std::string& payload, WalRecord* rec) {
  Cursor c(payload);
  uint8_t type;
  if (!c.U8(&type)) return false;
  *rec = WalRecord{};
  rec->type = static_cast<WalRecordType>(type);
  switch (rec->type) {
    case WalRecordType::kBeginTx:
    case WalRecordType::kCommitTx:
      if (!c.U64(&rec->txid)) return false;
      break;
    case WalRecordType::kInsertVertex:
      if (!c.U16(&rec->label) || !c.I64(&rec->ext_id)) return false;
      break;
    case WalRecordType::kSetProperty:
      if (!c.U16(&rec->label) || !c.I64(&rec->ext_id) || !c.U16(&rec->prop) ||
          !GetValue(&c, &rec->value)) {
        return false;
      }
      break;
    case WalRecordType::kInsertEdge:
    case WalRecordType::kDeleteTombstone:
      if (!c.U16(&rec->edge_label) || !c.U16(&rec->src_label) ||
          !c.I64(&rec->src_ext) || !c.U16(&rec->dst_label) ||
          !c.I64(&rec->dst_ext)) {
        return false;
      }
      if (rec->type == WalRecordType::kInsertEdge && !c.I64(&rec->stamp)) {
        return false;
      }
      break;
    default:
      return false;
  }
  return c.AtEnd();
}

void AppendWalFrame(std::string* out, const std::string& payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload));
  out->append(payload);
}

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

bool ParseFsyncPolicy(const std::string& s, FsyncPolicy* out) {
  if (s == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (s == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (s == "never") {
    *out = FsyncPolicy::kNever;
  } else {
    return false;
  }
  return true;
}

// --- writer ---

WalWriter::WalWriter(std::string path, const WalOptions& options,
                     FileSystem* fs)
    : path_(std::move(path)), options_(options), fs_(fs) {}

Status WalWriter::Open(const std::string& path, const WalOptions& options,
                       FileSystem* fs, std::unique_ptr<WalWriter>* out) {
  if (fs == nullptr) fs = FileSystem::Default();
  std::unique_ptr<WalWriter> w(new WalWriter(path, options, fs));
  uint64_t size = 0;
  GES_RETURN_IF_ERROR(fs->OpenForAppend(path, &w->file_, &size));
  if (size < kMagicSize) {
    // Empty or sub-header file: start fresh.
    if (size != 0) {
      GES_RETURN_IF_ERROR(fs->Truncate(path, 0));
      w->file_.reset();
      GES_RETURN_IF_ERROR(fs->OpenForAppend(path, &w->file_, &size));
    }
    GES_RETURN_IF_ERROR(w->file_->Append(kWalMagic, kMagicSize));
    GES_RETURN_IF_ERROR(w->file_->Sync());
    size = kMagicSize;
  }
  w->appended_lsn_.store(size, std::memory_order_release);
  w->durable_lsn_ = size;
  if (options.fsync_policy == FsyncPolicy::kInterval) {
    w->flusher_ = std::thread(&WalWriter::FlusherLoop, w.get());
  }
  *out = std::move(w);
  return Status::OK();
}

WalWriter::~WalWriter() {
  if (flusher_.joinable()) {
    stop_flusher_.store(true, std::memory_order_release);
    flusher_cv_.notify_all();
    flusher_.join();
  }
}

Status WalWriter::AppendTxn(const std::vector<WalRecord>& records,
                            uint64_t* lsn) {
  std::string buf;
  for (const WalRecord& rec : records) {
    AppendWalFrame(&buf, EncodeWalRecord(rec));
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  {
    std::lock_guard<std::mutex> elock(error_mu_);
    if (!io_error_.ok()) return io_error_;
  }
  Status s = file_->Append(buf.data(), buf.size());
  if (!s.ok()) {
    // The file may now hold a torn tail; latch the error so no further
    // append can write past it (recovery will truncate).
    std::lock_guard<std::mutex> elock(error_mu_);
    if (io_error_.ok()) io_error_ = s;
    return s;
  }
  uint64_t end =
      appended_lsn_.fetch_add(buf.size(), std::memory_order_acq_rel) +
      buf.size();
  *lsn = end;
  return Status::OK();
}

Status WalWriter::WaitDurable(uint64_t lsn) {
  {
    std::lock_guard<std::mutex> elock(error_mu_);
    if (!io_error_.ok()) return io_error_;
  }
  if (options_.fsync_policy != FsyncPolicy::kAlways) return Status::OK();

  std::unique_lock<std::mutex> lock(sync_mu_);
  for (;;) {
    if (durable_lsn_ >= lsn) return Status::OK();
    if (!sync_in_progress_) {
      // Become the group-commit leader: one fsync covers every transaction
      // appended so far, releasing all waiters at or below `target`.
      sync_in_progress_ = true;
      uint64_t target = appended_lsn_.load(std::memory_order_acquire);
      lock.unlock();
      Status s = file_->Sync();
      lock.lock();
      sync_in_progress_ = false;
      if (s.ok()) {
        if (target > durable_lsn_) durable_lsn_ = target;
      } else {
        std::lock_guard<std::mutex> elock(error_mu_);
        if (io_error_.ok()) io_error_ = s;
      }
      sync_cv_.notify_all();
      if (!s.ok()) return s;
    } else {
      sync_cv_.wait(lock);
      std::lock_guard<std::mutex> elock(error_mu_);
      if (!io_error_.ok()) return io_error_;
    }
  }
}

Status WalWriter::SyncNow() {
  std::lock_guard<std::mutex> lock(append_mu_);
  {
    std::lock_guard<std::mutex> elock(error_mu_);
    if (!io_error_.ok()) return io_error_;
  }
  uint64_t target = appended_lsn_.load(std::memory_order_acquire);
  Status s = file_->Sync();
  std::unique_lock<std::mutex> slock(sync_mu_);
  if (s.ok()) {
    if (target > durable_lsn_) durable_lsn_ = target;
  } else {
    std::lock_guard<std::mutex> elock(error_mu_);
    if (io_error_.ok()) io_error_ = s;
  }
  sync_cv_.notify_all();
  return s;
}

Status WalWriter::Rotate() {
  std::lock_guard<std::mutex> lock(append_mu_);
  std::unique_lock<std::mutex> slock(sync_mu_);
  // Wait out any in-flight group fsync of the old file.
  sync_cv_.wait(slock, [this] { return !sync_in_progress_; });
  {
    std::lock_guard<std::mutex> elock(error_mu_);
    if (!io_error_.ok()) return io_error_;
  }
  // Everything appended so far is covered by the snapshot that drove this
  // rotation (written + fsynced before Rotate is called), so pending
  // WaitDurable callers can be released before the log is emptied.
  durable_lsn_ = appended_lsn_.load(std::memory_order_acquire);
  sync_cv_.notify_all();

  file_.reset();
  Status s = fs_->Truncate(path_, 0);
  uint64_t size = 0;
  if (s.ok()) s = fs_->OpenForAppend(path_, &file_, &size);
  if (s.ok()) s = file_->Append(kWalMagic, kMagicSize);
  if (s.ok()) s = file_->Sync();
  if (!s.ok()) {
    std::lock_guard<std::mutex> elock(error_mu_);
    if (io_error_.ok()) io_error_ = s;
    return s;
  }
  appended_lsn_.store(kMagicSize, std::memory_order_release);
  durable_lsn_ = kMagicSize;
  return Status::OK();
}

void WalWriter::FlusherLoop() {
  std::unique_lock<std::mutex> lock(flusher_mu_);
  while (!stop_flusher_.load(std::memory_order_acquire)) {
    flusher_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.fsync_interval_ms));
    if (stop_flusher_.load(std::memory_order_acquire)) break;
    lock.unlock();
    {
      std::lock_guard<std::mutex> alock(append_mu_);
      bool failed;
      {
        std::lock_guard<std::mutex> elock(error_mu_);
        failed = !io_error_.ok();
      }
      if (!failed) {
        uint64_t target = appended_lsn_.load(std::memory_order_acquire);
        Status s = file_->Sync();
        std::lock_guard<std::mutex> slock(sync_mu_);
        if (s.ok()) {
          if (target > durable_lsn_) durable_lsn_ = target;
        } else {
          std::lock_guard<std::mutex> elock(error_mu_);
          if (io_error_.ok()) io_error_ = s;
        }
      }
    }
    lock.lock();
  }
}

// --- scan ---

Status ScanWal(const std::string& path, FileSystem* fs, WalScanResult* out) {
  if (fs == nullptr) fs = FileSystem::Default();
  *out = WalScanResult{};
  if (!fs->Exists(path)) return Status::OK();
  std::string data;
  GES_RETURN_IF_ERROR(fs->ReadFileToString(path, &data));
  out->file_bytes = data.size();
  if (data.size() < kMagicSize) {
    // Sub-header file (crash during creation): the whole thing is a torn
    // tail.
    out->valid_bytes = 0;
    out->torn_tail = !data.empty();
    return Status::OK();
  }
  if (std::memcmp(data.data(), kWalMagic, kMagicSize) != 0) {
    return Status::InvalidArgument("not a GES WAL (bad magic): " + path);
  }

  size_t pos = kMagicSize;
  WalTxn open_txn;
  bool in_txn = false;
  for (;;) {
    if (pos + kFrameHeaderSize > data.size()) break;
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos + i]))
             << (8 * i);
      crc |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data[pos + 4 + i]))
             << (8 * i);
    }
    if (len > kMaxPayload) break;
    if (pos + kFrameHeaderSize + len > data.size()) break;
    std::string payload = data.substr(pos + kFrameHeaderSize, len);
    if (Crc32c(payload) != crc) break;
    WalRecord rec;
    if (!DecodeWalRecord(payload, &rec)) break;
    pos += kFrameHeaderSize + len;

    switch (rec.type) {
      case WalRecordType::kBeginTx:
        // A Begin while a transaction is open means the previous one never
        // committed (possible only as a crash artifact); drop it.
        open_txn = WalTxn{};
        open_txn.txid = rec.txid;
        in_txn = true;
        break;
      case WalRecordType::kCommitTx:
        if (in_txn && rec.txid == open_txn.txid) {
          open_txn.commit_version = rec.txid;
          open_txn.committed = true;
          out->committed.push_back(std::move(open_txn));
        }
        open_txn = WalTxn{};
        in_txn = false;
        break;
      default:
        if (in_txn) open_txn.records.push_back(std::move(rec));
        break;
    }
  }
  out->valid_bytes = pos;
  out->torn_tail = pos < data.size();
  if (in_txn) out->dangling_records = open_txn.records.size();
  return Status::OK();
}

}  // namespace ges
