// Fault-injection FileSystem for durability tests (DESIGN.md §10).
//
// FaultFS wraps a base FileSystem and counts every file operation it
// mediates (appends, syncs, truncates, renames, removes, dir syncs). A test
// arms a one-shot fault that fires at the Nth subsequent operation:
//
//   FaultFS fs;
//   fs.Arm(3, FaultFS::FaultKind::kFail);        // 3rd op returns EIO-like
//   fs.Arm(1, FaultFS::FaultKind::kShortWrite);  // next append writes half
//   fs.Arm(2, FaultFS::FaultKind::kDelay, 50);   // 2nd op sleeps 50 ms
//
// kShortWrite only applies to appends (half the bytes land before the
// error, producing a torn tail exactly like a crash mid-write); on other
// operations it degrades to kFail. After firing, the fault disarms and
// subsequent operations pass through.
#ifndef GES_STORAGE_FAULT_FS_H_
#define GES_STORAGE_FAULT_FS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "storage/wal.h"

namespace ges {

class FaultFS : public FileSystem {
 public:
  enum class FaultKind : uint8_t { kFail, kShortWrite, kDelay };

  explicit FaultFS(FileSystem* base = nullptr)
      : base_(base != nullptr ? base : FileSystem::Default()) {}

  // Arms a one-shot fault at the `nth` next counted operation (1 = the very
  // next one). Replaces any previously armed fault.
  void Arm(int nth, FaultKind kind, int delay_ms = 0);
  void Disarm();

  // Operations counted since construction (for calibrating Arm offsets).
  uint64_t ops_seen() const { return ops_.load(std::memory_order_acquire); }
  // Faults that have actually fired.
  uint64_t faults_fired() const {
    return fired_.load(std::memory_order_acquire);
  }

  Status OpenForAppend(const std::string& path, std::unique_ptr<WalFile>* out,
                       uint64_t* size) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;

  // Internal (used by the wrapped file handle): counts one operation and
  // returns true with the fault kind if the armed fault fires now.
  // kShortWrite is reported so append paths can write a prefix first.
  bool NextOp(FaultKind* kind);

 private:
  FileSystem* const base_;
  std::mutex mu_;
  bool armed_ = false;
  int countdown_ = 0;
  FaultKind kind_ = FaultKind::kFail;
  int delay_ms_ = 0;
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> fired_{0};
};

}  // namespace ges

#endif  // GES_STORAGE_FAULT_FS_H_
