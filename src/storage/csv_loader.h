// CSV bulk import/export for LPG graphs.
//
// The official LDBC SNB Datagen (and most graph tooling) exchanges graphs
// as per-label CSV files. This module loads such files into a Graph —
// vertex files carry an `id` column plus properties, edge files carry
// `src|dst[|stamp]` — and can export a Graph back to the same layout, so a
// round trip reproduces the graph exactly.
//
// Format (pipe-separated by default, first line is the header):
//
//   persons.csv:   id|firstName|lastName|birthday
//   knows.csv:     Person.id|Person.id|creationDate
//
// Vertex property types are taken from the catalog (the schema must be
// declared before loading). External ids are arbitrary int64 keys; edge
// files reference them.
#ifndef GES_STORAGE_CSV_LOADER_H_
#define GES_STORAGE_CSV_LOADER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/graph.h"

namespace ges {

struct CsvOptions {
  char delimiter = '|';
};

// --- import (bulk phase; call before Graph::FinalizeBulk) ---

// Loads vertices of `label` from `in`. The header names properties declared
// on `label` in the catalog; a column named "id" provides the external id
// (required, first column by convention but matched by name). Returns the
// number of vertices loaded via `*count`.
Status LoadVerticesCsv(std::istream& in, LabelId label, Graph* graph,
                       size_t* count, const CsvOptions& options = {});

// Loads edges of `edge_label` from `in`: two external-id columns (source of
// `src_label`, destination of `dst_label`) and an optional third stamp
// column. The relation must be registered.
Status LoadEdgesCsv(std::istream& in, LabelId edge_label, LabelId src_label,
                    LabelId dst_label, Graph* graph, size_t* count,
                    const CsvOptions& options = {});

// Convenience: file-path overloads.
Status LoadVerticesCsvFile(const std::string& path, LabelId label,
                           Graph* graph, size_t* count,
                           const CsvOptions& options = {});
Status LoadEdgesCsvFile(const std::string& path, LabelId edge_label,
                        LabelId src_label, LabelId dst_label, Graph* graph,
                        size_t* count, const CsvOptions& options = {});

// --- export (any finalized graph, at the current version) ---

// Writes all vertices of `label` with their declared properties.
Status ExportVerticesCsv(const Graph& graph, LabelId label, std::ostream& out,
                         const CsvOptions& options = {});

// Writes all edges of the OUT table (src_label)-[edge_label]->(dst_label)
// as external-id pairs (+ stamp when the relation has one).
Status ExportEdgesCsv(const Graph& graph, LabelId edge_label,
                      LabelId src_label, LabelId dst_label, std::ostream& out,
                      const CsvOptions& options = {});

// --- helpers shared with tests ---

// Splits one CSV line on `delimiter` (no quoting; LDBC datagen does not
// quote either).
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

// Parses `text` into a Value of `type`. Dates accept raw int64 epoch
// milliseconds or "YYYY-MM-DD".
Status ParseCsvValue(const std::string& text, ValueType type, Value* out);

}  // namespace ges

#endif  // GES_STORAGE_CSV_LOADER_H_
