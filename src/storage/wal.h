// Write-ahead log: the durability spine of the storage layer (DESIGN.md
// §10).
//
// On-disk layout: an 8-byte magic ("GESWAL01") followed by CRC32C-framed,
// length-prefixed records:
//
//   [u32 payload_len][u32 crc32c(payload)][payload bytes]
//   payload = [u8 WalRecordType][record fields, little-endian]
//
// A transaction is the consecutive run BeginTx .. CommitTx, appended as a
// single write under the commit mutex (so log order == commit order and
// transactions never interleave). Vertices are identified by
// (label, external id) — runtime VertexIds are not stable across
// snapshot save/load. Recovery applies only transactions whose CommitTx
// frame is intact and whose commit version is newer than the snapshot it
// starts from; a torn tail (crash mid-append) is detected by the length /
// CRC framing and truncated rather than aborting recovery.
//
// All file operations go through the FileSystem / WalFile interface so the
// fault-injection harness (fault_fs.h) can fail, short-write, or delay the
// Nth operation.
#ifndef GES_STORAGE_WAL_H_
#define GES_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

namespace ges {

// --- pluggable file operations -------------------------------------------

// An append-only file handle (the open WAL segment).
class WalFile {
 public:
  virtual ~WalFile() = default;
  // Appends all of `data`; partial writes are retried internally, so a
  // returned error may still have written a prefix (a torn tail).
  virtual Status Append(const void* data, size_t n) = 0;
  // Flushes written data to stable storage (fsync/fdatasync).
  virtual Status Sync() = 0;
};

// File operations the durability layer needs. The default implementation is
// plain POSIX; FaultFS (fault_fs.h) wraps one to inject failures.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Opens `path` for appending, creating it if missing; reports the current
  // size in `*size` so the writer can resume mid-file.
  virtual Status OpenForAppend(const std::string& path,
                               std::unique_ptr<WalFile>* out,
                               uint64_t* size) = 0;
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  virtual Status SyncFile(const std::string& path) = 0;
  // Fsyncs the directory entry so renames/creates survive a crash.
  virtual Status SyncDir(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Status CreateDir(const std::string& dir) = 0;

  // The process-wide POSIX filesystem.
  static FileSystem* Default();
};

// --- log records ----------------------------------------------------------

enum class WalRecordType : uint8_t {
  kBeginTx = 1,
  kInsertVertex = 2,
  kInsertEdge = 3,
  kDeleteTombstone = 4,  // edge removal (tombstone in the overlay)
  kSetProperty = 5,
  kCommitTx = 6,
};

// One log record. Fields are a union-by-convention keyed on `type`:
//  * kBeginTx / kCommitTx: txid (== commit version).
//  * kInsertVertex: (label, ext_id).
//  * kSetProperty: (label, ext_id) subject + prop + value.
//  * kInsertEdge / kDeleteTombstone: edge_label + (src_label, src_ext) +
//    (dst_label, dst_ext) + stamp (insert only).
struct WalRecord {
  WalRecordType type = WalRecordType::kBeginTx;
  uint64_t txid = 0;

  LabelId label = kInvalidLabel;
  int64_t ext_id = 0;

  LabelId edge_label = kInvalidLabel;
  LabelId src_label = kInvalidLabel;
  int64_t src_ext = 0;
  LabelId dst_label = kInvalidLabel;
  int64_t dst_ext = 0;
  int64_t stamp = 0;

  PropertyId prop = kInvalidProperty;
  Value value;
};

// Record payload codec (no frame). Decode returns false on malformed input.
std::string EncodeWalRecord(const WalRecord& rec);
bool DecodeWalRecord(const std::string& payload, WalRecord* rec);

// Wraps a payload in the [len][crc][payload] frame.
void AppendWalFrame(std::string* out, const std::string& payload);

// --- writer ---------------------------------------------------------------

enum class FsyncPolicy : uint8_t {
  kAlways = 0,    // group commit: ack only after fsync covers the txn
  kInterval = 1,  // background flusher every interval_ms; bounded loss
  kNever = 2,     // OS decides; no loss bound (tests/bulk loads)
};

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  int fsync_interval_ms = 10;
};

const char* FsyncPolicyName(FsyncPolicy p);
// Parses "always" / "interval" / "never"; returns false on anything else.
bool ParseFsyncPolicy(const std::string& s, FsyncPolicy* out);

// Appends framed transactions to the log and makes them durable per the
// fsync policy. AppendTxn callers are already serialized by the storage
// commit mutex; WaitDurable and Rotate are thread-safe against each other
// and against the background flusher.
class WalWriter {
 public:
  // Opens (creating or resuming) the log at `path`. Recovery is expected to
  // have truncated any torn tail first; a file shorter than the magic is
  // re-created.
  static Status Open(const std::string& path, const WalOptions& options,
                     FileSystem* fs, std::unique_ptr<WalWriter>* out);
  ~WalWriter();

  // Appends every frame of one transaction as a single write and returns
  // the log sequence number (byte offset after the transaction) to pass to
  // WaitDurable. After any append error the log is latched failed and all
  // further operations return that error.
  Status AppendTxn(const std::vector<WalRecord>& records, uint64_t* lsn);

  // Blocks until bytes up to `lsn` are durable under FsyncPolicy::kAlways
  // (the first waiter issues one fsync covering every pending committer);
  // returns immediately under kInterval / kNever.
  Status WaitDurable(uint64_t lsn);

  // Forces an fsync regardless of policy (used by shutdown paths).
  Status SyncNow();

  // Empties the log back to a bare header after a successful checkpoint.
  // Pending WaitDurable callers are released first: the snapshot that
  // triggered the rotation already made their transactions durable.
  Status Rotate();

  // Current log size in bytes (header included).
  uint64_t SizeBytes() const {
    return appended_lsn_.load(std::memory_order_acquire);
  }

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, const WalOptions& options, FileSystem* fs);

  Status WriteHeaderLocked();
  void FlusherLoop();

  const std::string path_;
  const WalOptions options_;
  FileSystem* const fs_;

  std::mutex append_mu_;  // guards file_ appends and rotation
  std::unique_ptr<WalFile> file_;
  std::atomic<uint64_t> appended_lsn_{0};

  // Group-commit state: leader/followers coordinate through sync_mu_.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  bool sync_in_progress_ = false;
  uint64_t durable_lsn_ = 0;

  // First I/O error, latched; all subsequent operations fail fast with it.
  std::mutex error_mu_;
  Status io_error_;

  std::thread flusher_;
  std::atomic<bool> stop_flusher_{false};
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
};

// --- recovery-side scan ---------------------------------------------------

// One committed (or trailing uncommitted) transaction reassembled from the
// log.
struct WalTxn {
  uint64_t txid = 0;
  uint64_t commit_version = 0;  // 0 until the CommitTx frame is seen
  bool committed = false;
  std::vector<WalRecord> records;  // body records, Begin/Commit stripped
};

struct WalScanResult {
  std::vector<WalTxn> committed;  // in log (== commit) order
  // Bytes of the valid prefix: magic + every fully-framed record. Recovery
  // truncates the file to this offset.
  uint64_t valid_bytes = 0;
  uint64_t file_bytes = 0;
  bool torn_tail = false;          // valid_bytes < file_bytes
  uint64_t dangling_records = 0;   // records of a trailing uncommitted txn
};

// Parses the log at `path`, stopping at the first bad frame (bad length,
// bad CRC, or truncation). A missing file yields an empty result. Returns
// an error only for a wrong magic or unreadable file — torn tails and
// unfinished transactions are reported in the result, not as errors.
Status ScanWal(const std::string& path, FileSystem* fs, WalScanResult* out);

}  // namespace ges

#endif  // GES_STORAGE_WAL_H_
