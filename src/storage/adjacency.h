// Adjacency-array graph topology storage (Figure 9 of the paper).
//
// The whole topology is stored as an array-of-arrays: for every relation key
// (srcLabel, edgeLabel, dstLabel, direction) there is one AdjacencyTable
// whose `adjMeta` array (indexed by the global VertexId) records the RAM
// address and length of that vertex's `adjArray`. Bulk load packs all
// adjArrays into one contiguous buffer; incremental inserts reallocate an
// individual vertex's array with doubling capacity; deletes tombstone the
// slot ("marking for deletion").
//
// Each relation may carry at most one int64 edge property ("stamp", e.g.
// creationDate of a KNOWS edge) stored side by side with the neighbor ids.
// This covers every edge property the LDBC SNB interactive workload touches.
#ifndef GES_STORAGE_ADJACENCY_H_
#define GES_STORAGE_ADJACENCY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/types.h"

namespace ges {

// Resolved adjacency table id: index into GraphStore's table list. Plans
// resolve (srcLabel, edgeLabel, dstLabel, direction) to a RelationId once at
// build time, so the per-tuple lookup cost the paper calls "minor"
// disappears entirely from the hot path.
using RelationId = uint32_t;
inline constexpr RelationId kInvalidRelation = 0xffffffffu;

// A non-owning view of one vertex's neighbors (and optional edge stamps).
// `ids[i]` may be kInvalidVertex for tombstoned edges.
//
// Sorted invariant: the *live* ids (skipping tombstones) are in
// nondecreasing order. Finalize sorts each vertex's packed array,
// InsertEdge inserts at the sorted position, and overlay publication sorts
// copy-on-write entries, so a span with `tombstones == 0` is a plain sorted
// array and can be galloped/binary-searched directly (see
// storage/intersect.h). Spans with tombstones must be compacted first.
struct AdjSpan {
  const VertexId* ids = nullptr;
  const int64_t* stamps = nullptr;  // nullptr if the relation has no stamp
  uint32_t size = 0;
  uint32_t tombstones = 0;  // kInvalidVertex slots hiding inside [0, size)

  bool empty() const { return size == 0; }
  bool sorted_clean() const { return tombstones == 0; }
};

// Caller-owned decode buffers for reads that may hit a compressed segment
// (DESIGN.md §16). A span decoded into a scratch is valid until the scratch
// is reused for another decode or destroyed, so a call site that holds two
// spans live at once needs two scratches. Reusable across iterations of a
// loop — the vectors keep their capacity.
struct AdjScratch {
  std::vector<VertexId> ids;
  std::vector<int64_t> stamps;
};

// Hash key of an adjacency table, per the paper's storage design.
struct RelationKey {
  LabelId src_label;
  LabelId edge_label;
  LabelId dst_label;
  Direction direction;

  bool operator==(const RelationKey& o) const {
    return src_label == o.src_label && edge_label == o.edge_label &&
           dst_label == o.dst_label && direction == o.direction;
  }
};

struct RelationKeyHash {
  size_t operator()(const RelationKey& k) const {
    uint64_t h = (uint64_t{k.src_label} << 40) ^ (uint64_t{k.edge_label} << 24) ^
                 (uint64_t{k.dst_label} << 8) ^ uint64_t(k.direction);
    h *= 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

// One adjacency table: adjMeta (per-vertex pointer/length) plus the packed
// neighbor buffer. Not thread-safe for writes; the version manager
// serializes writers per vertex and publishes copy-on-write snapshots for
// readers of concurrently-updated vertices.
class AdjacencyTable {
 public:
  AdjacencyTable(RelationKey key, bool has_stamp)
      : key_(key), has_stamp_(has_stamp) {}

  const RelationKey& key() const { return key_; }
  bool has_stamp() const { return has_stamp_; }
  size_t num_edges() const {
    return num_edges_.load(std::memory_order_relaxed);
  }
  // Vertices with at least one live out-slot; with num_edges() this gives
  // the average degree the optimizer's intersection cost model uses.
  size_t num_sources() const {
    return num_sources_.load(std::memory_order_relaxed);
  }

  // --- bulk load (two-phase: stage edges, then Finalize packs them) ---
  void StageEdge(VertexId src, VertexId dst, int64_t stamp = 0);
  // Packs staged edges into the contiguous buffer. `num_vertices` sizes the
  // adjMeta array (global id space).
  void Finalize(size_t num_vertices);
  bool finalized() const { return finalized_; }

  // --- reads ---
  AdjSpan Neighbors(VertexId v) const {
    if (v >= meta_.size()) return AdjSpan{};
    const Meta& m = meta_[v];
    return AdjSpan{m.ids, has_stamp_ ? m.stamps : nullptr, m.size,
                   m.tombstones};
  }
  uint32_t Degree(VertexId v) const {
    return v < meta_.size() ? meta_[v].size - meta_[v].tombstones : 0;
  }

  // --- updates (called with the vertex's write lock held) ---
  // Inserts an edge at its sorted position (compacting any tombstones
  // first); grows the vertex's array (doubling) when full.
  void InsertEdge(VertexId src, VertexId dst, int64_t stamp = 0);
  // Tombstones the first live (src -> dst) edge. Returns false if absent.
  bool RemoveEdge(VertexId src, VertexId dst);

  // Ensures adjMeta covers vertices [0, n).
  void EnsureVertexCapacity(size_t n);

  // Everything the table holds, staged buffers and growth slack included
  // (the governor watermark and the compaction trigger must see capacity,
  // not just live size — DESIGN.md §16).
  size_t MemoryBytes() const;

  // Bytes held but not serving live edges: grow-on-insert slack (capacity
  // beyond size), tombstoned slots, and storage abandoned by doubling
  // reallocation inside the update arena. This is the compaction trigger's
  // numerator.
  size_t FragmentationBytes() const;
  size_t tombstone_slots() const { return tombstone_slots_; }

  // --- compaction handoff (DESIGN.md §16) ---
  // Detaches all neighbor storage (packed buffers, adjMeta, update arena)
  // into an opaque keepalive and leaves the table empty-but-finalized.
  // Pinned readers may still hold AdjSpans into the detached storage, so
  // the caller parks the keepalive on the graph's retire list until the GC
  // watermark passes the swap version. Called with the commit mutex held.
  std::shared_ptr<const void> DetachStorage();
  // Restores the edge totals after a detach so AvgDegree and the optimizer
  // cost model keep working while a compressed segment serves the reads.
  void RestoreCompacted(size_t num_edges, size_t num_sources);

 private:
  struct Meta {
    VertexId* ids = nullptr;
    int64_t* stamps = nullptr;
    uint32_t size = 0;       // slots in use (including tombstones)
    uint32_t capacity = 0;   // allocated slots
    uint32_t tombstones = 0;
  };

  void Grow(Meta& m, uint32_t min_capacity);
  size_t SlotBytes() const {
    return sizeof(VertexId) + (has_stamp_ ? sizeof(int64_t) : 0);
  }

  RelationKey key_;
  bool has_stamp_;
  bool finalized_ = false;
  // Relaxed atomics: the compaction swap rewrites both under the commit
  // mutex while the optimizer's cost model reads them lock-free mid-plan;
  // a slightly stale degree estimate is fine, a torn read is not.
  std::atomic<size_t> num_edges_{0};
  std::atomic<size_t> num_sources_{0};

  // Fragmentation gauges (O(1), maintained by the update path):
  //   tombstone_slots_  live array slots holding kInvalidVertex
  //   slack_slots_      capacity - size summed over all vertices
  //   dead_slots_       slots orphaned in the arena / packed buffers when
  //                     Grow moved a vertex's array (the old storage is
  //                     never reused)
  size_t tombstone_slots_ = 0;
  size_t slack_slots_ = 0;
  size_t dead_slots_ = 0;

  // Staged (bulk) edges before Finalize.
  std::vector<VertexId> staged_src_;
  std::vector<VertexId> staged_dst_;
  std::vector<int64_t> staged_stamp_;

  // Packed storage after Finalize. meta_[v].ids points either into these
  // buffers or into arena-allocated per-vertex arrays after growth.
  // update_arena_ is heap-held so DetachStorage can hand the whole pool to
  // the retire list while readers drain.
  std::vector<VertexId> packed_ids_;
  std::vector<int64_t> packed_stamps_;
  std::vector<Meta> meta_;
  std::unique_ptr<Arena> update_arena_;  // pool backing post-load growth
};

}  // namespace ges

#endif  // GES_STORAGE_ADJACENCY_H_
