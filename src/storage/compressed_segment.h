// Immutable delta/varint-compressed CSR adjacency segments (DESIGN.md §16).
//
// A CompressedSegment is the output of one background compaction pass over a
// relation: base adjacency arrays and pruned MVCC overlays merged at a cut
// version into a single immutable columnar layout, following the
// delta-compressed neighbor-list design of Gupta et al. ("Columnar Storage
// and List-based Processing for Graph DBMSs"):
//
//   blob_     per-vertex byte region holding varint(first id) followed by
//             varint(id[i] - id[i-1]) — neighbor lists are sorted (the
//             storage invariant of storage/intersect.h), so deltas are
//             non-negative and parallel edges encode as zero bytes
//   offsets_  n+1 u64 byte offsets into blob_ (vertex v owns
//             [offsets_[v], offsets_[v+1]))
//   degrees_  u32 per vertex, so DegreeOf() is O(1) without decoding
//
// Edge stamps (the one optional int64 edge property) are null-suppressed
// columnar: each non-empty vertex region carries a 1-byte stamp mode after
// the id stream — 0 means every stamp is zero and nothing is stored (the
// common case for stamp-free datasets loaded through a has_stamp relation),
// 1 means zigzag-varint(first stamp) followed by zigzag-varint deltas.
//
// Decoding materializes into caller-owned AdjScratch buffers; the returned
// AdjSpan is sorted_clean() (compaction drops tombstones), so the WCOJ
// galloping path consumes it unchanged.
#ifndef GES_STORAGE_COMPRESSED_SEGMENT_H_
#define GES_STORAGE_COMPRESSED_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "storage/adjacency.h"

namespace ges {

class CompressedSegment {
 public:
  // Streams vertices 0..n-1 in order; each Add appends the next vertex's
  // live sorted neighbor list (tombstones already skipped by the caller).
  class Builder {
   public:
    explicit Builder(bool has_stamp) : has_stamp_(has_stamp) {}

    // `stamps` may be nullptr when the relation has no stamp (or n == 0).
    void Add(const VertexId* ids, const int64_t* stamps, uint32_t n);

    // Finishes the segment built at `cut`. The builder is consumed.
    std::shared_ptr<const CompressedSegment> Build(Version cut);

   private:
    bool has_stamp_;
    std::vector<uint8_t> blob_;
    std::vector<uint64_t> offsets_{0};
    std::vector<uint32_t> degrees_;
    size_t num_edges_ = 0;
    size_t num_sources_ = 0;
  };

  bool has_stamp() const { return has_stamp_; }
  // The snapshot version the segment's contents were merged at.
  Version cut_version() const { return cut_; }

  // Vertices covered by this segment: [0, NumVertices()). Vertices created
  // after the build are resolved purely through overlays.
  size_t NumVertices() const { return degrees_.size(); }
  bool Covers(VertexId v) const { return v < degrees_.size(); }

  uint32_t DegreeOf(VertexId v) const {
    return v < degrees_.size() ? degrees_[v] : 0;
  }

  size_t num_edges() const { return num_edges_; }
  size_t num_sources() const { return num_sources_; }

  // Decodes vertex `v`'s neighbor list into `scratch` and returns a span
  // over it (sorted_clean, stamps non-null iff has_stamp()). The span is
  // valid until `scratch` is reused or destroyed.
  AdjSpan Decode(VertexId v, AdjScratch* scratch) const;

  size_t MemoryBytes() const {
    return sizeof(*this) + blob_.capacity() +
           offsets_.capacity() * sizeof(uint64_t) +
           degrees_.capacity() * sizeof(uint32_t);
  }

  // Raw encoded stream (serialization: GESSNAP4 manifests record segment
  // shape; the bytes themselves are rebuilt on load because VertexIds are
  // not stable across save/load).
  size_t EncodedBytes() const { return blob_.size(); }

 private:
  friend class Builder;
  CompressedSegment() = default;

  bool has_stamp_ = false;
  Version cut_ = 0;
  std::vector<uint8_t> blob_;
  std::vector<uint64_t> offsets_;  // n+1 entries
  std::vector<uint32_t> degrees_;  // n entries
  size_t num_edges_ = 0;
  size_t num_sources_ = 0;
};

}  // namespace ges

#endif  // GES_STORAGE_COMPRESSED_SEGMENT_H_
