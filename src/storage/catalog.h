// Schema catalog: vertex/edge label names, property keys and their types.
#ifndef GES_STORAGE_CATALOG_H_
#define GES_STORAGE_CATALOG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace ges {

struct GraphStats;

// The catalog owns the mapping between human-readable schema names and the
// dense ids used everywhere else. Properties are declared per vertex label;
// the same property name may exist on several labels (e.g. creationDate).
class Catalog {
 public:
  Catalog() = default;

  // --- registration (load/DDL time, single-threaded) ---
  LabelId AddVertexLabel(const std::string& name);
  LabelId AddEdgeLabel(const std::string& name);
  // Declares property `name` of `type` on vertex label `label`. Returns the
  // property id (global per name; the (label, property) pair gets a dense
  // column slot in the property store).
  PropertyId AddProperty(LabelId label, const std::string& name,
                         ValueType type);

  // --- lookup ---
  LabelId VertexLabel(const std::string& name) const;
  LabelId EdgeLabel(const std::string& name) const;
  PropertyId Property(const std::string& name) const;

  const std::string& VertexLabelName(LabelId id) const {
    return vertex_labels_[id];
  }
  const std::string& EdgeLabelName(LabelId id) const {
    return edge_labels_[id];
  }
  const std::string& PropertyName(PropertyId id) const {
    return property_names_[id];
  }

  size_t num_vertex_labels() const { return vertex_labels_.size(); }
  size_t num_edge_labels() const { return edge_labels_.size(); }
  size_t num_properties() const { return property_names_.size(); }

  // Dense column slot of (label, property), or -1 if not declared there.
  int PropertySlot(LabelId label, PropertyId prop) const;
  ValueType PropertyType(LabelId label, PropertyId prop) const;
  // All (slot -> property id, type) pairs declared on `label`.
  const std::vector<std::pair<PropertyId, ValueType>>& LabelProperties(
      LabelId label) const {
    return label_properties_[label];
  }

  // --- statistics (DESIGN.md §14) ---
  // Publishes a new immutable statistics snapshot (built by
  // Graph::RebuildStats) and bumps the stats epoch. Thread-safe against
  // concurrent stats() readers.
  void InstallStats(std::shared_ptr<const GraphStats> stats);
  // The current snapshot, or nullptr before the first rebuild.
  std::shared_ptr<const GraphStats> stats() const;
  // Monotonic epoch, bumped on every InstallStats and on schema
  // registration. Plan-cache entries record the epoch they were costed at
  // and are invalidated when it moves.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }
  // Storage-layer change notification: a compaction swap rewrites the
  // physical layout (and the degree distributions the histograms were
  // sampled from) without a commit, so cached plans costed against the
  // pre-swap stats must stop validating. Bumps the epoch.
  void NoteStorageChanged() { BumpStatsEpoch(); }

 private:
  void BumpStatsEpoch() {
    stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::vector<std::string> vertex_labels_;
  std::vector<std::string> edge_labels_;
  std::vector<std::string> property_names_;
  std::unordered_map<std::string, LabelId> vertex_label_ids_;
  std::unordered_map<std::string, LabelId> edge_label_ids_;
  std::unordered_map<std::string, PropertyId> property_ids_;
  // label -> ordered list of (property, type); index is the column slot.
  std::vector<std::vector<std::pair<PropertyId, ValueType>>> label_properties_;

  mutable std::mutex stats_mu_;
  std::shared_ptr<const GraphStats> stats_;
  std::atomic<uint64_t> stats_epoch_{0};
};

}  // namespace ges

#endif  // GES_STORAGE_CATALOG_H_
