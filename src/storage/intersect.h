// Sorted-adjacency intersection primitives: galloping (exponential) search
// and the leapfrog-style multiway membership prober behind the
// worst-case-optimal IntersectExpand operator (see DESIGN.md §12).
//
// All functions rely on the storage invariant established by
// AdjacencyTable::Finalize / InsertEdge and overlay publication: the live
// ids of a span are in nondecreasing order. Spans that carry tombstones
// (in-place kInvalidVertex slots) are compacted into caller-provided
// scratch before galloping; the common tombstone-free case is zero-copy.
#ifndef GES_STORAGE_INTERSECT_H_
#define GES_STORAGE_INTERSECT_H_

#include <cstdint>
#include <vector>

#include "storage/adjacency.h"

namespace ges {

// Counters surfaced through EXPLAIN ANALYZE and ServiceStats.
struct IntersectOpStats {
  uint64_t probes = 0;   // membership tests issued against probe lists
  uint64_t gallops = 0;  // exponential-search doubling steps
  uint64_t skipped = 0;  // probe-list elements jumped over without a compare
  uint64_t emitted = 0;  // intersection results produced

  void Add(const IntersectOpStats& o) {
    probes += o.probes;
    gallops += o.gallops;
    skipped += o.skipped;
    emitted += o.emitted;
  }
  bool Any() const { return probes | gallops | skipped | emitted; }
};

// First index i in [begin, n) with a[i] >= key. Exponential search from
// `begin`, so advancing a cursor through k interleaved lookups costs
// O(k log(n/k)) total instead of O(k log n).
uint32_t GallopLowerBound(const VertexId* a, uint32_t n, uint32_t begin,
                          VertexId key, IntersectOpStats* stats);

// Membership probe for one span. Uses galloping when the span is
// tombstone-free (the sorted invariant holds as a plain array); falls back
// to a linear scan otherwise. This is the primitive behind
// GraphView::HasEdge, so the binary ExpandInto pipeline benefits too.
bool SpanContains(const AdjSpan& span, VertexId w, IntersectOpStats* stats);

// A sorted, tombstone-free neighbor list, possibly materialized in scratch.
struct SortedList {
  const VertexId* ids = nullptr;
  uint32_t size = 0;
};

// Returns the span as a SortedList, compacting tombstones into *scratch
// when necessary (zero-copy when span.sorted_clean()).
SortedList NormalizeSpan(const AdjSpan& span, std::vector<VertexId>* scratch);

// Leapfrog prober over the probe columns of one IntersectExpand row: holds
// one advancing cursor per (probe column, relation) list, ordered
// short-lists-first so the cheapest rejection runs first. Semantics per
// candidate w: AND over probe columns, OR over each column's relations —
// exactly the binary ExpandInto chain it replaces.
class IntersectProber {
 public:
  // Rebinds the prober to one driver row's probe lists. `lists[i]` holds
  // the normalized adjacency lists of probe column `column_of[i]`.
  // `num_columns` is the number of probe columns. Reuses internal storage:
  // no allocation after warmup.
  void Bind(const std::vector<SortedList>& lists,
            const std::vector<uint32_t>& column_of, size_t num_columns);

  // True if some probe column has no neighbors at all: no candidate can
  // match, so the caller should skip the driver row outright.
  bool AnyColumnEmpty() const { return any_column_empty_; }

  // Resets cursors; call before each (re)scan of a sorted driver list.
  void BeginDriverList();

  // Membership test for a nondecreasing sequence of candidates.
  bool Matches(VertexId w, IntersectOpStats* stats);

 private:
  struct List {
    const VertexId* ids;
    uint32_t size;
    uint32_t cursor;
    uint32_t column;
  };
  std::vector<List> lists_;  // ascending by size: short-lists-first
  std::vector<uint8_t> column_hit_;
  size_t num_columns_ = 0;
  bool any_column_empty_ = false;
};

}  // namespace ges

#endif  // GES_STORAGE_INTERSECT_H_
