#include "storage/compressed_segment.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace ges {

namespace {

inline void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline uint64_t GetVarint(const uint8_t*& p) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t b = *p++;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

void CompressedSegment::Builder::Add(const VertexId* ids,
                                     const int64_t* stamps, uint32_t n) {
  degrees_.push_back(n);
  if (n > 0) {
    // Delta-varint the sorted id list: first id absolute, then the
    // non-negative gaps (zero for parallel edges).
    PutVarint(&blob_, ids[0]);
    for (uint32_t i = 1; i < n; ++i) {
      assert(ids[i] >= ids[i - 1]);
      PutVarint(&blob_, ids[i] - ids[i - 1]);
    }
    if (has_stamp_) {
      // Null suppression: a single mode byte replaces an all-zero stamp
      // column (datasets loaded without edge properties through a
      // has_stamp relation pay one byte per vertex, not eight per edge).
      bool all_zero = true;
      for (uint32_t i = 0; i < n; ++i) {
        if (stamps[i] != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) {
        blob_.push_back(0);
      } else {
        blob_.push_back(1);
        PutVarint(&blob_, ZigZag(stamps[0]));
        for (uint32_t i = 1; i < n; ++i) {
          PutVarint(&blob_, ZigZag(stamps[i] - stamps[i - 1]));
        }
      }
    }
    num_edges_ += n;
    ++num_sources_;
  }
  offsets_.push_back(blob_.size());
}

std::shared_ptr<const CompressedSegment> CompressedSegment::Builder::Build(
    Version cut) {
  auto seg = std::shared_ptr<CompressedSegment>(new CompressedSegment());
  seg->has_stamp_ = has_stamp_;
  seg->cut_ = cut;
  seg->blob_ = std::move(blob_);
  seg->blob_.shrink_to_fit();
  seg->offsets_ = std::move(offsets_);
  seg->offsets_.shrink_to_fit();
  seg->degrees_ = std::move(degrees_);
  seg->degrees_.shrink_to_fit();
  seg->num_edges_ = num_edges_;
  seg->num_sources_ = num_sources_;
  return seg;
}

AdjSpan CompressedSegment::Decode(VertexId v, AdjScratch* scratch) const {
  if (v >= degrees_.size() || degrees_[v] == 0) return AdjSpan{};
  if (scratch == nullptr) {
    // Every production read path threads an AdjScratch; reaching a decode
    // without one means a call site was missed — fail loudly rather than
    // silently dropping edges.
    std::fprintf(stderr,
                 "CompressedSegment::Decode: null scratch on compacted "
                 "relation (vertex %llu)\n",
                 static_cast<unsigned long long>(v));
    std::abort();
  }
  const uint32_t n = degrees_[v];
  const uint8_t* p = blob_.data() + offsets_[v];
  scratch->ids.resize(n);
  VertexId id = static_cast<VertexId>(GetVarint(p));
  scratch->ids[0] = id;
  for (uint32_t i = 1; i < n; ++i) {
    id += static_cast<VertexId>(GetVarint(p));
    scratch->ids[i] = id;
  }
  const int64_t* stamps = nullptr;
  if (has_stamp_) {
    scratch->stamps.resize(n);
    uint8_t mode = *p++;
    if (mode == 0) {
      for (uint32_t i = 0; i < n; ++i) scratch->stamps[i] = 0;
    } else {
      int64_t s = UnZigZag(GetVarint(p));
      scratch->stamps[0] = s;
      for (uint32_t i = 1; i < n; ++i) {
        s += UnZigZag(GetVarint(p));
        scratch->stamps[i] = s;
      }
    }
    stamps = scratch->stamps.data();
  }
  assert(p <= blob_.data() + offsets_[v + 1]);
  return AdjSpan{scratch->ids.data(), stamps, n, /*tombstones=*/0};
}

}  // namespace ges
