#include "storage/property_store.h"

namespace ges {

size_t PropertyTable::AppendRow() {
  size_t row = num_rows();
  for (ValueVector& col : columns_) {
    col.Resize(row + 1);
  }
  return row;
}

size_t PropertyTable::MemoryBytes() const {
  size_t bytes = 0;
  for (const ValueVector& col : columns_) bytes += col.MemoryBytes();
  return bytes;
}

}  // namespace ges
