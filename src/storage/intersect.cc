#include "storage/intersect.h"

#include <algorithm>

namespace ges {

uint32_t GallopLowerBound(const VertexId* a, uint32_t n, uint32_t begin,
                          VertexId key, IntersectOpStats* stats) {
  if (begin >= n || a[begin] >= key) return begin;
  // Exponential phase: double the stride until we overshoot.
  uint32_t lo = begin;
  uint32_t bound = 1;
  while (lo + bound < n && a[lo + bound] < key) {
    lo += bound;
    bound <<= 1;
    if (stats != nullptr) ++stats->gallops;
  }
  uint32_t hi = std::min<uint64_t>(uint64_t{lo} + bound, n);
  // Binary phase inside (lo, hi].
  uint32_t result = static_cast<uint32_t>(
      std::lower_bound(a + lo + 1, a + hi, key) - a);
  if (stats != nullptr && result > begin + 1) {
    stats->skipped += result - begin - 1;
  }
  return result;
}

bool SpanContains(const AdjSpan& span, VertexId w, IntersectOpStats* stats) {
  if (stats != nullptr) ++stats->probes;
  if (span.sorted_clean()) {
    uint32_t pos = GallopLowerBound(span.ids, span.size, 0, w, stats);
    return pos < span.size && span.ids[pos] == w;
  }
  // Tombstoned span: the kInvalidVertex slots break monotonicity, so fall
  // back to the plain scan (rare: only between a RemoveEdge and the next
  // compaction of that vertex).
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] == w) return true;
  }
  return false;
}

SortedList NormalizeSpan(const AdjSpan& span, std::vector<VertexId>* scratch) {
  if (span.sorted_clean()) return SortedList{span.ids, span.size};
  scratch->clear();
  scratch->reserve(span.size - span.tombstones);
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] != kInvalidVertex) scratch->push_back(span.ids[i]);
  }
  return SortedList{scratch->data(), static_cast<uint32_t>(scratch->size())};
}

void IntersectProber::Bind(const std::vector<SortedList>& lists,
                           const std::vector<uint32_t>& column_of,
                           size_t num_columns) {
  lists_.clear();
  num_columns_ = num_columns;
  column_hit_.assign(num_columns, 0);
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].size == 0) continue;
    lists_.push_back(List{lists[i].ids, lists[i].size, 0, column_of[i]});
    column_hit_[column_of[i]] = 1;
  }
  any_column_empty_ = false;
  for (size_t c = 0; c < num_columns; ++c) {
    if (!column_hit_[c]) any_column_empty_ = true;
  }
  // Short-lists-first: cheapest rejections run before expensive ones.
  std::sort(lists_.begin(), lists_.end(),
            [](const List& a, const List& b) { return a.size < b.size; });
}

void IntersectProber::BeginDriverList() {
  for (List& l : lists_) l.cursor = 0;
}

bool IntersectProber::Matches(VertexId w, IntersectOpStats* stats) {
  // AND over probe columns, OR over each column's lists. column_hit_
  // tracks which columns matched this candidate.
  std::fill(column_hit_.begin(), column_hit_.end(), 0);
  size_t matched = 0;
  for (List& l : lists_) {
    if (column_hit_[l.column]) continue;  // column already satisfied
    if (stats != nullptr) ++stats->probes;
    l.cursor = GallopLowerBound(l.ids, l.size, l.cursor, w, stats);
    if (l.cursor < l.size && l.ids[l.cursor] == w) {
      column_hit_[l.column] = 1;
      if (++matched == num_columns_) return true;
    }
  }
  return matched == num_columns_;
}

}  // namespace ges
