#include "storage/graph_stats.h"

#include <cstring>
#include <unordered_set>

#include "storage/graph.h"

namespace ges {

double DegreeHistogram::Quantile(double q) const {
  if (sampled_sources == 0) return 0;
  uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(sampled_sources));
  if (target >= sampled_sources) target = sampled_sources - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > target) return static_cast<double>(uint64_t{1} << i);
  }
  return static_cast<double>(max_degree);
}

namespace {

// Sampling caps keep a rebuild pass cheap enough for the reaper thread:
// cost is O(relations * cap + columns * cap), independent of graph size.
constexpr size_t kMaxSampledVerticesPerRelation = 65536;
constexpr size_t kMaxSampledRowsPerColumn = 65536;

uint64_t DoubleBits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

int Log2Bucket(uint32_t degree) {
  int b = 0;
  while (degree > 1 && b < 31) {
    degree >>= 1;
    ++b;
  }
  return b;
}

// Crude two-regime NDV estimator over a strided sample: when most sampled
// values repeat, the domain is small and the sample has likely seen all of
// it; when most are unique, distincts grow linearly with the population.
uint64_t EstimateNdv(uint64_t distinct, uint64_t sampled, uint64_t total) {
  if (sampled == 0) return 0;
  if (sampled >= total || distinct * 2 <= sampled) return distinct;
  return distinct * total / sampled;
}

void SampleColumn(const ValueVector& col, PropertyStats* out) {
  size_t n = col.size();
  out->count = n;
  if (n == 0) return;
  size_t stride = n > kMaxSampledRowsPerColumn
                      ? (n + kMaxSampledRowsPerColumn - 1) /
                            kMaxSampledRowsPerColumn
                      : 1;
  std::unordered_set<uint64_t> distinct;
  uint64_t sampled = 0;
  double mn = 0, mx = 0;
  bool numeric = col.type() != ValueType::kString;
  bool first = true;
  for (size_t i = 0; i < n; i += stride) {
    ++sampled;
    if (col.type() == ValueType::kString) {
      distinct.insert(col.dict_encoded()
                          ? uint64_t{col.GetCode(i)}
                          : std::hash<std::string>{}(col.GetString(i)));
      continue;
    }
    double v = col.type() == ValueType::kDouble
                   ? col.GetDouble(i)
                   : static_cast<double>(col.GetInt(i));
    distinct.insert(col.type() == ValueType::kDouble
                        ? DoubleBits(v)
                        : static_cast<uint64_t>(col.GetInt(i)));
    if (first) {
      mn = mx = v;
      first = false;
    } else {
      if (v < mn) mn = v;
      if (v > mx) mx = v;
    }
  }
  out->ndv = EstimateNdv(distinct.size(), sampled, n);
  if (numeric && !first) {
    out->has_range = true;
    out->min = mn;
    out->max = mx;
  }
}

}  // namespace

bool Graph::RebuildStats() {
  std::shared_ptr<const GraphStats> prev = catalog_.stats();
  SnapshotHandle pin = PinSnapshot();  // keep version chains resolvable
  Version at = pin.version();
  // A compaction swap changes the sampled degree distributions without
  // advancing the version; its dirty flag forces a re-sample that the
  // built_at short-circuit would otherwise skip.
  const bool dirty = stats_dirty_.exchange(false, std::memory_order_acq_rel);
  if (!dirty && prev != nullptr && prev->built_at == at) return false;

  auto stats = std::make_shared<GraphStats>();
  stats->built_at = at;

  // Vertex counts per label.
  stats->label_vertices.resize(catalog_.num_vertex_labels(), 0);
  for (size_t l = 0; l < catalog_.num_vertex_labels(); ++l) {
    stats->label_vertices[l] =
        NumVertices(static_cast<LabelId>(l), at);
  }

  // Degree histogram per adjacency table, sampled over the source label's
  // vertices (stride keeps the pass bounded on large labels).
  stats->degrees.resize(NumRelations());
  std::vector<VertexId> verts;
  for (size_t r = 0; r < NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    DegreeHistogram& h = stats->degrees[r];
    h.base_avg_degree = AvgDegree(rel);
    verts.clear();
    ScanLabel(RelationKeyOf(rel).src_label, at, &verts);
    if (verts.empty()) continue;
    size_t stride = verts.size() > kMaxSampledVerticesPerRelation
                        ? (verts.size() + kMaxSampledVerticesPerRelation - 1) /
                              kMaxSampledVerticesPerRelation
                        : 1;
    for (size_t i = 0; i < verts.size(); i += stride) {
      uint32_t d = Degree(rel, verts[i], at);
      ++h.sampled_vertices;
      if (d == 0) continue;
      ++h.sampled_sources;
      h.sampled_edges += d;
      if (d > h.max_degree) h.max_degree = d;
      ++h.buckets[Log2Bucket(d)];
    }
  }

  // Property NDV / min-max from the base columns (the overlay delta is
  // deliberately ignored, as with adjacency metadata).
  for (size_t l = 0; l < catalog_.num_vertex_labels(); ++l) {
    LabelId label = static_cast<LabelId>(l);
    for (const auto& [prop, type] : catalog_.LabelProperties(label)) {
      const ValueVector* col = BasePropertyColumn(label, prop);
      if (col == nullptr) continue;
      PropertyStats ps;
      SampleColumn(*col, &ps);
      stats->properties[GraphStats::PropKey(label, prop)] = ps;
    }
  }

  catalog_.InstallStats(std::move(stats));
  return true;
}

}  // namespace ges
