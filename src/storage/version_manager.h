// Multi-Version Two-Phase Locking (MV2PL) concurrency control.
//
// Following Section 5 of the paper: write queries declare their write sets
// in advance and are coordinated with classical MV2PL; versions are kept at
// coarse vertex granularity; a write creates new copy-on-write snapshots of
// the vertices it modifies; reads are non-blocking against a version
// counter. Base storage (bulk-loaded adjacency arrays and property columns)
// is immutable after load; every post-load mutation is published as an
// immutable overlay entry stamped with its commit version, so readers never
// observe torn state.
//
// Garbage collection (DESIGN.md §11): the `prev` chains grow without bound
// under sustained updates, so readers register the snapshots they hold in a
// SnapshotRegistry via RAII SnapshotHandles. The oldest registered snapshot
// (or the current version, when none is registered) is the *watermark*:
// every chain entry older than the newest entry at-or-below the watermark
// is invisible to all live and future readers and is reclaimed by
// Prune(watermark). Readers that walk chains without holding a handle are
// only safe against concurrent pruning at the current version.
#ifndef GES_STORAGE_VERSION_MANAGER_H_
#define GES_STORAGE_VERSION_MANAGER_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace ges {

class SnapshotRegistry;

// RAII registration of one live reader snapshot. While a handle for version
// V exists, the GC watermark cannot pass V, so every chain entry a reader
// at V can resolve stays alive. Move-only; releasing (or destroying) the
// handle lets the watermark advance.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  SnapshotHandle(SnapshotHandle&& other) noexcept
      : registry_(other.registry_), version_(other.version_) {
    other.registry_ = nullptr;
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      version_ = other.version_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  ~SnapshotHandle() { Release(); }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  bool valid() const { return registry_ != nullptr; }
  Version version() const { return version_; }
  void Release();

 private:
  friend class SnapshotRegistry;
  SnapshotHandle(SnapshotRegistry* registry, Version version)
      : registry_(registry), version_(version) {}

  SnapshotRegistry* registry_ = nullptr;
  Version version_ = 0;
};

// Tracks every live reader snapshot (query contexts, pinned service
// sessions, checkpoint readers) and exposes the oldest one as the GC
// watermark. Refcounted per version: many readers may share a snapshot.
class SnapshotRegistry {
 public:
  // Registers a reader at `current`'s present value. The version is loaded
  // under the registry lock, so a concurrent watermark computation either
  // sees this pin or ran against an older current version — either way the
  // watermark never passes the pinned version.
  SnapshotHandle AcquireCurrent(const std::atomic<Version>& current);

  // Registers a reader at exactly `v`. Only safe while the caller already
  // holds protection covering `v`: another handle at version <= v, or the
  // guarantee that no Prune can run concurrently (e.g. v is the current
  // version and commits are excluded).
  SnapshotHandle AcquireAt(Version v);

  // Registers a reader at the GC watermark: min(oldest pin, current).
  // Computed under the registry mutex, so a concurrent Prune either derived
  // its watermark before this pin existed (then that watermark is <= the
  // pinned version and the chain floor at the pin survives as Prune's
  // floor) or it sees the pin. The compactor uses this to fix its merge cut
  // at a version every live and future reader is at or above.
  SnapshotHandle AcquireOldest(const std::atomic<Version>& current);

  // The watermark: the oldest registered snapshot, or `current` when no
  // reader is registered.
  Version OldestActive(Version current) const;

  // Oldest registered snapshot; false when none is registered. For the
  // service's watermark-stall diagnostics.
  bool OldestPinned(Version* out) const;

  size_t ActiveCount() const;

 private:
  friend class SnapshotHandle;
  void Release(Version v);

  mutable std::mutex mu_;
  std::map<Version, uint32_t> pins_;  // version -> handle count
};

// What one Prune(watermark) pass reclaimed.
struct PruneStats {
  uint64_t entries = 0;  // chain entries freed
  uint64_t bytes = 0;    // heap bytes those entries held
};

// One copy-on-write snapshot of a vertex's adjacency list within a relation.
// Immutable once published; `prev` keeps older versions alive for readers
// with older snapshots until Prune cuts the chain.
struct AdjOverlayEntry {
  Version version = 0;
  std::vector<VertexId> ids;
  std::vector<int64_t> stamps;
  std::shared_ptr<AdjOverlayEntry> prev;
};

// Iteratively tears down a detached overlay chain. Naive shared_ptr
// teardown recurses once per entry and can overflow the stack on the long
// chains a sustained update workload builds; holders of retired chains
// (the compaction retire list) must free through this.
void UnlinkDetachedChain(std::shared_ptr<AdjOverlayEntry> head);

// Per-relation overlay of versioned adjacency lists.
class AdjOverlay {
 public:
  ~AdjOverlay();

  // True if no vertex of this relation has ever been updated; lets the read
  // path skip the map probe entirely for read-mostly workloads.
  bool empty() const { return count_.load(std::memory_order_acquire) == 0; }

  // Newest entry for `v` visible at `snapshot`, or nullptr (use base).
  const AdjOverlayEntry* Find(VertexId v, Version snapshot) const;

  // Newest entry regardless of version (for copy-on-write by a committer
  // that holds the vertex's write lock).
  std::shared_ptr<AdjOverlayEntry> Head(VertexId v) const;

  // Publishes `entry` as the new head for `v`, linking the old head.
  void Publish(VertexId v, std::shared_ptr<AdjOverlayEntry> entry);

  // Cuts every chain at its newest entry with version <= watermark: that
  // entry is the floor every live reader (all at versions >= watermark) can
  // resolve to, so everything below it is unreachable and freed. Heads
  // whose whole tail is superseded collapse to a single entry. Safe against
  // concurrent Find: links are rewritten under the exclusive lock; the
  // freed tails are destroyed after it drops.
  PruneStats Prune(Version watermark);

  // Compaction collapse (DESIGN.md §16): removes every entry with version
  // <= cut from every chain — unlike Prune, the floors too, because the
  // compressed segment built at `cut` replaces them. Readers at snapshots
  // >= cut (the compactor pinned the watermark, so that is all of them)
  // resolve overlay entries in (cut, snapshot] or fall through to the
  // segment. Removed chains are appended to `retired` instead of freed:
  // concurrent readers may be mid-walk on them until the watermark passes
  // the swap version.
  PruneStats CollapseBelow(
      Version cut, std::vector<std::shared_ptr<AdjOverlayEntry>>* retired);

  // Live chain bytes (entries + their ids/stamps vectors + map slots).
  // O(1): maintained at Publish/Prune time.
  size_t MemoryBytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<VertexId, std::shared_ptr<AdjOverlayEntry>> heads_;
  std::atomic<size_t> count_{0};
  std::atomic<size_t> bytes_{0};  // heap bytes of all live entries
};

// Versioned property writes for one vertex. Publish coalesces `writes` into
// ascending-PropertyId order with one (the last) write per property, so
// Find can binary-search instead of scanning.
struct PropOverlayEntry {
  Version version = 0;
  std::vector<std::pair<PropertyId, Value>> writes;
  std::shared_ptr<PropOverlayEntry> prev;
};

class PropOverlay {
 public:
  ~PropOverlay();

  bool empty() const { return count_.load(std::memory_order_acquire) == 0; }

  // Looks up `prop` of `v` in versions visible at `snapshot`. Returns true
  // and fills `*out` if an overlay write exists; false means "use base".
  bool Find(VertexId v, PropertyId prop, Version snapshot, Value* out) const;

  void Publish(VertexId v, std::shared_ptr<PropOverlayEntry> entry);

  // Same contract as AdjOverlay::Prune.
  PruneStats Prune(Version watermark);

  size_t MemoryBytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<VertexId, std::shared_ptr<PropOverlayEntry>> heads_;
  std::atomic<size_t> count_{0};
  std::atomic<size_t> bytes_{0};
};

// A vertex created after bulk load.
struct NewVertex {
  VertexId id = kInvalidVertex;
  LabelId label = kInvalidLabel;
  Version version = 0;  // creation (commit) version
  int64_t ext_id = 0;
};

// Registry of post-load vertices, with per-label scan lists and external-id
// index overlays.
class NewVertexRegistry {
 public:
  bool empty() const { return count_.load(std::memory_order_acquire) == 0; }

  void Publish(const NewVertex& v);

  // Label of `v` if it is a committed new vertex visible at any version.
  // Returns true and fills `*out` when found.
  bool Find(VertexId v, NewVertex* out) const;

  // Appends all new vertices of `label` visible at `snapshot` to `out`.
  void CollectVisible(LabelId label, Version snapshot,
                      std::vector<VertexId>* out) const;

  bool FindByExtId(LabelId label, int64_t ext_id, Version snapshot,
                   VertexId* out) const;

  size_t CountVisible(LabelId label, Version snapshot) const;

  // Unlike the overlays, registry entries are live data (the vertices
  // exist at every snapshot >= their creation version), so nothing becomes
  // unreachable as the watermark advances. Prune instead returns the
  // growth-slack of the append-only scan lists to the allocator (vectors
  // whose doubling left >= 2x slack are shrunk to fit).
  PruneStats Prune(Version watermark);

  size_t MemoryBytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<VertexId, NewVertex> vertices_;
  // label -> creation-ordered list (versions are nondecreasing per label).
  std::unordered_map<LabelId, std::vector<std::pair<Version, VertexId>>>
      by_label_;
  std::unordered_map<uint64_t, std::pair<Version, VertexId>> ext_index_;
  std::atomic<size_t> count_{0};
};

// The version manager: global version counter, striped per-vertex write
// locks for the 2PL half of MV2PL, and the snapshot registry that feeds
// the GC watermark.
class VersionManager {
 public:
  static constexpr size_t kNumStripes = 1024;

  // Snapshot version for a new reader. Non-blocking.
  Version CurrentVersion() const {
    return global_version_.load(std::memory_order_acquire);
  }

  // --- snapshot registry (GC watermark) ---
  // Registers a reader at the current version.
  SnapshotHandle AcquireSnapshot() {
    return snapshots_.AcquireCurrent(global_version_);
  }
  // Registers a reader at exactly `v`; see SnapshotRegistry::AcquireAt for
  // the protection precondition.
  SnapshotHandle AcquireSnapshotAt(Version v) {
    return snapshots_.AcquireAt(v);
  }
  // Registers a reader at the GC watermark (the compaction cut); see
  // SnapshotRegistry::AcquireOldest.
  SnapshotHandle AcquireOldestSnapshot() {
    return snapshots_.AcquireOldest(global_version_);
  }
  // Prune watermark: oldest registered snapshot, or the current version.
  Version OldestActiveSnapshot() const {
    return snapshots_.OldestActive(CurrentVersion());
  }
  const SnapshotRegistry& snapshots() const { return snapshots_; }

  // --- 2PL growing phase: lock a write set. Stripe indices are sorted and
  // deduplicated so concurrent writers cannot deadlock. ---
  std::vector<size_t> LockWriteSet(const std::vector<VertexId>& write_set);
  void UnlockStripes(const std::vector<size_t>& stripes);

  // --- commit protocol ---
  // Serializes the publish phase so the global version only advances after
  // every overlay entry of the committing transaction is visible.
  std::mutex& commit_mutex() { return commit_mu_; }
  Version NextVersionLocked() {
    return global_version_.load(std::memory_order_relaxed) + 1;
  }
  void AdvanceVersionLocked(Version v) {
    global_version_.store(v, std::memory_order_release);
  }

 private:
  std::atomic<Version> global_version_{0};
  std::mutex commit_mu_;
  std::array<std::mutex, kNumStripes> stripe_locks_;
  SnapshotRegistry snapshots_;
};

}  // namespace ges

#endif  // GES_STORAGE_VERSION_MANAGER_H_
