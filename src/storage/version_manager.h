// Multi-Version Two-Phase Locking (MV2PL) concurrency control.
//
// Following Section 5 of the paper: write queries declare their write sets
// in advance and are coordinated with classical MV2PL; versions are kept at
// coarse vertex granularity; a write creates new copy-on-write snapshots of
// the vertices it modifies; reads are non-blocking against a version
// counter. Base storage (bulk-loaded adjacency arrays and property columns)
// is immutable after load; every post-load mutation is published as an
// immutable overlay entry stamped with its commit version, so readers never
// observe torn state.
#ifndef GES_STORAGE_VERSION_MANAGER_H_
#define GES_STORAGE_VERSION_MANAGER_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace ges {

// One copy-on-write snapshot of a vertex's adjacency list within a relation.
// Immutable once published; `prev` keeps older versions alive for readers
// with older snapshots.
struct AdjOverlayEntry {
  Version version = 0;
  std::vector<VertexId> ids;
  std::vector<int64_t> stamps;
  std::shared_ptr<AdjOverlayEntry> prev;
};

// Per-relation overlay of versioned adjacency lists.
class AdjOverlay {
 public:
  // True if no vertex of this relation has ever been updated; lets the read
  // path skip the map probe entirely for read-mostly workloads.
  bool empty() const { return count_.load(std::memory_order_acquire) == 0; }

  // Newest entry for `v` visible at `snapshot`, or nullptr (use base).
  const AdjOverlayEntry* Find(VertexId v, Version snapshot) const;

  // Newest entry regardless of version (for copy-on-write by a committer
  // that holds the vertex's write lock).
  std::shared_ptr<AdjOverlayEntry> Head(VertexId v) const;

  // Publishes `entry` as the new head for `v`, linking the old head.
  void Publish(VertexId v, std::shared_ptr<AdjOverlayEntry> entry);

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<VertexId, std::shared_ptr<AdjOverlayEntry>> heads_;
  std::atomic<size_t> count_{0};
};

// Versioned property writes for one vertex.
struct PropOverlayEntry {
  Version version = 0;
  std::vector<std::pair<PropertyId, Value>> writes;
  std::shared_ptr<PropOverlayEntry> prev;
};

class PropOverlay {
 public:
  bool empty() const { return count_.load(std::memory_order_acquire) == 0; }

  // Looks up `prop` of `v` in versions visible at `snapshot`. Returns true
  // and fills `*out` if an overlay write exists; false means "use base".
  bool Find(VertexId v, PropertyId prop, Version snapshot, Value* out) const;

  void Publish(VertexId v, std::shared_ptr<PropOverlayEntry> entry);

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<VertexId, std::shared_ptr<PropOverlayEntry>> heads_;
  std::atomic<size_t> count_{0};
};

// A vertex created after bulk load.
struct NewVertex {
  VertexId id = kInvalidVertex;
  LabelId label = kInvalidLabel;
  Version version = 0;  // creation (commit) version
  int64_t ext_id = 0;
};

// Registry of post-load vertices, with per-label scan lists and external-id
// index overlays.
class NewVertexRegistry {
 public:
  bool empty() const { return count_.load(std::memory_order_acquire) == 0; }

  void Publish(const NewVertex& v);

  // Label of `v` if it is a committed new vertex visible at any version.
  // Returns true and fills `*out` when found.
  bool Find(VertexId v, NewVertex* out) const;

  // Appends all new vertices of `label` visible at `snapshot` to `out`.
  void CollectVisible(LabelId label, Version snapshot,
                      std::vector<VertexId>* out) const;

  bool FindByExtId(LabelId label, int64_t ext_id, Version snapshot,
                   VertexId* out) const;

  size_t CountVisible(LabelId label, Version snapshot) const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<VertexId, NewVertex> vertices_;
  // label -> creation-ordered list (versions are nondecreasing per label).
  std::unordered_map<LabelId, std::vector<std::pair<Version, VertexId>>>
      by_label_;
  std::unordered_map<uint64_t, std::pair<Version, VertexId>> ext_index_;
  std::atomic<size_t> count_{0};
};

// The version manager: global version counter plus striped per-vertex write
// locks for the 2PL half of MV2PL.
class VersionManager {
 public:
  static constexpr size_t kNumStripes = 1024;

  // Snapshot version for a new reader. Non-blocking.
  Version CurrentVersion() const {
    return global_version_.load(std::memory_order_acquire);
  }

  // --- 2PL growing phase: lock a write set. Stripe indices are sorted and
  // deduplicated so concurrent writers cannot deadlock. ---
  std::vector<size_t> LockWriteSet(const std::vector<VertexId>& write_set);
  void UnlockStripes(const std::vector<size_t>& stripes);

  // --- commit protocol ---
  // Serializes the publish phase so the global version only advances after
  // every overlay entry of the committing transaction is visible.
  std::mutex& commit_mutex() { return commit_mu_; }
  Version NextVersionLocked() {
    return global_version_.load(std::memory_order_relaxed) + 1;
  }
  void AdvanceVersionLocked(Version v) {
    global_version_.store(v, std::memory_order_release);
  }

 private:
  std::atomic<Version> global_version_{0};
  std::mutex commit_mu_;
  std::array<std::mutex, kNumStripes> stripe_locks_;
};

}  // namespace ges

#endif  // GES_STORAGE_VERSION_MANAGER_H_
