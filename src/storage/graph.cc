#include "storage/graph.h"

#include <algorithm>
#include <cassert>

namespace ges {

// Out of line for the WalWriter member (joins the interval flusher thread,
// when one is running, before the graph's state goes away).
Graph::~Graph() = default;

std::string Graph::read_only_reason() const {
  std::lock_guard<std::mutex> lock(read_only_mu_);
  return read_only_reason_;
}

void Graph::EnterReadOnly(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(read_only_mu_);
    if (read_only_.load(std::memory_order_relaxed)) return;
    read_only_reason_ = cause.message();
  }
  read_only_.store(true, std::memory_order_release);
}

void Graph::RegisterRelation(LabelId src, LabelId edge, LabelId dst,
                             bool has_stamp) {
  RelationKey out_key{src, edge, dst, Direction::kOut};
  RelationKey in_key{dst, edge, src, Direction::kIn};
  if (table_index_.count(out_key) != 0) return;
  for (const RelationKey& key : {out_key, in_key}) {
    RelationId id = static_cast<RelationId>(tables_.size());
    TableEntry entry;
    entry.table = std::make_unique<AdjacencyTable>(key, has_stamp);
    entry.overlay = std::make_unique<AdjOverlay>();
    tables_.push_back(std::move(entry));
    table_index_.emplace(key, id);
  }
}

RelationId Graph::FindRelation(LabelId vertex_label, LabelId edge_label,
                               LabelId neighbor_label, Direction dir) const {
  RelationKey key{vertex_label, edge_label, neighbor_label, dir};
  auto it = table_index_.find(key);
  return it == table_index_.end() ? kInvalidRelation : it->second;
}

VertexId Graph::AddVertexBulk(LabelId label, int64_t ext_id) {
  assert(!finalized_);
  VertexId id = next_vertex_id_.fetch_add(1, std::memory_order_relaxed);
  if (bulk_by_label_.size() <= label) bulk_by_label_.resize(label + 1);
  if (property_tables_.size() <= label) property_tables_.resize(label + 1);
  if (property_tables_[label] == nullptr) {
    std::vector<ValueType> types;
    for (const auto& [pid, t] : catalog_.LabelProperties(label)) {
      types.push_back(t);
    }
    property_tables_[label] =
        std::make_unique<PropertyTable>(types, &string_dict_);
  }
  label_of_.push_back(label);
  ext_of_.push_back(ext_id);
  offset_in_label_.push_back(
      static_cast<uint32_t>(property_tables_[label]->AppendRow()));
  bulk_by_label_[label].push_back(id);
  ext_index_[ExtKey(label, ext_id)] = id;
  return id;
}

void Graph::SetPropertyBulk(VertexId v, PropertyId prop, const Value& val) {
  assert(!finalized_);
  LabelId label = label_of_[v];
  int slot = catalog_.PropertySlot(label, prop);
  assert(slot >= 0);
  property_tables_[label]->Set(offset_in_label_[v], slot, val);
}

void Graph::SetPropertyBulkString(VertexId v, PropertyId prop,
                                  std::string_view s) {
  assert(!finalized_);
  LabelId label = label_of_[v];
  int slot = catalog_.PropertySlot(label, prop);
  assert(slot >= 0);
  property_tables_[label]->SetString(offset_in_label_[v], slot, s);
}

void Graph::AddEdgeBulk(LabelId edge_label, VertexId src, VertexId dst,
                        int64_t stamp) {
  assert(!finalized_);
  LabelId sl = label_of_[src];
  LabelId dl = label_of_[dst];
  RelationId out_rel = FindRelation(sl, edge_label, dl, Direction::kOut);
  RelationId in_rel = FindRelation(dl, edge_label, sl, Direction::kIn);
  assert(out_rel != kInvalidRelation && in_rel != kInvalidRelation);
  tables_[out_rel].table->StageEdge(src, dst, stamp);
  tables_[in_rel].table->StageEdge(dst, src, stamp);
}

void Graph::FinalizeBulk() {
  assert(!finalized_);
  bulk_vertex_count_ = next_vertex_id_.load(std::memory_order_relaxed);
  for (TableEntry& t : tables_) {
    t.table->Finalize(bulk_vertex_count_);
  }
  finalized_ = true;
}

uint32_t Graph::Degree(RelationId rel, VertexId v, Version snapshot) const {
  const TableEntry& t = tables_[rel];
  if (!t.overlay->empty()) {
    const AdjOverlayEntry* e = t.overlay->Find(v, snapshot);
    if (e != nullptr) {
      // Overlay entries are tombstone-free: the size is the degree.
      return static_cast<uint32_t>(e->ids.size());
    }
  }
  // Segment degrees are precomputed — no decode needed.
  const CompressedSegment* seg = t.segment.load(std::memory_order_acquire);
  if (seg != nullptr && seg->Covers(v)) return seg->DegreeOf(v);
  AdjSpan span = t.table->Neighbors(v);
  uint32_t n = 0;
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] != kInvalidVertex) ++n;
  }
  return n;
}

Value Graph::GetProperty(VertexId v, PropertyId prop, Version snapshot) const {
  if (!prop_overlay_.empty()) {
    Value out;
    if (prop_overlay_.Find(v, prop, snapshot, &out)) return out;
  }
  if (v < bulk_vertex_count_) {
    LabelId label = label_of_[v];
    int slot = catalog_.PropertySlot(label, prop);
    if (slot < 0) return Value::Null();
    return property_tables_[label]->Get(offset_in_label_[v], slot);
  }
  return Value::Null();
}

const ValueVector* Graph::BasePropertyColumn(LabelId label,
                                             PropertyId prop) const {
  if (label >= property_tables_.size() || property_tables_[label] == nullptr) {
    return nullptr;
  }
  int slot = catalog_.PropertySlot(label, prop);
  if (slot < 0) return nullptr;
  return &property_tables_[label]->Column(slot);
}

void Graph::GatherProperties(const VertexId* ids, size_t n, const uint8_t* sel,
                             PropertyId prop, Version snapshot,
                             ValueVector* out) const {
  // A fresh string output column adopts the graph dictionary so base-column
  // gathers are uint32 code copies (decays to owned strings only if an
  // out-of-dictionary overlay value shows up).
  if (out->type() == ValueType::kString && !out->dict_encoded() &&
      out->empty()) {
    out->InitDict(&string_dict_);
  }
  out->Reserve(out->size() + n);
  // Overlay presence is resolved once per batch: when no transaction has
  // written any property overlay, the loop below is a pure column copy.
  const bool check_overlay = !prop_overlay_.empty();
  // Per-label (column, resolved?) cache so the catalog slot lookup happens
  // once per label instead of once per row.
  std::vector<const ValueVector*> col_cache;
  std::vector<uint8_t> col_resolved;
  for (size_t i = 0; i < n; ++i) {
    if (sel != nullptr && sel[i] == 0) {
      out->AppendZero();
      continue;
    }
    VertexId v = ids[i];
    if (check_overlay) {
      Value ov;
      if (prop_overlay_.Find(v, prop, snapshot, &ov)) {
        // Overlay strings were never interned; AppendValue decays the
        // output column to owned strings if needed.
        out->AppendValue(ov);
        continue;
      }
    }
    if (v >= bulk_vertex_count_) {
      // New (post-bulk) vertices keep all properties in the overlay; a miss
      // there means null, same as GetProperty.
      out->AppendZero();
      continue;
    }
    LabelId label = label_of_[v];
    if (label >= col_cache.size()) {
      col_cache.resize(label + 1, nullptr);
      col_resolved.resize(label + 1, 0);
    }
    if (!col_resolved[label]) {
      col_resolved[label] = 1;
      col_cache[label] = BasePropertyColumn(label, prop);
    }
    const ValueVector* col = col_cache[label];
    if (col == nullptr) {
      out->AppendZero();
      continue;
    }
    if (col->type() == out->type()) {
      out->AppendFrom(*col, offset_in_label_[v]);
    } else {
      out->AppendValue(col->GetValue(offset_in_label_[v]));
    }
  }
}

LabelId Graph::LabelOf(VertexId v, Version snapshot) const {
  if (v < bulk_vertex_count_) return label_of_[v];
  NewVertex nv;
  if (new_vertices_.Find(v, &nv) && nv.version <= snapshot) return nv.label;
  return kInvalidLabel;
}

VertexId Graph::FindByExtId(LabelId label, int64_t ext_id,
                            Version snapshot) const {
  auto it = ext_index_.find(ExtKey(label, ext_id));
  if (it != ext_index_.end()) return it->second;
  if (!new_vertices_.empty()) {
    VertexId out;
    if (new_vertices_.FindByExtId(label, ext_id, snapshot, &out)) return out;
  }
  return kInvalidVertex;
}

int64_t Graph::ExtIdOf(VertexId v, Version snapshot) const {
  if (v < bulk_vertex_count_) return ext_of_[v];
  NewVertex nv;
  if (new_vertices_.Find(v, &nv) && nv.version <= snapshot) return nv.ext_id;
  return -1;
}

std::vector<Graph::RelationInfo> Graph::Relations() const {
  std::vector<RelationInfo> out;
  for (const auto& [key, id] : table_index_) {
    if (key.direction != Direction::kOut) continue;
    out.push_back(RelationInfo{key, tables_[id].table->has_stamp()});
  }
  return out;
}

void Graph::ScanLabel(LabelId label, Version snapshot,
                      std::vector<VertexId>* out) const {
  if (label < bulk_by_label_.size()) {
    const std::vector<VertexId>& bulk = bulk_by_label_[label];
    out->insert(out->end(), bulk.begin(), bulk.end());
  }
  if (!new_vertices_.empty()) {
    new_vertices_.CollectVisible(label, snapshot, out);
  }
}

size_t Graph::NumVertices(LabelId label, Version snapshot) const {
  size_t n = label < bulk_by_label_.size() ? bulk_by_label_[label].size() : 0;
  if (!new_vertices_.empty()) {
    n += new_vertices_.CountVisible(label, snapshot);
  }
  return n;
}

size_t Graph::NumEdgesTotal() const {
  size_t n = 0;
  // Each logical edge is stored twice (OUT + IN); report logical edges.
  for (const TableEntry& t : tables_) n += t.table->num_edges();
  return n / 2;
}

size_t Graph::OverlayBytes() const {
  size_t bytes = prop_overlay_.MemoryBytes() + new_vertices_.MemoryBytes();
  for (const TableEntry& t : tables_) bytes += t.overlay->MemoryBytes();
  return bytes;
}

size_t Graph::MemoryBytes() const {
  size_t bytes = 0;
  for (const TableEntry& t : tables_) {
    bytes += t.table->MemoryBytes();
    const CompressedSegment* seg = t.segment.load(std::memory_order_acquire);
    if (seg != nullptr) bytes += seg->MemoryBytes();
  }
  for (const auto& pt : property_tables_) {
    if (pt != nullptr) bytes += pt->MemoryBytes();
  }
  bytes += label_of_.capacity() * sizeof(LabelId) +
           ext_of_.capacity() * sizeof(int64_t) +
           offset_in_label_.capacity() * sizeof(uint32_t);
  bytes += string_dict_.MemoryBytes();
  // MVCC overlay chains and the new-vertex registry: under sustained
  // update traffic this is where the memory actually is, and the GC
  // trigger compares against this total.
  bytes += OverlayBytes();
  // Storage a compaction swap replaced but the watermark has not yet let
  // go of. Counting it keeps the gauge honest between swap and drain.
  bytes += retired_bytes_.load(std::memory_order_relaxed);
  return bytes;
}

GcStats Graph::PruneVersions() {
  // One pruner at a time: concurrent passes would double-count the stats
  // and fight over the same chains for no benefit.
  std::lock_guard<std::mutex> gc_lock(gc_mu_);
  GcStats stats;
  stats.watermark = OldestActiveSnapshot();
  auto absorb = [&stats](const PruneStats& p) {
    stats.entries_pruned += p.entries;
    stats.bytes_reclaimed += p.bytes;
  };
  for (TableEntry& t : tables_) absorb(t.overlay->Prune(stats.watermark));
  absorb(prop_overlay_.Prune(stats.watermark));
  absorb(new_vertices_.Prune(stats.watermark));
  versions_pruned_total_.fetch_add(stats.entries_pruned,
                                   std::memory_order_relaxed);
  gc_bytes_reclaimed_total_.fetch_add(stats.bytes_reclaimed,
                                      std::memory_order_relaxed);
  // Compaction retire list: batches the watermark has passed are free to
  // go (counted in the compaction totals, not this pass's GcStats).
  ReclaimRetired();
  return stats;
}

CompactionStats Graph::CompactRelations(const CompactionOptions& opts) {
  // One compactor at a time; concurrent passes would fight over the same
  // relations and double-park their storage.
  std::lock_guard<std::mutex> compaction_lock(compaction_mu_);
  CompactionStats stats;
  if (!finalized_) return stats;

  // Fix the merge cut at the GC watermark, pinned so it holds while the
  // merge runs. Every live and future reader is at or above the cut, so a
  // list merged at the cut is exactly what those readers resolve beneath
  // their own overlay entries; concurrent Prune passes (watermark <= cut)
  // never free a chain floor the merge still reads.
  SnapshotHandle pin = version_manager_.AcquireOldestSnapshot();
  const Version cut = pin.version();
  stats.cut = cut;

  // Vertices created after this load are beyond the segment's coverage and
  // keep resolving through overlays (their entries are all > cut).
  const size_t num_vertices = NumVerticesTotal();

  AdjScratch decode_scratch;
  AdjScratch clean_scratch;
  for (RelationId rel = 0; rel < tables_.size(); ++rel) {
    TableEntry& t = tables_[rel];
    if (!t.table->finalized()) continue;
    if (!opts.only.empty() &&
        std::find(opts.only.begin(), opts.only.end(), rel) ==
            opts.only.end()) {
      continue;
    }
    const CompressedSegment* old_seg =
        t.segment.load(std::memory_order_acquire);
    const size_t bytes_before = t.table->MemoryBytes() +
                                t.overlay->MemoryBytes() +
                                (old_seg != nullptr ? old_seg->MemoryBytes()
                                                    : 0);
    if (t.table->num_edges() == 0 && t.overlay->empty() &&
        old_seg == nullptr) {
      continue;  // nothing stored, nothing to merge
    }
    if (!opts.force) {
      // Reclaimable share: base-array fragmentation plus the overlay
      // chains the merge will collapse (entries above the cut survive, so
      // this is an upper-bound estimate — fine for a trigger).
      const size_t reclaimable =
          t.table->FragmentationBytes() + t.overlay->MemoryBytes();
      if (bytes_before == 0 ||
          static_cast<double>(reclaimable) /
                  static_cast<double>(bytes_before) <
              opts.trigger_frag_pct) {
        continue;
      }
    }

    // Merge phase, lock-free: base arrays are immutable after
    // FinalizeBulk, overlay entries <= cut are immutable and pinned, the
    // old segment is immutable. Commits racing this loop publish at
    // versions > cut and are untouched by the collapse below.
    const bool has_stamp = t.table->has_stamp();
    CompressedSegment::Builder builder(has_stamp);
    for (VertexId v = 0; v < num_vertices; ++v) {
      AdjSpan span;
      const AdjOverlayEntry* e =
          t.overlay->empty() ? nullptr : t.overlay->Find(v, cut);
      if (e != nullptr) {
        span = AdjSpan{e->ids.data(),
                       has_stamp ? e->stamps.data() : nullptr,
                       static_cast<uint32_t>(e->ids.size()), 0};
      } else if (old_seg != nullptr && old_seg->Covers(v)) {
        span = old_seg->Decode(v, &decode_scratch);
      } else {
        span = t.table->Neighbors(v);
      }
      if (span.sorted_clean()) {
        builder.Add(span.ids, span.stamps, span.size);
      } else {
        // Base spans may carry tombstones; the merge drops them for good.
        clean_scratch.ids.clear();
        clean_scratch.stamps.clear();
        for (uint32_t i = 0; i < span.size; ++i) {
          if (span.ids[i] == kInvalidVertex) continue;
          clean_scratch.ids.push_back(span.ids[i]);
          if (has_stamp) clean_scratch.stamps.push_back(span.stamps[i]);
        }
        builder.Add(clean_scratch.ids.data(),
                    has_stamp ? clean_scratch.stamps.data() : nullptr,
                    static_cast<uint32_t>(clean_scratch.ids.size()));
      }
    }
    std::shared_ptr<const CompressedSegment> seg = builder.Build(cut);

    // Swap phase: checkpoint mutex before commit mutex — the same atomic
    // cut CollectReplicationBacklog and Checkpoint take, so a bootstrap
    // snapshot or checkpoint never interleaves with a half-swapped
    // relation.
    RetiredBatch batch;
    {
      std::lock_guard<std::mutex> ckpt_lock(checkpoint_mu_);
      std::lock_guard<std::mutex> commit_lock(
          version_manager_.commit_mutex());
      batch.install_version = CurrentVersion();
      const size_t table_bytes = t.table->MemoryBytes();
      PruneStats collapsed = t.overlay->CollapseBelow(cut, &batch.chains);
      if (old_seg != nullptr) {
        batch.bytes += old_seg->MemoryBytes();
        batch.keepalives.push_back(
            std::shared_ptr<const void>(std::move(t.segment_owner)));
      }
      t.segment_owner = seg;
      t.segment.store(seg.get(), std::memory_order_release);
      batch.keepalives.push_back(t.table->DetachStorage());
      t.table->RestoreCompacted(seg->num_edges(), seg->num_sources());
      batch.bytes += table_bytes + collapsed.bytes;
      stats.entries_collapsed += collapsed.entries;
    }
    {
      std::lock_guard<std::mutex> retired_lock(retired_mu_);
      retired_bytes_.fetch_add(batch.bytes, std::memory_order_relaxed);
      stats.bytes_retired += batch.bytes;
      retired_.push_back(std::move(batch));
    }

    ++stats.relations_compacted;
    stats.edges_encoded += seg->num_edges();
    stats.bytes_before += bytes_before;
    stats.bytes_after += seg->MemoryBytes() + t.table->MemoryBytes() +
                         t.overlay->MemoryBytes();
  }
  pin.Release();

  if (stats.relations_compacted > 0) {
    // The physical layout (and the degree distributions the planner's
    // histograms sampled) changed without a commit: invalidate cached
    // plans and flag the stats builder to re-sample.
    catalog_.NoteStorageChanged();
    stats_dirty_.store(true, std::memory_order_release);
    compaction_segments_total_.fetch_add(stats.relations_compacted,
                                         std::memory_order_relaxed);
  }
  compaction_runs_total_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

size_t Graph::ReclaimRetired() {
  const Version watermark = OldestActiveSnapshot();
  std::vector<RetiredBatch> free_now;
  {
    std::lock_guard<std::mutex> retired_lock(retired_mu_);
    for (size_t i = 0; i < retired_.size();) {
      // Strictly greater: readers pinned at the install version itself may
      // have resolved spans from the old storage just before the swap.
      if (watermark > retired_[i].install_version) {
        free_now.push_back(std::move(retired_[i]));
        retired_[i] = std::move(retired_.back());
        retired_.pop_back();
      } else {
        ++i;
      }
    }
  }
  size_t freed = 0;
  for (RetiredBatch& batch : free_now) {
    for (auto& chain : batch.chains) UnlinkDetachedChain(std::move(chain));
    batch.keepalives.clear();
    freed += batch.bytes;
  }
  if (freed > 0) {
    retired_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    compaction_bytes_reclaimed_total_.fetch_add(freed,
                                                std::memory_order_relaxed);
  }
  return freed;
}

size_t Graph::ForceReclaimRetiredForRecovery() {
  std::vector<RetiredBatch> free_now;
  {
    std::lock_guard<std::mutex> retired_lock(retired_mu_);
    free_now.swap(retired_);
  }
  size_t freed = 0;
  for (RetiredBatch& batch : free_now) {
    for (auto& chain : batch.chains) UnlinkDetachedChain(std::move(chain));
    batch.keepalives.clear();
    freed += batch.bytes;
  }
  if (freed > 0) {
    retired_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    compaction_bytes_reclaimed_total_.fetch_add(freed,
                                                std::memory_order_relaxed);
  }
  return freed;
}

std::unique_ptr<WriteTxn> Graph::BeginWrite(std::vector<VertexId> write_set) {
  return std::unique_ptr<WriteTxn>(new WriteTxn(this, std::move(write_set)));
}

WriteTxn::WriteTxn(Graph* graph, std::vector<VertexId> write_set)
    : graph_(graph), write_set_(std::move(write_set)) {
  locked_stripes_ = graph_->version_manager_.LockWriteSet(write_set_);
}

WriteTxn::~WriteTxn() {
  if (!done_) Abort();
}

bool WriteTxn::InWriteSet(VertexId v) const {
  for (VertexId w : write_set_) {
    if (w == v) return true;
  }
  for (const VertexOp& nv : new_vertices_) {
    if (nv.id == v) return true;
  }
  return false;
}

VertexId WriteTxn::CreateVertex(
    LabelId label, int64_t ext_id,
    std::vector<std::pair<PropertyId, Value>> props) {
  VertexId id =
      graph_->next_vertex_id_.fetch_add(1, std::memory_order_acq_rel);
  new_vertices_.push_back(VertexOp{id, label, ext_id});
  for (auto& [pid, val] : props) {
    prop_ops_.emplace_back(id, std::make_pair(pid, std::move(val)));
  }
  return id;
}

Status WriteTxn::AddEdge(LabelId edge_label, VertexId src, VertexId dst,
                         int64_t stamp) {
  if (!InWriteSet(src) || !InWriteSet(dst)) {
    return Status::InvalidArgument("edge endpoint not in declared write set");
  }
  Version snap = graph_->CurrentVersion();
  LabelId sl = graph_->LabelOf(src, snap);
  LabelId dl = graph_->LabelOf(dst, snap);
  // Endpoints created by this transaction are not yet visible; look them up
  // in the staged set.
  for (const VertexOp& nv : new_vertices_) {
    if (nv.id == src) sl = nv.label;
    if (nv.id == dst) dl = nv.label;
  }
  RelationId out_rel =
      graph_->FindRelation(sl, edge_label, dl, Direction::kOut);
  RelationId in_rel = graph_->FindRelation(dl, edge_label, sl, Direction::kIn);
  if (out_rel == kInvalidRelation || in_rel == kInvalidRelation) {
    return Status::NotFound("relation not registered");
  }
  edge_ops_.push_back(EdgeOp{out_rel, src, dst, stamp, false});
  edge_ops_.push_back(EdgeOp{in_rel, dst, src, stamp, false});
  return Status::OK();
}

Status WriteTxn::RemoveEdge(LabelId edge_label, VertexId src, VertexId dst) {
  if (!InWriteSet(src) || !InWriteSet(dst)) {
    return Status::InvalidArgument("edge endpoint not in declared write set");
  }
  Version snap = graph_->CurrentVersion();
  LabelId sl = graph_->LabelOf(src, snap);
  LabelId dl = graph_->LabelOf(dst, snap);
  RelationId out_rel =
      graph_->FindRelation(sl, edge_label, dl, Direction::kOut);
  RelationId in_rel = graph_->FindRelation(dl, edge_label, sl, Direction::kIn);
  if (out_rel == kInvalidRelation || in_rel == kInvalidRelation) {
    return Status::NotFound("relation not registered");
  }
  edge_ops_.push_back(EdgeOp{out_rel, src, dst, 0, true});
  edge_ops_.push_back(EdgeOp{in_rel, dst, src, 0, true});
  return Status::OK();
}

void WriteTxn::SetProperty(VertexId v, PropertyId prop, Value val) {
  prop_ops_.emplace_back(v, std::make_pair(prop, std::move(val)));
}

std::vector<WalRecord> WriteTxn::BuildWalRecords(uint64_t txid) const {
  std::vector<WalRecord> recs;
  recs.reserve(new_vertices_.size() + prop_ops_.size() +
               edge_ops_.size() / 2 + 2);
  WalRecord begin;
  begin.type = WalRecordType::kBeginTx;
  begin.txid = txid;
  recs.push_back(begin);

  // Vertices are identified by (label, external id): VertexIds are not
  // stable across snapshot save/load. Transaction-created vertices are
  // resolved from the staged set (they are not yet visible).
  Version snap = graph_->CurrentVersion();
  auto ident = [&](VertexId v, LabelId* label, int64_t* ext) {
    for (const VertexOp& nv : new_vertices_) {
      if (nv.id == v) {
        *label = nv.label;
        *ext = nv.ext_id;
        return;
      }
    }
    *label = graph_->LabelOf(v, snap);
    *ext = graph_->ExtIdOf(v, snap);
  };

  for (const VertexOp& nv : new_vertices_) {
    WalRecord r;
    r.type = WalRecordType::kInsertVertex;
    r.label = nv.label;
    r.ext_id = nv.ext_id;
    recs.push_back(r);
  }
  // All property writes (of new and existing vertices alike) are logged as
  // SetProperty records; CreateVertex props were staged into prop_ops_.
  for (const auto& [v, pv] : prop_ops_) {
    WalRecord r;
    r.type = WalRecordType::kSetProperty;
    ident(v, &r.label, &r.ext_id);
    r.prop = pv.first;
    r.value = pv.second;
    recs.push_back(r);
  }
  // Each logical edge op was staged as an OUT + IN pair; log the OUT half
  // only (replay re-derives both directions).
  for (const EdgeOp& op : edge_ops_) {
    const RelationKey& key = graph_->tables_[op.rel].table->key();
    if (key.direction != Direction::kOut) continue;
    WalRecord r;
    r.type = op.remove ? WalRecordType::kDeleteTombstone
                       : WalRecordType::kInsertEdge;
    r.edge_label = key.edge_label;
    ident(op.vertex, &r.src_label, &r.src_ext);
    ident(op.neighbor, &r.dst_label, &r.dst_ext);
    r.stamp = op.stamp;
    recs.push_back(r);
  }

  WalRecord commit;
  commit.type = WalRecordType::kCommitTx;
  commit.txid = txid;
  recs.push_back(commit);
  return recs;
}

Version WriteTxn::Commit() {
  Version version = 0;
  Status s = Commit(&version);
  return s.ok() ? version : 0;
}

Status WriteTxn::Commit(Version* commit_version) {
  VersionManager& vm = graph_->version_manager_;
  if (graph_->read_only()) {
    Abort();
    return Status::Error("graph is read-only: " +
                         graph_->read_only_reason());
  }
  const bool durable = graph_->wal_ != nullptr;
  Version version;
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> commit_lock(vm.commit_mutex());
    version = vm.NextVersionLocked();

    // A replication feed needs the WAL records even when the graph itself
    // is not durable (in-memory primaries in benches and tests).
    const bool feed =
        graph_->has_commit_listener_.load(std::memory_order_acquire);
    std::vector<WalRecord> wal_records;
    if (durable || feed) wal_records = BuildWalRecords(version);

    if (durable) {
      // Log before publishing anything: if the append fails (disk full,
      // EIO) the commit is rejected with no in-memory effect and the graph
      // degrades to read-only. Appending under the commit mutex keeps log
      // order identical to commit order.
      Status s = graph_->wal_->AppendTxn(wal_records, &lsn);
      if (!s.ok()) {
        graph_->EnterReadOnly(s);
        vm.UnlockStripes(locked_stripes_);
        done_ = true;
        return s;
      }
    }

    // Copy-on-write adjacency: group edge ops by (relation, vertex), copy
    // the newest list once, apply all ops, publish one new version.
    std::sort(edge_ops_.begin(), edge_ops_.end(),
              [](const EdgeOp& a, const EdgeOp& b) {
                if (a.rel != b.rel) return a.rel < b.rel;
                return a.vertex < b.vertex;
              });
    size_t i = 0;
    while (i < edge_ops_.size()) {
      size_t j = i;
      while (j < edge_ops_.size() && edge_ops_[j].rel == edge_ops_[i].rel &&
             edge_ops_[j].vertex == edge_ops_[i].vertex) {
        ++j;
      }
      const EdgeOp& first = edge_ops_[i];
      Graph::TableEntry& entry = graph_->tables_[first.rel];
      bool has_stamp = entry.table->has_stamp();
      auto ver = std::make_shared<AdjOverlayEntry>();
      ver->version = version;
      // Seed with the newest existing list — overlay head, else the
      // compressed segment (a compaction may have collapsed the chain and
      // detached the base array), else the base array — compacting
      // tombstones away.
      std::shared_ptr<AdjOverlayEntry> head =
          entry.overlay->Head(first.vertex);
      const CompressedSegment* seg =
          entry.segment.load(std::memory_order_acquire);
      if (head != nullptr) {
        for (size_t k = 0; k < head->ids.size(); ++k) {
          if (head->ids[k] == kInvalidVertex) continue;
          ver->ids.push_back(head->ids[k]);
          if (has_stamp) ver->stamps.push_back(head->stamps[k]);
        }
      } else if (seg != nullptr && seg->Covers(first.vertex)) {
        AdjScratch scratch;
        AdjSpan s = seg->Decode(first.vertex, &scratch);
        ver->ids.assign(s.ids, s.ids + s.size);
        if (has_stamp) ver->stamps.assign(s.stamps, s.stamps + s.size);
      } else {
        AdjSpan base = entry.table->Neighbors(first.vertex);
        for (uint32_t k = 0; k < base.size; ++k) {
          if (base.ids[k] == kInvalidVertex) continue;
          ver->ids.push_back(base.ids[k]);
          if (has_stamp) ver->stamps.push_back(base.stamps[k]);
        }
      }
      for (size_t k = i; k < j; ++k) {
        const EdgeOp& op = edge_ops_[k];
        if (op.remove) {
          for (size_t m = 0; m < ver->ids.size(); ++m) {
            if (ver->ids[m] == op.neighbor) {
              ver->ids.erase(ver->ids.begin() + m);
              if (has_stamp) ver->stamps.erase(ver->stamps.begin() + m);
              break;
            }
          }
        } else {
          // Insert at the sorted position: overlay entries keep the same
          // sorted-neighbor invariant as base arrays (storage/intersect.h),
          // with upper-bound placement so parallel edges stay in commit
          // order like Finalize's stable sort.
          auto it = std::upper_bound(ver->ids.begin(), ver->ids.end(),
                                     op.neighbor);
          size_t pos = static_cast<size_t>(it - ver->ids.begin());
          ver->ids.insert(it, op.neighbor);
          if (has_stamp) {
            ver->stamps.insert(ver->stamps.begin() + pos, op.stamp);
          }
        }
      }
      entry.overlay->Publish(first.vertex, std::move(ver));
      i = j;
    }

    // Property writes: one overlay entry per vertex. Stable so that when a
    // transaction writes the same property twice, program order survives
    // the grouping and PropOverlay::Publish's coalescing keeps the last.
    std::stable_sort(
        prop_ops_.begin(), prop_ops_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    i = 0;
    while (i < prop_ops_.size()) {
      size_t j = i;
      auto ver = std::make_shared<PropOverlayEntry>();
      ver->version = version;
      while (j < prop_ops_.size() && prop_ops_[j].first == prop_ops_[i].first) {
        ver->writes.push_back(prop_ops_[j].second);
        ++j;
      }
      graph_->prop_overlay_.Publish(prop_ops_[i].first, std::move(ver));
      i = j;
    }

    // New vertices become visible last (their adjacency/properties are
    // already published with the same version, which is still invisible).
    for (const VertexOp& nv : new_vertices_) {
      graph_->new_vertices_.Publish(
          NewVertex{nv.id, nv.label, version, nv.ext_id});
    }

    vm.AdvanceVersionLocked(version);

    // Commit feed: still under the commit mutex, so subscribers observe
    // commits in exactly commit order with no gaps (DESIGN.md §13).
    if (feed && graph_->commit_listener_) {
      graph_->commit_listener_(version, wal_records);
    }
  }
  vm.UnlockStripes(locked_stripes_);
  done_ = true;

  if (durable) {
    // Group commit: block (policy permitting) until the log covers this
    // transaction. The fsync happens outside the commit mutex, so other
    // transactions keep committing while this one waits; one leader fsync
    // releases every waiter it covers. On failure the transaction is
    // already visible in memory but is NOT acknowledged — the graph goes
    // read-only and after a crash the commit may legitimately be absent.
    Status s = graph_->wal_->WaitDurable(lsn);
    if (!s.ok()) {
      graph_->EnterReadOnly(s);
      return s;
    }
  }
  *commit_version = version;
  return Status::OK();
}

void WriteTxn::Abort() {
  graph_->version_manager_.UnlockStripes(locked_stripes_);
  done_ = true;
}

}  // namespace ges
