#include "storage/csv_loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ges {

namespace {

// Days per month in a non-leap year, cumulative.
constexpr int kCumDays[12] = {0,   31,  59,  90,  120, 151,
                              181, 212, 243, 273, 304, 334};

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

// "YYYY-MM-DD" -> epoch milliseconds (UTC midnight). Returns false on
// malformed input.
bool ParseIsoDate(const std::string& s, int64_t* millis) {
  if (s.size() < 10 || s[4] != '-' || s[7] != '-') return false;
  int y = std::atoi(s.substr(0, 4).c_str());
  int m = std::atoi(s.substr(5, 2).c_str());
  int d = std::atoi(s.substr(8, 2).c_str());
  if (y < 1 || m < 1 || m > 12 || d < 1 || d > 31) return false;
  // Days since 1970-01-01.
  int64_t days = 0;
  if (y >= 1970) {
    for (int yy = 1970; yy < y; ++yy) days += IsLeap(yy) ? 366 : 365;
  } else {
    for (int yy = y; yy < 1970; ++yy) days -= IsLeap(yy) ? 366 : 365;
  }
  days += kCumDays[m - 1] + (m > 2 && IsLeap(y) ? 1 : 0) + (d - 1);
  *millis = days * 86'400'000LL;
  return true;
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t next = line.find(delimiter, pos);
    if (next == std::string::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
  // Trim a trailing '\r' from the last field (Windows line endings).
  if (!out.empty() && !out.back().empty() && out.back().back() == '\r') {
    out.back().pop_back();
  }
  return out;
}

Status ParseCsvValue(const std::string& text, ValueType type, Value* out) {
  switch (type) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kBool:
      *out = Value::Bool(text == "true" || text == "1");
      return Status::OK();
    case ValueType::kInt64:
      *out = Value::Int(std::atoll(text.c_str()));
      return Status::OK();
    case ValueType::kDouble:
      *out = Value::Double(std::atof(text.c_str()));
      return Status::OK();
    case ValueType::kString:
      *out = Value::String(text);
      return Status::OK();
    case ValueType::kVertex:
      *out = Value::Vertex(
          static_cast<VertexId>(std::strtoull(text.c_str(), nullptr, 10)));
      return Status::OK();
    case ValueType::kDate: {
      int64_t millis;
      if (ParseIsoDate(text, &millis)) {
        *out = Value::Date(millis);
      } else {
        *out = Value::Date(std::atoll(text.c_str()));
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown value type");
}

Status LoadVerticesCsv(std::istream& in, LabelId label, Graph* graph,
                       size_t* count, const CsvOptions& options) {
  *count = 0;
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV (missing header)");
  }
  std::vector<std::string> header = SplitCsvLine(line, options.delimiter);
  const Catalog& catalog = graph->catalog();

  // Resolve each header column to a property (or the id column).
  int id_col = -1;
  std::vector<std::pair<PropertyId, ValueType>> columns(header.size(),
                                                        {kInvalidProperty,
                                                         ValueType::kNull});
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "id") id_col = static_cast<int>(i);
    PropertyId prop = catalog.Property(header[i]);
    if (prop == kInvalidProperty) {
      if (header[i] == "id") continue;  // id need not be a property
      return Status::NotFound("property '" + header[i] +
                              "' not declared in catalog");
    }
    ValueType type = catalog.PropertyType(label, prop);
    if (type == ValueType::kNull) {
      return Status::InvalidArgument("property '" + header[i] +
                                     "' not declared on label");
    }
    columns[i] = {prop, type};
  }
  if (id_col < 0) {
    return Status::InvalidArgument("vertex CSV needs an 'id' column");
  }

  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(header.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    int64_t ext_id = std::atoll(fields[id_col].c_str());
    VertexId v = graph->AddVertexBulk(label, ext_id);
    for (size_t i = 0; i < fields.size(); ++i) {
      if (columns[i].first == kInvalidProperty) continue;
      if (columns[i].second == ValueType::kString) {
        // Fast path: the field goes straight into the per-graph string
        // dictionary — no Value boxing, no extra copy.
        graph->SetPropertyBulkString(v, columns[i].first, fields[i]);
        continue;
      }
      Value value;
      GES_RETURN_IF_ERROR(
          ParseCsvValue(fields[i], columns[i].second, &value));
      graph->SetPropertyBulk(v, columns[i].first, value);
    }
    ++*count;
  }
  return Status::OK();
}

Status LoadEdgesCsv(std::istream& in, LabelId edge_label, LabelId src_label,
                    LabelId dst_label, Graph* graph, size_t* count,
                    const CsvOptions& options) {
  *count = 0;
  if (graph->FindRelation(src_label, edge_label, dst_label,
                          Direction::kOut) == kInvalidRelation) {
    return Status::NotFound("relation not registered");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV (missing header)");
  }
  std::vector<std::string> header = SplitCsvLine(line, options.delimiter);
  if (header.size() != 2 && header.size() != 3) {
    return Status::InvalidArgument(
        "edge CSV needs 2 or 3 columns (src|dst[|stamp])");
  }
  bool has_stamp = header.size() == 3;

  Version snap = graph->CurrentVersion();
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": wrong field count");
    }
    VertexId src =
        graph->FindByExtId(src_label, std::atoll(fields[0].c_str()), snap);
    VertexId dst =
        graph->FindByExtId(dst_label, std::atoll(fields[1].c_str()), snap);
    if (src == kInvalidVertex || dst == kInvalidVertex) {
      return Status::NotFound("line " + std::to_string(line_no) +
                              ": unknown endpoint id");
    }
    int64_t stamp = 0;
    if (has_stamp) {
      Value v;
      GES_RETURN_IF_ERROR(ParseCsvValue(fields[2], ValueType::kDate, &v));
      stamp = v.AsInt();
    }
    graph->AddEdgeBulk(edge_label, src, dst, stamp);
    ++*count;
  }
  return Status::OK();
}

Status LoadVerticesCsvFile(const std::string& path, LabelId label,
                           Graph* graph, size_t* count,
                           const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadVerticesCsv(in, label, graph, count, options);
}

Status LoadEdgesCsvFile(const std::string& path, LabelId edge_label,
                        LabelId src_label, LabelId dst_label, Graph* graph,
                        size_t* count, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadEdgesCsv(in, edge_label, src_label, dst_label, graph, count,
                      options);
}

Status ExportVerticesCsv(const Graph& graph, LabelId label, std::ostream& out,
                         const CsvOptions& options) {
  const Catalog& catalog = graph.catalog();
  const auto& props = catalog.LabelProperties(label);
  Version snap = graph.CurrentVersion();

  out << "id";
  // Avoid duplicating an explicit "id" property column.
  std::vector<std::pair<PropertyId, ValueType>> cols;
  for (const auto& [prop, type] : props) {
    if (catalog.PropertyName(prop) == "id") continue;
    cols.emplace_back(prop, type);
    out << options.delimiter << catalog.PropertyName(prop);
  }
  out << '\n';

  std::vector<VertexId> vertices;
  graph.ScanLabel(label, snap, &vertices);
  PropertyId id_prop = catalog.Property("id");
  for (VertexId v : vertices) {
    out << graph.GetProperty(v, id_prop, snap).AsInt();
    for (const auto& [prop, type] : cols) {
      out << options.delimiter
          << graph.GetProperty(v, prop, snap).ToString();
    }
    out << '\n';
  }
  return Status::OK();
}

Status ExportEdgesCsv(const Graph& graph, LabelId edge_label,
                      LabelId src_label, LabelId dst_label, std::ostream& out,
                      const CsvOptions& options) {
  RelationId rel =
      graph.FindRelation(src_label, edge_label, dst_label, Direction::kOut);
  if (rel == kInvalidRelation) {
    return Status::NotFound("relation not registered");
  }
  Version snap = graph.CurrentVersion();
  const Catalog& catalog = graph.catalog();
  PropertyId id_prop = catalog.Property("id");

  // Probe one span for stamps.
  bool has_stamp = false;
  std::vector<VertexId> sources;
  AdjScratch adj;
  graph.ScanLabel(src_label, snap, &sources);
  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap, &adj);
    if (span.size > 0) {
      has_stamp = span.stamps != nullptr;
      break;
    }
  }

  out << catalog.VertexLabelName(src_label) << ".id" << options.delimiter
      << catalog.VertexLabelName(dst_label) << ".id";
  if (has_stamp) out << options.delimiter << "stamp";
  out << '\n';

  for (VertexId v : sources) {
    AdjSpan span = graph.Neighbors(rel, v, snap, &adj);
    int64_t src_ext = graph.GetProperty(v, id_prop, snap).AsInt();
    for (uint32_t i = 0; i < span.size; ++i) {
      if (span.ids[i] == kInvalidVertex) continue;  // tombstone
      out << src_ext << options.delimiter
          << graph.GetProperty(span.ids[i], id_prop, snap).AsInt();
      if (has_stamp) {
        out << options.delimiter << (span.stamps ? span.stamps[i] : 0);
      }
      out << '\n';
    }
  }
  return Status::OK();
}

}  // namespace ges
