// Morsel-driven parallel runtime (the Runtime component of Figure 1).
//
// One process-wide TaskScheduler owns a set of persistent worker threads;
// both inter-query parallelism (the harness driver submits one task per
// query stream) and intra-query parallelism (operators split their input
// into small "morsels" dispatched through ParallelFor) share this pool, so
// thread creation never happens on an operator hot path and the two axes of
// parallelism arbitrate over the same cores.
//
// Scheduling structure, in the style of HyPer's morsel-driven execution:
//   * per-worker deques — a task is pushed onto one worker's deque
//     (round-robin for external submissions); the owning worker pops LIFO
//     for locality, idle workers steal FIFO from the others;
//   * ParallelFor — splits [begin, end) into morsel_size chunks claimed
//     from a shared atomic cursor, so fast workers naturally take more
//     morsels (no static partitioning, no remainder skew);
//   * TaskGroup — fork/join: Wait() first executes the group's not yet
//     started tasks inline (the caller participates instead of blocking),
//     then sleeps until in-flight tasks finish. This also makes nested
//     ParallelFor deadlock-free: a waiter can always drain its own work.
//
// Per-worker scratch arenas: LocalArena() hands each thread a bump-pointer
// arena for hot-path scratch (e.g. BFS visited sets inside Expand morsels),
// keeping transient allocations off the contended global allocator. The
// arena is reset when the outermost parallel region on the thread
// completes; scratch must not outlive the ParallelFor body that made it.
#ifndef GES_RUNTIME_SCHEDULER_H_
#define GES_RUNTIME_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "runtime/query_context.h"

namespace ges {

// std::thread::hardware_concurrency() clamped to >= 1 (it returns 0 when
// the core count cannot be determined).
unsigned HardwareThreads();

namespace runtime_internal {

// Shared fork/join state of one TaskGroup.
struct GroupState {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;              // submitted but not yet finished
  std::exception_ptr error;        // first exception thrown by a task
};

}  // namespace runtime_internal

class TaskScheduler {
 public:
  // `num_workers` <= 0 means HardwareThreads(). The pool can only grow
  // (EnsureWorkers); workers persist until Shutdown()/destruction.
  explicit TaskScheduler(int num_workers = 0);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  // The process-wide scheduler (created on first use, never destroyed).
  static TaskScheduler& Global();

  int num_workers() const {
    return num_workers_.load(std::memory_order_acquire);
  }

  // Grows the pool to at least `n` workers (used by the driver when a
  // configuration asks for more query streams than cores — deliberate
  // oversubscription, e.g. the Figure 13 sweep past the core count).
  void EnsureWorkers(int n);

  // Stops the pool: queued tasks are drained (executed), workers join.
  // Tasks submitted after shutdown run inline on the submitting thread, so
  // TaskGroup::Wait never hangs. Idempotent.
  void Shutdown();

  // Fire-and-forget background task, no group and no join: lands at the
  // back of one worker's deque and is stolen FIFO behind queued morsels,
  // so maintenance work (background compaction, DESIGN.md §16) yields to
  // query work already in the pool. Runs inline when the pool is stopped.
  void Submit(std::function<void()> fn);

  // Morsel-driven parallel loop over [begin, end): the range is claimed in
  // `morsel_size` chunks from a shared cursor and `body(chunk_begin,
  // chunk_end)` is invoked once per chunk, concurrently on up to
  // `max_workers` threads (the caller participates and counts toward the
  // bound; <= 1 runs sequentially). Chunk boundaries are identical for
  // every max_workers value, so callers that accumulate per-morsel state
  // indexed by chunk id get thread-count-independent (deterministic)
  // results. The first exception thrown by any morsel is rethrown here.
  //
  // `context`, when non-null, makes the loop cancellation-aware: every
  // participant polls it before claiming the next morsel and throws
  // QueryInterrupted on cancel/deadline, so a parallel region winds down
  // within one morsel per worker. In-flight morsels are never interrupted
  // mid-body (bodies add finer-grained checks where a morsel is heavy).
  void ParallelFor(size_t begin, size_t end, size_t morsel_size,
                   int max_workers,
                   const std::function<void(size_t, size_t)>& body,
                   const QueryContext* context = nullptr);

  // The calling thread's scratch arena (see file comment for the reset
  // contract).
  static Arena& LocalArena();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<runtime_internal::GroupState> group;  // may be null
  };

  // One worker: a mutex-guarded deque plus the thread draining it.
  struct Worker {
    std::mutex mu;
    std::deque<Task> queue;
    std::thread thread;
  };

  // Enqueues onto some worker's deque (round-robin); runs inline if the
  // pool is stopped.
  void Enqueue(Task task);
  // Pops a task: own deque from the back, else steals from another
  // worker's front. `self` is the calling worker index (-1 if external).
  bool TryPop(int self, Task* out);
  // Removes one queued (not started) task belonging to `group`.
  bool TryPopGroupTask(const runtime_internal::GroupState* group, Task* out);
  void WorkerLoop(int id);

  // Executes a task and settles its group accounting.
  static void Execute(Task& task);

  static constexpr int kMaxWorkers = 512;

  std::vector<std::unique_ptr<Worker>> slots_;  // fixed size kMaxWorkers
  std::atomic<int> num_workers_{0};
  std::atomic<uint64_t> next_victim_{0};  // round-robin enqueue cursor
  std::atomic<size_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::mutex idle_mu_;              // guards sleeping and pool growth
  std::condition_variable idle_cv_;
};

// Fork/join task group over a TaskScheduler. Not thread-safe: Run/Wait are
// intended to be called from the owning thread; Wait() rethrows the first
// exception raised by any task.
class TaskGroup {
 public:
  explicit TaskGroup(TaskScheduler* scheduler)
      : scheduler_(scheduler),
        state_(std::make_shared<runtime_internal::GroupState>()) {}

  // Submits `fn` to the scheduler as part of this group.
  void Run(std::function<void()> fn);

  // Blocks until every task submitted via Run has finished. The caller
  // first executes the group's queued-but-unstarted tasks inline.
  void Wait();

 private:
  TaskScheduler* scheduler_;
  std::shared_ptr<runtime_internal::GroupState> state_;
};

}  // namespace ges

#endif  // GES_RUNTIME_SCHEDULER_H_
