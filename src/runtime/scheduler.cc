#include "runtime/scheduler.h"

#include <algorithm>
#include <cassert>

namespace ges {

unsigned HardwareThreads() {
  // hardware_concurrency() returns 0 when the count is unknown.
  return std::max(1u, std::thread::hardware_concurrency());
}

namespace {

// Depth of nested parallel regions on this thread; the scratch arena is
// reset when the outermost region completes.
thread_local int parallel_depth = 0;

struct ArenaScope {
  ArenaScope() { ++parallel_depth; }
  ~ArenaScope() {
    if (--parallel_depth == 0) {
      Arena& arena = TaskScheduler::LocalArena();
      if (arena.bytes_reserved() > 0) arena.Reset();
    }
  }
};

}  // namespace

TaskScheduler::TaskScheduler(int num_workers) : slots_(kMaxWorkers) {
  if (num_workers <= 0) num_workers = static_cast<int>(HardwareThreads());
  EnsureWorkers(num_workers);
}

TaskScheduler::~TaskScheduler() { Shutdown(); }

TaskScheduler& TaskScheduler::Global() {
  // Leaked: the pool must outlive every static that might still submit
  // work during teardown.
  static TaskScheduler* global = new TaskScheduler();
  return *global;
}

Arena& TaskScheduler::LocalArena() {
  static thread_local Arena arena(1 << 18);
  return arena;
}

void TaskScheduler::EnsureWorkers(int n) {
  n = std::min(n, kMaxWorkers);
  std::lock_guard<std::mutex> lk(idle_mu_);
  if (stop_.load(std::memory_order_acquire)) return;
  int cur = num_workers_.load(std::memory_order_acquire);
  if (n <= cur) return;
  for (int i = cur; i < n; ++i) slots_[i] = std::make_unique<Worker>();
  num_workers_.store(n, std::memory_order_release);
  for (int i = cur; i < n; ++i) {
    slots_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

void TaskScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  int n = num_workers();
  for (int i = 0; i < n; ++i) {
    if (slots_[i]->thread.joinable()) slots_[i]->thread.join();
  }
  // Tasks enqueued concurrently with the stop flag may have been pushed
  // after the workers drained; run them here so no group waits forever.
  Task task;
  while (TryPop(-1, &task)) Execute(task);
}

void TaskScheduler::Submit(std::function<void()> fn) {
  Enqueue(Task{std::move(fn), nullptr});
}

void TaskScheduler::Enqueue(Task task) {
  int n = num_workers();
  if (n == 0 || stop_.load(std::memory_order_acquire)) {
    Execute(task);
    return;
  }
  uint64_t victim = next_victim_.fetch_add(1, std::memory_order_relaxed);
  Worker& w = *slots_[victim % static_cast<uint64_t>(n)];
  {
    std::lock_guard<std::mutex> lk(w.mu);
    w.queue.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Empty critical section: serializes with a worker that evaluated the
  // sleep predicate just before the increment (missed-wakeup guard).
  { std::lock_guard<std::mutex> lk(idle_mu_); }
  idle_cv_.notify_one();
}

bool TaskScheduler::TryPop(int self, Task* out) {
  int n = num_workers();
  if (self >= 0 && self < n) {
    Worker& w = *slots_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.queue.empty()) {
      *out = std::move(w.queue.back());  // LIFO: own tail is cache-warm
      w.queue.pop_back();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  for (int k = 0; k < n; ++k) {
    int idx = self >= 0 ? (self + 1 + k) % n : k;
    if (idx == self) continue;
    Worker& w = *slots_[idx];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.queue.empty()) {
      *out = std::move(w.queue.front());  // FIFO steal: oldest work first
      w.queue.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool TaskScheduler::TryPopGroupTask(const runtime_internal::GroupState* group,
                                    Task* out) {
  int n = num_workers();
  for (int i = 0; i < n; ++i) {
    Worker& w = *slots_[i];
    std::lock_guard<std::mutex> lk(w.mu);
    for (auto it = w.queue.begin(); it != w.queue.end(); ++it) {
      if (it->group.get() == group) {
        *out = std::move(*it);
        w.queue.erase(it);
        queued_.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
  }
  return false;
}

void TaskScheduler::WorkerLoop(int id) {
  for (;;) {
    Task task;
    if (TryPop(id, &task)) {
      Execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lk(idle_mu_);
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
    idle_cv_.wait(lk, [this] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             stop_.load(std::memory_order_acquire);
    });
  }
}

void TaskScheduler::Execute(Task& task) {
  std::shared_ptr<runtime_internal::GroupState> group = std::move(task.group);
  if (group == nullptr) {
    task.fn();
    return;
  }
  try {
    task.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lk(group->mu);
    if (!group->error) group->error = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(group->mu);
  if (--group->pending == 0) group->cv.notify_all();
}

void TaskScheduler::ParallelFor(
    size_t begin, size_t end, size_t morsel_size, int max_workers,
    const std::function<void(size_t, size_t)>& body,
    const QueryContext* context) {
  if (end <= begin) return;
  if (morsel_size == 0) morsel_size = 1;
  size_t num_morsels = (end - begin + morsel_size - 1) / morsel_size;
  size_t bound = max_workers <= 0 ? 1 : static_cast<size_t>(max_workers);
  size_t parallelism = std::min(
      {bound, num_morsels, static_cast<size_t>(num_workers()) + 1});
  if (parallelism <= 1) {
    // Sequential path, same chunk boundaries as the parallel one.
    ArenaScope scope;
    for (size_t b = begin; b < end; b += morsel_size) {
      ThrowIfInterrupted(context);
      body(b, std::min(end, b + morsel_size));
    }
    return;
  }

  std::atomic<size_t> cursor{begin};
  auto claim = [&cursor, &body, morsel_size, end, context] {
    ArenaScope scope;
    for (;;) {
      ThrowIfInterrupted(context);
      size_t b = cursor.fetch_add(morsel_size, std::memory_order_relaxed);
      if (b >= end) return;
      body(b, std::min(end, b + morsel_size));
    }
  };

  TaskGroup group(this);
  for (size_t i = 1; i < parallelism; ++i) group.Run(claim);
  std::exception_ptr caller_error;
  try {
    claim();  // the caller participates
  } catch (...) {
    caller_error = std::current_exception();
  }
  group.Wait();  // rethrows the first helper exception
  if (caller_error) std::rethrow_exception(caller_error);
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    ++state_->pending;
  }
  scheduler_->Enqueue(TaskScheduler::Task{std::move(fn), state_});
}

void TaskGroup::Wait() {
  // Participate: execute this group's queued-but-unstarted tasks inline.
  // This is what makes nested fork/join deadlock-free — a waiter whose
  // helpers never got a worker drains them itself.
  TaskScheduler::Task task;
  while (scheduler_->TryPopGroupTask(state_.get(), &task)) {
    TaskScheduler::Execute(task);
  }
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [this] { return state_->pending == 0; });
  std::exception_ptr error = state_->error;
  state_->error = nullptr;
  lk.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace ges
