// Morsel sizing for the parallel operators.
//
// A morsel is the unit of dynamic work distribution: large enough that the
// shared-cursor claim (one atomic fetch_add) is amortized, small enough
// that skewed rows (power-law vertex degrees) cannot pin the whole range to
// one worker. Sizes are per-operator because per-row cost differs by
// orders of magnitude.
#ifndef GES_RUNTIME_MORSEL_H_
#define GES_RUNTIME_MORSEL_H_

#include <cstddef>

namespace ges {

// Expand: each row does adjacency lookups or a bounded BFS — heavy rows,
// small morsels. Also the sequential cut-off: below one morsel the claim
// machinery is skipped entirely.
inline constexpr size_t kExpandMorselRows = 256;

// Vectorized filter: one branch-free comparison per row — very cheap rows,
// big morsels.
inline constexpr size_t kFilterMorselRows = 8192;

// De-factoring (Lemma 4.4): morsels are counted in *root* rows; each root
// row fans out to its subtree's tuples, so per-morsel work is already
// amplified.
inline constexpr size_t kFlattenMorselRoots = 128;

// Minimum total output tuples before parallel de-factoring pays for the
// tuple-count DP that pre-sizes the output slices.
inline constexpr size_t kFlattenParallelMinTuples = 4096;

// Cancellation-poll stride inside the de-factor loops: one QueryContext
// check per this many emitted tuples (a tuple emit is tens of ns, a check
// with an armed deadline reads the clock — polling every tuple would
// dominate).
inline constexpr size_t kFlattenCheckTuples = 1024;

}  // namespace ges

#endif  // GES_RUNTIME_MORSEL_H_
