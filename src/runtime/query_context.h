// Per-query execution context: deadline + cooperative cancellation.
//
// A QueryContext is owned by whoever admitted the query (the service layer,
// a bench, a test) and handed to the engine via ExecOptions::context. The
// engine never blocks on it; operators poll Check() at morsel boundaries
// (Expand source rows, vectorized-filter morsels, de-factoring morsels) and
// between pipeline operators, so a cancelled or timed-out query releases
// its workers within one morsel of work instead of running to completion.
//
// Interruption is delivered by throwing QueryInterrupted from a checkpoint;
// the TaskScheduler already propagates the first exception of a parallel
// region to the caller, and Executor::Run converts it into a QueryResult
// with `interrupted` set — callers outside the engine never see the throw.
#ifndef GES_RUNTIME_QUERY_CONTEXT_H_
#define GES_RUNTIME_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/memory_budget.h"

namespace ges {

enum class InterruptReason : uint8_t {
  kNone = 0,
  kCancelled,          // explicit Cancel() (client CANCEL frame, disconnect)
  kDeadlineExceeded,   // steady-clock deadline passed
  kMemoryExceeded,     // per-query MemoryBudget limit crossed
};

const char* InterruptReasonName(InterruptReason r);

class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // Requests cooperative cancellation. Thread-safe, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // Sets the deadline `seconds` from now (steady clock). Thread-safe; a
  // non-positive value expires immediately.
  void SetDeadline(double seconds) {
    deadline_ns_.store(
        NowNanos() + static_cast<int64_t>(seconds * 1e9),
        std::memory_order_release);
  }
  void ClearDeadline() { deadline_ns_.store(0, std::memory_order_release); }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  // The checkpoint poll: two relaxed/acquire loads, plus a clock read only
  // when a deadline is armed. Precedence when several apply: cancel wins
  // over memory, memory over deadline (a killed query should report the
  // operator's intent; a hog that also timed out should report why it was
  // a hog).
  InterruptReason Check() const {
    if (cancelled_.load(std::memory_order_acquire)) {
      return InterruptReason::kCancelled;
    }
    if (budget_ != nullptr && budget_->exceeded()) {
      return InterruptReason::kMemoryExceeded;
    }
    int64_t dl = deadline_ns_.load(std::memory_order_acquire);
    if (dl != 0 && NowNanos() >= dl) {
      return InterruptReason::kDeadlineExceeded;
    }
    return InterruptReason::kNone;
  }

  // Steady-clock deadline in NowNanos() units; 0 = none. The watchdog uses
  // this to find queries past deadline + grace.
  int64_t deadline_nanos() const {
    return deadline_ns_.load(std::memory_order_acquire);
  }

  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Attaches the query's snapshot registration (a type-erased
  // storage SnapshotHandle — runtime stays independent of the storage
  // layer) so the MVCC GC watermark cannot pass the query's snapshot while
  // any morsel worker might still read it. Released when the context is
  // destroyed, i.e. strictly after the last checkpointed read. Set once,
  // before execution starts; not thread-safe against concurrent readers of
  // the pin itself (none exist — only the destructor touches it).
  void HoldSnapshotPin(std::shared_ptr<void> pin) {
    snapshot_pin_ = std::move(pin);
  }
  bool holds_snapshot_pin() const { return snapshot_pin_ != nullptr; }

  // Attaches the query's memory budget (resource governor, DESIGN.md §15).
  // Set once before execution starts, like the snapshot pin; the engine's
  // charge sites and Check() read it concurrently afterwards, which is safe
  // because the pointer itself never changes again. The budget must
  // outlive the context (the service keeps it alive until the response is
  // sent).
  void AttachBudget(std::shared_ptr<MemoryBudget> budget) {
    budget_ = std::move(budget);
  }
  MemoryBudget* budget() const { return budget_.get(); }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline
  std::shared_ptr<void> snapshot_pin_;
  std::shared_ptr<MemoryBudget> budget_;
};

// Thrown from cancellation checkpoints; converted to QueryResult::interrupted
// by Executor::Run. Deliberately not a std::exception subtype: nothing but
// the engine's own catch sites should handle it.
struct QueryInterrupted {
  InterruptReason reason;
};

// The checkpoint. `ctx == nullptr` (no service context, e.g. direct engine
// use by tests/benches) compiles to a single branch.
inline void ThrowIfInterrupted(const QueryContext* ctx) {
  if (ctx == nullptr) return;
  InterruptReason r = ctx->Check();
  if (r != InterruptReason::kNone) throw QueryInterrupted{r};
}

inline const char* InterruptReasonName(InterruptReason r) {
  switch (r) {
    case InterruptReason::kNone:
      return "none";
    case InterruptReason::kCancelled:
      return "cancelled";
    case InterruptReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case InterruptReason::kMemoryExceeded:
      return "memory_exceeded";
  }
  return "?";
}

// Charge-site helpers: record `bytes` of engine intermediate state against
// the query's budget, if any. Both compile to a couple of branches when no
// budget is attached (tests, benches, direct engine use).
inline void ChargeMemory(const QueryContext* ctx, size_t bytes) {
  if (ctx != nullptr && ctx->budget() != nullptr) ctx->budget()->Charge(bytes);
}
inline void ReleaseMemory(const QueryContext* ctx, size_t bytes) {
  if (ctx != nullptr && ctx->budget() != nullptr) ctx->budget()->Release(bytes);
}

}  // namespace ges

#endif  // GES_RUNTIME_QUERY_CONTEXT_H_
