// Cross-engine result equivalence — the repository's stand-in for the LDBC
// audit. Every IC and IS query must produce the same relation on the
// Volcano, flat, factorized, and fused engines.
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::OrderedRows;
using testutil::SnbFixture;
using testutil::SortedRows;

class EquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int kParamsPerQuery = 5;
};

void ExpectAllEnginesAgree(const Plan& plan, const GraphView& view,
                           const std::string& label) {
  Executor volcano(ExecMode::kVolcano);
  Executor flat(ExecMode::kFlat);
  Executor fact(ExecMode::kFactorized);
  Executor fused(ExecMode::kFactorizedFused);

  QueryResult r_volcano = volcano.Run(plan, view);
  QueryResult r_flat = flat.Run(plan, view);
  QueryResult r_fact = fact.Run(plan, view);
  QueryResult r_fused = fused.Run(plan, view);

  // Plans ending in ORDER BY must agree on row order; plans ending with a
  // LIMIT over unordered data may legitimately pick different rows, so we
  // compare as multisets for those (the LDBC queries all end ordered).
  auto rows_volcano = OrderedRows(r_volcano.table);
  auto rows_flat = OrderedRows(r_flat.table);
  auto rows_fact = OrderedRows(r_fact.table);
  auto rows_fused = OrderedRows(r_fused.table);

  EXPECT_EQ(rows_flat, rows_volcano) << label << ": flat vs volcano";
  EXPECT_EQ(rows_fact, rows_flat) << label << ": factorized vs flat";
  EXPECT_EQ(rows_fused, rows_flat) << label << ": fused vs flat";
}

TEST_P(EquivalenceTest, IC) {
  int k = GetParam();
  SnbFixture& fx = SnbFixture::Shared();
  ParamGen gen(&fx.graph, &fx.data, /*seed=*/1000 + k);
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  for (int i = 0; i < kParamsPerQuery; ++i) {
    LdbcParams p = gen.Next();
    Plan plan = BuildIC(k, ctx, p);
    ExpectAllEnginesAgree(plan, view,
                          "IC" + std::to_string(k) + " params#" +
                              std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllIC, EquivalenceTest,
                         ::testing::Range(1, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "IC" + std::to_string(info.param);
                         });

class IsEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(IsEquivalenceTest, IS) {
  int k = GetParam();
  SnbFixture& fx = SnbFixture::Shared();
  ParamGen gen(&fx.graph, &fx.data, /*seed=*/2000 + k);
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  for (int i = 0; i < 5; ++i) {
    LdbcParams p = gen.Next();
    Plan plan = BuildIS(k, ctx, p);
    ExpectAllEnginesAgree(plan, view,
                          "IS" + std::to_string(k) + " params#" +
                              std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllIS, IsEquivalenceTest,
                         ::testing::Range(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "IS" + std::to_string(info.param);
                         });

// Cyclic BI censuses (DESIGN.md §12): every engine must agree, and the
// fused engine must agree with itself under the WCOJ-rewrite ablation
// (intersect_expand off forces the binary Expand+ExpandInto chain).
class BiEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BiEquivalenceTest, BI) {
  int k = GetParam();
  SnbFixture& fx = SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  Plan plan = BuildBI(k, ctx, LdbcParams{});
  ExpectAllEnginesAgree(plan, view, "BI" + std::to_string(k));

  Executor fused(ExecMode::kFactorizedFused);
  QueryResult with = fused.Run(plan, view);
  ExecOptions no_wcoj;
  no_wcoj.intersect_expand = false;
  QueryResult without = Executor(ExecMode::kFactorizedFused, no_wcoj)
                            .Run(plan, view);
  EXPECT_EQ(OrderedRows(with.table), OrderedRows(without.table))
      << "BI" << k << ": fused intersect vs binary ablation";
}

INSTANTIATE_TEST_SUITE_P(AllBI, BiEquivalenceTest,
                         ::testing::Range(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "BI" + std::to_string(info.param);
                         });

// Queries must generally return data for curated parameters: at least one
// of the parameter draws yields a non-empty result for each query that can
// produce rows on a tiny graph.
TEST(QuerySanity, CuratedParametersProduceResults) {
  SnbFixture& fx = SnbFixture::Shared();
  ParamGen gen(&fx.graph, &fx.data, /*seed=*/77);
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  Executor exec(ExecMode::kFactorizedFused);
  // IC3/IC6/IC10/IC13 can legitimately be empty on a tiny graph
  // (selective filters); require the bread-and-butter queries to hit.
  for (int k : {1, 2, 4, 5, 7, 8, 9}) {
    bool any = false;
    for (int i = 0; i < 10 && !any; ++i) {
      LdbcParams p = gen.Next();
      QueryResult r = exec.Run(BuildIC(k, ctx, p), view);
      any = r.table.NumRows() > 0;
    }
    EXPECT_TRUE(any) << "IC" << k << " returned no rows for any parameters";
  }
}

}  // namespace
}  // namespace ges
