// Parallel determinism: for every engine variant and every LDBC query,
// intra-query parallel execution must be bit-identical to sequential
// execution, regardless of the thread bound. The morsel runtime guarantees
// this by construction (chunk boundaries and output slots do not depend on
// the worker count); this test pins the contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "executor/executor.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::OrderedRows;
using testutil::SnbFixture;

constexpr ExecMode kModes[] = {ExecMode::kVolcano, ExecMode::kFlat,
                               ExecMode::kFactorized,
                               ExecMode::kFactorizedFused};

const char* ModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kVolcano:
      return "volcano";
    case ExecMode::kFlat:
      return "flat";
    case ExecMode::kFactorized:
      return "factorized";
    case ExecMode::kFactorizedFused:
      return "fused";
  }
  return "?";
}

void ExpectThreadCountInvariant(const Plan& plan, const GraphView& view,
                                const std::string& label) {
  for (ExecMode mode : kModes) {
    ExecOptions seq_opts;
    seq_opts.intra_query_threads = 1;
    Executor sequential(mode, seq_opts);
    std::vector<std::string> expect = OrderedRows(sequential.Run(plan, view).table);
    for (int threads : {2, 7}) {
      ExecOptions opts;
      opts.intra_query_threads = threads;
      Executor parallel(mode, opts);
      std::vector<std::string> got = OrderedRows(parallel.Run(plan, view).table);
      EXPECT_EQ(got, expect) << label << " mode=" << ModeName(mode)
                             << " threads=" << threads;
    }
  }
}

class IcDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(IcDeterminismTest, ParallelMatchesSequential) {
  int k = GetParam();
  SnbFixture& fx = SnbFixture::Shared();
  ParamGen gen(&fx.graph, &fx.data, /*seed=*/7000 + k);
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  for (int i = 0; i < 3; ++i) {
    LdbcParams p = gen.Next();
    Plan plan = BuildIC(k, ctx, p);
    ExpectThreadCountInvariant(
        plan, view, "IC" + std::to_string(k) + " params#" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllIC, IcDeterminismTest, ::testing::Range(1, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "IC" + std::to_string(info.param);
                         });

class IsDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(IsDeterminismTest, ParallelMatchesSequential) {
  int k = GetParam();
  SnbFixture& fx = SnbFixture::Shared();
  ParamGen gen(&fx.graph, &fx.data, /*seed=*/8000 + k);
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  for (int i = 0; i < 3; ++i) {
    LdbcParams p = gen.Next();
    Plan plan = BuildIS(k, ctx, p);
    ExpectThreadCountInvariant(
        plan, view, "IS" + std::to_string(k) + " params#" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllIS, IsDeterminismTest, ::testing::Range(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "IS" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ges
